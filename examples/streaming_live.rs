//! Live streaming attack: classify emotions while the recording "plays",
//! through a flaky transport, and watch the service stay up.
//!
//! The batch quickstart records a whole campaign and harvests it at once.
//! This example feeds the same recording to `emoleak_stream::StreamService`
//! chunk by chunk — with injected transient read failures and a worker
//! panic — and prints the verdicts as they stream out, followed by the
//! service's resilience log.
//!
//! ```sh
//! cargo run --release --example streaming_live
//! ```

use emoleak::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), EmoleakError> {
    // The panic injected below is absorbed by supervision; keep its
    // default-hook backtrace out of the demo output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected chaos panic"));
        if !injected {
            default_hook(info);
        }
    }));

    // 1. Record a campaign and train the classifier stack on it (classical
    //    rungs only; pass `ModelBundle::train_with_cnn` output to start the
    //    ladder at the CNN rung instead).
    let corpus = CorpusSpec::tess().with_clips_per_cell(3);
    let scenario = AttackScenario::table_top(corpus, DeviceProfile::oneplus_7t());
    let harvest = scenario.harvest()?;
    let bundle = Arc::new(ModelBundle::train(&harvest, 7)?);
    let class_names: Vec<String> = bundle.class_names().to_vec();

    // 2. Re-record the campaign as a chunk stream and wrap it in a flaky
    //    transport: 30% of reads fail transiently, and one extract-worker
    //    panic is injected mid-stream.
    let campaign = scenario.record_windows()?;
    let config = emoleak_stream::StreamConfig {
        panic_after_chunks: Some(10),
        ..emoleak_stream::StreamConfig::default()
    };
    let source = FlakySource::new(
        ReplaySource::from_campaign(&campaign, config.chunk_len),
        0.30,
        0xCAFE,
    );

    // 3. Stream it. Supervision absorbs the panic, retries absorb the
    //    flaky reads; the emissions arrive in order regardless.
    let service = emoleak_stream::StreamService::new(
        bundle,
        scenario.setting.region_detector(),
        campaign.fs,
        config,
    );
    let report = service
        .run(Box::new(source))
        .map_err(|e| EmoleakError::Config(format!("stream failed: {e}")))?;

    println!("streamed verdicts (first 12 of {}):", report.emissions.len());
    for e in report.emissions.iter().take(12) {
        let label = e
            .verdict
            .label
            .map_or("-".to_string(), |l| class_names[l].clone());
        println!(
            "  region {:>3}  window {:>2}  [{:>5}..{:>5}]  rung {:<9}  emotion {:<8}  truth {}",
            e.region, e.window, e.start, e.end,
            e.verdict.level.to_string(), label, class_names[e.truth],
        );
    }

    let s = &report.stats;
    println!("\nwhat the service survived:");
    println!("  chunks {} regions {} windows {}", s.chunks_ingested, s.regions, s.windows);
    println!("  transient read failures retried: {}", s.retries);
    println!("  worker panics absorbed:          {}", s.panic_restarts);
    println!("  chunks dropped (backpressure):   {}", s.dropped_chunks);
    println!("  final ladder rung:               {}", report.final_level);
    println!("\nresilience log ({} events):", report.log.events().len());
    for event in report.log.events().iter().take(8) {
        println!("  {event:?}");
    }

    // Ground-truth agreement of the streamed labels (the classical rung's
    // training accuracy — the stream saw its own training campaign).
    let hits = report
        .emissions
        .iter()
        .filter(|e| e.verdict.label == Some(e.truth))
        .count();
    println!(
        "\nstreamed label agreement with ground truth: {}/{} ({:.1}%)",
        hits,
        report.emissions.len(),
        100.0 * hits as f64 / report.emissions.len().max(1) as f64
    );
    Ok(())
}
