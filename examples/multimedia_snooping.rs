//! Multimedia snooping: the attacker profiles which *emotional content* a
//! victim consumes (§I: correlating media emotion with content preferences).
//!
//! A victim plays a mix of media clips through the loudspeaker; the attacker
//! classifies each playback window and reconstructs the emotional profile of
//! the consumed content.
//!
//! ```sh
//! cargo run --release --example multimedia_snooping
//! ```

use emoleak::features::{all_feature_names, extract_all};
use emoleak::prelude::*;
use emoleak::core::scenario::Setting;
use emoleak::features::regions::RegionDetector;
use emoleak::phone::session::RecordingSession;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() -> Result<(), EmoleakError> {
    // Train the attacker's model on its own reference corpus.
    let corpus = CorpusSpec::tess().with_clips_per_cell(12);
    let scenario = AttackScenario::table_top(corpus.clone(), DeviceProfile::galaxy_s21());
    let harvest = scenario.harvest()?;
    let mut train = harvest.features.clone();
    let params = train.fit_normalization();
    let mut clf = emoleak::ml::logistic::Logistic::default();
    clf.fit(train.features(), train.labels(), train.num_classes());

    // The victim plays a "playlist" with a skewed emotional mix.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let playlist: Vec<Emotion> = {
        let mut p = vec![Emotion::Sad; 6];
        p.extend(vec![Emotion::Anger; 2]);
        p.extend(vec![Emotion::Neutral; 2]);
        p.shuffle(&mut rng);
        p
    };
    let session = RecordingSession::new(
        &DeviceProfile::galaxy_s21(),
        Setting::TableTopLoudspeaker.speaker_kind(),
        Setting::TableTopLoudspeaker.placement(),
    );
    // The victim's media comes from a *different* corpus seed than the
    // attacker's training data — unseen recordings of the same voices.
    let victim_corpus = corpus.clone().with_seed(0xBEEF);
    let clips: Vec<(Vec<f64>, f64, Emotion)> = playlist
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            let clip = victim_corpus.clip(i % 2, e, i % 12);
            (clip.samples, clip.fs, e)
        })
        .collect();
    let st = session.record_session(clips, &mut rng);

    // Attacker: detect regions per window, classify, count.
    let detector = RegionDetector::table_top();
    let emotions = corpus.emotions().to_vec();
    let mut counts = vec![0usize; emotions.len()];
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, span) in st.labels.iter().enumerate() {
        let window = st.window(i);
        let mut votes = vec![0usize; emotions.len()];
        for &(s, e) in &detector.detect(window, st.trace.fs) {
            let mut f = extract_all(&window[s..e.min(window.len())], st.trace.fs);
            if f.iter().any(|v| !v.is_finite()) {
                continue;
            }
            for (v, (m, sd)) in f.iter_mut().zip(&params) {
                *v = (*v - m) / sd;
            }
            votes[clf.predict(&f)] += 1;
        }
        let Some(pred) = votes.iter().enumerate().max_by_key(|(_, &v)| v).map(|(k, _)| k)
        else {
            continue;
        };
        counts[pred] += 1;
        total += 1;
        if emotions[pred] == span.label {
            correct += 1;
        }
    }
    println!("victim playlist: 6x sad, 2x anger, 2x neutral (shuffled)");
    println!("attacker's reconstructed emotional profile:");
    let names: Vec<String> = emotions.iter().map(|e| e.to_string()).collect();
    for (name, c) in names.iter().zip(&counts) {
        if *c > 0 {
            println!("  {name:<10} {c} clips");
        }
    }
    println!("per-clip accuracy: {correct}/{total}");
    let _ = all_feature_names();
    Ok(())
}
