//! Quickstart: run the EmoLeak attack end-to-end on a small TESS-style
//! campaign and print the accuracy and confusion matrix.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use emoleak::prelude::*;

fn main() -> Result<(), EmoleakError> {
    // A small campaign: 2 speakers x 7 emotions x 12 clips on the paper's
    // best device.
    let corpus = CorpusSpec::tess().with_clips_per_cell(12);
    let random_guess = corpus.random_guess();
    let scenario = AttackScenario::table_top(corpus, DeviceProfile::oneplus_7t());

    println!("Recording campaign through the vibration channel...");
    let harvest = scenario.harvest()?;
    println!(
        "  {} labeled speech regions at {:.0} Hz, {:.0}% of word regions detected",
        harvest.features.len(),
        harvest.accel_fs,
        harvest.detection_rate * 100.0
    );

    println!("Training the Logistic classifier (80/20 split)...");
    let eval = evaluate_features(
        &harvest.features,
        ClassifierKind::Logistic,
        Protocol::Holdout8020,
        1,
    )?;
    println!(
        "  emotion-recognition accuracy: {:.1}% (random guess {:.1}%)",
        eval.accuracy * 100.0,
        random_guess * 100.0
    );
    println!("\nConfusion matrix (rows = truth, columns = predicted):");
    print!("{}", eval.confusion.render());
    Ok(())
}
