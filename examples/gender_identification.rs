//! Gender identification from speaker-induced vibrations — the Spearphone
//! attack (§II-C prior work) running on this reproduction's pipeline.
//!
//! The accelerometer band contains the speech fundamental (male ~95–135 Hz,
//! female ~175–235 Hz), so gender separates far more easily than emotion.
//!
//! ```sh
//! cargo run --release --example gender_identification
//! ```

use emoleak::features::{all_feature_names, extract_all};
use emoleak::features::regions::RegionDetector;
use emoleak::ml::eval::train_test_evaluate;
use emoleak::ml::logistic::Logistic;
use emoleak::phone::session::RecordingSession;
use emoleak::prelude::*;
use rand::SeedableRng;

fn main() {
    // A mixed-gender corpus (CREMA-D-like alternates male/female speakers).
    let corpus = CorpusSpec::crema_d().with_clips_per_cell(3);
    let device = DeviceProfile::galaxy_s10();
    let session = RecordingSession::new(&device, SpeakerKind::Loudspeaker, Placement::TableTop);
    let detector = RegionDetector::table_top();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);

    // Relabel every detected region by the *speaker's gender* instead of
    // the emotion.
    let mut dataset = FeatureDataset::new(
        all_feature_names(),
        vec!["male".to_string(), "female".to_string()],
    );
    for clip in corpus.iter() {
        let speaker = &corpus.speakers()[clip.speaker as usize];
        let label = match speaker.gender() {
            emoleak::synth::Gender::Male => 0,
            emoleak::synth::Gender::Female => 1,
        };
        let trace = session.record_clip(&clip.samples, clip.fs, &mut rng);
        for &(s, e) in &detector.detect(&trace.samples, trace.fs) {
            dataset.push(extract_all(&trace.samples[s..e.min(trace.samples.len())], trace.fs), label);
        }
    }
    dataset.clean_invalid();
    println!("{} regions from {} speakers", dataset.len(), corpus.speakers().len());

    let (mut train, mut test) = dataset.stratified_split(0.8, 1);
    let params = train.fit_normalization();
    test.apply_normalization(&params);
    let mut clf = Logistic::default();
    let eval = train_test_evaluate(
        &mut clf,
        train.features(),
        train.labels(),
        test.features(),
        test.labels(),
        &["male".to_string(), "female".to_string()],
    );
    println!(
        "gender identification accuracy: {:.1}% (random guess 50%)",
        eval.accuracy * 100.0
    );
    print!("{}", eval.confusion.render());
    println!("\nSpearphone reported ~90% gender accuracy from the same channel — the");
    println!("fundamental-frequency gap makes this far easier than 7-class emotion.");
}
