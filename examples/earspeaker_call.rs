//! The ear-speaker scenario: eavesdropping on a handheld phone call.
//!
//! The earpiece plays at 36–46 dB SPL while the victim holds the phone to
//! their ear — the trace is dominated by hand/body motion and the paper's
//! 8 Hz high-pass is needed just to find the speech regions. This example
//! reproduces the Table VI protocol (continuous session recording, 10-fold
//! cross-validation).
//!
//! ```sh
//! cargo run --release --example earspeaker_call
//! ```

use emoleak::prelude::*;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(20);
    let random_guess = corpus.random_guess();
    let scenario = AttackScenario::handheld(corpus, DeviceProfile::oneplus_7t());

    println!("Recording one continuous handheld session (ear speaker)...");
    let harvest = scenario.harvest()?;
    println!(
        "  detection rate {:.0}% of word regions (paper: >= 45% for ear speakers)",
        harvest.detection_rate * 100.0
    );

    for kind in [ClassifierKind::RandomForest, ClassifierKind::RandomSubspace] {
        let eval = evaluate_features(&harvest.features, kind, Protocol::KFold(10), 7)?;
        println!(
            "  {:<16} 10-fold accuracy {:.1}% ({:.1}x random guess)",
            kind.display_name(),
            eval.accuracy * 100.0,
            eval.accuracy / random_guess
        );
    }
    println!("\npaper: ~55-60% for the TESS ear-speaker setting (4x random guess)");
    Ok(())
}
