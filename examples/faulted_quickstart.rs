//! Quickstart through an imperfect channel: the same campaign as
//! `quickstart`, recorded once through an ideal sensor pipeline and once
//! through `FaultProfile::handheld_walking()` — step-impact motion bursts,
//! dropped/duplicated samples and timestamp jitter — then the accuracy
//! delta between the two.
//!
//! ```sh
//! cargo run --release --example faulted_quickstart
//! ```

use emoleak::prelude::*;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(12);
    let random_guess = corpus.random_guess();
    let clean = AttackScenario::table_top(corpus, DeviceProfile::oneplus_7t());
    let faulted = clean.clone().with_faults(FaultProfile::handheld_walking());

    let accuracy = |scenario: &AttackScenario| -> Result<(f64, usize, FaultLog), EmoleakError> {
        // Errors from inside a recording carry the clip they surfaced
        // from — print it before bailing so a failed campaign is
        // attributable to a specific (corpus, speaker, emotion, clip).
        let h = scenario.harvest().inspect_err(|e| {
            if let EmoleakError::InClip { context, .. } = e {
                eprintln!("  harvest failed while recording {context}");
            }
        })?;
        let acc = match evaluate_features(
            &h.features,
            ClassifierKind::Logistic,
            Protocol::Holdout8020,
            1,
        ) {
            Ok(eval) => eval.accuracy,
            // Faults can degrade a campaign below trainability; that is a
            // result (the channel won), not a crash.
            Err(EmoleakError::DegenerateDataset(_)) => random_guess,
            Err(e) => return Err(e),
        };
        Ok((acc, h.features.len(), h.faults))
    };

    println!("Recording the campaign through the ideal channel...");
    let (clean_acc, clean_regions, _) = accuracy(&clean)?;
    println!("  {clean_regions} regions, accuracy {:.1}%", clean_acc * 100.0);

    println!("Recording the same campaign while the victim walks...");
    let (faulted_acc, faulted_regions, faults) = accuracy(&faulted)?;
    println!("  {faulted_regions} regions, accuracy {:.1}%", faulted_acc * 100.0);
    println!("  injected faults: {faults}");

    println!(
        "\ndegradation: {:+.1} points (random guess {:.1}%)",
        (faulted_acc - clean_acc) * 100.0,
        random_guess * 100.0
    );
    Ok(())
}
