//! Defense evaluation: does Android's 200 Hz sampling cap stop EmoLeak?
//! What about filtering the delivered sensor data, or mechanically damping
//! the chassis?
//!
//! ```sh
//! cargo run --release --example defense_evaluation
//! ```

use emoleak::core::mitigation::damping_study;
use emoleak::core::ClassifierKind;
use emoleak::prelude::*;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(12);
    let scenario = AttackScenario::table_top(corpus, DeviceProfile::oneplus_7t());

    println!("1. Android 12's 200 Hz sampling cap (SS VI-A):");
    let cap = SamplingCapStudy::run(&scenario, ClassifierKind::Logistic, 11)?;
    println!("   native rate: {:.1}%   capped: {:.1}%   random: {:.1}%",
             cap.accuracy_default * 100.0,
             cap.accuracy_capped * 100.0,
             cap.random_guess * 100.0);
    println!("   attack survives at >5x random guess: {}", cap.attack_survives(5.0));

    println!("\n2. Filtering delivered sensor data (Table I ablation, handheld):");
    let handheld = AttackScenario::handheld(
        CorpusSpec::tess().with_clips_per_cell(6),
        DeviceProfile::oneplus_7t(),
    );
    let ablation = FilterAblation::run(&handheld)?;
    for ((name, raw), hp) in ablation
        .features
        .iter()
        .zip(&ablation.gain_no_filter)
        .zip(&ablation.gain_1hz)
    {
        println!("   {name:<12} info gain {raw:.2} -> {hp:.2}");
    }

    println!("\n3. Vibration damping / sensor relocation (SS VI-B):");
    for damping in [1.0, 0.25, 0.05] {
        let acc = damping_study(&scenario, ClassifierKind::Logistic, damping, 11)?;
        println!("   {:>4.0}% coupling -> accuracy {:.1}%", damping * 100.0, acc * 100.0);
    }
    Ok(())
}
