//! Kill-and-resume byte-identity for checkpointed campaigns.
//!
//! A campaign is checkpointed mid-flight (an injected crash tears the
//! journal or the snapshot replacement), the in-memory state is dropped,
//! and the campaign is resumed — on a *different* worker count than the run
//! that died. The resumed payloads, which embed every region's truth label
//! and the classifier accuracy as raw bits, must compare byte-for-byte
//! equal to an uninterrupted single-threaded run.
//!
//! This is the durability layer leaning on the determinism model: unit
//! results depend only on the unit index, so the recovered cursor *is* the
//! RNG stream position and splicing checkpointed units with recomputed ones
//! is invisible in the output.

use emoleak::core::{evaluate_features, ClassifierKind, Protocol};
use emoleak::durable::{
    run_resumable, CampaignError, CampaignSpec, CrashPlan, Defect, Enc, Outcome, RunOptions,
};
use emoleak::prelude::*;
use emoleak_exec::with_threads;
use std::ops::Range;
use std::path::{Path, PathBuf};

const SEED: u64 = 0x1D3;
const SEVERITIES: [f64; 3] = [0.0, 1.0, 3.0];

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("emoleak-resume-identity-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One unit per severity: harvest TESS under handheld motion faults, then
/// classify. The payload captures the campaign's *labels* — every detected
/// region's truth label plus the accuracy — as raw bytes, so payload
/// equality is a byte-for-byte label comparison.
fn compute_units(range: Range<usize>) -> Result<Vec<Vec<u8>>, EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(2);
    let random_guess = corpus.random_guess();
    let severities = &SEVERITIES[range];
    emoleak_exec::par_map_indexed(severities, |_, &severity| {
        let scenario = AttackScenario::table_top(corpus.clone(), DeviceProfile::oneplus_7t())
            .with_faults(
                emoleak::phone::FaultProfile::handheld_walking().with_severity(severity),
            );
        let h = scenario.harvest()?;
        let accuracy = match evaluate_features(
            &h.features,
            ClassifierKind::Logistic,
            Protocol::Holdout8020,
            SEED,
        ) {
            Ok(eval) => eval.accuracy,
            Err(EmoleakError::DegenerateDataset(_)) => random_guess,
            Err(e) => return Err(e),
        };
        let mut enc = Enc::new();
        enc.f64(severity).f64(accuracy).u64(h.features.len() as u64);
        for &label in h.features.labels() {
            enc.u64(label as u64);
        }
        Ok(enc.into_bytes())
    })
    .into_iter()
    .collect()
}

fn spec() -> CampaignSpec {
    CampaignSpec { id: "resume-identity".into(), fingerprint: 0xB17E, total: SEVERITIES.len() }
}

fn opts(crash: Option<CrashPlan>) -> RunOptions {
    RunOptions { chunk: 2, snapshot_every: 2, crash }
}

fn run(dir: Option<&Path>, crash: Option<CrashPlan>) -> Result<Outcome, String> {
    run_resumable(dir, &spec(), &opts(crash), &mut compute_units).map_err(|e| match e {
        CampaignError::App(a) => format!("compute failed: {a}"),
        CampaignError::Durable(d) => format!("durable: {d}"),
    })
}

#[test]
fn killed_campaign_resumes_byte_identical_across_thread_counts() {
    // The identity target: an uninterrupted run, one worker. A clean
    // 4-worker run must already match it (the determinism model).
    let clean = with_threads(1, || run(None, None)).expect("clean run");
    let clean4 = with_threads(4, || run(None, None)).expect("clean 4-thread run");
    assert_eq!(clean.payloads, clean4.payloads, "clean runs diverge across thread counts");

    // Kill mid-journal-append on 1 worker; drop everything; resume on 4.
    // Op 2 is the second unit's append — the crash leaves a torn record.
    let dir = scratch("torn-append");
    let err = with_threads(1, || run(Some(&dir), Some(CrashPlan::kill(2, 0.5))))
        .expect_err("kill must fire");
    assert!(err.contains("injected crash"), "{err}");
    let resumed = with_threads(4, || run(Some(&dir), None)).expect("resume");
    assert_eq!(resumed.resumed_units, 1, "exactly the journaled unit restores");
    assert!(
        resumed.defects.iter().any(|d| matches!(d, Defect::TornTail { .. })),
        "torn append must surface as a typed defect: {:?}",
        resumed.defects
    );
    assert_eq!(resumed.payloads, clean.payloads, "1→4 thread resume diverged");
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // Kill mid-snapshot-replacement on 4 workers (op 4: the manifest is
    // staged but not renamed); drop everything; resume on 1.
    let dir = scratch("staged-manifest");
    let err = with_threads(4, || run(Some(&dir), Some(CrashPlan::kill(4, 0.5))))
        .expect_err("kill must fire");
    assert!(err.contains("injected crash"), "{err}");
    let resumed = with_threads(1, || run(Some(&dir), None)).expect("resume");
    assert_eq!(resumed.resumed_units, 2, "both snapshotted units restore");
    assert_eq!(resumed.payloads, clean.payloads, "4→1 thread resume diverged");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
