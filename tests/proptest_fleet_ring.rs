//! Property tests: the consistent-hash ring behind fleet placement.
//!
//! For any seed, shard count, and tenant population:
//!
//! * placement is **deterministic** — a ring rebuilt from the same seed
//!   and shard set (in any insertion order) routes every tenant
//!   identically;
//! * placement is **balanced** — no shard owns a wildly outsized share
//!   of a large tenant population;
//! * movement is **bounded** — removing one shard re-homes exactly that
//!   shard's tenants; every other tenant keeps its home, and the
//!   evacuees land on surviving shards;
//! * the failover chain is coherent — `route_chain` starts at the home
//!   shard and visits every live shard exactly once.

use emoleak::fleet::HashRing;
use proptest::prelude::*;

const VNODES: usize = 64;

fn tenants(n: usize) -> Vec<String> {
    (0..n).map(|t| format!("tenant-{t}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn placement_is_a_pure_function_of_seed_and_shard_set(
        seed in 0u64..u64::MAX,
        shards in 1u32..=8,
    ) {
        let forward = HashRing::new(seed, shards, VNODES);
        // Same shard set inserted in reverse order: identical ring.
        let mut reverse = HashRing::new(seed, 0, VNODES);
        for id in (0..shards).rev() {
            reverse.insert_shard(id);
        }
        for t in tenants(128) {
            prop_assert!(forward.route(&t) == reverse.route(&t), "insertion order leaked");
        }
    }

    #[test]
    fn placement_is_balanced_within_a_bound(
        seed in 0u64..u64::MAX,
        shards in 2u32..=8,
    ) {
        let ring = HashRing::new(seed, shards, VNODES);
        let population = 1024usize;
        let mut counts = vec![0usize; shards as usize];
        for t in tenants(population) {
            counts[ring.route(&t) as usize] += 1;
        }
        let mean = population as f64 / f64::from(shards);
        for (id, &n) in counts.iter().enumerate() {
            prop_assert!(n > 0, "shard {id} owns no tenants at all");
            prop_assert!(
                (n as f64) < 2.5 * mean,
                "shard {id} owns {n} of {population} tenants (mean {mean:.0}): \
                 the ring is badly unbalanced"
            );
        }
    }

    #[test]
    fn removing_one_shard_moves_only_its_tenants(
        seed in 0u64..u64::MAX,
        shards in 2u32..=8,
        victim_pick in 0u32..u32::MAX,
    ) {
        let mut ring = HashRing::new(seed, shards, VNODES);
        let victim = victim_pick % shards;
        let ts = tenants(256);
        let before: Vec<u32> = ts.iter().map(|t| ring.route(t)).collect();
        prop_assert!(ring.remove_shard(victim));
        for (t, home) in ts.iter().zip(&before) {
            let now = ring.route(t);
            if *home == victim {
                prop_assert!(now != victim, "{} still routes to the removed shard", t);
                prop_assert!(ring.contains(now), "{} routed to a dead shard", t);
            } else {
                prop_assert!(now == *home, "{} moved without cause", t);
            }
        }
    }

    #[test]
    fn the_failover_chain_visits_every_live_shard_once(
        seed in 0u64..u64::MAX,
        shards in 1u32..=8,
    ) {
        let ring = HashRing::new(seed, shards, VNODES);
        for t in tenants(32) {
            let chain = ring.route_chain(&t);
            prop_assert!(chain.len() == shards as usize, "chain misses shards");
            prop_assert!(chain[0] == ring.route(&t), "chain must start at home");
            let mut sorted = chain.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert!(sorted.len() == chain.len(), "chain repeats a shard");
        }
    }
}
