//! End-to-end contracts of the streaming inference service.
//!
//! Two promises lock the streaming path to the batch pipeline:
//!
//! 1. **Clean-path equivalence** — streaming a recording through
//!    `StreamService` yields region-for-region the labels the batch
//!    pipeline's extraction + classification produces, byte-identical, at
//!    any worker count.
//! 2. **Deterministic degradation** — with synthetic latencies, the
//!    ladder's transitions (and therefore which rung labeled which region)
//!    are a pure function of the input: two identical runs produce
//!    identical `ServiceLog`s and identical emissions.

use emoleak::core::online::extract_window;
use emoleak::prelude::*;
use emoleak::stream::{ReplaySource, StreamConfig, StreamReport, StreamService};
use emoleak_exec::with_threads;
use std::sync::Arc;
use std::time::Duration;

fn scenario() -> AttackScenario {
    AttackScenario::table_top(
        CorpusSpec::tess().with_clips_per_cell(2),
        DeviceProfile::oneplus_7t(),
    )
}

/// Deterministic config: zero synthetic latency, so every deadline is met
/// and the ladder never moves.
fn fast_config() -> StreamConfig {
    StreamConfig {
        latency_override: Some([Duration::ZERO; 4]),
        ..StreamConfig::default()
    }
}

fn streamed_labels(report: &StreamReport) -> Vec<(usize, usize, usize, Option<usize>)> {
    report
        .emissions
        .iter()
        .map(|e| (e.window, e.start, e.end, e.verdict.label))
        .collect()
}

#[test]
fn clean_stream_labels_are_byte_identical_to_batch_at_any_thread_count() {
    let mut per_thread_count = Vec::new();
    for threads in [1usize, 4] {
        let labels = with_threads(threads, || {
            let scenario = scenario();
            let harvest = scenario.harvest().unwrap();
            let bundle = Arc::new(ModelBundle::train(&harvest, 7).unwrap());
            let campaign = scenario.record_windows().unwrap();
            let detector = scenario.setting.region_detector();

            // Batch side: the same extraction the batch pipeline runs,
            // classified row by row at the classical rung.
            let mut batch = Vec::new();
            for (i, (window, _truth, label)) in campaign.windows.iter().enumerate() {
                let ex = extract_window(window, campaign.fs, &detector, None, *label);
                for rf in ex.rows {
                    let verdict = bundle.classify(InferenceLevel::Classical, &rf);
                    batch.push((i, rf.start, rf.end, verdict.label));
                }
            }

            // Streaming side: the same recording, chunked and replayed.
            let service = StreamService::new(
                Arc::clone(&bundle),
                detector,
                campaign.fs,
                fast_config(),
            );
            let source = ReplaySource::from_campaign(&campaign, 256);
            let report = service.run(Box::new(source)).unwrap();

            assert_eq!(
                streamed_labels(&report),
                batch,
                "streaming != batch at {threads} thread(s)"
            );
            assert!(report.log.events().is_empty(), "clean path must be silent");
            assert_eq!(report.stats.deadline_misses, 0);
            batch
        });
        per_thread_count.push(labels);
    }
    assert_eq!(
        per_thread_count[0], per_thread_count[1],
        "worker count changed the streamed labels"
    );
}

#[test]
fn deadline_pressure_degrades_then_recovers_deterministically() {
    let scenario = scenario();
    let harvest = scenario.harvest().unwrap();
    let bundle = Arc::new(ModelBundle::train(&harvest, 7).unwrap());
    let campaign = scenario.record_windows().unwrap();

    // Classical blows the 40 ms deadline every time; energy-only is
    // instant. The ladder must cycle: trip down after 3 misses, climb back
    // only after 5 meets and a 2-region cooldown (hysteresis).
    let config = StreamConfig {
        deadline: Duration::from_millis(40),
        latency_override: Some([
            Duration::from_millis(80),
            Duration::from_millis(80),
            Duration::from_millis(80),
            Duration::ZERO,
        ]),
        ladder: emoleak::stream::LadderConfig {
            degrade_after: 3,
            recover_after: 5,
            cooldown: 2,
        },
        ..StreamConfig::default()
    };
    let run = || {
        let service = StreamService::new(
            Arc::clone(&bundle),
            scenario.setting.region_detector(),
            campaign.fs,
            config.clone(),
        );
        service
            .run(Box::new(ReplaySource::from_campaign(&campaign, 256)))
            .unwrap()
    };

    let report = run();
    let transitions = report.log.transitions();
    assert!(
        transitions.len() >= 2,
        "expected degrade + recover, got {transitions:?}"
    );
    assert_eq!(transitions[0].from, InferenceLevel::Classical);
    assert_eq!(transitions[0].to, InferenceLevel::EnergyOnly);
    assert!(
        transitions.iter().any(|t| t.to < t.from),
        "sustained headroom never climbed back: {transitions:?}"
    );
    // Hysteresis is visible in the event stream: a recovery fires only
    // after at least `recover_after` regions at the degraded rung.
    let events = report.log.events();
    let degrade_at = events.iter().find_map(|e| match e {
        emoleak::stream::ServiceEvent::Degraded { region, .. } => Some(*region),
        _ => None,
    });
    let recover_at = events.iter().find_map(|e| match e {
        emoleak::stream::ServiceEvent::Recovered { region, .. } => Some(*region),
        _ => None,
    });
    let (d, r) = (degrade_at.unwrap(), recover_at.unwrap());
    assert!(
        r >= d + u64::from(config.ladder.recover_after),
        "recovery at region {r} too soon after degradation at {d}"
    );
    // Both rungs actually labeled regions.
    assert!(report.stats.level_counts[2] > 0, "classical ran");
    assert!(report.stats.level_counts[3] > 0, "energy-only ran");

    // Synthetic latencies make the whole run a pure function of the input:
    // a second run reproduces the log and the emissions exactly.
    let again = run();
    assert_eq!(report.log, again.log, "ServiceLog must be deterministic");
    assert_eq!(streamed_labels(&report), streamed_labels(&again));
    // Queue max-depths are scheduling-dependent; everything the ladder and
    // classifier produced is not.
    assert_eq!(report.stats.regions, again.stats.regions);
    assert_eq!(report.stats.level_counts, again.stats.level_counts);
    assert_eq!(report.stats.deadline_misses, again.stats.deadline_misses);
    assert_eq!(report.final_level, again.final_level);
}
