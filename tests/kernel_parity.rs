//! End-to-end kernel parity: the full verdict stream is byte-identical
//! under `EMOLEAK_KERNELS=reference` and `EMOLEAK_KERNELS=fast`, crossed
//! with `EMOLEAK_THREADS` 1 and 4.
//!
//! `tests/proptest_kernels.rs` pins each kernel to its reference at the
//! function boundary; this binary pins the composition — chunked ingest →
//! assembly → region detection → STFT/resize/features → CNN (and every
//! cheaper rung) — by byte-comparing complete clean-path runs of a real
//! trained bundle, the same digest the fleet placement-invariance tests
//! use. It is a single `#[test]` in its own binary because it owns the
//! process-global `EMOLEAK_KERNELS` variable: the hot paths deliberately
//! re-read the knob per top-level operation so one process can flip modes
//! between runs, but parallel tests in a shared binary would race on it.

use emoleak::prelude::*;
use emoleak::stream::{ReplaySource, StreamConfig, StreamReport, StreamService};
use emoleak_exec::with_threads;
use std::sync::Arc;
use std::time::Duration;

/// Everything classification decided for one region, in emission order:
/// any kernel-mode divergence anywhere in the pipeline shows up here.
type Digest = Vec<(usize, usize, usize, Option<usize>, InferenceLevel, bool)>;

fn digest(report: &StreamReport) -> Digest {
    report
        .emissions
        .iter()
        .map(|e| {
            (e.window, e.start, e.end, e.verdict.label, e.verdict.level, e.verdict.is_speech)
        })
        .collect()
}

#[test]
fn verdict_stream_is_identical_across_kernel_modes_and_thread_counts() {
    // A CNN-backed bundle (one cheap epoch, narrow net) so the conv fast
    // path actually runs end to end; the knobs are pinned before any
    // training so the weights are reproducible regardless of ambient env.
    std::env::set_var("EMOLEAK_EPOCHS", "1");
    std::env::set_var("EMOLEAK_CNN_DIV", "8");
    let scenario = AttackScenario::table_top(
        CorpusSpec::tess().with_clips_per_cell(2),
        DeviceProfile::oneplus_7t(),
    );
    let harvest = scenario.harvest().unwrap();
    let bundle = Arc::new(ModelBundle::train_with_cnn(&harvest, 7).unwrap());
    assert!(bundle.has_cnn(), "parity must cover the conv forward pass");
    assert!(bundle.has_cnn_int8(), "the spectrogram CNN must lower to int8");
    let campaign = scenario.record_windows().unwrap();

    let run = |mode: &str, threads: usize| -> StreamReport {
        std::env::set_var("EMOLEAK_KERNELS", mode);
        let report = with_threads(threads, || {
            let svc = StreamService::new(
                Arc::clone(&bundle),
                scenario.setting.region_detector(),
                campaign.fs,
                StreamConfig {
                    latency_override: Some([Duration::ZERO; 4]),
                    ..StreamConfig::default()
                },
            );
            svc.run(Box::new(ReplaySource::from_campaign(&campaign, 256))).unwrap()
        });
        std::env::remove_var("EMOLEAK_KERNELS");
        report
    };

    let baseline = run("reference", 1);
    let base = digest(&baseline);
    assert!(!base.is_empty(), "the parity check must cover real verdicts");
    assert!(
        base.iter().any(|(.., level, _)| *level == InferenceLevel::Cnn),
        "a clean run of a CNN bundle must classify at the CNN rung"
    );

    for (mode, threads) in
        [("reference", 4), ("fast", 1), ("fast", 4)]
    {
        let report = run(mode, threads);
        assert_eq!(
            digest(&report),
            base,
            "EMOLEAK_KERNELS={mode} at {threads} thread(s) changed the verdict stream"
        );
    }

    // The int8 rung is deliberately lossy vs f64 but must itself be
    // deterministic and kernel-mode-independent: classify every region at
    // CnnInt8 under both modes and compare streams.
    let int8_digest = |mode: &str| -> Vec<Option<usize>> {
        std::env::set_var("EMOLEAK_KERNELS", mode);
        let labels = campaign
            .windows
            .iter()
            .flat_map(|(window, _truth, label)| {
                let ex = emoleak::core::online::extract_window(
                    window,
                    campaign.fs,
                    &scenario.setting.region_detector(),
                    Some(&emoleak::features::spectrogram::SpectrogramGenerator::for_accel()),
                    *label,
                );
                ex.rows
                    .into_iter()
                    .map(|rf| bundle.classify(InferenceLevel::CnnInt8, &rf).label)
                    .collect::<Vec<_>>()
            })
            .collect();
        std::env::remove_var("EMOLEAK_KERNELS");
        labels
    };
    let int8_ref = int8_digest("reference");
    assert!(!int8_ref.is_empty());
    assert_eq!(int8_ref, int8_digest("fast"), "int8 rung must not depend on the knob");

    std::env::remove_var("EMOLEAK_EPOCHS");
    std::env::remove_var("EMOLEAK_CNN_DIV");
}
