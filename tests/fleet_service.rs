//! Integration: real streaming sessions through the sharded fleet.
//!
//! A [`FleetService`] places sessions on consistent-hashed shards, each
//! with its own [`FleetGate`]. These tests pin the fleet's two headline
//! invariants end to end, with real trained models and real verdicts:
//!
//! * **placement invariance** — on the clean path, a tenant's verdict
//!   stream is byte-identical whether the fleet runs 1, 2, or 4 shards,
//!   and under any `EMOLEAK_THREADS` (here: `with_threads(1)` vs `4`);
//! * **failover continuity** — fencing a tenant's home shard migrates
//!   its next session to a sibling shard and the verdicts do not change;
//! * **shard isolation** — a browned-out shard spills its sessions while
//!   other shards' tenants and byte accounting stay untouched.

use emoleak::fleet::{FleetConfig, FleetService};
use emoleak::prelude::*;
use emoleak::stream::{ReplaySource, StreamConfig, StreamReport, StreamService};
use emoleak_exec::with_threads;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct Fixture {
    bundle: Arc<ModelBundle>,
    campaign: RecordedCampaign,
    scenario: AttackScenario,
}

/// One trained bundle + recorded campaign backs every test: the property
/// under test is the fleet wiring, not the model.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(2),
            DeviceProfile::oneplus_7t(),
        );
        let harvest = scenario.harvest().unwrap();
        let bundle = Arc::new(ModelBundle::train(&harvest, 7).unwrap());
        let campaign = scenario.record_windows().unwrap();
        Fixture { bundle, campaign, scenario }
    })
}

fn fast_config() -> StreamConfig {
    StreamConfig { latency_override: Some([Duration::ZERO; 4]), ..StreamConfig::default() }
}

fn fleet(shards: u32) -> FleetService {
    FleetService::new(&FleetConfig { shards, ..FleetConfig::default() })
}

/// Admits `tenant` and runs one full session on whichever shard takes it.
fn run_session(svc: &FleetService, tenant: &str, now: u64) -> StreamReport {
    let fx = fixture();
    let placement = svc.admit(tenant, now).unwrap();
    let service = StreamService::new(
        Arc::clone(&fx.bundle),
        fx.scenario.setting.region_detector(),
        fx.campaign.fs,
        placement.permit.configure(fast_config()),
    );
    service.run(Box::new(ReplaySource::from_campaign(&fx.campaign, 256))).unwrap()
}

type Labels = Vec<(usize, usize, usize, Option<usize>)>;

fn labels(report: &StreamReport) -> Labels {
    report.emissions.iter().map(|e| (e.window, e.start, e.end, e.verdict.label)).collect()
}

const TENANTS: [&str; 3] = ["ada", "bea", "cyd"];

#[test]
fn clean_path_verdicts_are_identical_across_shard_counts_and_threads() {
    // 3 shard widths × 2 worker counts: every combination must produce
    // the same per-tenant verdict stream, byte for byte.
    let mut streams: Vec<Vec<Labels>> = Vec::new();
    for shards in [1u32, 2, 4] {
        for threads in [1usize, 4] {
            streams.push(with_threads(threads, || {
                let svc = fleet(shards);
                TENANTS
                    .iter()
                    .enumerate()
                    .map(|(i, t)| labels(&run_session(&svc, t, i as u64)))
                    .collect()
            }));
        }
    }
    for (i, stream) in streams.iter().enumerate().skip(1) {
        assert_eq!(
            stream, &streams[0],
            "combination {i} (shards x threads grid) changed the verdict stream"
        );
    }
    assert!(
        streams[0].iter().any(|s| !s.is_empty()),
        "the invariance check must cover real verdicts"
    );
}

#[test]
fn fencing_the_home_shard_migrates_the_session_and_preserves_verdicts() {
    let fx = fixture();
    // Baseline on a healthy 4-shard fleet.
    let healthy = fleet(4);
    let baseline = labels(&run_session(&healthy, "ada", 0));

    // Fence ada's home; the next session must land elsewhere and produce
    // the identical verdict stream.
    let mut svc = fleet(4);
    let home = svc.home("ada");
    assert!(svc.fence_shard(home), "a healthy shard must be fenceable");
    let placement = svc.admit("ada", 1).unwrap();
    assert_ne!(placement.shard, home, "session landed on the fenced shard");
    let service = StreamService::new(
        Arc::clone(&fx.bundle),
        fx.scenario.setting.region_detector(),
        fx.campaign.fs,
        placement.permit.configure(fast_config()),
    );
    let report =
        service.run(Box::new(ReplaySource::from_campaign(&fx.campaign, 256))).unwrap();
    assert_eq!(labels(&report), baseline, "failover changed the verdicts");
}

#[test]
fn a_spilled_session_bills_its_hosting_shard_not_its_home() {
    let svc = fleet(2);
    let home = svc.home("ada");
    let sibling = svc.ring().shard_ids().into_iter().find(|&s| s != home).unwrap();

    // Saturate the home gate's session bulkhead so ada spills.
    let cfg = FleetConfig::default();
    let mut holds = Vec::new();
    for k in 0..cfg.admission.max_sessions {
        // Only the home shard's tenants hold slots there.
        let hog = (0..256)
            .map(|t| format!("hog-{k}-{t}"))
            .find(|t| svc.home(t) == home)
            .unwrap();
        if let Ok(p) = svc.gate(home).unwrap().admit(&hog, 0) {
            holds.push(p);
        }
    }
    let report = {
        let fx = fixture();
        let placement = svc.admit("ada", 1).unwrap();
        assert!(placement.migrated, "a full home bulkhead must spill the session");
        assert_eq!(placement.shard, sibling);
        let service = StreamService::new(
            Arc::clone(&fx.bundle),
            fx.scenario.setting.region_detector(),
            fx.campaign.fs,
            placement.permit.configure(fast_config()),
        );
        service.run(Box::new(ReplaySource::from_campaign(&fx.campaign, 256))).unwrap()
    };
    assert!(report.stats.regions > 0, "the spilled session did real work");
    // The hosting shard's gauge saw the bytes; the home shard's did not.
    let sibling_ctrl = svc.gate(sibling).unwrap().controller();
    let sibling_peak = sibling_ctrl.lock().unwrap_or_else(|e| e.into_inner()).memory().peak();
    assert!(sibling_peak > 0, "the hosting shard never billed the session");
    let home_ctrl = svc.gate(home).unwrap().controller();
    let home_guard = home_ctrl.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(home_guard.memory().charged(), 0, "the fenced-out home holds bytes");
}
