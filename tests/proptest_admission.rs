//! Property tests: admission accounting balances for *any* tenant mix.
//!
//! For any random combination of tenant count, offer pattern, chunk
//! costs, session churn, limits, budget, and drain capacity:
//!
//! * the conservation identity holds at every tick —
//!   `offered == served + rejected + shed + queued + migrated` — and
//!   closes without the `queued` term once the queue is fully drained
//!   (`migrated` is zero for a standalone controller; the term keeps the
//!   identity aligned with the fleet-wide form);
//! * per-tenant books sum to the fleet books;
//! * the per-tenant and fleet session bulkheads are never exceeded, no
//!   matter how aggressively sessions are requested;
//! * charged bytes never exceed the budget, and a drained fleet holds
//!   zero bytes;
//! * the admission layer never panics.

use emoleak::admission::{AdmissionConfig, AdmissionController, BreakerConfig, CodelConfig};
use emoleak::exec::{derive_seed, splitmix64};
use proptest::prelude::*;

const TENANTS: [&str; 5] = ["ada", "bea", "cyd", "dot", "eve"];

fn conserves(ctrl: &AdmissionController) -> Result<(), String> {
    let s = ctrl.stats();
    prop_assert!(
        s.offered == s.served + s.rejected + s.shed + s.queued + s.migrated,
        "fleet books out of balance: {s:?}"
    );
    let mut per_tenant = (0u64, 0u64, 0u64, 0u64, 0u64);
    for (name, t) in ctrl.tenant_stats() {
        prop_assert!(
            t.offered >= t.served + t.rejected + t.shed + t.migrated,
            "tenant {} books out of balance: {:?}",
            name,
            t
        );
        per_tenant.0 += t.offered;
        per_tenant.1 += t.served;
        per_tenant.2 += t.rejected;
        per_tenant.3 += t.shed;
        per_tenant.4 += t.migrated;
    }
    prop_assert!(per_tenant.0 == s.offered, "tenant offers do not sum to the fleet's");
    prop_assert!(per_tenant.1 == s.served, "tenant serves do not sum to the fleet's");
    prop_assert!(per_tenant.2 == s.rejected, "tenant rejects do not sum to the fleet's");
    prop_assert!(per_tenant.3 == s.shed, "tenant sheds do not sum to the fleet's");
    prop_assert!(per_tenant.4 == s.migrated, "tenant migrations do not sum to the fleet's");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accounting_balances_for_any_tenant_mix(
        seed in 0u64..1_000_000,
        n_tenants in 1usize..=5,
        max_sessions in 1usize..=6,
        tenant_sessions in 1usize..=3,
        tenant_rps in 1u64..5_000,
        tenant_burst in 1u64..16,
        mem_budget in 256u64..16_384,
        trip_after in 1u32..8,
        ticks in 50u64..300,
        capacity in 0usize..6,
    ) {
        let cfg = AdmissionConfig {
            max_sessions,
            tenant_sessions,
            mem_budget,
            tenant_rps,
            tenant_burst,
            codel: CodelConfig { target: 5, interval: 30 },
            breaker: BreakerConfig { trip_after, recover_after: 6, cooldown: 3 },
        };
        let mut ctrl = AdmissionController::new(cfg.clone());
        let mut held: Vec<&str> = Vec::new();

        for now in 0..ticks {
            let mut stream = derive_seed(seed, now);
            let mut draw = || splitmix64(&mut stream);

            // Session churn: random open/close attempts; refusals are
            // part of the contract, not a failure.
            for _ in 0..draw() % 3 {
                let t = TENANTS[(draw() as usize) % n_tenants];
                if ctrl.open_session(t, now).is_ok() {
                    held.push(t);
                }
            }
            if draw() % 4 == 0 {
                if let Some(t) = held.pop() {
                    ctrl.close_session(t);
                }
            }

            // Random offers: 0..6 chunks, random tenant, random cost.
            for _ in 0..draw() % 6 {
                let t = TENANTS[(draw() as usize) % n_tenants];
                let cost = 16 + draw() % 512;
                let _ = ctrl.offer(t, cost, now);
            }

            ctrl.drain(now, capacity);
            ctrl.observe(now);
            conserves(&ctrl)?;
        }

        // Full drain: the identity must close with no queued term.
        let mut now = ticks;
        while ctrl.queue_depth() > 0 {
            ctrl.drain(now, 64);
            now += 1;
            prop_assert!(now < ticks + 10_000, "drain failed to make progress");
        }
        for t in held.drain(..) {
            ctrl.close_session(t);
        }
        conserves(&ctrl)?;

        let s = ctrl.stats();
        prop_assert_eq!(s.queued, 0);
        prop_assert_eq!(s.offered, s.served + s.rejected + s.shed + s.migrated);
        prop_assert!(s.mem_charged == 0, "drained fleet still holds bytes");
        prop_assert!(
            s.mem_peak <= cfg.mem_budget,
            "memory peak {} exceeded budget {}",
            s.mem_peak,
            cfg.mem_budget
        );
        prop_assert!(
            s.peak_sessions <= cfg.max_sessions,
            "fleet bulkhead exceeded: {} > {}",
            s.peak_sessions,
            cfg.max_sessions
        );
        for (name, t) in ctrl.tenant_stats() {
            prop_assert!(
                t.peak_sessions <= cfg.tenant_sessions,
                "tenant {} bulkhead exceeded: {} > {}",
                name,
                t.peak_sessions,
                cfg.tenant_sessions
            );
        }
    }
}
