//! End-to-end integration tests spanning every crate: corpus → channel →
//! features → classifiers, checking the paper's headline result *shapes*.

use emoleak::prelude::*;

fn tess(n: usize) -> CorpusSpec {
    CorpusSpec::tess().with_clips_per_cell(n)
}

#[test]
fn loudspeaker_attack_beats_random_guess_by_4x() {
    let scenario = AttackScenario::table_top(tess(10), DeviceProfile::oneplus_7t());
    let harvest = scenario.harvest().unwrap();
    let eval = evaluate_features(
        &harvest.features,
        ClassifierKind::Logistic,
        Protocol::Holdout8020,
        1,
    )
    .unwrap();
    let random = 1.0 / 7.0;
    assert!(
        eval.accuracy > 4.0 * random,
        "loudspeaker accuracy {:.2} should be > 4x random guess",
        eval.accuracy
    );
}

#[test]
fn table_top_detection_rate_matches_paper() {
    let harvest =
        AttackScenario::table_top(tess(6), DeviceProfile::oneplus_7t()).harvest().unwrap();
    assert!(
        harvest.detection_rate >= 0.9,
        "table-top detection {:.2} (paper: ~90%)",
        harvest.detection_rate
    );
}

#[test]
fn ear_speaker_detection_rate_matches_paper() {
    let harvest =
        AttackScenario::handheld(tess(10), DeviceProfile::oneplus_7t()).harvest().unwrap();
    assert!(
        harvest.detection_rate >= 0.35,
        "ear-speaker detection {:.2} (paper: >= 45%)",
        harvest.detection_rate
    );
    assert!(
        harvest.detection_rate < 0.9,
        "ear-speaker detection should be well below table-top"
    );
}

#[test]
fn loudspeaker_beats_ear_speaker_on_same_corpus() {
    let loud = AttackScenario::table_top(tess(12), DeviceProfile::oneplus_7t()).harvest().unwrap();
    let ear = AttackScenario::handheld(tess(12), DeviceProfile::oneplus_7t()).harvest().unwrap();
    let acc = |h: &HarvestResult| {
        evaluate_features(&h.features, ClassifierKind::Logistic, Protocol::Holdout8020, 3)
            .unwrap()
            .accuracy
    };
    let (la, ea) = (acc(&loud), acc(&ear));
    assert!(
        la > ea + 0.1,
        "loudspeaker {la:.2} should clearly beat ear speaker {ea:.2}"
    );
}

#[test]
fn tess_is_easier_than_savee() {
    let tess_acc = evaluate_features(
        &AttackScenario::table_top(tess(12), DeviceProfile::oneplus_7t())
            .harvest()
            .unwrap()
            .features,
        ClassifierKind::Logistic,
        Protocol::Holdout8020,
        5,
    )
    .unwrap()
    .accuracy;
    let savee_acc = evaluate_features(
        &AttackScenario::table_top(
            CorpusSpec::savee().with_clips_per_cell(12),
            DeviceProfile::oneplus_7t(),
        )
        .harvest()
        .unwrap()
        .features,
        ClassifierKind::Logistic,
        Protocol::Holdout8020,
        5,
    )
    .unwrap()
    .accuracy;
    assert!(
        tess_acc > savee_acc + 0.15,
        "TESS {tess_acc:.2} should dominate SAVEE {savee_acc:.2} (paper: 95% vs 54%)"
    );
}

#[test]
fn oneplus_7t_beats_pixel_5() {
    let acc = |d: DeviceProfile| {
        evaluate_features(
            &AttackScenario::table_top(tess(12), d).harvest().unwrap().features,
            ClassifierKind::Logistic,
            Protocol::Holdout8020,
            7,
        )
        .unwrap()
        .accuracy
    };
    let best = acc(DeviceProfile::oneplus_7t());
    let weakest = acc(DeviceProfile::pixel_5());
    assert!(
        best > weakest,
        "OnePlus 7T {best:.2} should beat Pixel 5 {weakest:.2} (paper Table V)"
    );
}

#[test]
fn sampling_cap_degrades_but_does_not_stop_the_attack() {
    let scenario = AttackScenario::table_top(tess(12), DeviceProfile::oneplus_7t());
    let study = SamplingCapStudy::run(&scenario, ClassifierKind::Logistic, 9).unwrap();
    assert!(
        study.accuracy_capped < study.accuracy_default + 0.02,
        "cap should not improve accuracy: {:.2} vs {:.2}",
        study.accuracy_capped,
        study.accuracy_default
    );
    assert!(
        study.attack_survives(3.0),
        "attack should survive the cap at well above random guess (paper: 80.1%)"
    );
}

#[test]
fn harvest_is_fully_deterministic() {
    let s = AttackScenario::table_top(tess(3), DeviceProfile::galaxy_s21());
    let a = s.harvest().unwrap();
    let b = s.harvest().unwrap();
    assert_eq!(a.features.features(), b.features.features());
    assert_eq!(a.spectrograms.len(), b.spectrograms.len());
}
