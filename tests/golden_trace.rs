//! Golden-trace regression tests: a reduced SAVEE-shaped campaign at a
//! fixed seed, rendered to canonical JSON and compared byte-for-byte
//! against fixtures under `tests/golden/`.
//!
//! These lock the *numbers* of the pipeline, not just its invariance: any
//! change to synthesis, the vibration channel, region detection, feature
//! extraction, fold assignment, or classifier training shifts the rendered
//! bytes and fails here. Intentional changes are re-blessed with
//!
//! ```text
//! EMOLEAK_BLESS=1 cargo test -p emoleak --test golden_trace
//! ```
//!
//! Rendering notes: `f64` values use Rust's `{}` Display — the shortest
//! string that round-trips the exact bits — so the fixture is a faithful,
//! byte-stable encoding of the f64s (the vendored serde stub is a no-op,
//! hence hand-rolled JSON).

use emoleak::prelude::*;
use emoleak_core::evaluate_features;
use std::path::PathBuf;

fn campaign() -> AttackScenario {
    AttackScenario::table_top(
        CorpusSpec::savee().with_clips_per_cell(2),
        DeviceProfile::oneplus_7t(),
    )
}

const CAMPAIGN_SEED_NOTE: &str =
    "SAVEE-shaped, 2 clips/cell, OnePlus 7T, table-top, default scenario seed";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// Compares `rendered` against the fixture, or rewrites the fixture when
/// `EMOLEAK_BLESS=1`.
fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("EMOLEAK_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); generate it with EMOLEAK_BLESS=1 cargo test",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "pipeline output diverged from {} — if the change is intentional, \
         re-bless with EMOLEAK_BLESS=1 cargo test -p emoleak --test golden_trace",
        path.display()
    );
}

fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "\"NaN\"".to_string()
    } else {
        format!("{v}")
    }
}

/// Canonical JSON for the per-emotion mean feature vectors of a harvest.
fn render_feature_summary(h: &HarvestResult) -> String {
    let d = h.features.dim();
    let names = h.features.class_names();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"note\": \"{CAMPAIGN_SEED_NOTE}\",\n"));
    out.push_str(&format!("  \"regions\": {},\n", h.features.len()));
    out.push_str(&format!("  \"detection_rate\": {},\n", render_f64(h.detection_rate)));
    out.push_str(&format!("  \"accel_fs\": {},\n", render_f64(h.accel_fs)));
    out.push_str(&format!("  \"spectrograms\": {},\n", h.spectrograms.len()));
    out.push_str("  \"per_emotion_mean_features\": {\n");
    for (class, name) in names.iter().enumerate() {
        let rows: Vec<&Vec<f64>> = h
            .features
            .features()
            .iter()
            .zip(h.features.labels())
            .filter(|(_, &l)| l == class)
            .map(|(r, _)| r)
            .collect();
        let mut means = Vec::with_capacity(d);
        for col in 0..d {
            // Index-ordered fold: the golden bytes must not depend on how
            // the harvest was scheduled.
            let sum = emoleak_exec::sum_ordered(rows.iter().map(|r| r[col]));
            means.push(if rows.is_empty() { f64::NAN } else { sum / rows.len() as f64 });
        }
        out.push_str(&format!(
            "    \"{name}\": [{}]{}\n",
            means.iter().map(|&m| render_f64(m)).collect::<Vec<_>>().join(", "),
            if class + 1 < names.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Canonical JSON for a classifier evaluation (accuracy + confusion counts).
fn render_evaluation(kind: &str, eval: &Evaluation) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"note\": \"{CAMPAIGN_SEED_NOTE}\",\n"));
    out.push_str(&format!("  \"classifier\": \"{kind}\",\n"));
    out.push_str(&format!("  \"accuracy\": {},\n", render_f64(eval.accuracy)));
    out.push_str(&format!(
        "  \"classes\": [{}],\n",
        eval.confusion
            .class_names()
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"confusion\": [\n");
    let counts = eval.confusion.counts();
    for (i, row) in counts.iter().enumerate() {
        out.push_str(&format!(
            "    [{}]{}\n",
            row.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", "),
            if i + 1 < counts.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
fn golden_feature_summary() {
    let h = campaign().harvest().unwrap();
    check_golden("savee_feature_summary.json", &render_feature_summary(&h));
}

#[test]
fn golden_logistic_confusion() {
    let h = campaign().harvest().unwrap();
    let eval =
        evaluate_features(&h.features, ClassifierKind::Logistic, Protocol::KFold(5), 0x90_1D)
            .unwrap();
    check_golden("savee_logistic_confusion.json", &render_evaluation("Logistic", &eval));
}

#[test]
fn golden_handheld_feature_summary() {
    // The handheld path exercises the continuous-session recorder (posture
    // drift + session-level fault streams) — its own golden fixture.
    let h = AttackScenario::handheld(
        CorpusSpec::savee().with_clips_per_cell(2),
        DeviceProfile::oneplus_7t(),
    )
    .harvest()
    .unwrap();
    check_golden("savee_handheld_feature_summary.json", &render_feature_summary(&h));
}
