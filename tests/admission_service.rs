//! Integration: the admission layer in front of *real* streaming sessions.
//!
//! A [`FleetGate`] admits tenants and hands each a [`SessionPermit`];
//! `permit.configure(..)` threads the fleet's shared byte gauge and level
//! cap into the session's `StreamConfig`. These tests pin the contract
//! end to end:
//!
//! * an admitted session's queues bill the fleet budget (the shared gauge
//!   sees real bytes, and a finished fleet holds zero);
//! * a tripped fleet cap actually degrades every session's classify rung,
//!   and a lifted cap restores full quality — without touching the
//!   sessions themselves;
//! * permits hold bulkhead slots for their lifetime and release them on
//!   drop;
//! * gated runs stay byte-identical across worker counts.

use emoleak::admission::{AdmissionConfig, FleetGate};
use emoleak::prelude::*;
use emoleak::stream::{ReplaySource, StreamConfig, StreamReport, StreamService};
use emoleak_exec::with_threads;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

struct Fixture {
    bundle: Arc<ModelBundle>,
    campaign: RecordedCampaign,
    scenario: AttackScenario,
}

/// One trained bundle + recorded campaign backs every test: the property
/// under test is the admission wiring, not the model.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(2),
            DeviceProfile::oneplus_7t(),
        );
        let harvest = scenario.harvest().unwrap();
        let bundle = Arc::new(ModelBundle::train(&harvest, 7).unwrap());
        let campaign = scenario.record_windows().unwrap();
        Fixture { bundle, campaign, scenario }
    })
}

fn fast_config() -> StreamConfig {
    StreamConfig { latency_override: Some([Duration::ZERO; 4]), ..StreamConfig::default() }
}

fn run_gated(gate: &FleetGate, tenant: &str, now: u64) -> StreamReport {
    let fx = fixture();
    let permit = gate.admit(tenant, now).unwrap();
    let service = StreamService::new(
        Arc::clone(&fx.bundle),
        fx.scenario.setting.region_detector(),
        fx.campaign.fs,
        permit.configure(fast_config()),
    );
    service.run(Box::new(ReplaySource::from_campaign(&fx.campaign, 256))).unwrap()
}

fn labels(report: &StreamReport) -> Vec<(usize, usize, usize, Option<usize>)> {
    report.emissions.iter().map(|e| (e.window, e.start, e.end, e.verdict.label)).collect()
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn gated_sessions_bill_the_fleet_budget_and_release_it() {
    let gate = FleetGate::new(AdmissionConfig::default());
    let report = run_gated(&gate, "ada", 0);
    assert!(report.stats.regions > 0, "the gated session did real work");

    let ctrl = gate.controller();
    let gauge = locked(&ctrl).memory();
    assert!(gauge.peak() > 0, "session queues never billed the fleet gauge");
    assert_eq!(gauge.charged(), 0, "finished fleet still holds bytes");
}

#[test]
fn fleet_cap_degrades_and_restores_every_session() {
    let gate = FleetGate::new(AdmissionConfig::default());

    // Healthy fleet: full-quality rungs.
    let healthy = run_gated(&gate, "ada", 0);
    assert!(
        healthy.stats.level_counts[..3].iter().any(|&n| n > 0),
        "healthy fleet should classify above energy-only: {:?}",
        healthy.stats.level_counts
    );

    // A saturated fleet caps every session at energy-only — the session
    // config is untouched; only the shared cap moved.
    {
        let ctrl = gate.controller();
        locked(&ctrl).level_cap().set(InferenceLevel::EnergyOnly);
    }
    let capped = run_gated(&gate, "bea", 1);
    assert_eq!(capped.stats.level_counts[0], 0, "CNN ran under a saturated fleet");
    assert_eq!(capped.stats.level_counts[1], 0, "int8 CNN ran under a saturated fleet");
    assert_eq!(capped.stats.level_counts[2], 0, "classical ran under a saturated fleet");
    assert!(capped.stats.level_counts[3] > 0, "energy-only should carry the load");
    assert_eq!(
        capped.stats.regions, healthy.stats.regions,
        "the cap changes quality, not coverage"
    );

    // Recovery lifts the cap; quality returns.
    {
        let ctrl = gate.controller();
        locked(&ctrl).level_cap().set(InferenceLevel::Cnn);
    }
    let recovered = run_gated(&gate, "cyd", 2);
    assert_eq!(labels(&recovered), labels(&healthy), "recovery must restore full quality");
}

#[test]
fn permits_hold_slots_for_the_session_lifetime() {
    let gate = FleetGate::new(AdmissionConfig {
        max_sessions: 1,
        tenant_sessions: 1,
        ..AdmissionConfig::default()
    });
    {
        let permit = gate.admit("ada", 0).unwrap();
        // While the permit lives the fleet is full.
        assert!(gate.admit("bea", 0).is_err(), "bulkhead admitted past its limit");
        drop(permit);
    }
    // Dropping the permit released the slot.
    let _second = gate.admit("bea", 1).unwrap();
}

#[test]
fn gated_runs_are_byte_identical_across_worker_counts() {
    let mut per_thread_count = Vec::new();
    for threads in [1usize, 4] {
        per_thread_count.push(with_threads(threads, || {
            let gate = FleetGate::new(AdmissionConfig::default());
            labels(&run_gated(&gate, "ada", 0))
        }));
    }
    assert_eq!(
        per_thread_count[0], per_thread_count[1],
        "worker count changed a gated session's labels"
    );
}
