//! Property tests: random fault profiles through the batch pipeline AND
//! the streaming service — neither may ever panic, fault accounting must
//! agree between the two paths, and the service's chunk/window/region
//! accounting must balance for any input.

use emoleak::core::online::extract_window;
use emoleak::prelude::*;
use emoleak::stream::{FlakySource, ReplaySource, StreamConfig, StreamService};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn preset(which: usize) -> FaultProfile {
    match which {
        0 => FaultProfile::handheld_walking(),
        1 => FaultProfile::background_doze(),
        _ => FaultProfile::cheap_imu(),
    }
}

fn corpus() -> CorpusSpec {
    CorpusSpec::tess().with_clips_per_cell(1)
}

/// One classical bundle trained on the clean campaign backs every case:
/// the property under test is the service's totality, not the model.
fn bundle() -> Arc<ModelBundle> {
    static BUNDLE: OnceLock<Arc<ModelBundle>> = OnceLock::new();
    Arc::clone(BUNDLE.get_or_init(|| {
        let clean = AttackScenario::table_top(corpus(), DeviceProfile::oneplus_7t());
        Arc::new(ModelBundle::train(&clean.harvest().unwrap(), 7).unwrap())
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any preset at any severity, replayed through a flaky transport:
    /// batch and stream both survive, and their accounting lines up.
    #[test]
    fn random_faults_break_neither_batch_nor_stream(
        which in 0usize..3,
        severity in 0.0f64..8.0,
        fail_rate in 0.0f64..0.6,
        seed in 0u64..1_000,
        chunk_len in 64usize..512,
    ) {
        let scenario = AttackScenario::table_top(corpus(), DeviceProfile::oneplus_7t())
            .with_faults(preset(which).with_severity(severity));

        // Batch path: never panics; a campaign degraded below
        // trainability is a typed error, not a crash. When it harvests,
        // its fault totals must match the recording's.
        let campaign = scenario.record_windows().unwrap();
        if let Ok(h) = scenario.harvest() {
            prop_assert_eq!(h.faults, campaign.faults);
        }

        // Streaming path over the same faulted recording.
        let config = StreamConfig {
            latency_override: Some([Duration::ZERO; 4]),
            ..StreamConfig::default()
        };
        let capacity = config.queue_capacity;
        let service = StreamService::new(
            bundle(),
            scenario.setting.region_detector(),
            campaign.fs,
            config,
        );
        let source = FlakySource::new(
            ReplaySource::from_campaign(&campaign, chunk_len),
            fail_rate,
            seed,
        );
        let report = service.run(Box::new(source)).unwrap();

        // Accounting balances for any input.
        let s = &report.stats;
        prop_assert_eq!(s.chunks_processed + s.dropped_chunks, s.chunks_ingested);
        prop_assert!(s.max_chunk_depth <= capacity, "queue bound");
        prop_assert!(s.max_region_depth <= capacity, "queue bound");
        prop_assert_eq!(s.windows, campaign.windows.len() as u64);
        prop_assert_eq!(s.panic_restarts, 0);
        prop_assert_eq!(s.watchdog_fires, 0);

        // Region-for-region agreement with batch extraction (the source is
        // lossless under `Block`, so the streams must match exactly).
        let detector = scenario.setting.region_detector();
        let batch_regions: u64 = campaign
            .windows
            .iter()
            .map(|(w, _t, l)| extract_window(w, campaign.fs, &detector, None, *l).rows.len() as u64)
            .sum();
        prop_assert_eq!(s.regions, batch_regions);

        // Retry accounting: recoveries are logged iff the transport failed.
        prop_assert_eq!(s.retries > 0, report.log.source_recoveries() > 0);
        if fail_rate == 0.0 {
            prop_assert_eq!(s.retries, 0);
        }
    }
}
