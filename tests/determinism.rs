//! Worker-count invariance: the whole attack pipeline must produce
//! byte-identical results whether it runs on 1, 2 or 8 threads.
//!
//! This is the contract the `emoleak-exec` engine is built around: per-clip
//! RNG streams derived from `(campaign_seed, clip_index)`, index-ordered
//! result collection, and index-ordered float folds. If any stage ever
//! consumed a shared RNG from inside a parallel region — or reduced floats
//! in scheduling order — these tests would catch it as a bit-level diff
//! between thread counts.

use emoleak::prelude::*;
use emoleak_exec::with_threads;

fn feature_bits(h: &HarvestResult) -> Vec<Vec<u64>> {
    h.features
        .features()
        .iter()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn spectrogram_bits(h: &HarvestResult) -> Vec<(usize, Vec<u64>)> {
    h.spectrograms
        .iter()
        .map(|s| (s.label, s.pixels.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

fn assert_harvests_identical(a: &HarvestResult, b: &HarvestResult, what: &str) {
    assert_eq!(feature_bits(a), feature_bits(b), "{what}: feature matrix");
    assert_eq!(a.features.labels(), b.features.labels(), "{what}: labels");
    assert_eq!(spectrogram_bits(a), spectrogram_bits(b), "{what}: spectrograms");
    assert_eq!(
        a.detection_rate.to_bits(),
        b.detection_rate.to_bits(),
        "{what}: detection rate"
    );
    assert_eq!(a.accel_fs.to_bits(), b.accel_fs.to_bits(), "{what}: accel fs");
    assert_eq!(a.faults, b.faults, "{what}: fault aggregate");
    assert_eq!(a.clip_faults, b.clip_faults, "{what}: per-clip faults");
}

#[test]
fn table_top_harvest_is_worker_count_invariant() {
    let scenario = || {
        AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(2),
            DeviceProfile::oneplus_7t(),
        )
        .with_faults(FaultProfile::handheld_walking())
    };
    let baseline = with_threads(1, || scenario().harvest().unwrap());
    for n in [2, 8] {
        let h = with_threads(n, || scenario().harvest().unwrap());
        assert_harvests_identical(&baseline, &h, &format!("table-top, {n} threads"));
    }
}

#[test]
fn handheld_harvest_is_worker_count_invariant() {
    let scenario = || {
        AttackScenario::handheld(
            CorpusSpec::savee().with_clips_per_cell(2),
            DeviceProfile::oneplus_7t(),
        )
    };
    let baseline = with_threads(1, || scenario().harvest().unwrap());
    for n in [2, 8] {
        let h = with_threads(n, || scenario().harvest().unwrap());
        assert_harvests_identical(&baseline, &h, &format!("handheld, {n} threads"));
    }
}

#[test]
fn evaluation_tables_are_worker_count_invariant() {
    // One harvest (already proven invariant above), then the evaluation
    // stack — parallel k-fold plus the parallel classifier grid — at three
    // thread counts. Accuracy must match to the bit, and the confusion
    // matrices must match exactly.
    let harvest = with_threads(1, || {
        AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(3),
            DeviceProfile::oneplus_7t(),
        )
        .harvest()
        .unwrap()
    });
    let kinds = [ClassifierKind::Logistic, ClassifierKind::MultiClass];
    let run = || {
        evaluate_feature_grid(&harvest.features, &kinds, Protocol::KFold(5), 0xD5)
            .into_iter()
            .map(|(kind, result)| {
                let eval = result.unwrap();
                (kind, eval.accuracy.to_bits(), eval.confusion.counts().to_vec())
            })
            .collect::<Vec<_>>()
    };
    let baseline = with_threads(1, run);
    for n in [2, 8] {
        let table = with_threads(n, run);
        assert_eq!(baseline, table, "evaluation grid at {n} threads");
    }
}

#[test]
fn streaming_labels_are_worker_count_invariant() {
    // The streaming service itself runs fixed supervised stages, but its
    // inputs — the recorded campaign (parallel stage 1) and the trained
    // bundle (parallel harvest) — come off the pool. Streamed labels must
    // not depend on how many workers produced those inputs.
    use emoleak::stream::{ReplaySource, StreamConfig, StreamService};
    use std::sync::Arc;
    use std::time::Duration;

    let run = || {
        let scenario = AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(1),
            DeviceProfile::oneplus_7t(),
        )
        .with_faults(FaultProfile::cheap_imu());
        let campaign = scenario.record_windows().unwrap();
        let bundle = Arc::new(ModelBundle::train(&scenario.harvest().unwrap(), 7).unwrap());
        let service = StreamService::new(
            bundle,
            scenario.setting.region_detector(),
            campaign.fs,
            StreamConfig {
                latency_override: Some([Duration::ZERO; 4]),
                ..StreamConfig::default()
            },
        );
        let report = service
            .run(Box::new(ReplaySource::from_campaign(&campaign, 256)))
            .unwrap();
        report
            .emissions
            .iter()
            .map(|e| (e.window, e.start, e.end, e.verdict.label))
            .collect::<Vec<_>>()
    };
    let baseline = with_threads(1, run);
    for n in [2, 8] {
        assert_eq!(baseline, with_threads(n, run), "streamed labels at {n} threads");
    }
}
