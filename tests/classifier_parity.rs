//! Integration tests for the classifier suite on harvested vibration
//! features: every classifier family must (a) run end to end, (b) beat
//! random guessing on the easy setting, and (c) produce valid confusion
//! matrices.

use emoleak::prelude::*;

fn harvest() -> HarvestResult {
    AttackScenario::table_top(
        CorpusSpec::tess().with_clips_per_cell(8),
        DeviceProfile::oneplus_7t(),
    )
    .harvest()
    .unwrap()
}

#[test]
fn all_classical_classifiers_beat_random_guess() {
    let h = harvest();
    let random = 1.0 / 7.0;
    for kind in [
        ClassifierKind::Logistic,
        ClassifierKind::MultiClass,
        ClassifierKind::Lmt,
        ClassifierKind::RandomForest,
        ClassifierKind::RandomSubspace,
    ] {
        let eval = evaluate_features(&h.features, kind, Protocol::Holdout8020, 1).unwrap();
        assert!(
            eval.accuracy > 2.0 * random,
            "{} accuracy {:.2} should beat 2x random",
            kind.display_name(),
            eval.accuracy
        );
        assert_eq!(eval.confusion.total(), eval.confusion.counts().iter().flatten().sum());
    }
}

#[test]
fn kfold_and_holdout_agree_roughly() {
    let h = harvest();
    let hold = evaluate_features(&h.features, ClassifierKind::Logistic, Protocol::Holdout8020, 2)
        .unwrap();
    let fold =
        evaluate_features(&h.features, ClassifierKind::Logistic, Protocol::KFold(10), 2).unwrap();
    assert!(
        (hold.accuracy - fold.accuracy).abs() < 0.2,
        "holdout {:.2} vs 10-fold {:.2} should be consistent",
        hold.accuracy,
        fold.accuracy
    );
}

#[test]
fn feature_cnn_trains_and_learns() {
    // Explicit small config (no env mutation — tests run concurrently).
    use emoleak::ml::nn::{CnnClassifier, TrainConfig};
    use emoleak::ml::Classifier;
    let h = harvest();
    let (mut train, mut test) = h.features.stratified_split(0.8, 3);
    let params = train.fit_normalization();
    test.apply_normalization(&params);
    let cfg = TrainConfig { epochs: 30, batch_size: 16, learning_rate: 3e-3, seed: 3 };
    let mut cnn = CnnClassifier::new(cfg, 3).with_width_divisor(8);
    cnn.fit(train.features(), train.labels(), train.num_classes());
    let correct = test
        .features()
        .iter()
        .zip(test.labels())
        .filter(|(x, &y)| cnn.predict(x) == y)
        .count();
    let acc = correct as f64 / test.len() as f64;
    assert!(acc > 2.0 / 7.0, "CNN accuracy {acc:.2} should beat 2x random guess");
}

#[test]
fn spectrogram_cnn_trains_on_harvested_images() {
    use emoleak::ml::nn::{spectrogram_cnn_scaled, Tensor, TrainConfig};
    let h = harvest();
    assert!(h.spectrograms.len() >= 50);
    let side = emoleak::features::spectrogram::IMAGE_SIZE;
    let tensors: Vec<Tensor> = h
        .spectrograms
        .iter()
        .map(|s| Tensor::from_shape(&[1, side, side], s.pixels.clone()))
        .collect();
    let labels: Vec<usize> = h.spectrograms.iter().map(|s| s.label).collect();
    let split = tensors.len() * 4 / 5;
    let mut net = spectrogram_cnn_scaled(7, 4, 16);
    let cfg = TrainConfig { epochs: 8, batch_size: 16, learning_rate: 3e-3, seed: 4 };
    let history = net.fit(
        &tensors[..split],
        &labels[..split],
        &tensors[split..],
        &labels[split..],
        &cfg,
    );
    // Figure 7 history: loss decreases and accuracy beats random guess.
    assert_eq!(history.epochs(), 8);
    assert!(history.train_loss.last().unwrap() < &history.train_loss[0]);
    assert!(
        *history.train_accuracy.last().unwrap() > 1.0 / 7.0,
        "spectrogram CNN should beat random guess on train"
    );
}
