//! Property-based tests on the cross-crate invariants of the pipeline.

use emoleak::dsp::{fft::Fft, stats, Complex};
use emoleak::phone::accel::AccelTrace;
use emoleak::phone::FaultProfile;
use emoleak::features::regions::{detection_rate, merge_regions, RegionDetector};
use emoleak::features::{extract_all, time_domain};
use emoleak::ml::eval::ConfusionMatrix;
use emoleak::ml::linalg::softmax_inplace;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT followed by inverse FFT is the identity for any signal.
    #[test]
    fn fft_round_trip(values in prop::collection::vec(-100.0f64..100.0, 64)) {
        let fft = Fft::new(64);
        let mut buf: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (z, &v) in buf.iter().zip(&values) {
            prop_assert!((z.re - v).abs() < 1e-9);
            prop_assert!(z.im.abs() < 1e-9);
        }
    }

    /// Parseval: energy is preserved between time and frequency domains.
    #[test]
    fn fft_preserves_energy(values in prop::collection::vec(-10.0f64..10.0, 128)) {
        let fft = Fft::new(128);
        let mut buf: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        fft.forward(&mut buf);
        let time: f64 = values.iter().map(|v| v * v).sum();
        let freq: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    }

    /// Basic statistics respect their defining inequalities.
    #[test]
    fn stats_order_invariants(values in prop::collection::vec(-1000.0f64..1000.0, 2..200)) {
        let min = stats::min(&values);
        let max = stats::max(&values);
        let mean = stats::mean(&values);
        let q25 = stats::quantile(&values, 0.25);
        let q50 = stats::quantile(&values, 0.50);
        prop_assert!(min <= q25 + 1e-12);
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= max + 1e-12);
        prop_assert!(min <= mean && mean <= max);
        prop_assert!(stats::variance(&values) >= 0.0);
    }

    /// The 12 time-domain features are translation-covariant in the right
    /// slots: shifting the signal shifts min/mean/max/quantiles and leaves
    /// std-dev/variance/range unchanged.
    #[test]
    fn time_features_translation(values in prop::collection::vec(-10.0f64..10.0, 16..128),
                                 shift in -5.0f64..5.0) {
        let base = time_domain::extract(&values);
        let shifted_vals: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let shifted = time_domain::extract(&shifted_vals);
        prop_assert!((shifted[0] - base[0] - shift).abs() < 1e-9); // min
        prop_assert!((shifted[2] - base[2] - shift).abs() < 1e-9); // mean
        prop_assert!((shifted[3] - base[3]).abs() < 1e-9);         // std-dev
        prop_assert!((shifted[5] - base[5]).abs() < 1e-9);         // range
    }

    /// Full 24-feature extraction never panics and yields a fixed-width row.
    #[test]
    fn extract_all_is_total(values in prop::collection::vec(-1.0f64..1.0, 0..600)) {
        let row = extract_all(&values, 420.0);
        prop_assert_eq!(row.len(), 24);
    }

    /// Region detection output is always sorted, disjoint and in bounds.
    #[test]
    fn regions_are_sorted_disjoint(values in prop::collection::vec(-0.2f64..0.2, 50..800)) {
        let det = RegionDetector::table_top();
        let regions = det.detect(&values, 420.0);
        let mut prev_end = 0usize;
        for (s, e) in regions {
            prop_assert!(s >= prev_end);
            prop_assert!(s < e);
            prop_assert!(e <= values.len());
            prev_end = e;
        }
    }

    /// Merging regions never increases the count and preserves coverage.
    #[test]
    fn merge_preserves_coverage(starts in prop::collection::vec(0usize..1000, 1..20),
                                gap in 0usize..50) {
        let mut regions: Vec<(usize, usize)> = starts
            .iter()
            .map(|&s| (s, s + 10))
            .collect();
        regions.sort_unstable();
        let merged = merge_regions(&regions, gap);
        prop_assert!(merged.len() <= regions.len());
        // Every original region is inside some merged region.
        for &(s, e) in &regions {
            prop_assert!(merged.iter().any(|&(ms, me)| ms <= s && e <= me));
        }
    }

    /// Detection rate is always a fraction (or NaN for empty truth).
    #[test]
    fn detection_rate_is_fraction(truth in prop::collection::vec((0usize..500, 1usize..100), 1..10)) {
        let spans: Vec<(usize, usize)> = truth.iter().map(|&(s, l)| (s, s + l)).collect();
        let rate = detection_rate(&spans, &spans); // self-detection = 100%
        prop_assert!((rate - 1.0).abs() < 1e-12);
        let none = detection_rate(&[], &spans);
        prop_assert_eq!(none, 0.0);
    }

    /// Softmax output is always a probability distribution.
    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-500.0f64..500.0, 1..20)) {
        let mut z = logits;
        softmax_inplace(&mut z);
        prop_assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(z.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Confusion-matrix accuracy equals the diagonal mass.
    #[test]
    fn confusion_accuracy_is_diagonal_mass(pairs in prop::collection::vec((0usize..4, 0usize..4), 1..100)) {
        let names: Vec<String> = (0..4).map(|i| format!("c{i}")).collect();
        let mut cm = ConfusionMatrix::new(names);
        let mut diag = 0usize;
        for &(t, p) in &pairs {
            cm.record(t, p);
            if t == p {
                diag += 1;
            }
        }
        prop_assert!((cm.accuracy() - diag as f64 / pairs.len() as f64).abs() < 1e-12);
    }

    /// Fault injection is total and structure-preserving: for any finite
    /// input trace and any preset profile at any severity, the faulted
    /// trace has non-decreasing timestamps, a bounded sample count (each
    /// survivor duplicated at most once) and only finite values.
    #[test]
    fn fault_injection_structural_invariants(
        samples in prop::collection::vec(-0.5f64..0.5, 1..600),
        which in 0usize..3,
        severity in 0.0f64..6.0,
        seed in 0u64..1000,
    ) {
        let n = samples.len();
        let trace = AccelTrace { samples, fs: 420.0 };
        let profile = match which {
            0 => FaultProfile::handheld_walking(),
            1 => FaultProfile::background_doze(),
            _ => FaultProfile::cheap_imu(),
        }
        .with_severity(severity);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (timed, log) = profile.apply(&trace, &mut rng);
        prop_assert_eq!(timed.samples.len(), timed.timestamps_s.len());
        prop_assert!(timed.samples.len() <= 2 * n);
        prop_assert!(timed.samples.iter().all(|v| v.is_finite()));
        prop_assert!(timed.timestamps_s.iter().all(|t| t.is_finite()));
        prop_assert!(timed.timestamps_s.windows(2).all(|w| w[1] >= w[0]));
        // The log accounts for exactly the events that changed the count:
        // drops (delivery + doze) and throttle decimation remove samples,
        // duplicates add them.
        prop_assert_eq!(
            timed.samples.len() as i64,
            n as i64 + log.duplicated as i64 - log.dropped as i64 - log.throttled as i64
        );
    }

    /// A saturated channel never delivers a sample beyond its full scale,
    /// even with motion bursts riding on top of the signal.
    #[test]
    fn saturation_never_exceeds_full_scale(
        samples in prop::collection::vec(-10.0f64..10.0, 16..400),
        full_scale in 0.01f64..1.0,
        burst_amp in 0.0f64..5.0,
        seed in 0u64..1000,
    ) {
        let trace = AccelTrace { samples, fs: 420.0 };
        let profile = FaultProfile {
            full_scale: Some(full_scale),
            burst_rate_hz: 2.0,
            burst_amp,
            ..FaultProfile::clean()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (timed, log) = profile.apply(&trace, &mut rng);
        prop_assert!(timed.samples.iter().all(|v| v.abs() <= full_scale + 1e-12));
        // Input deliberately overdrives the rail, so clipping must engage.
        prop_assert!(log.clipped > 0);
    }

    /// Severity zero turns every preset into a byte-identical no-op with a
    /// clean fault log.
    #[test]
    fn zero_severity_is_byte_identical_noop(
        samples in prop::collection::vec(-1.0f64..1.0, 1..400),
        which in 0usize..3,
        seed in 0u64..1000,
    ) {
        let trace = AccelTrace { samples: samples.clone(), fs: 420.0 };
        let profile = match which {
            0 => FaultProfile::handheld_walking(),
            1 => FaultProfile::background_doze(),
            _ => FaultProfile::cheap_imu(),
        }
        .with_severity(0.0);
        prop_assert!(profile.is_noop());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (timed, log) = profile.apply(&trace, &mut rng);
        prop_assert!(log.is_clean());
        prop_assert_eq!(timed.samples, samples.clone());
        // Byte-identical to the untouched regular-grid trace.
        let untouched = emoleak::phone::TimedTrace::from_regular(&trace);
        prop_assert_eq!(timed.timestamps_s, untouched.timestamps_s);
    }

    /// Faulted recording through the public session API is total: the
    /// regularized trace keeps the nominal rate and only finite samples,
    /// for any severity.
    #[test]
    fn faulted_recording_is_total(
        audio in prop::collection::vec(-0.3f64..0.3, 400..4000),
        severity in 0.0f64..8.0,
        seed in 0u64..1000,
    ) {
        use emoleak::phone::session::RecordingSession;
        use emoleak::phone::{DeviceProfile, Placement, SpeakerKind};
        let session = RecordingSession::new(
            &DeviceProfile::oneplus_7t(),
            SpeakerKind::Loudspeaker,
            Placement::TableTop,
        )
        .with_faults(FaultProfile::handheld_walking().with_severity(severity));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (trace, _log) = session.record_clip_logged(&audio, 8000.0, &mut rng);
        prop_assert!(trace.samples.iter().all(|v| v.is_finite()));
        prop_assert!((trace.fs - session.delivered_rate()).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Durability-layer invariants: corruption is detected, never absorbed.
// ---------------------------------------------------------------------------

use emoleak::durable::{
    decode_container, encode_container, write_atomic_with, CampaignState, DurableError,
    FaultPlan, FaultVfs, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};

/// Builds an arbitrary campaign state from generated ingredients: an id of
/// `id_len` chars, a fingerprint, and `raw` split into opaque payloads.
fn mk_state(id_len: usize, fingerprint: u64, raw: &[u32]) -> CampaignState {
    let id: String = "campaign_id_".chars().take(id_len).collect();
    let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
    let payloads: Vec<Vec<u8>> = bytes.chunks(17).map(|c| c.to_vec()).collect();
    CampaignState { id, fingerprint, payloads }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A snapshot container truncated at *any* byte refuses to decode with
    /// a typed error — never a panic, never a partial state.
    #[test]
    fn truncated_snapshot_never_decodes(
        id_len in 0usize..13,
        fingerprint in 0u64..u64::MAX,
        raw in prop::collection::vec(0u32..256, 0..160),
        cut in 0.0f64..1.0,
    ) {
        let state = mk_state(id_len, fingerprint, &raw);
        let encoded = encode_container(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &state.encode());
        let keep = ((encoded.len() as f64) * cut) as usize; // strictly < len
        let err = decode_container(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &encoded[..keep], "t.bin")
            .expect_err("a truncated container must not decode");
        prop_assert!(
            matches!(
                err,
                DurableError::Corrupt { .. }
                    | DurableError::Format { .. }
                    | DurableError::Version { .. }
            ),
            "unexpected error class: {err}"
        );
    }

    /// Flipping *any* single bit of a snapshot container yields either a
    /// typed error or — when the flip lands somewhere the format tolerates,
    /// e.g. turning the version into an older number — the exact original
    /// state. Nothing in between: no silently altered payloads.
    #[test]
    fn bit_flipped_snapshot_detects_or_round_trips(
        id_len in 0usize..13,
        fingerprint in 0u64..u64::MAX,
        raw in prop::collection::vec(0u32..256, 0..160),
        pos in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let state = mk_state(id_len, fingerprint, &raw);
        let mut encoded = encode_container(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &state.encode());
        let idx = ((encoded.len() as f64) * pos) as usize % encoded.len();
        encoded[idx] ^= 1u8 << bit;
        match decode_container(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &encoded, "t.bin") {
            Err(
                DurableError::Corrupt { .. }
                | DurableError::Format { .. }
                | DurableError::Version { .. },
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            Ok(payload) => {
                let decoded = CampaignState::decode(&payload)
                    .expect("an accepted container payload must decode");
                prop_assert!(
                    decoded == state,
                    "a bit flip survived the checksum AND changed the state"
                );
            }
        }
    }

    /// `CampaignState::decode` is total over arbitrary bytes: typed error
    /// or a value, never a panic.
    #[test]
    fn campaign_state_decode_is_total(raw in prop::collection::vec(0u32..256, 0..256)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        match CampaignState::decode(&bytes) {
            Ok(state) => prop_assert!(state.encode() == bytes, "decode/encode must agree"),
            Err(DurableError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Atomic replace under the disk nemesis: whatever combination of
    /// injected EIO, short writes, and a filling disk hits the staging
    /// path, the destination file is *never* torn or partially visible —
    /// after every attempt it reads as exactly the last successfully
    /// committed contents, byte for byte.
    #[test]
    fn atomic_replace_is_never_torn_under_disk_faults(
        seed in 0u64..1000,
        eio_ppm in 0u32..400_000,
        short_write_ppm in 0u32..400_000,
        byte_budget in 64u64..4096,
        writes in prop::collection::vec(prop::collection::vec(0u32..256, 1..200), 1..8),
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "emoleak-atomic-prop-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let path = dir.join("state.bin");
        let vfs = FaultVfs::new(FaultPlan {
            byte_budget,
            eio_ppm,
            short_write_ppm,
            ..FaultPlan::quiet(seed)
        });
        // The committed baseline is written outside the nemesis: it
        // models state that was already durable before the disk turned.
        let mut committed: Vec<u8> = b"the previously committed state".to_vec();
        std::fs::write(&path, &committed).expect("seed the destination");
        for w in &writes {
            let next: Vec<u8> = w.iter().map(|&b| b as u8).collect();
            match write_atomic_with(&path, &next, &vfs) {
                Ok(()) => committed = next,
                Err(DurableError::Io { .. }) => {} // typed refusal; nothing replaced
                Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            }
            let on_disk = std::fs::read(&path).expect("destination must stay readable");
            prop_assert!(
                on_disk == committed,
                "destination torn or partially visible after a faulted replace"
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
