//! Property-based tests on the cross-crate invariants of the pipeline.

use emoleak::dsp::{fft::Fft, stats, Complex};
use emoleak::features::regions::{detection_rate, merge_regions, RegionDetector};
use emoleak::features::{extract_all, time_domain};
use emoleak::ml::eval::ConfusionMatrix;
use emoleak::ml::linalg::softmax_inplace;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT followed by inverse FFT is the identity for any signal.
    #[test]
    fn fft_round_trip(values in prop::collection::vec(-100.0f64..100.0, 64)) {
        let fft = Fft::new(64);
        let mut buf: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (z, &v) in buf.iter().zip(&values) {
            prop_assert!((z.re - v).abs() < 1e-9);
            prop_assert!(z.im.abs() < 1e-9);
        }
    }

    /// Parseval: energy is preserved between time and frequency domains.
    #[test]
    fn fft_preserves_energy(values in prop::collection::vec(-10.0f64..10.0, 128)) {
        let fft = Fft::new(128);
        let mut buf: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        fft.forward(&mut buf);
        let time: f64 = values.iter().map(|v| v * v).sum();
        let freq: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    }

    /// Basic statistics respect their defining inequalities.
    #[test]
    fn stats_order_invariants(values in prop::collection::vec(-1000.0f64..1000.0, 2..200)) {
        let min = stats::min(&values);
        let max = stats::max(&values);
        let mean = stats::mean(&values);
        let q25 = stats::quantile(&values, 0.25);
        let q50 = stats::quantile(&values, 0.50);
        prop_assert!(min <= q25 + 1e-12);
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= max + 1e-12);
        prop_assert!(min <= mean && mean <= max);
        prop_assert!(stats::variance(&values) >= 0.0);
    }

    /// The 12 time-domain features are translation-covariant in the right
    /// slots: shifting the signal shifts min/mean/max/quantiles and leaves
    /// std-dev/variance/range unchanged.
    #[test]
    fn time_features_translation(values in prop::collection::vec(-10.0f64..10.0, 16..128),
                                 shift in -5.0f64..5.0) {
        let base = time_domain::extract(&values);
        let shifted_vals: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let shifted = time_domain::extract(&shifted_vals);
        prop_assert!((shifted[0] - base[0] - shift).abs() < 1e-9); // min
        prop_assert!((shifted[2] - base[2] - shift).abs() < 1e-9); // mean
        prop_assert!((shifted[3] - base[3]).abs() < 1e-9);         // std-dev
        prop_assert!((shifted[5] - base[5]).abs() < 1e-9);         // range
    }

    /// Full 24-feature extraction never panics and yields a fixed-width row.
    #[test]
    fn extract_all_is_total(values in prop::collection::vec(-1.0f64..1.0, 0..600)) {
        let row = extract_all(&values, 420.0);
        prop_assert_eq!(row.len(), 24);
    }

    /// Region detection output is always sorted, disjoint and in bounds.
    #[test]
    fn regions_are_sorted_disjoint(values in prop::collection::vec(-0.2f64..0.2, 50..800)) {
        let det = RegionDetector::table_top();
        let regions = det.detect(&values, 420.0);
        let mut prev_end = 0usize;
        for (s, e) in regions {
            prop_assert!(s >= prev_end);
            prop_assert!(s < e);
            prop_assert!(e <= values.len());
            prev_end = e;
        }
    }

    /// Merging regions never increases the count and preserves coverage.
    #[test]
    fn merge_preserves_coverage(starts in prop::collection::vec(0usize..1000, 1..20),
                                gap in 0usize..50) {
        let mut regions: Vec<(usize, usize)> = starts
            .iter()
            .map(|&s| (s, s + 10))
            .collect();
        regions.sort_unstable();
        let merged = merge_regions(&regions, gap);
        prop_assert!(merged.len() <= regions.len());
        // Every original region is inside some merged region.
        for &(s, e) in &regions {
            prop_assert!(merged.iter().any(|&(ms, me)| ms <= s && e <= me));
        }
    }

    /// Detection rate is always a fraction (or NaN for empty truth).
    #[test]
    fn detection_rate_is_fraction(truth in prop::collection::vec((0usize..500, 1usize..100), 1..10)) {
        let spans: Vec<(usize, usize)> = truth.iter().map(|&(s, l)| (s, s + l)).collect();
        let rate = detection_rate(&spans, &spans); // self-detection = 100%
        prop_assert!((rate - 1.0).abs() < 1e-12);
        let none = detection_rate(&[], &spans);
        prop_assert_eq!(none, 0.0);
    }

    /// Softmax output is always a probability distribution.
    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-500.0f64..500.0, 1..20)) {
        let mut z = logits;
        softmax_inplace(&mut z);
        prop_assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(z.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Confusion-matrix accuracy equals the diagonal mass.
    #[test]
    fn confusion_accuracy_is_diagonal_mass(pairs in prop::collection::vec((0usize..4, 0usize..4), 1..100)) {
        let names: Vec<String> = (0..4).map(|i| format!("c{i}")).collect();
        let mut cm = ConfusionMatrix::new(names);
        let mut diag = 0usize;
        for &(t, p) in &pairs {
            cm.record(t, p);
            if t == p {
                diag += 1;
            }
        }
        prop_assert!((cm.accuracy() - diag as f64 / pairs.len() as f64).abs() < 1e-12);
    }
}
