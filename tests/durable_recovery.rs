//! Recovery-surface tests for the durability layer's versioning contract.
//!
//! The golden fixture `tests/golden/durable_vnext_header.bin` is a journal
//! header written by a hypothetical *future* format version (v2). This
//! build must refuse it with a typed [`DurableError::Version`] — not parse
//! it, not panic — because a newer format may have changed record layout in
//! ways the checksum cannot reveal. The fixture is committed so the refusal
//! is proven against stable on-disk bytes, not bytes this build produced.

use emoleak::durable::{
    decode_container, decode_segment, encode_container, DurableError, Journal, JOURNAL_MAGIC,
    JOURNAL_VERSION, SHIP_MAGIC, SHIP_VERSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use std::path::PathBuf;

fn golden(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("emoleak-durable-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn golden_fixture_bytes_are_the_vnext_header() {
    // Guards the fixture itself: magic "EMOJ" followed by version 2 LE.
    // If this fails, the fixture file was altered — regenerate it, don't
    // bend the test.
    let fixture = golden("durable_vnext_header.bin");
    assert_eq!(&fixture[..4], JOURNAL_MAGIC);
    assert_eq!(fixture, [0x45, 0x4D, 0x4F, 0x4A, 0x02, 0x00]);
    assert_eq!(
        u16::from_le_bytes([fixture[4], fixture[5]]),
        JOURNAL_VERSION + 1,
        "fixture must stay one version ahead of the current format"
    );
}

#[test]
fn vnext_journal_header_is_refused_with_typed_version_error() {
    let dir = scratch("vnext");
    let path = dir.join("journal.log");
    std::fs::write(&path, golden("durable_vnext_header.bin")).expect("write fixture");
    match Journal::open(&path) {
        Err(DurableError::Version { found, supported, .. }) => {
            assert_eq!(found, JOURNAL_VERSION + 1);
            assert_eq!(supported, JOURNAL_VERSION);
        }
        Err(e) => panic!("expected DurableError::Version, got {e}"),
        Ok(_) => panic!("a future-version journal must not open"),
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn foreign_magic_is_refused_with_typed_format_error() {
    let dir = scratch("magic");
    let path = dir.join("journal.log");
    // Same length and version bytes as a valid header, wrong magic: this is
    // some other program's file, not a damaged journal.
    std::fs::write(&path, b"EMOX\x01\x00").expect("write bogus header");
    match Journal::open(&path) {
        Err(DurableError::Format { .. }) => {}
        Err(e) => panic!("expected DurableError::Format, got {e}"),
        Ok(_) => panic!("a foreign file must not open as a journal"),
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn golden_ship_fixture_bytes_are_the_vnext_header() {
    // Guards the fixture itself: magic "EMOR", version 2 LE, zero record
    // count — a complete, well-formed header from one format version
    // ahead. If this fails, the fixture file was altered — regenerate it,
    // don't bend the test.
    let fixture = golden("durable_vnext_ship.bin");
    assert_eq!(&fixture[..4], SHIP_MAGIC);
    assert_eq!(
        fixture,
        [0x45, 0x4D, 0x4F, 0x52, 0x02, 0x00, 0, 0, 0, 0, 0, 0, 0, 0]
    );
    assert_eq!(
        u16::from_le_bytes([fixture[4], fixture[5]]),
        SHIP_VERSION + 1,
        "fixture must stay one version ahead of the current ship format"
    );
}

#[test]
fn vnext_ship_segment_is_refused_with_typed_version_error() {
    // A replica receiving a segment shipped by a newer build must refuse
    // it typed — never guess at a record layout it does not know.
    match decode_segment(&golden("durable_vnext_ship.bin"), "vnext-ship-test") {
        Err(DurableError::Version { found, supported, path }) => {
            assert_eq!(found, SHIP_VERSION + 1);
            assert_eq!(supported, SHIP_VERSION);
            assert_eq!(path, "vnext-ship-test");
        }
        Err(e) => panic!("expected DurableError::Version, got {e}"),
        Ok(_) => panic!("a future-version ship segment must not decode"),
    }
}

#[test]
fn vnext_snapshot_container_is_refused_with_typed_version_error() {
    let encoded = encode_container(SNAPSHOT_MAGIC, SNAPSHOT_VERSION + 1, b"future payload");
    match decode_container(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &encoded, "snap-test.bin") {
        Err(DurableError::Version { found, supported, path }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
            assert_eq!(path, "snap-test.bin");
        }
        Err(e) => panic!("expected DurableError::Version, got {e}"),
        Ok(_) => panic!("a future-version container must not decode"),
    }
}
