//! Differential property tests for the hot-path kernels.
//!
//! The optimized kernels in `emoleak-kernels` (and the fast paths they back
//! in `dsp` and `features`) promise **bit-identity** with the scalar
//! reference implementations on the f64 path — not closeness, equality of
//! every output bit. These tests hold that line across random shapes and
//! values by driving the explicit-mode seams (`*_in_mode`, `*_ref`/`*_fast`)
//! directly, so no test ever mutates the process-global `EMOLEAK_KERNELS`
//! variable (that end-to-end angle lives in `tests/kernel_parity.rs`, which
//! owns the variable in its own test binary).

use emoleak::dsp::fft::Fft;
use emoleak::dsp::{Complex, StftConfig};
use emoleak::features::{freq_domain, time_domain};
use emoleak::kernels::conv::{conv1d_fast, conv1d_ref, conv2d_fast, conv2d_ref};
use emoleak::kernels::gemm::{gemm_fast, gemm_ref};
use emoleak::kernels::{Activation, Conv1dScratch, Conv2dScratch, KernelMode};
use proptest::prelude::*;

/// Bit-level equality: `a == b` as u64 payloads, so NaNs and signed zeros
/// compare by representation, not by IEEE semantics.
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn act_of(relu: bool) -> Activation {
    if relu {
        Activation::Relu
    } else {
        Activation::Identity
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache-blocked GEMM performs the identical per-element rounding
    /// sequence as the scalar reference — bit-identical for all inputs,
    /// including a non-zero preloaded C (the bias-preload idiom).
    #[test]
    fn gemm_fast_is_bit_identical(
        m in 1usize..9,
        k in 1usize..80,
        n in 1usize..70,
        vals in prop::collection::vec(-100.0f64..100.0, 80 * 9 + 80 * 70 + 9 * 70),
    ) {
        let a = &vals[..m * k];
        let b = &vals[m * k..m * k + k * n];
        let seed = &vals[m * k + k * n..m * k + k * n + m * n];
        let mut c_ref = seed.to_vec();
        let mut c_fast = seed.to_vec();
        gemm_ref(m, k, n, a, b, &mut c_ref);
        gemm_fast(m, k, n, a, b, &mut c_fast);
        prop_assert!(bits_eq(&c_ref, &c_fast));
    }

    /// im2col + GEMM 2-D convolution matches the direct reference loop bit
    /// for bit across random shapes, kernels, biases, and fused ReLU.
    #[test]
    fn conv2d_fast_is_bit_identical(
        in_ch in 1usize..4,
        h in 3usize..9,
        w in 3usize..9,
        out_ch in 1usize..5,
        kh in 1usize..4,
        kw in 1usize..4,
        relu in 0u32..2,
        vals in prop::collection::vec(-10.0f64..10.0, 3 * 8 * 8 + 4 * 3 * 3 * 3 + 4),
    ) {
        let input = &vals[..in_ch * h * w];
        let woff = 3 * 8 * 8;
        let weights = &vals[woff..woff + out_ch * in_ch * kh * kw];
        let boff = woff + 4 * 3 * 3 * 3;
        let bias = &vals[boff..boff + out_ch];
        let act = act_of(relu == 1);
        let mut out_ref = Vec::new();
        let mut out_fast = Vec::new();
        let mut scratch = Conv2dScratch::default();
        conv2d_ref(input, in_ch, h, w, out_ch, kh, kw, weights, bias, act, &mut out_ref);
        conv2d_fast(
            input, in_ch, h, w, out_ch, kh, kw, weights, bias, act,
            &mut scratch, &mut out_fast,
        );
        prop_assert!(bits_eq(&out_ref, &out_fast));
    }

    /// Same contract for the 1-D convolution backing the feature CNN.
    #[test]
    fn conv1d_fast_is_bit_identical(
        in_ch in 1usize..5,
        l in 2usize..40,
        out_ch in 1usize..6,
        k in 1usize..6,
        relu in 0u32..2,
        vals in prop::collection::vec(-10.0f64..10.0, 4 * 39 + 5 * 4 * 5 + 5),
    ) {
        let input = &vals[..in_ch * l];
        let woff = 4 * 39;
        let weights = &vals[woff..woff + out_ch * in_ch * k];
        let boff = woff + 5 * 4 * 5;
        let bias = &vals[boff..boff + out_ch];
        let act = act_of(relu == 1);
        let mut out_ref = Vec::new();
        let mut out_fast = Vec::new();
        let mut scratch = Conv1dScratch::default();
        conv1d_ref(input, in_ch, l, out_ch, k, weights, bias, act, &mut out_ref);
        conv1d_fast(input, in_ch, l, out_ch, k, weights, bias, act, &mut scratch, &mut out_fast);
        prop_assert!(bits_eq(&out_ref, &out_fast));
    }

    /// The scratch-buffer real FFT is bit-identical to the allocating one,
    /// and the scratch survives reuse across different signal lengths.
    #[test]
    fn fft_into_is_bit_identical_and_round_trips(
        signal in prop::collection::vec(-50.0f64..50.0, 1..257),
    ) {
        let n = signal.len().next_power_of_two().max(8);
        let fft = Fft::new(n);
        let alloc = fft.forward_real(&signal);
        let mut scratch: Vec<Complex> = Vec::new();
        let mut out: Vec<Complex> = Vec::new();
        // Dirty the buffers with a different-length transform first: reuse
        // must not leak state between calls.
        fft.forward_real_into(&signal[..signal.len() / 2], &mut scratch, &mut out);
        fft.forward_real_into(&signal, &mut scratch, &mut out);
        prop_assert_eq!(alloc.len(), out.len());
        for (a, b) in alloc.iter().zip(&out) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // And the plan still round-trips: forward then inverse is identity.
        let mut buf: Vec<Complex> =
            signal.iter().map(|&v| Complex::from_real(v)).collect();
        buf.resize(n, Complex::ZERO);
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (z, &v) in buf.iter().zip(&signal) {
            prop_assert!((z.re - v).abs() < 1e-9);
            prop_assert!(z.im.abs() < 1e-9);
        }
    }

    /// The power-spectrum scratch path matches the allocating path bitwise.
    #[test]
    fn power_spectrum_into_is_bit_identical(
        signal in prop::collection::vec(-50.0f64..50.0, 1..200),
    ) {
        let n = signal.len().next_power_of_two().max(8);
        let fft = Fft::new(n);
        let alloc = fft.power_spectrum(&signal);
        let mut scratch: Vec<Complex> = Vec::new();
        let mut out: Vec<f64> = Vec::new();
        fft.power_spectrum_into(&signal, &mut scratch, &mut out);
        prop_assert!(bits_eq(&alloc, &out));
    }

    /// The in-place STFT produces byte-identical spectrograms to the
    /// per-frame-allocating reference across random frame/hop geometry.
    #[test]
    fn stft_fast_is_bit_identical(
        signal in prop::collection::vec(-1.0f64..1.0, 64..1500),
        frame_pow in 4u32..8,
        hop_div in 1usize..5,
    ) {
        let frame_len = 1usize << frame_pow;
        let hop = (frame_len / hop_div).max(1);
        let cfg = StftConfig::new(frame_len, hop);
        let reference = cfg.spectrogram_in_mode(&signal, 420.0, KernelMode::Reference);
        let fast = cfg.spectrogram_in_mode(&signal, 420.0, KernelMode::Fast);
        match (reference, fast) {
            (Ok(r), Ok(f)) => {
                prop_assert_eq!(r.num_frames(), f.num_frames());
                prop_assert_eq!(r.num_bins(), f.num_bins());
                prop_assert!(bits_eq(r.as_flat(), f.as_flat()));
            }
            (Err(re), Err(fe)) => prop_assert_eq!(re, fe),
            (r, f) => prop_assert!(false, "modes disagree on fallibility: {r:?} vs {f:?}"),
        }
    }

    /// Fused single-pass Table-II time-domain extraction is bit-identical
    /// to the twelve independent reference statistics.
    #[test]
    fn time_features_fused_is_bit_identical(
        region in prop::collection::vec(-5.0f64..5.0, 0..400),
    ) {
        let reference = time_domain::extract_in_mode(&region, KernelMode::Reference);
        let fast = time_domain::extract_in_mode(&region, KernelMode::Fast);
        prop_assert!(bits_eq(&reference, &fast));
    }

    /// Fused spectrum walk + FFT-plan reuse in the frequency-domain
    /// extractor is bit-identical to the reference.
    #[test]
    fn freq_features_fused_is_bit_identical(
        region in prop::collection::vec(-5.0f64..5.0, 0..600),
        fs in 100.0f64..1000.0,
    ) {
        let reference = freq_domain::extract_in_mode(&region, fs, KernelMode::Reference);
        let fast = freq_domain::extract_in_mode(&region, fs, KernelMode::Fast);
        prop_assert!(bits_eq(&reference, &fast));
    }
}
