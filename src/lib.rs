//! # EmoLeak — reproduction of "EmoLeak: Smartphone Motions Reveal Emotions"
//! (ICDCS 2023)
//!
//! A complete Rust reimplementation of the EmoLeak side-channel study:
//! speech played through a smartphone speaker induces chassis vibrations
//! that the zero-permission accelerometer picks up, from which an attacker
//! classifies the speaker's **emotion**.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`exec`] | deterministic work-stealing thread pool (`EMOLEAK_THREADS`) |
//! | [`dsp`] | FFT, STFT, Butterworth filters, statistics |
//! | [`synth`] | parametric emotional-speech corpora (SAVEE/TESS/CREMA-D substitutes) |
//! | [`phone`] | vibration channel: speakers, chassis, accelerometer, motion noise |
//! | [`features`] | speech-region detection, Table-II features, spectrograms |
//! | [`ml`] | Weka-style classifiers and CNNs, from scratch |
//! | [`core`] | the end-to-end attack pipeline, reports, mitigations |
//! | [`stream`] | resilient online inference: bounded queues, supervision, degradation |
//! | [`durable`] | crash safety: write-ahead journal, checkpoints, resumable campaigns |
//! | [`admission`] | multi-tenant overload protection: rate limits, bulkheads, shedding |
//! | [`fleet`] | fault-contained sharding: consistent-hash placement, brown-out failover |
//!
//! # Quickstart
//!
//! ```no_run
//! use emoleak::prelude::*;
//!
//! # fn main() -> Result<(), EmoleakError> {
//! // 1. Pick a corpus and a victim phone.
//! let corpus = CorpusSpec::tess().with_clips_per_cell(10);
//! let scenario = AttackScenario::table_top(corpus, DeviceProfile::oneplus_7t());
//!
//! // 2. Record the campaign through the vibration channel.
//! let harvest = scenario.harvest()?;
//! println!("{} labeled regions, {:.0}% detected",
//!          harvest.features.len(), harvest.detection_rate * 100.0);
//!
//! // 3. Classify emotions from accelerometer features.
//! let eval = evaluate_features(&harvest.features, ClassifierKind::Logistic,
//!                              Protocol::Holdout8020, 1)?;
//! println!("accuracy {:.1}%", eval.accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

pub use emoleak_admission as admission;
pub use emoleak_core as core;
pub use emoleak_dsp as dsp;
pub use emoleak_durable as durable;
pub use emoleak_exec as exec;
pub use emoleak_features as features;
pub use emoleak_fleet as fleet;
pub use emoleak_kernels as kernels;
pub use emoleak_ml as ml;
pub use emoleak_phone as phone;
pub use emoleak_stream as stream;
pub use emoleak_synth as synth;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use emoleak_admission::prelude::*;
    pub use emoleak_core::mitigation::{FilterAblation, SamplingCapStudy};
    pub use emoleak_core::prelude::*;
    pub use emoleak_fleet::prelude::*;
    pub use emoleak_ml::Classifier;
    pub use emoleak_phone::{Placement, SpeakerKind};
    pub use emoleak_stream::prelude::*;
    pub use emoleak_synth::{Emotion, Speaker};
}
