//! Utterance assembly: turning (speaker, emotion, content) into a waveform.
//!
//! An utterance is a sequence of syllables. Each syllable is an optional
//! unvoiced onset (a short noise burst shaped by a fricative-like spectrum)
//! followed by a voiced vowel nucleus (glottal source → formant filter),
//! all under the prosodic F0/energy contours of the emotion rendering.

use crate::emotion::EmotionProfile;
use crate::formant::{FormantFilter, Vowel};
use crate::prosody;
use crate::speaker::Speaker;
use crate::voice::{apply_tilt, glottal_source, GlottalParams};
use emoleak_dsp::noise::white_noise;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Content/duration parameters for one utterance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtteranceConfig {
    /// Audio sampling rate in Hz.
    pub fs: f64,
    /// Number of syllables before rate scaling (TESS-style carrier phrases
    /// are ~3–4 syllables; SAVEE sentences longer).
    pub syllables: usize,
    /// Nominal duration per syllable slot in seconds at rate 1.0.
    pub syllable_slot_s: f64,
    /// Leading/trailing silence in seconds.
    pub pad_s: f64,
}

impl Default for UtteranceConfig {
    fn default() -> Self {
        UtteranceConfig {
            fs: 8000.0,
            syllables: 4,
            syllable_slot_s: 0.22,
            pad_s: 0.06,
        }
    }
}

/// A synthesized utterance: the waveform plus its ground-truth voiced spans
/// (used to score the paper's speech-region detector).
#[derive(Debug, Clone, PartialEq)]
pub struct Utterance {
    /// Mono waveform at [`UtteranceConfig::fs`].
    pub samples: Vec<f64>,
    /// Sampling rate in Hz.
    pub fs: f64,
    /// Ground-truth voiced (syllable) spans in samples.
    pub voiced_spans: Vec<(usize, usize)>,
}

impl Utterance {
    /// Synthesizes an utterance for `speaker` rendering `profile`, with
    /// content randomness drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config.fs` is not positive or `config.syllables` is zero.
    pub fn synthesize(
        speaker: &Speaker,
        profile: &EmotionProfile,
        config: &UtteranceConfig,
        seed: u64,
    ) -> Utterance {
        assert!(config.fs > 0.0, "sampling rate must be positive");
        assert!(config.syllables > 0, "utterance needs at least one syllable");
        let fs = config.fs;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        // Speaking rate shortens or lengthens the voiced body.
        let body_s = config.syllables as f64 * config.syllable_slot_s / profile.rate;
        let body_n = (body_s * fs) as usize;
        let pad_n = (config.pad_s * fs) as usize;
        let total_n = body_n + 2 * pad_n;

        let spans_body = prosody::syllable_spans(&mut rng, body_n, config.syllables);
        let f0 = prosody::f0_contour(&mut rng, body_n, speaker.base_f0(), profile, &spans_body);
        let energy = prosody::energy_contour(&mut rng, body_n, profile, &spans_body, fs);

        // Voiced source over the whole body; silenced by the energy envelope
        // in the gaps.
        let glottal = glottal_source(
            &mut rng,
            &f0,
            fs,
            GlottalParams {
                jitter: profile.jitter,
                shimmer: profile.shimmer,
                breathiness: profile.breathiness,
            },
        );

        // Per-syllable vowel choice and formant filtering.
        let mut voiced = vec![0.0; body_n];
        for &(start, end) in &spans_body {
            let end = end.min(body_n);
            if start >= end {
                continue;
            }
            let vowel = Vowel::ALL[rng.gen_range(0..Vowel::ALL.len())];
            let filt = FormantFilter::new(vowel, speaker.formant_scale(), fs);
            let segment = filt.process(&glottal[start..end]);
            voiced[start..end].copy_from_slice(&segment);
        }

        // Apply energy envelope and spectral tilt.
        for (v, e) in voiced.iter_mut().zip(&energy) {
            *v *= e;
        }
        let mut body = apply_tilt(&voiced, profile.tilt_db_per_octave);

        // Unvoiced onsets: short fricative bursts before ~half the syllables.
        for &(start, _) in &spans_body {
            if rng.gen::<f64>() < 0.5 {
                let burst_len = ((0.03 * fs) as usize).min(start);
                if burst_len < 8 {
                    continue;
                }
                let noise = white_noise(&mut rng, burst_len, 0.15 * profile.energy);
                for (k, nv) in noise.into_iter().enumerate() {
                    body[start - burst_len + k] += nv;
                }
            }
        }

        // Assemble with padding; normalize so neutral-energy utterances peak
        // near 0.5 and emotion energy scaling is preserved.
        let peak = body.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let norm = if peak > 0.0 {
            0.5 * profile.energy.min(2.5) / peak * 2.0 / (1.0 + profile.energy)
        } else {
            0.0
        };
        let mut samples = vec![0.0; total_n];
        for (i, &b) in body.iter().enumerate() {
            samples[pad_n + i] = b * norm * (1.0 + profile.energy) / 2.0;
        }

        let voiced_spans = spans_body
            .iter()
            .map(|&(s, e)| (s + pad_n, e.min(body_n) + pad_n))
            .collect();
        Utterance { samples, fs, voiced_spans }
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emotion::Emotion;
    use crate::speaker::Gender;
    use emoleak_dsp::stats;

    fn speaker() -> Speaker {
        Speaker::generate(0, Gender::Female, 0.1, 42)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let s = speaker();
        let p = s.render(Emotion::Happy);
        let cfg = UtteranceConfig::default();
        let a = Utterance::synthesize(&s, &p, &cfg, 7);
        let b = Utterance::synthesize(&s, &p, &cfg, 7);
        assert_eq!(a, b);
        let c = Utterance::synthesize(&s, &p, &cfg, 8);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn sad_is_longer_and_quieter_than_anger() {
        let s = speaker();
        let cfg = UtteranceConfig::default();
        let sad = Utterance::synthesize(&s, &s.render(Emotion::Sad), &cfg, 1);
        let anger = Utterance::synthesize(&s, &s.render(Emotion::Anger), &cfg, 1);
        assert!(sad.duration() > anger.duration(), "rate difference");
        assert!(stats::rms(&anger.samples) > 1.5 * stats::rms(&sad.samples));
    }

    #[test]
    fn voiced_spans_carry_most_energy() {
        let s = speaker();
        let cfg = UtteranceConfig::default();
        let u = Utterance::synthesize(&s, &s.render(Emotion::Neutral), &cfg, 3);
        let mut in_span = 0.0;
        let total: f64 = u.samples.iter().map(|v| v * v).sum();
        for &(a, b) in &u.voiced_spans {
            in_span += u.samples[a..b].iter().map(|v| v * v).sum::<f64>();
        }
        assert!(in_span / total > 0.8, "voiced fraction {}", in_span / total);
    }

    #[test]
    fn padding_is_silent() {
        let s = speaker();
        let cfg = UtteranceConfig::default();
        let u = Utterance::synthesize(&s, &s.render(Emotion::Neutral), &cfg, 5);
        let pad = (cfg.pad_s * cfg.fs) as usize;
        assert!(u.samples[..pad / 2].iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn amplitude_is_bounded() {
        let s = speaker();
        let cfg = UtteranceConfig::default();
        for e in Emotion::ALL7 {
            let u = Utterance::synthesize(&s, &s.render(e), &cfg, 9);
            let peak = u.samples.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            assert!(peak <= 1.5, "{e}: peak {peak}");
            assert!(peak > 0.05, "{e}: peak {peak}");
        }
    }

    #[test]
    #[should_panic(expected = "syllable")]
    fn zero_syllables_panics() {
        let s = speaker();
        let cfg = UtteranceConfig { syllables: 0, ..Default::default() };
        Utterance::synthesize(&s, &s.render(Emotion::Neutral), &cfg, 0);
    }
}
