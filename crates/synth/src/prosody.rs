//! Prosodic contours: F0 and energy trajectories over an utterance.
//!
//! Emotion expresses itself prosodically through (a) the F0 *level* and
//! *range*, (b) declination depth, (c) accent excursions, (d) terminal rise
//! or fall, and (e) the energy attack/decay shape of each syllable. This
//! module turns an [`EmotionProfile`]-adjusted parameter set into per-sample
//! contours.

use crate::emotion::EmotionProfile;
use rand::Rng;

/// Per-sample F0 contour over `n` samples for an utterance with syllable
/// boundaries `syllables` (as (start, end) sample ranges).
///
/// The contour is: base level × declination × accent bumps × terminal rise,
/// with small random wander to avoid mechanical monotony.
pub fn f0_contour<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    base_f0: f64,
    profile: &EmotionProfile,
    syllables: &[(usize, usize)],
) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let level = base_f0 * profile.f0_scale;
    // Declination: fall of ~15 % across the utterance, scaled by range.
    let decl_depth = 0.15 * profile.f0_range;
    let mut contour: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            level * (1.0 - decl_depth * t)
        })
        .collect();
    // Accent bump on each syllable: raised-cosine of ~12 % of level, scaled
    // by the range parameter, with per-syllable random magnitude.
    for &(start, end) in syllables {
        let end = end.min(n);
        if start >= end {
            continue;
        }
        let mag = level * 0.12 * profile.f0_range * (0.6 + 0.8 * rng.gen::<f64>());
        let len = end - start;
        for (j, v) in contour[start..end].iter_mut().enumerate() {
            let phase = j as f64 / len as f64;
            *v += mag * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
        }
    }
    // Terminal rise/fall over the last 20 %.
    if profile.final_rise.abs() > 1e-9 {
        let tail = n / 5;
        for (j, v) in contour[n - tail..].iter_mut().enumerate() {
            let phase = j as f64 / tail as f64;
            *v += level * profile.final_rise * phase;
        }
    }
    // Slow random wander (~2 % of level).
    let mut wander: f64 = 0.0;
    for v in contour.iter_mut() {
        wander = 0.999 * wander + 0.02 * (rng.gen::<f64>() - 0.5);
        *v *= 1.0 + 0.02 * wander.tanh();
        *v = v.max(40.0);
    }
    contour
}

/// Per-sample energy envelope: each syllable gets an attack–sustain–decay
/// shape whose attack time scales with the profile (anger = punchy onsets),
/// and overall amplitude scales with `profile.energy`.
pub fn energy_contour<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    profile: &EmotionProfile,
    syllables: &[(usize, usize)],
    fs: f64,
) -> Vec<f64> {
    let mut env = vec![0.0; n];
    for &(start, end) in syllables {
        let end = end.min(n);
        if start >= end {
            continue;
        }
        let len = end - start;
        let attack = ((0.030 * profile.attack * fs) as usize).clamp(8, len.max(9) - 1);
        let decay = ((0.050 * profile.attack.sqrt() * fs) as usize).clamp(8, len);
        let level = profile.energy * (0.85 + 0.3 * rng.gen::<f64>());
        for (pos, v) in env[start..end].iter_mut().enumerate() {
            let shape = if pos < attack {
                pos as f64 / attack as f64
            } else if pos + decay > len {
                (len - pos) as f64 / decay as f64
            } else {
                1.0
            };
            *v = level * shape.clamp(0.0, 1.0);
        }
    }
    env
}

/// Splits a voiced duration of `n` samples into `num_syllables` alternating
/// syllable/gap spans, returning syllable (start, end) ranges.
///
/// The gap fraction shrinks with faster speaking rates (already folded into
/// `n` by the caller); this helper just spaces syllables evenly with ±20 %
/// random spread.
pub fn syllable_spans<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    num_syllables: usize,
) -> Vec<(usize, usize)> {
    if num_syllables == 0 || n == 0 {
        return Vec::new();
    }
    let slot = n / num_syllables;
    let mut spans = Vec::with_capacity(num_syllables);
    for s in 0..num_syllables {
        let start = s * slot;
        // Syllable occupies 60–85 % of its slot, rest is inter-syllable gap.
        let frac = 0.6 + 0.25 * rng.gen::<f64>();
        let len = ((slot as f64) * frac) as usize;
        spans.push((start, (start + len.max(1)).min(n)));
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emotion::Emotion;
    use emoleak_dsp::stats;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn f0_stays_near_scaled_level() {
        let p = Emotion::Neutral.profile();
        let spans = syllable_spans(&mut rng(1), 8000, 4);
        let c = f0_contour(&mut rng(2), 8000, 120.0, &p, &spans);
        let m = stats::mean(&c);
        assert!((m - 120.0).abs() < 15.0, "mean f0 {m}");
        assert!(c.iter().all(|&f| f >= 40.0));
    }

    #[test]
    fn anger_raises_level_and_range() {
        let neutral = Emotion::Neutral.profile();
        let anger = Emotion::Anger.profile();
        let spans = syllable_spans(&mut rng(3), 8000, 4);
        let cn = f0_contour(&mut rng(4), 8000, 120.0, &neutral, &spans);
        let ca = f0_contour(&mut rng(4), 8000, 120.0, &anger, &spans);
        assert!(stats::mean(&ca) > 1.15 * stats::mean(&cn));
        assert!(stats::std_dev(&ca) > stats::std_dev(&cn));
    }

    #[test]
    fn surprise_rises_at_the_end() {
        let p = Emotion::Surprise.profile();
        let spans = syllable_spans(&mut rng(5), 10000, 3);
        let c = f0_contour(&mut rng(6), 10000, 200.0, &p, &spans);
        let early = stats::mean(&c[7000..7500]);
        let late = stats::mean(&c[9800..]);
        assert!(late > early + 0.1 * 200.0, "late {late} vs early {early}");
    }

    #[test]
    fn energy_envelope_is_zero_in_gaps() {
        let p = Emotion::Neutral.profile();
        let spans = vec![(0usize, 1000usize), (2000, 3000)];
        let env = energy_contour(&mut rng(7), 4000, &p, &spans, 8000.0);
        assert!(env[1500].abs() < 1e-12);
        assert!(env[3500].abs() < 1e-12);
        assert!(env[500] > 0.5);
    }

    #[test]
    fn sad_has_lower_energy_than_anger() {
        let spans = vec![(0usize, 4000usize)];
        let sad = energy_contour(&mut rng(8), 4000, &Emotion::Sad.profile(), &spans, 8000.0);
        let anger = energy_contour(&mut rng(8), 4000, &Emotion::Anger.profile(), &spans, 8000.0);
        assert!(stats::max(&anger) > 2.0 * stats::max(&sad));
    }

    #[test]
    fn attack_is_faster_for_anger() {
        let spans = vec![(0usize, 4000usize)];
        let fs = 8000.0;
        let anger = energy_contour(&mut rng(9), 4000, &Emotion::Anger.profile(), &spans, fs);
        let sad = energy_contour(&mut rng(9), 4000, &Emotion::Sad.profile(), &spans, fs);
        // Time to reach 90% of own max.
        let t90 = |e: &[f64]| {
            let m = stats::max(e);
            e.iter().position(|&v| v >= 0.9 * m).unwrap()
        };
        assert!(t90(&anger) < t90(&sad));
    }

    #[test]
    fn spans_partition_without_overlap() {
        let spans = syllable_spans(&mut rng(10), 10000, 5);
        assert_eq!(spans.len(), 5);
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping spans");
        }
        assert!(spans.last().unwrap().1 <= 10000);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(syllable_spans(&mut rng(11), 0, 3).is_empty());
        assert!(syllable_spans(&mut rng(11), 100, 0).is_empty());
        assert!(f0_contour(&mut rng(11), 0, 100.0, &Emotion::Neutral.profile(), &[]).is_empty());
    }
}
