//! Emotion classes and their prosodic correlates.
//!
//! The profiles encode how each acted emotion perturbs a speaker's neutral
//! voice. The directions follow the speech-emotion literature the paper
//! builds on (anger/happiness: raised F0 and energy; sadness: lowered F0,
//! narrow range, slow rate; fear: raised F0 with strong jitter; surprise:
//! large F0 range with a terminal rise).

use serde::{Deserialize, Serialize};

/// The emotion classes of the SAVEE/TESS (7-class) and CREMA-D (6-class)
/// corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Emotion {
    /// Anger.
    Anger,
    /// Disgust.
    Disgust,
    /// Fear.
    Fear,
    /// Happiness.
    Happy,
    /// Neutral (no acted emotion).
    Neutral,
    /// Sadness.
    Sad,
    /// (Pleasant) surprise — present in SAVEE and TESS, absent from CREMA-D.
    Surprise,
}

impl Emotion {
    /// The seven SAVEE/TESS classes (random-guess accuracy 1/7 ≈ 14.28 %).
    pub const ALL7: [Emotion; 7] = [
        Emotion::Anger,
        Emotion::Disgust,
        Emotion::Fear,
        Emotion::Happy,
        Emotion::Neutral,
        Emotion::Sad,
        Emotion::Surprise,
    ];

    /// The six CREMA-D classes (random-guess accuracy 1/6 ≈ 16.67 %).
    pub const ALL6: [Emotion; 6] = [
        Emotion::Anger,
        Emotion::Disgust,
        Emotion::Fear,
        Emotion::Happy,
        Emotion::Neutral,
        Emotion::Sad,
    ];

    /// A stable small integer id (used for seeding and as class index).
    pub fn index(self) -> usize {
        match self {
            Emotion::Anger => 0,
            Emotion::Disgust => 1,
            Emotion::Fear => 2,
            Emotion::Happy => 3,
            Emotion::Neutral => 4,
            Emotion::Sad => 5,
            Emotion::Surprise => 6,
        }
    }

    /// Parses from the canonical lowercase name.
    pub fn from_name(name: &str) -> Option<Emotion> {
        match name {
            "anger" | "angry" => Some(Emotion::Anger),
            "disgust" => Some(Emotion::Disgust),
            "fear" => Some(Emotion::Fear),
            "happy" | "happiness" => Some(Emotion::Happy),
            "neutral" => Some(Emotion::Neutral),
            "sad" | "sadness" => Some(Emotion::Sad),
            "surprise" | "pleasant_surprise" => Some(Emotion::Surprise),
            _ => None,
        }
    }

    /// The baseline prosody perturbation profile for this emotion.
    pub fn profile(self) -> EmotionProfile {
        match self {
            Emotion::Neutral => EmotionProfile {
                f0_scale: 1.0,
                f0_range: 1.0,
                rate: 1.0,
                energy: 1.0,
                jitter: 0.010,
                shimmer: 0.04,
                breathiness: 0.10,
                tilt_db_per_octave: 0.0,
                attack: 1.0,
                final_rise: 0.0,
            },
            Emotion::Anger => EmotionProfile {
                f0_scale: 1.26,
                f0_range: 1.65,
                rate: 1.18,
                energy: 1.85,
                jitter: 0.028,
                shimmer: 0.085,
                breathiness: 0.05,
                tilt_db_per_octave: 2.8,
                attack: 0.45,
                final_rise: -0.05,
            },
            Emotion::Happy => EmotionProfile {
                f0_scale: 1.32,
                f0_range: 1.50,
                rate: 1.10,
                energy: 1.40,
                jitter: 0.015,
                shimmer: 0.050,
                breathiness: 0.08,
                tilt_db_per_octave: 1.6,
                attack: 0.75,
                final_rise: 0.05,
            },
            Emotion::Fear => EmotionProfile {
                f0_scale: 1.38,
                f0_range: 1.20,
                rate: 1.28,
                energy: 0.92,
                jitter: 0.045,
                shimmer: 0.095,
                breathiness: 0.22,
                tilt_db_per_octave: 0.6,
                attack: 0.85,
                final_rise: 0.02,
            },
            Emotion::Sad => EmotionProfile {
                f0_scale: 0.84,
                f0_range: 0.50,
                rate: 0.74,
                energy: 0.58,
                jitter: 0.012,
                shimmer: 0.042,
                breathiness: 0.26,
                tilt_db_per_octave: -3.0,
                attack: 1.60,
                final_rise: -0.04,
            },
            Emotion::Disgust => EmotionProfile {
                f0_scale: 0.92,
                f0_range: 0.82,
                rate: 0.84,
                energy: 0.95,
                jitter: 0.022,
                shimmer: 0.065,
                breathiness: 0.14,
                tilt_db_per_octave: -1.4,
                attack: 1.25,
                final_rise: -0.02,
            },
            Emotion::Surprise => EmotionProfile {
                f0_scale: 1.46,
                f0_range: 1.95,
                rate: 1.05,
                energy: 1.30,
                jitter: 0.018,
                shimmer: 0.055,
                breathiness: 0.09,
                tilt_db_per_octave: 2.0,
                attack: 0.65,
                final_rise: 0.35,
            },
        }
    }
}

impl core::fmt::Display for Emotion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Emotion::Anger => "anger",
            Emotion::Disgust => "disgust",
            Emotion::Fear => "fear",
            Emotion::Happy => "happy",
            Emotion::Neutral => "neutral",
            Emotion::Sad => "sad",
            Emotion::Surprise => "surprise",
        };
        f.write_str(name)
    }
}

/// How an emotion perturbs a speaker's neutral voice.
///
/// All fields multiply or offset the speaker's neutral parameters, so a
/// profile composes with any base voice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmotionProfile {
    /// Multiplier on the speaker's base fundamental frequency.
    pub f0_scale: f64,
    /// Multiplier on F0 excursion (accent bumps, declination depth).
    pub f0_range: f64,
    /// Speaking-rate multiplier (>1 = faster, shorter syllables).
    pub rate: f64,
    /// Overall amplitude multiplier (vocal effort).
    pub energy: f64,
    /// Cycle-to-cycle F0 perturbation (fraction of period).
    pub jitter: f64,
    /// Cycle-to-cycle amplitude perturbation (fraction).
    pub shimmer: f64,
    /// Aspiration-noise mix (0 = none, 1 = whisper).
    pub breathiness: f64,
    /// Extra spectral tilt in dB/octave (positive = brighter).
    pub tilt_db_per_octave: f64,
    /// Syllable-envelope attack time multiplier (<1 = punchier onsets).
    pub attack: f64,
    /// Terminal F0 rise as a fraction of base F0 (surprise contour).
    pub final_rise: f64,
}

impl EmotionProfile {
    /// Randomly perturbs the profile for one clip: `scale` is the
    /// within-cell variation knob (0 = every repetition identical in
    /// prosody, larger = actors vary take to take).
    pub fn perturb<R: rand::Rng + ?Sized>(&self, rng: &mut R, scale: f64) -> EmotionProfile {
        let mut jig = |v: f64, s: f64| v + (rng.gen::<f64>() - 0.5) * 2.0 * scale * s;
        EmotionProfile {
            // Vocal effort varies strongly take-to-take; pitch targets are
            // the most stable cue an actor reproduces.
            f0_scale: jig(self.f0_scale, 0.05).max(0.5),
            f0_range: jig(self.f0_range, 0.20).max(0.1),
            rate: jig(self.rate, 0.10).max(0.4),
            energy: jig(self.energy, 0.90).max(0.1),
            jitter: jig(self.jitter, 0.008).max(0.001),
            shimmer: jig(self.shimmer, 0.015).max(0.005),
            breathiness: jig(self.breathiness, 0.04).clamp(0.0, 0.9),
            tilt_db_per_octave: jig(self.tilt_db_per_octave, 0.8),
            attack: jig(self.attack, 0.15).max(0.2),
            final_rise: jig(self.final_rise, 0.04),
        }
    }

    /// Linear interpolation between two profiles, `t ∈ [0, 1]`.
    ///
    /// Used for per-speaker expressivity blending: a barely expressive
    /// speaker sits close to neutral.
    pub fn lerp(&self, other: &EmotionProfile, t: f64) -> EmotionProfile {
        let l = |a: f64, b: f64| a + (b - a) * t;
        EmotionProfile {
            f0_scale: l(self.f0_scale, other.f0_scale),
            f0_range: l(self.f0_range, other.f0_range),
            rate: l(self.rate, other.rate),
            energy: l(self.energy, other.energy),
            jitter: l(self.jitter, other.jitter),
            shimmer: l(self.shimmer, other.shimmer),
            breathiness: l(self.breathiness, other.breathiness),
            tilt_db_per_octave: l(self.tilt_db_per_octave, other.tilt_db_per_octave),
            attack: l(self.attack, other.attack),
            final_rise: l(self.final_rise, other.final_rise),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sets_have_expected_sizes() {
        assert_eq!(Emotion::ALL7.len(), 7);
        assert_eq!(Emotion::ALL6.len(), 6);
        assert!(!Emotion::ALL6.contains(&Emotion::Surprise));
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 7];
        for e in Emotion::ALL7 {
            assert!(!seen[e.index()], "duplicate index for {e}");
            seen[e.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn name_round_trip() {
        for e in Emotion::ALL7 {
            assert_eq!(Emotion::from_name(&e.to_string()), Some(e));
        }
        assert_eq!(Emotion::from_name("angry"), Some(Emotion::Anger));
        assert_eq!(Emotion::from_name("bogus"), None);
    }

    #[test]
    fn profiles_encode_known_prosody_directions() {
        let neutral = Emotion::Neutral.profile();
        let anger = Emotion::Anger.profile();
        let sad = Emotion::Sad.profile();
        let surprise = Emotion::Surprise.profile();
        assert!(anger.energy > neutral.energy);
        assert!(anger.f0_scale > neutral.f0_scale);
        assert!(sad.f0_scale < neutral.f0_scale);
        assert!(sad.rate < neutral.rate);
        assert!(sad.energy < neutral.energy);
        assert!(surprise.f0_range > anger.f0_range);
        assert!(surprise.final_rise > 0.2);
        assert!(Emotion::Fear.profile().jitter > neutral.jitter);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Emotion::Neutral.profile();
        let b = Emotion::Anger.profile();
        let close = |x: &EmotionProfile, y: &EmotionProfile| {
            (x.f0_scale - y.f0_scale).abs() < 1e-12
                && (x.energy - y.energy).abs() < 1e-12
                && (x.jitter - y.jitter).abs() < 1e-12
                && (x.attack - y.attack).abs() < 1e-12
        };
        assert!(close(&a.lerp(&b, 0.0), &a));
        assert!(close(&a.lerp(&b, 1.0), &b));
        let mid = a.lerp(&b, 0.5);
        assert!((mid.energy - (a.energy + b.energy) / 2.0).abs() < 1e-12);
    }
}
