//! Speaker voices.
//!
//! A speaker is a base voice (fundamental frequency, vocal-tract length
//! scale) plus a per-emotion *expressivity rendering*: how strongly and how
//! idiosyncratically that speaker realizes each emotion's prosody profile.
//! The rendering is what makes multi-speaker corpora harder — two angry
//! speakers do not sound alike, and a weakly expressive speaker's anger can
//! resemble another speaker's neutral.

use crate::emotion::{Emotion, EmotionProfile};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Speaker gender, which sets the base-F0 and formant ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Male voice (base F0 ~ 90–140 Hz).
    Male,
    /// Female voice (base F0 ~ 170–240 Hz).
    Female,
}

/// A synthetic speaker voice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Speaker {
    id: u32,
    gender: Gender,
    base_f0: f64,
    formant_scale: f64,
    expressivity: f64,
    idiosyncrasy: f64,
    seed: u64,
}

impl Speaker {
    /// Deterministically generates speaker number `id` for a corpus.
    ///
    /// `expressivity_variation` controls how far speakers stray from the
    /// canonical emotion profiles (0 = every speaker acts identically,
    /// larger = idiosyncratic, overlapping renderings). `seed` scopes the
    /// randomness to a corpus.
    pub fn generate(id: u32, gender: Gender, expressivity_variation: f64, seed: u64) -> Speaker {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        let base_f0 = match gender {
            Gender::Male => rng.gen_range(95.0..135.0),
            Gender::Female => rng.gen_range(175.0..235.0),
        };
        let formant_scale = match gender {
            Gender::Male => rng.gen_range(0.95..1.05),
            Gender::Female => rng.gen_range(1.10..1.22),
        };
        // Expressivity in [1 - v, 1]: some speakers under-act. Idiosyncrasy
        // scales per-emotion random perturbation of profile fields.
        let expressivity = 1.0 - rng.gen::<f64>() * expressivity_variation;
        let idiosyncrasy = expressivity_variation * (0.5 + rng.gen::<f64>());
        Speaker {
            id,
            gender,
            base_f0,
            formant_scale,
            expressivity,
            idiosyncrasy,
            seed,
        }
    }

    /// The speaker's numeric id within its corpus.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The speaker's gender.
    pub fn gender(&self) -> Gender {
        self.gender
    }

    /// Neutral fundamental frequency in Hz.
    pub fn base_f0(&self) -> f64 {
        self.base_f0
    }

    /// Vocal-tract length scale applied to all formant frequencies.
    pub fn formant_scale(&self) -> f64 {
        self.formant_scale
    }

    /// How this speaker renders `emotion`: the canonical profile blended
    /// toward neutral by the speaker's expressivity, then perturbed by the
    /// speaker's idiosyncrasy. Deterministic per (speaker, emotion).
    pub fn render(&self, emotion: Emotion) -> EmotionProfile {
        let neutral = Emotion::Neutral.profile();
        let canonical = emotion.profile();
        let blended = neutral.lerp(&canonical, self.expressivity);
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed
                ^ (self.id as u64).wrapping_mul(0xD1B54A32D192ED03)
                ^ (emotion.index() as u64).wrapping_mul(0x94D049BB133111EB),
        );
        let mut jig = |v: f64, scale: f64| {
            let delta = (rng.gen::<f64>() - 0.5) * 2.0 * self.idiosyncrasy * scale;
            v + delta
        };
        EmotionProfile {
            f0_scale: jig(blended.f0_scale, 0.10).max(0.5),
            f0_range: jig(blended.f0_range, 0.25).max(0.1),
            rate: jig(blended.rate, 0.12).max(0.4),
            energy: jig(blended.energy, 0.25).max(0.1),
            jitter: jig(blended.jitter, 0.01).max(0.001),
            shimmer: jig(blended.shimmer, 0.02).max(0.005),
            breathiness: jig(blended.breathiness, 0.05).clamp(0.0, 0.9),
            tilt_db_per_octave: jig(blended.tilt_db_per_octave, 1.0),
            attack: jig(blended.attack, 0.2).max(0.2),
            final_rise: jig(blended.final_rise, 0.05),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Speaker::generate(3, Gender::Female, 0.2, 99);
        let b = Speaker::generate(3, Gender::Female, 0.2, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_ids_give_distinct_voices() {
        let a = Speaker::generate(0, Gender::Male, 0.2, 1);
        let b = Speaker::generate(1, Gender::Male, 0.2, 1);
        assert_ne!(a.base_f0(), b.base_f0());
    }

    #[test]
    fn gender_sets_f0_band() {
        for id in 0..20 {
            let m = Speaker::generate(id, Gender::Male, 0.1, 5);
            let f = Speaker::generate(id, Gender::Female, 0.1, 5);
            assert!((95.0..135.0).contains(&m.base_f0()));
            assert!((175.0..235.0).contains(&f.base_f0()));
            assert!(f.formant_scale() > m.formant_scale());
        }
    }

    #[test]
    fn render_is_deterministic_per_emotion() {
        let s = Speaker::generate(2, Gender::Male, 0.3, 7);
        assert_eq!(s.render(Emotion::Anger), s.render(Emotion::Anger));
        assert_ne!(s.render(Emotion::Anger), s.render(Emotion::Sad));
    }

    #[test]
    fn zero_variation_reproduces_canonical_profiles() {
        let s = Speaker::generate(0, Gender::Female, 0.0, 11);
        let r = s.render(Emotion::Anger);
        let canonical = Emotion::Anger.profile();
        assert!((r.energy - canonical.energy).abs() < 1e-9);
        assert!((r.f0_scale - canonical.f0_scale).abs() < 1e-9);
    }

    #[test]
    fn high_variation_moves_profiles_toward_neutral_overlap() {
        // With large variation, some speaker's anger energy drops well below
        // the canonical 1.85.
        let canonical = Emotion::Anger.profile().energy;
        let min_energy = (0..60)
            .map(|id| {
                Speaker::generate(id, Gender::Male, 0.6, 13)
                    .render(Emotion::Anger)
                    .energy
            })
            .fold(f64::INFINITY, f64::min);
        assert!(min_energy < 0.8 * canonical, "min anger energy {min_energy}");
    }
}
