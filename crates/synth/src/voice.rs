//! Glottal source generation.
//!
//! The voiced excitation is a Rosenberg-pulse train with jitter (period
//! perturbation), shimmer (amplitude perturbation) and aspiration noise —
//! the voice-quality parameters that differ across emotions and that the
//! paper's features (jitter/shimmer proxies, spectral shape) pick up.

use emoleak_dsp::noise::Gaussian;
use rand::Rng;

/// Parameters for one stretch of voiced excitation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlottalParams {
    /// Nominal fundamental frequency trajectory is supplied per sample; this
    /// is the cycle-to-cycle random perturbation as a fraction of the period.
    pub jitter: f64,
    /// Cycle amplitude perturbation (fraction).
    pub shimmer: f64,
    /// Aspiration-noise mix in [0, 1].
    pub breathiness: f64,
}

/// Generates a voiced glottal source following the per-sample `f0` contour
/// (Hz) at sampling rate `fs`.
///
/// The output has roughly unit peak amplitude before breath noise is mixed
/// in. Returns an empty vector for an empty contour.
///
/// # Panics
///
/// Panics if `fs` is not positive.
pub fn glottal_source<R: Rng + ?Sized>(
    rng: &mut R,
    f0: &[f64],
    fs: f64,
    params: GlottalParams,
) -> Vec<f64> {
    assert!(fs > 0.0, "sampling rate must be positive");
    let n = f0.len();
    let mut out = vec![0.0; n];
    if n == 0 {
        return out;
    }
    let mut gauss = Gaussian::new();
    let mut i = 0usize;
    while i < n {
        let f = f0[i].max(20.0);
        let nominal_period = fs / f;
        let period =
            (nominal_period * (1.0 + gauss.sample(rng, 0.0, params.jitter))).max(4.0);
        let amp = (1.0 + gauss.sample(rng, 0.0, params.shimmer)).max(0.05);
        let len = period.round() as usize;
        write_rosenberg_pulse(&mut out[i..], len.min(n - i), len, amp);
        i += len.max(1);
    }
    if params.breathiness > 0.0 {
        // Aspiration: noise modulated by the glottal open phase (approximated
        // by the pulse amplitude itself) plus a constant floor.
        for v in out.iter_mut() {
            let aspiration = gauss.sample(rng, 0.0, 0.3) * (0.3 + v.abs());
            *v = (1.0 - params.breathiness) * *v + params.breathiness * aspiration;
        }
    }
    out
}

/// Writes one Rosenberg glottal pulse of total period `period` samples into
/// `dst` (truncated to `avail` samples): rising phase 40 % of the period,
/// falling 16 %, closed otherwise.
fn write_rosenberg_pulse(dst: &mut [f64], avail: usize, period: usize, amp: f64) {
    let tp = (0.4 * period as f64).max(1.0);
    let tn = (0.16 * period as f64).max(1.0);
    for (t, v) in dst.iter_mut().enumerate().take(avail) {
        let t = t as f64;
        *v = if t < tp {
            amp * 0.5 * (1.0 - (std::f64::consts::PI * t / tp).cos())
        } else if t < tp + tn {
            amp * (std::f64::consts::PI * (t - tp) / (2.0 * tn)).cos()
        } else {
            0.0
        };
    }
}

/// A one-pole spectral-tilt filter: positive `tilt_db_per_octave` brightens
/// (emphasizes highs), negative darkens. The mapping is approximate but
/// monotone, which is all the emotion coding needs.
pub fn apply_tilt(signal: &[f64], tilt_db_per_octave: f64) -> Vec<f64> {
    if tilt_db_per_octave.abs() < 1e-9 {
        return signal.to_vec();
    }
    // Map tilt to a first-order shelf coefficient.
    let a = (tilt_db_per_octave.abs() / 12.0).clamp(0.0, 0.95);
    let mut out = Vec::with_capacity(signal.len());
    let mut prev_in = 0.0;
    let mut prev_out = 0.0;
    for &x in signal {
        let y = if tilt_db_per_octave > 0.0 {
            // Pre-emphasis (difference) blended with identity.
            (1.0 - a) * x + a * (x - prev_in) * 2.0
        } else {
            // De-emphasis (leaky integrator) blended with identity.
            (1.0 - a) * x + a * (prev_out * 0.9 + x * 0.1)
        };
        prev_in = x;
        prev_out = y;
        out.push(y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_dsp::{stats, Fft};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    const CLEAN: GlottalParams = GlottalParams { jitter: 0.0, shimmer: 0.0, breathiness: 0.0 };

    #[test]
    fn pulse_train_is_periodic_at_f0() {
        let fs = 8000.0;
        let f0 = vec![200.0; 8192];
        let src = glottal_source(&mut rng(1), &f0, fs, CLEAN);
        let fft = Fft::new(8192);
        let p = fft.power_spectrum(&src);
        // Fundamental peak at 200 Hz (bin 204.8 → search window).
        let bin = |f: f64| (f / fs * 8192.0).round() as usize;
        let near = |k: usize| p[k - 2..=k + 2].iter().cloned().fold(0.0f64, f64::max);
        let fundamental = near(bin(200.0));
        let trough = near(bin(300.0));
        assert!(fundamental > 10.0 * trough, "f0 {fundamental} vs trough {trough}");
    }

    #[test]
    fn output_length_matches_contour() {
        let src = glottal_source(&mut rng(2), &vec![150.0; 1000], 8000.0, CLEAN);
        assert_eq!(src.len(), 1000);
        assert!(glottal_source(&mut rng(2), &[], 8000.0, CLEAN).is_empty());
    }

    #[test]
    fn jitter_spreads_the_spectrum() {
        let fs = 8000.0;
        let f0 = vec![180.0; 16384];
        let spectral_peakiness = |jitter: f64| {
            let src = glottal_source(
                &mut rng(3),
                &f0,
                fs,
                GlottalParams { jitter, shimmer: 0.0, breathiness: 0.0 },
            );
            let fft = Fft::new(16384);
            let p = fft.power_spectrum(&src);
            let max = p[10..].iter().cloned().fold(0.0f64, f64::max);
            let total: f64 = p[10..].iter().sum();
            max / total
        };
        assert!(spectral_peakiness(0.0) > 1.8 * spectral_peakiness(0.06));
    }

    #[test]
    fn shimmer_varies_cycle_amplitudes() {
        let fs = 8000.0;
        let f0 = vec![100.0; 16000];
        let smooth = glottal_source(&mut rng(4), &f0, fs, CLEAN);
        let rough = glottal_source(
            &mut rng(4),
            &f0,
            fs,
            GlottalParams { jitter: 0.0, shimmer: 0.15, breathiness: 0.0 },
        );
        // Peak amplitudes per 80-sample cycle should vary more with shimmer.
        let cycle_peaks = |x: &[f64]| -> Vec<f64> {
            x.chunks(80).map(|c| c.iter().cloned().fold(0.0f64, f64::max)).collect()
        };
        let sd_smooth = stats::std_dev(&cycle_peaks(&smooth));
        let sd_rough = stats::std_dev(&cycle_peaks(&rough));
        assert!(sd_rough > 2.0 * sd_smooth, "{sd_rough} vs {sd_smooth}");
    }

    #[test]
    fn breathiness_adds_noise_floor() {
        let fs = 8000.0;
        let f0 = vec![150.0; 8192];
        let clean = glottal_source(&mut rng(5), &f0, fs, CLEAN);
        let breathy = glottal_source(
            &mut rng(5),
            &f0,
            fs,
            GlottalParams { jitter: 0.0, shimmer: 0.0, breathiness: 0.5 },
        );
        let fft = Fft::new(8192);
        let hf = |x: &[f64]| {
            let p = fft.power_spectrum(x);
            p[3000..].iter().sum::<f64>()
        };
        assert!(hf(&breathy) > 5.0 * hf(&clean));
    }

    #[test]
    fn tilt_brightens_or_darkens() {
        let fs = 8000.0;
        let f0 = vec![150.0; 8192];
        let src = glottal_source(&mut rng(6), &f0, fs, CLEAN);
        let fft = Fft::new(8192);
        let ratio_hf = |x: &[f64]| {
            let p = fft.power_spectrum(x);
            let hf: f64 = p[2000..].iter().sum();
            let lf: f64 = p[..500].iter().sum();
            hf / lf
        };
        let base = ratio_hf(&src);
        assert!(ratio_hf(&apply_tilt(&src, 3.0)) > base);
        assert!(ratio_hf(&apply_tilt(&src, -3.0)) < base);
        // Zero tilt is identity.
        assert_eq!(apply_tilt(&src, 0.0), src);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let f0 = vec![120.0; 2000];
        let p = GlottalParams { jitter: 0.02, shimmer: 0.05, breathiness: 0.2 };
        let a = glottal_source(&mut rng(7), &f0, 8000.0, p);
        let b = glottal_source(&mut rng(7), &f0, 8000.0, p);
        assert_eq!(a, b);
    }
}
