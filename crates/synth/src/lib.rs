//! # emoleak-synth
//!
//! Parametric emotional-speech synthesizer substituting the SAVEE, TESS and
//! CREMA-D corpora used by the EmoLeak paper.
//!
//! The real corpora are recordings of actors producing scripted utterances in
//! seven (SAVEE/TESS) or six (CREMA-D) emotional states. We cannot ship those
//! recordings, so this crate generates *structurally equivalent* corpora with
//! a glottal source–filter synthesizer whose prosody parameters (fundamental
//! frequency level and range, jitter, shimmer, energy, speaking rate,
//! spectral tilt, breathiness) are modulated per emotion — precisely the
//! acoustic correlates that the speech-emotion-recognition literature (and
//! EmoLeak's feature set) relies on.
//!
//! Dataset difficulty is reproduced through speaker structure: TESS has two
//! consistent speakers (easiest), SAVEE four, CREMA-D ninety-one
//! crowd-sourced actors with high expressive variation (hardest). Every clip
//! is deterministic given the corpus seed.
//!
//! # Example
//!
//! ```
//! use emoleak_synth::{CorpusSpec, Emotion};
//!
//! let corpus = CorpusSpec::tess().with_clips_per_cell(2);
//! assert_eq!(corpus.total_clips(), 2 * 7 * 2);
//! let clip = corpus.clip(0, Emotion::Anger, 0);
//! assert!(!clip.samples.is_empty());
//! assert_eq!(clip.emotion, Emotion::Anger);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod emotion;
pub mod formant;
pub mod prosody;
pub mod speaker;
pub mod utterance;
pub mod voice;

pub use corpus::{Clip, CorpusSpec};
pub use emotion::{Emotion, EmotionProfile};
pub use speaker::{Gender, Speaker};
pub use utterance::{Utterance, UtteranceConfig};
