//! Corpus builders mirroring the structure of SAVEE, TESS and CREMA-D.
//!
//! Each corpus is a deterministic generator: `(speaker, emotion, repetition)`
//! maps to exactly one clip given the corpus seed, so every experiment in the
//! paper's tables can be re-run bit-identically.

use crate::emotion::Emotion;
use crate::speaker::{Gender, Speaker};
use crate::utterance::{Utterance, UtteranceConfig};
use serde::{Deserialize, Serialize};

/// One audio clip of the corpus with its ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// Mono waveform.
    pub samples: Vec<f64>,
    /// Sampling rate in Hz.
    pub fs: f64,
    /// Acted emotion (the classification label).
    pub emotion: Emotion,
    /// Speaker index within the corpus.
    pub speaker: u32,
    /// Repetition index within the (speaker, emotion) cell.
    pub repetition: usize,
    /// Ground-truth voiced spans in samples (for region-detector scoring).
    pub voiced_spans: Vec<(usize, usize)>,
}

impl Clip {
    /// Clip duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.fs
    }
}

/// The recipe for a deterministic synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    name: String,
    speakers: Vec<Speaker>,
    emotions: Vec<Emotion>,
    clips_per_cell: usize,
    utterance: UtteranceConfig,
    within_variation: f64,
    seed: u64,
}

impl CorpusSpec {
    /// Builds a custom corpus.
    ///
    /// # Panics
    ///
    /// Panics if any of `num_speakers`, `emotions`, `clips_per_cell` is
    /// empty/zero.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: &str,
        num_speakers: usize,
        genders: &[Gender],
        emotions: &[Emotion],
        clips_per_cell: usize,
        expressivity_variation: f64,
        within_variation: f64,
        utterance: UtteranceConfig,
        seed: u64,
    ) -> CorpusSpec {
        assert!(num_speakers > 0, "corpus needs at least one speaker");
        assert!(!emotions.is_empty(), "corpus needs at least one emotion");
        assert!(clips_per_cell > 0, "corpus needs at least one clip per cell");
        assert!(!genders.is_empty(), "corpus needs at least one gender");
        let speakers = (0..num_speakers as u32)
            .map(|id| {
                Speaker::generate(
                    id,
                    genders[id as usize % genders.len()],
                    expressivity_variation,
                    seed,
                )
            })
            .collect();
        CorpusSpec {
            name: name.to_string(),
            speakers,
            emotions: emotions.to_vec(),
            clips_per_cell,
            utterance,
            within_variation,
            seed,
        }
    }

    /// SAVEE-like corpus: 4 male speakers × 7 emotions, ~480 clips total
    /// (≈17 clips per cell), sentence-length utterances, moderate
    /// expressivity variation.
    pub fn savee() -> CorpusSpec {
        CorpusSpec::custom(
            "SAVEE",
            4,
            &[Gender::Male],
            &Emotion::ALL7,
            17,
            0.60,
            1.00,
            UtteranceConfig { syllables: 7, syllable_slot_s: 0.20, ..Default::default() },
            0x5AEE_0001,
        )
    }

    /// TESS-like corpus: 2 female speakers × 7 emotions, 2800 clips total
    /// (200 per cell), short carrier-phrase utterances ("Say the word ..."),
    /// low expressivity variation (consistent trained actors).
    pub fn tess() -> CorpusSpec {
        CorpusSpec::custom(
            "TESS",
            2,
            &[Gender::Female],
            &Emotion::ALL7,
            200,
            0.05,
            0.06,
            UtteranceConfig { syllables: 4, syllable_slot_s: 0.22, ..Default::default() },
            0x7E55_0001,
        )
    }

    /// CREMA-D-like corpus: 91 mixed-gender speakers × 6 emotions (no
    /// surprise), ~7442 clips total (≈13–14 per cell), high expressivity
    /// variation (crowd-sourced actors).
    pub fn crema_d() -> CorpusSpec {
        CorpusSpec::custom(
            "CREMA-D",
            91,
            &[Gender::Male, Gender::Female],
            &Emotion::ALL6,
            13,
            0.42,
            0.45,
            UtteranceConfig { syllables: 5, syllable_slot_s: 0.21, ..Default::default() },
            0xC4E3_0001,
        )
    }

    /// Scales the corpus to `n` clips per (speaker, emotion) cell —
    /// experiments use this to trade accuracy variance for runtime.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_clips_per_cell(mut self, n: usize) -> CorpusSpec {
        assert!(n > 0, "corpus needs at least one clip per cell");
        self.clips_per_cell = n;
        self
    }

    /// Replaces the corpus seed (for repeat-run variance studies).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> CorpusSpec {
        self.seed = seed;
        self
    }

    /// The corpus display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The speakers of this corpus.
    pub fn speakers(&self) -> &[Speaker] {
        &self.speakers
    }

    /// The emotion classes of this corpus.
    pub fn emotions(&self) -> &[Emotion] {
        &self.emotions
    }

    /// Clips per (speaker, emotion) cell.
    pub fn clips_per_cell(&self) -> usize {
        self.clips_per_cell
    }

    /// Total clip count (`speakers × emotions × clips_per_cell`).
    pub fn total_clips(&self) -> usize {
        self.speakers.len() * self.emotions.len() * self.clips_per_cell
    }

    /// Random-guess accuracy for this corpus (1 / #classes).
    pub fn random_guess(&self) -> f64 {
        1.0 / self.emotions.len() as f64
    }

    /// Synthesizes one clip deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `speaker_idx >= speakers()` or `repetition >=
    /// clips_per_cell()` or `emotion` is not in this corpus.
    pub fn clip(&self, speaker_idx: usize, emotion: Emotion, repetition: usize) -> Clip {
        assert!(speaker_idx < self.speakers.len(), "speaker index out of range");
        assert!(repetition < self.clips_per_cell, "repetition out of range");
        assert!(
            self.emotions.contains(&emotion),
            "emotion {emotion} not in corpus {}",
            self.name
        );
        let speaker = &self.speakers[speaker_idx];
        let seed = self
            .seed
            .wrapping_mul(0x2545F4914F6CDD1D)
            .wrapping_add((speaker_idx as u64) << 40)
            .wrapping_add((emotion.index() as u64) << 32)
            .wrapping_add(repetition as u64);
        use rand::SeedableRng;
        let mut clip_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        let profile = speaker
            .render(emotion)
            .perturb(&mut clip_rng, self.within_variation);
        let utt = Utterance::synthesize(speaker, &profile, &self.utterance, seed);
        Clip {
            samples: utt.samples,
            fs: utt.fs,
            emotion,
            speaker: speaker.id(),
            repetition,
            voiced_spans: utt.voiced_spans,
        }
    }

    /// Synthesizes the clip at flat index `i` of the
    /// (speaker, emotion, repetition) iteration order — the random-access
    /// twin of [`CorpusSpec::iter`], which lets parallel harvesters
    /// synthesize any subset of the corpus independently while preserving
    /// the exact clips (and clip order) of the sequential iterator.
    ///
    /// # Panics
    ///
    /// Panics if `i >= total_clips()`.
    pub fn clip_at(&self, i: usize) -> Clip {
        assert!(i < self.total_clips(), "clip index {i} out of range");
        let rep = self.clips_per_cell;
        let emo = self.emotions.len();
        let r = i % rep;
        let e = (i / rep) % emo;
        let s = i / (rep * emo);
        self.clip(s, self.emotions[e], r)
    }

    /// Iterates over all clips in (speaker, emotion, repetition) order,
    /// synthesizing lazily — the corpus is never materialized in memory.
    pub fn iter(&self) -> impl Iterator<Item = Clip> + '_ {
        let spk = self.speakers.len();
        let emo = self.emotions.len();
        let rep = self.clips_per_cell;
        (0..spk).flat_map(move |s| {
            (0..emo).flat_map(move |e| (0..rep).map(move |r| self.clip(s, self.emotions[e], r)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_dsp::stats;

    #[test]
    fn corpus_shapes_match_the_paper() {
        let savee = CorpusSpec::savee();
        assert_eq!(savee.speakers().len(), 4);
        assert_eq!(savee.emotions().len(), 7);
        assert_eq!(savee.total_clips(), 4 * 7 * 17); // 476 ≈ 480
        let tess = CorpusSpec::tess();
        assert_eq!(tess.total_clips(), 2800);
        let crema = CorpusSpec::crema_d();
        assert_eq!(crema.speakers().len(), 91);
        assert_eq!(crema.emotions().len(), 6);
        assert_eq!(crema.total_clips(), 91 * 6 * 13); // 7098 ≈ 7442
        assert!((tess.random_guess() - 1.0 / 7.0).abs() < 1e-12);
        assert!((crema.random_guess() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn clips_are_deterministic() {
        let c = CorpusSpec::tess().with_clips_per_cell(2);
        let a = c.clip(0, Emotion::Fear, 1);
        let b = c.clip(0, Emotion::Fear, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn repetitions_differ_within_a_cell() {
        let c = CorpusSpec::tess().with_clips_per_cell(3);
        let a = c.clip(1, Emotion::Happy, 0);
        let b = c.clip(1, Emotion::Happy, 1);
        assert_ne!(a.samples, b.samples);
        assert_eq!(a.emotion, b.emotion);
    }

    #[test]
    fn clip_at_matches_iteration_order() {
        let c = CorpusSpec::savee().with_clips_per_cell(2);
        for (i, clip) in c.iter().enumerate() {
            let random_access = c.clip_at(i);
            assert_eq!(clip, random_access, "flat index {i} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn clip_at_rejects_out_of_range() {
        let c = CorpusSpec::tess().with_clips_per_cell(1);
        c.clip_at(c.total_clips());
    }

    #[test]
    fn iter_yields_every_cell() {
        let c = CorpusSpec::savee().with_clips_per_cell(2);
        let clips: Vec<Clip> = c.iter().collect();
        assert_eq!(clips.len(), c.total_clips());
        for e in Emotion::ALL7 {
            assert!(clips.iter().any(|cl| cl.emotion == e));
        }
    }

    #[test]
    fn emotion_energy_ordering_survives_synthesis() {
        // Averaged over the consistent TESS speakers, anger clips should be
        // louder than sad clips.
        let c = CorpusSpec::tess().with_clips_per_cell(4);
        let mean_rms = |e: Emotion| {
            let vals: Vec<f64> = (0..2)
                .flat_map(|s| (0..4).map(move |r| (s, r)))
                .map(|(s, r)| stats::rms(&c.clip(s, e, r).samples))
                .collect();
            stats::mean(&vals)
        };
        assert!(mean_rms(Emotion::Anger) > 1.3 * mean_rms(Emotion::Sad));
    }

    #[test]
    #[should_panic(expected = "emotion")]
    fn crema_d_rejects_surprise() {
        CorpusSpec::crema_d().clip(0, Emotion::Surprise, 0);
    }

    #[test]
    fn with_seed_changes_clips() {
        let a = CorpusSpec::tess().with_clips_per_cell(1);
        let b = a.clone().with_seed(999);
        assert_ne!(
            a.clip(0, Emotion::Neutral, 0).samples,
            b.clip(0, Emotion::Neutral, 0).samples
        );
    }
}
