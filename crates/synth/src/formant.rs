//! Vocal-tract formant filtering.
//!
//! A vowel is modeled as a cascade of three two-pole resonators at the vowel's
//! formant frequencies, scaled by the speaker's vocal-tract length. This is
//! the classic Klatt-style cascade synthesizer reduced to what the EmoLeak
//! channel can observe.

use emoleak_dsp::filter::Biquad;
use serde::{Deserialize, Serialize};

/// A vowel identity with canonical (adult male) formant frequencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vowel {
    /// /ɑ/ as in "father".
    A,
    /// /ɛ/ as in "bed".
    E,
    /// /i/ as in "see".
    I,
    /// /o/ as in "go".
    O,
    /// /u/ as in "boot".
    U,
}

impl Vowel {
    /// All five vowels.
    pub const ALL: [Vowel; 5] = [Vowel::A, Vowel::E, Vowel::I, Vowel::O, Vowel::U];

    /// Canonical first three formant frequencies in Hz (adult male values).
    pub fn formants(self) -> [f64; 3] {
        match self {
            Vowel::A => [730.0, 1090.0, 2440.0],
            Vowel::E => [530.0, 1840.0, 2480.0],
            Vowel::I => [270.0, 2290.0, 3010.0],
            Vowel::O => [570.0, 840.0, 2410.0],
            Vowel::U => [300.0, 870.0, 2240.0],
        }
    }

    /// Typical formant bandwidths in Hz.
    pub fn bandwidths(self) -> [f64; 3] {
        [80.0, 110.0, 160.0]
    }
}

/// A three-resonator formant filter for one vowel at a given sampling rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FormantFilter {
    sections: Vec<Biquad>,
}

impl FormantFilter {
    /// Builds the filter for `vowel` scaled by `formant_scale` (vocal-tract
    /// length factor) at sampling rate `fs`.
    ///
    /// Formants above 95 % of Nyquist are dropped rather than wrapped.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn new(vowel: Vowel, formant_scale: f64, fs: f64) -> Self {
        assert!(fs > 0.0, "sampling rate must be positive");
        let sections = vowel
            .formants()
            .iter()
            .zip(vowel.bandwidths())
            .filter_map(|(&f, bw)| {
                let freq = f * formant_scale;
                if freq < 0.475 * fs {
                    Some(resonator(freq, bw, fs))
                } else {
                    None
                }
            })
            .collect();
        FormantFilter { sections }
    }

    /// Number of active resonator sections.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Filters a source signal through the resonator cascade.
    pub fn process(&self, source: &[f64]) -> Vec<f64> {
        let mut out = source.to_vec();
        for s in &self.sections {
            out = s.process(&out);
        }
        out
    }
}

/// A two-pole resonator at `freq` Hz with bandwidth `bw` Hz, normalized to
/// unit gain at DC (the Klatt-cascade convention, so that resonators in
/// series each boost their own band without attenuating the others').
fn resonator(freq: f64, bw: f64, fs: f64) -> Biquad {
    let r = (-std::f64::consts::PI * bw / fs).exp();
    let theta = 2.0 * std::f64::consts::PI * freq / fs;
    let a = [-2.0 * r * theta.cos(), r * r];
    // H(z=1) = b0 / (1 + a1 + a2) = 1.
    let b0 = 1.0 + a[0] + a[1];
    Biquad::new([b0, 0.0, 0.0], a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_dsp::Fft;

    #[test]
    fn resonator_peaks_at_its_frequency() {
        let fs = 8000.0;
        let b = resonator(700.0, 80.0, fs);
        let mag = |f: f64| b.magnitude_at(2.0 * std::f64::consts::PI * f / fs);
        assert!(mag(700.0) > mag(400.0));
        assert!(mag(700.0) > mag(1200.0));
        // DC gain is one (Klatt normalization).
        assert!((mag(0.0) - 1.0).abs() < 1e-9);
        // Resonance gain well above unity.
        assert!(mag(700.0) > 3.0);
    }

    #[test]
    fn vowel_a_shapes_impulse_spectrum() {
        let fs = 8000.0;
        let filt = FormantFilter::new(Vowel::A, 1.0, fs);
        assert_eq!(filt.num_sections(), 3);
        let mut impulse = vec![0.0; 4096];
        impulse[0] = 1.0;
        let resp = filt.process(&impulse);
        let fft = Fft::new(4096);
        let p = fft.power_spectrum(&resp);
        let bin = |f: f64| (f / fs * 4096.0).round() as usize;
        // Formant peaks dominate the trough between F2 and F3.
        assert!(p[bin(730.0)] > 3.0 * p[bin(1800.0)]);
        assert!(p[bin(1090.0)] > 2.0 * p[bin(1800.0)]);
    }

    #[test]
    fn formant_scale_shifts_spectrum_up() {
        let fs = 8000.0;
        let male = FormantFilter::new(Vowel::O, 1.0, fs);
        let female = FormantFilter::new(Vowel::O, 1.18, fs);
        let mut impulse = vec![0.0; 4096];
        impulse[0] = 1.0;
        let fft = Fft::new(4096);
        let peak = |f: &FormantFilter| {
            let p = fft.power_spectrum(&f.process(&impulse));
            p.iter().enumerate().skip(10).max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0
        };
        assert!(peak(&female) > peak(&male));
    }

    #[test]
    fn formants_above_nyquist_are_dropped() {
        // At fs = 2000, only formants below 950 Hz survive.
        let filt = FormantFilter::new(Vowel::I, 1.0, 2000.0);
        assert_eq!(filt.num_sections(), 1); // only F1 = 270 Hz
    }

    #[test]
    fn all_vowels_have_increasing_formants() {
        for v in Vowel::ALL {
            let f = v.formants();
            assert!(f[0] < f[1] && f[1] < f[2], "{v:?}");
        }
    }
}
