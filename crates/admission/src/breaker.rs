//! The fleet circuit breaker.
//!
//! Where each session's [`DegradationLadder`](emoleak_stream::DegradationLadder)
//! reacts to its *own* deadline misses, the fleet breaker watches the
//! *shared* overload signal (standing queue latency, memory pressure) and
//! walks the whole fleet down the
//! [`FleetState`](emoleak_core::admission::FleetState) ladder — Healthy →
//! Degraded → Saturated → BrownOut — with the same hysteresis discipline:
//! tripping is never frozen (overload must be escapable), recovery needs a
//! long calm streak *and* an elapsed cooldown, so the fleet settles instead
//! of flapping.

use emoleak_core::admission::FleetState;

/// Tuning for the fleet breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive overloaded observations that trip one state worse.
    pub trip_after: u32,
    /// Consecutive calm observations that recover one state better.
    pub recover_after: u32,
    /// Observations after any transition during which recovery is frozen
    /// (tripping never is).
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        // recover_after ≫ trip_after: falling is easy, climbing back is
        // earned — the same hysteresis shape as the session ladder.
        BreakerConfig { trip_after: 3, recover_after: 10, cooldown: 5 }
    }
}

/// The fleet-state machine. Feed it one `observe` per admission tick.
#[derive(Debug, Clone)]
pub struct FleetBreaker {
    cfg: BreakerConfig,
    state: FleetState,
    strained: u32,
    calm: u32,
    cooldown_left: u32,
}

impl FleetBreaker {
    /// A breaker starting Healthy.
    pub fn new(cfg: BreakerConfig) -> Self {
        FleetBreaker { cfg, state: FleetState::Healthy, strained: 0, calm: 0, cooldown_left: 0 }
    }

    /// The current fleet state.
    pub fn state(&self) -> FleetState {
        self.state
    }

    /// Records one overload observation; returns the transition it caused,
    /// if any.
    pub fn observe(&mut self, overloaded: bool) -> Option<(FleetState, FleetState)> {
        self.cooldown_left = self.cooldown_left.saturating_sub(1);
        if overloaded {
            self.calm = 0;
            self.strained += 1;
            if self.strained >= self.cfg.trip_after && self.state != FleetState::BrownOut {
                return Some(self.shift(self.state.worse()));
            }
        } else {
            self.strained = 0;
            self.calm += 1;
            if self.calm >= self.cfg.recover_after
                && self.cooldown_left == 0
                && self.state != FleetState::Healthy
            {
                return Some(self.shift(self.state.better()));
            }
        }
        None
    }

    fn shift(&mut self, to: FleetState) -> (FleetState, FleetState) {
        let t = (self.state, to);
        self.state = to;
        self.strained = 0;
        self.calm = 0;
        self.cooldown_left = self.cfg.cooldown;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FleetState::*;

    fn breaker() -> FleetBreaker {
        FleetBreaker::new(BreakerConfig { trip_after: 2, recover_after: 4, cooldown: 3 })
    }

    #[test]
    fn sustained_overload_walks_the_whole_ladder() {
        let mut b = breaker();
        let mut transitions = Vec::new();
        for _ in 0..10 {
            if let Some(t) = b.observe(true) {
                transitions.push(t);
            }
        }
        assert_eq!(
            transitions,
            vec![(Healthy, Degraded), (Degraded, Saturated), (Saturated, BrownOut)]
        );
        assert_eq!(b.state(), BrownOut, "brown-out is the floor");
    }

    #[test]
    fn one_calm_tick_resets_the_strain_streak() {
        let mut b = breaker();
        assert_eq!(b.observe(true), None);
        assert_eq!(b.observe(false), None);
        assert_eq!(b.observe(true), None, "streak restarted");
        assert_eq!(b.observe(true), Some((Healthy, Degraded)));
    }

    #[test]
    fn recovery_needs_calm_streak_and_cooldown() {
        let mut b = breaker();
        b.observe(true);
        b.observe(true); // -> Degraded, cooldown 3
        let mut transitions = Vec::new();
        for _ in 0..12 {
            if let Some(t) = b.observe(false) {
                transitions.push(t);
            }
        }
        assert_eq!(transitions, vec![(Degraded, Healthy)]);
        // Healthy is the ceiling: further calm changes nothing.
        for _ in 0..20 {
            assert_eq!(b.observe(false), None);
        }
    }

    #[test]
    fn tripping_ignores_cooldown() {
        let mut b = breaker();
        b.observe(true);
        b.observe(true); // -> Degraded, fresh cooldown
        b.observe(true);
        assert_eq!(b.observe(true), Some((Degraded, Saturated)), "cooldown never delays a trip");
    }
}
