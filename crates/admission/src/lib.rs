//! `emoleak-admission`: multi-tenant overload protection for the streaming
//! service.
//!
//! `emoleak-stream` keeps *one* session alive under duress — retries,
//! supervision, a per-session degradation ladder. This crate protects a
//! *fleet* of sessions sharing one box from each other and from hostile
//! load, with the classic overload-protection stack:
//!
//! | threat | mechanism | module |
//! |---|---|---|
//! | one tenant floods the front door | per-tenant token buckets | [`tokens`] |
//! | one tenant hoards every slot | per-tenant + global bulkheads | [`bulkhead`] |
//! | queues hide standing latency | deterministic CoDel shedding | [`codel`] |
//! | the whole fleet saturates | circuit breaker driving the shared [`LevelCap`](emoleak_stream::LevelCap) | [`breaker`] |
//! | unbounded buffering | global byte budget ([`ByteGauge`](emoleak_stream::ByteGauge)) | [`controller`] |
//!
//! Everything is deterministic: time is a logical tick the caller
//! advances, token buckets are integer arithmetic, and CoDel's control law
//! uses only IEEE-754 `sqrt` — so an overload scenario replays
//! byte-identically under any thread count. [`AdmissionController`] is the
//! pure state machine the chaos harness drives; [`FleetGate`] wires it to
//! real [`StreamService`](emoleak_stream::StreamService) runs.
//!
//! Every refusal is a typed
//! [`AdmissionError`](emoleak_core::admission::AdmissionError), every shed
//! and fleet transition lands in the [`ServiceLog`](emoleak_stream::ServiceLog)
//! and (optionally) the write-ahead journal — overload handling is
//! observable, accountable (`offered == served + rejected + shed`), and
//! never silent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod bulkhead;
pub mod codel;
pub mod config;
pub mod controller;
pub mod gate;
pub mod tokens;

pub use breaker::{BreakerConfig, FleetBreaker};
pub use bulkhead::Bulkhead;
pub use codel::{Codel, CodelConfig, CodelVerdict};
pub use config::AdmissionConfig;
pub use controller::{AdmissionController, AdmissionStats, QueuedChunk, TenantStats};
pub use gate::{FleetGate, SessionPermit};
pub use tokens::TokenBucket;

/// Commonly used types for overload-protection consumers.
pub mod prelude {
    pub use crate::config::AdmissionConfig;
    pub use crate::controller::{AdmissionController, AdmissionStats};
    pub use crate::gate::{FleetGate, SessionPermit};
    pub use emoleak_core::admission::{AdmissionError, FleetState};
}
