//! Concurrency bulkheads.
//!
//! A bulkhead caps how many sessions may be in flight at once — one per
//! tenant (no tenant hoards the fleet) and one global (the box has finite
//! cores and memory). Named for a ship's bulkheads: a flooded compartment
//! must not sink the vessel.

/// A counting concurrency limiter.
#[derive(Debug, Clone)]
pub struct Bulkhead {
    limit: usize,
    in_flight: usize,
    peak: usize,
}

impl Bulkhead {
    /// A bulkhead admitting at most `limit` concurrent holders.
    pub fn new(limit: usize) -> Self {
        Bulkhead { limit, in_flight: 0, peak: 0 }
    }

    /// Takes a slot; `false` means the bulkhead is full.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_flight < self.limit {
            self.in_flight += 1;
            self.peak = self.peak.max(self.in_flight);
            true
        } else {
            false
        }
    }

    /// Returns a slot. Releasing more than was acquired saturates at zero
    /// rather than corrupting the count.
    pub fn release(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Slots currently held.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The most slots ever held at once.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_the_line_at_limit() {
        let mut b = Bulkhead::new(2);
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        assert!(!b.try_acquire(), "the third holder is refused");
        assert_eq!(b.in_flight(), 2);
        b.release();
        assert!(b.try_acquire(), "a released slot is reusable");
        assert_eq!(b.peak(), 2);
    }

    #[test]
    fn over_release_saturates() {
        let mut b = Bulkhead::new(1);
        b.release();
        b.release();
        assert_eq!(b.in_flight(), 0);
        assert!(b.try_acquire());
        assert!(!b.try_acquire(), "spurious releases must not mint slots");
    }

    #[test]
    fn zero_limit_admits_nobody() {
        let mut b = Bulkhead::new(0);
        assert!(!b.try_acquire());
    }
}
