//! Deterministic token-bucket rate limiting.
//!
//! One bucket per tenant bounds the *rate* of chunk offers (the bulkhead
//! bounds *concurrency*). The bucket runs on the admission layer's logical
//! clock — [`TICKS_PER_SEC`] ticks per second — and in integer
//! *millitokens*, so refill is exact: at `rate` tokens per second, one
//! tick refills exactly `rate` millitokens. No floats, no rounding drift,
//! no wall clock: the same offer sequence always gets the same verdicts.

/// Logical ticks per second: one tick is a millisecond.
pub const TICKS_PER_SEC: u64 = 1000;

/// Millitokens one request costs.
const MILLI: u64 = 1000;

/// An integer token bucket on the logical clock.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Bucket capacity, millitokens (`burst * 1000`).
    capacity: u64,
    /// Current fill, millitokens.
    fill: u64,
    /// Refill per tick, millitokens (`== rate` tokens/sec).
    rate: u64,
    /// Tick the bucket was last advanced to.
    last: u64,
}

impl TokenBucket {
    /// A bucket admitting `rate` requests per second with bursts up to
    /// `burst` requests. Starts full.
    pub fn new(rate: u64, burst: u64) -> Self {
        let capacity = burst.max(1).saturating_mul(MILLI);
        TokenBucket { capacity, fill: capacity, rate, last: 0 }
    }

    /// Refills for the ticks elapsed since the last advance. The clock
    /// never runs backwards: an earlier `now` is a no-op.
    fn advance(&mut self, now: u64) {
        if now > self.last {
            let elapsed = now - self.last;
            self.fill = self
                .fill
                .saturating_add(elapsed.saturating_mul(self.rate))
                .min(self.capacity);
            self.last = now;
        }
    }

    /// Takes one request's worth of tokens at tick `now`; `false` means
    /// rate-limited.
    pub fn try_take(&mut self, now: u64) -> bool {
        self.advance(now);
        if self.fill >= MILLI {
            self.fill -= MILLI;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u64 {
        self.fill / MILLI
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_steady_rate() {
        // 2 req/s, burst 3: the first 3 offers at t=0 pass, the 4th fails.
        let mut b = TokenBucket::new(2, 3);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
        // 2/s == 2 millitokens per tick: one token every 500 ticks.
        assert!(!b.try_take(499));
        assert!(b.try_take(500));
        assert!(!b.try_take(500));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1000, 2);
        assert!(b.try_take(0) && b.try_take(0));
        // A long idle period refills to burst, not beyond.
        b.advance(1_000_000);
        assert_eq!(b.available(), 2);
    }

    #[test]
    fn clock_never_runs_backwards() {
        let mut b = TokenBucket::new(1, 1);
        assert!(b.try_take(5000));
        assert!(!b.try_take(0), "an earlier tick must not refill");
        assert!(!b.try_take(5999));
        assert!(b.try_take(6000));
    }

    #[test]
    fn deterministic_across_replays() {
        let offers = [0u64, 0, 3, 7, 7, 900, 1000, 1001, 2500];
        let run = || {
            let mut b = TokenBucket::new(2, 2);
            offers.iter().map(|&t| b.try_take(t)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
