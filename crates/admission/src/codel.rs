//! Deterministic CoDel ("controlled delay") load shedding.
//!
//! Bounded queues bound *memory*; they do not bound *staleness* — a queue
//! that is always full serves every item a full queue's worth of latency
//! late. CoDel watches each dequeued item's *sojourn time* and, once the
//! sojourn has stayed above a target for a sustained interval, sheds items
//! at an increasing rate (`interval / sqrt(drops)`) until the queue drains
//! back below target — the classic control law from Nichols & Jacobson,
//! here on the admission layer's logical clock.
//!
//! Determinism: the only non-integer arithmetic is IEEE-754 `sqrt` on
//! exact small integers, which is correctly rounded and identical on every
//! platform — a scenario replays byte-identically.

/// Tuning for the CoDel control law, in logical ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodelConfig {
    /// Acceptable standing sojourn. Above this for a full `interval`, the
    /// queue is judged standing-full and shedding starts.
    pub target: u64,
    /// How long the sojourn must stay above target before the first shed;
    /// also the base of the shedding-rate schedule.
    pub interval: u64,
}

impl Default for CodelConfig {
    fn default() -> Self {
        // The classic 5ms/100ms shape, in ticks (1 tick = 1ms).
        CodelConfig { target: 5, interval: 100 }
    }
}

/// What to do with a dequeued item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodelVerdict {
    /// Serve it.
    Serve,
    /// Shed it: the queue has carried standing latency too long.
    Shed,
}

/// The CoDel state machine. Feed it every dequeue.
#[derive(Debug, Clone)]
pub struct Codel {
    cfg: CodelConfig,
    /// When the sojourn first went above target, if it is still above.
    first_above: Option<u64>,
    /// Next scheduled shed while in the dropping state.
    drop_next: u64,
    /// Sheds in the current dropping episode.
    drop_count: u64,
    dropping: bool,
}

impl Codel {
    /// A fresh controller.
    pub fn new(cfg: CodelConfig) -> Self {
        Codel { cfg, first_above: None, drop_next: 0, drop_count: 0, dropping: false }
    }

    /// `interval / sqrt(drop_count)`: the shed interval shrinks as an
    /// episode persists, draining harder the longer the queue stands.
    fn backoff(&self) -> u64 {
        ((self.cfg.interval as f64) / (self.drop_count.max(1) as f64).sqrt()).max(1.0) as u64
    }

    /// Judges one dequeued item that waited `sojourn` ticks, at tick `now`.
    pub fn on_dequeue(&mut self, sojourn: u64, now: u64) -> CodelVerdict {
        if sojourn < self.cfg.target {
            // Below target: leave the dropping state entirely.
            self.first_above = None;
            self.dropping = false;
            return CodelVerdict::Serve;
        }
        if self.dropping {
            if now >= self.drop_next {
                self.drop_count += 1;
                self.drop_next = now + self.backoff();
                return CodelVerdict::Shed;
            }
            return CodelVerdict::Serve;
        }
        match self.first_above {
            None => {
                self.first_above = Some(now + self.cfg.interval);
                CodelVerdict::Serve
            }
            Some(deadline) if now >= deadline => {
                self.dropping = true;
                self.drop_count = 1;
                self.drop_next = now + self.backoff();
                CodelVerdict::Shed
            }
            Some(_) => CodelVerdict::Serve,
        }
    }

    /// Whether the controller is currently in a shedding episode.
    pub fn dropping(&self) -> bool {
        self.dropping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codel() -> Codel {
        Codel::new(CodelConfig { target: 5, interval: 100 })
    }

    #[test]
    fn short_sojourns_never_shed() {
        let mut c = codel();
        for now in 0..10_000 {
            assert_eq!(c.on_dequeue(4, now), CodelVerdict::Serve);
        }
        assert!(!c.dropping());
    }

    #[test]
    fn standing_latency_sheds_after_a_full_interval() {
        let mut c = codel();
        // Sojourn above target, but the interval has not elapsed: served.
        assert_eq!(c.on_dequeue(50, 0), CodelVerdict::Serve);
        assert_eq!(c.on_dequeue(50, 99), CodelVerdict::Serve);
        // A full interval above target: the first shed.
        assert_eq!(c.on_dequeue(50, 100), CodelVerdict::Shed);
        assert!(c.dropping());
    }

    #[test]
    fn shedding_rate_increases_while_latency_stands() {
        let mut c = codel();
        let mut sheds = Vec::new();
        for now in 0..2000 {
            if c.on_dequeue(50, now) == CodelVerdict::Shed {
                sheds.push(now);
            }
        }
        assert!(sheds.len() > 3, "{sheds:?}");
        let gaps: Vec<u64> = sheds.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).all(|w| w[1] <= w[0]),
            "gaps must shrink (or hold) as the episode persists: {gaps:?}"
        );
    }

    #[test]
    fn recovery_resets_the_episode() {
        let mut c = codel();
        for now in 0..500 {
            c.on_dequeue(50, now);
        }
        assert!(c.dropping());
        assert_eq!(c.on_dequeue(1, 500), CodelVerdict::Serve);
        assert!(!c.dropping(), "a below-target sojourn ends the episode");
        // The next episode again needs a full interval of standing latency.
        assert_eq!(c.on_dequeue(50, 501), CodelVerdict::Serve);
        assert_eq!(c.on_dequeue(50, 600), CodelVerdict::Serve);
        assert_eq!(c.on_dequeue(50, 601), CodelVerdict::Shed);
    }

    #[test]
    fn verdict_sequence_is_deterministic() {
        let run = || {
            let mut c = codel();
            (0..1000)
                .map(|now| c.on_dequeue(if now % 7 == 0 { 2 } else { 60 }, now))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
