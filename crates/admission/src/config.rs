//! Admission-layer tuning, with strict environment overrides.
//!
//! Three knobs are operator-facing and read from the environment through
//! [`emoleak_exec::parse_checked`] — set-but-malformed values error, they
//! are never silently defaulted:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `EMOLEAK_MAX_SESSIONS` | global concurrent-session bulkhead | 8 |
//! | `EMOLEAK_MEM_BUDGET` | fleet byte budget for queued work | 64 MiB |
//! | `EMOLEAK_TENANT_RPS` | per-tenant offered-chunk rate limit | 200/s |

use crate::breaker::BreakerConfig;
use crate::codel::CodelConfig;
use emoleak_core::EmoleakError;
use emoleak_exec::parse_checked;

/// Tuning for an [`AdmissionController`](crate::AdmissionController) /
/// [`FleetGate`](crate::FleetGate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Global bulkhead: concurrent sessions across all tenants.
    pub max_sessions: usize,
    /// Per-tenant bulkhead: concurrent sessions for any one tenant.
    pub tenant_sessions: usize,
    /// Fleet byte budget charged by every queued chunk and region.
    pub mem_budget: u64,
    /// Per-tenant token-bucket rate, offered chunks per second.
    pub tenant_rps: u64,
    /// Per-tenant token-bucket burst, chunks.
    pub tenant_burst: u64,
    /// CoDel shedding tuning for the shared ingest queue.
    pub codel: CodelConfig,
    /// Fleet circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_sessions: 8,
            tenant_sessions: 4,
            mem_budget: 64 << 20,
            tenant_rps: 200,
            tenant_burst: 50,
            codel: CodelConfig::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

impl AdmissionConfig {
    /// The defaults with any `EMOLEAK_MAX_SESSIONS` / `EMOLEAK_MEM_BUDGET`
    /// / `EMOLEAK_TENANT_RPS` overrides applied.
    ///
    /// # Errors
    ///
    /// [`EmoleakError::Config`] when a set knob is malformed or
    /// out of range (zero is out of range for all three).
    pub fn from_env() -> Result<Self, EmoleakError> {
        let mut cfg = AdmissionConfig::default();
        if let Some(n) =
            parse_checked::<usize>("EMOLEAK_MAX_SESSIONS", "a positive integer", |&n| n > 0)?
        {
            cfg.max_sessions = n;
        }
        if let Some(b) =
            parse_checked::<u64>("EMOLEAK_MEM_BUDGET", "a positive byte count", |&b| b > 0)?
        {
            cfg.mem_budget = b;
        }
        if let Some(r) =
            parse_checked::<u64>("EMOLEAK_TENANT_RPS", "a positive rate per second", |&r| r > 0)?
        {
            cfg.tenant_rps = r;
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; this test owns these three names.
    #[test]
    fn env_overrides_are_strict() {
        for name in ["EMOLEAK_MAX_SESSIONS", "EMOLEAK_MEM_BUDGET", "EMOLEAK_TENANT_RPS"] {
            std::env::remove_var(name);
        }
        assert_eq!(AdmissionConfig::from_env().unwrap(), AdmissionConfig::default());

        std::env::set_var("EMOLEAK_MAX_SESSIONS", "3");
        std::env::set_var("EMOLEAK_MEM_BUDGET", "1048576");
        std::env::set_var("EMOLEAK_TENANT_RPS", "17");
        let cfg = AdmissionConfig::from_env().unwrap();
        assert_eq!(cfg.max_sessions, 3);
        assert_eq!(cfg.mem_budget, 1 << 20);
        assert_eq!(cfg.tenant_rps, 17);

        std::env::set_var("EMOLEAK_MAX_SESSIONS", "0");
        let err = AdmissionConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_MAX_SESSIONS"));
        for name in ["EMOLEAK_MAX_SESSIONS", "EMOLEAK_MEM_BUDGET", "EMOLEAK_TENANT_RPS"] {
            std::env::remove_var(name);
        }
    }
}
