//! The admission controller: one deterministic state machine multiplexing
//! many tenants over a shared ingest queue.
//!
//! The controller is driven on a logical clock (ticks). Each tick a caller
//! may [`offer`](AdmissionController::offer) chunks on behalf of tenants,
//! [`drain`](AdmissionController::drain) served work toward the service,
//! and [`observe`](AdmissionController::observe) the overload signal. The
//! front door applies, in order:
//!
//! 1. **brown-out** — a browned-out fleet refuses everything;
//! 2. **per-tenant token bucket** — rate, [`TokenBucket`];
//! 3. **memory budget** — every queued byte is charged against the fleet
//!    [`ByteGauge`], a refused charge is `MemoryExhausted`;
//! 4. **the shared queue** — where CoDel sheds on drain if standing
//!    latency develops.
//!
//! Every outcome increments exactly one counter, so the conservation law
//! `offered == served + rejected + shed + queued + migrated` holds at
//! every tick — the chaos harness asserts it after every scenario. (The
//! `migrated` term is zero for a standalone controller; it counts chunks
//! [`evacuate`](AdmissionController::evacuate)d to another shard when the
//! controller runs inside a fleet.) Sheds and fleet transitions land in
//! the [`ServiceLog`] and, when a [`DurableSink`] is attached, in the
//! write-ahead journal.

use crate::breaker::FleetBreaker;
use crate::bulkhead::Bulkhead;
use crate::codel::{Codel, CodelVerdict};
use crate::config::AdmissionConfig;
use crate::tokens::TokenBucket;
use emoleak_core::admission::{AdmissionError, FleetState};
use emoleak_stream::durable::{ChunkAdmit, ChunkServe, DurableSink};
use emoleak_stream::ladder::LevelCap;
use emoleak_stream::log::{ServiceEvent, ServiceLog};
use emoleak_stream::queue::ByteGauge;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// One admitted chunk waiting in the shared ingest queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedChunk {
    /// The tenant that offered it.
    pub tenant: String,
    /// Its charged cost, bytes.
    pub cost: u64,
    /// The tick it was admitted.
    pub enqueued: u64,
    /// The tenant's chunk sequence number. Assigned per tenant by the
    /// controller (or by a fleet coordinator via
    /// [`offer_tagged`](AdmissionController::offer_tagged)) and preserved
    /// across shard migration, so per-tenant served order is stable no
    /// matter which shard ends up serving the chunk.
    pub seq: u64,
}

/// Per-tenant accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Chunks the tenant offered.
    pub offered: u64,
    /// Chunks served to the backend.
    pub served: u64,
    /// Chunks refused at the front door.
    pub rejected: u64,
    /// Admitted chunks CoDel shed before service.
    pub shed: u64,
    /// Admitted chunks evacuated to another shard before service.
    pub migrated: u64,
    /// Most sessions the tenant ever held at once.
    pub peak_sessions: usize,
}

struct TenantState {
    bucket: TokenBucket,
    sessions: Bulkhead,
    stats: TenantStats,
    next_seq: u64,
}

/// Fleet-wide accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Chunks offered across all tenants.
    pub offered: u64,
    /// Chunks served to the backend.
    pub served: u64,
    /// Chunks refused at the front door.
    pub rejected: u64,
    /// Admitted chunks CoDel shed before service.
    pub shed: u64,
    /// Admitted chunks evacuated to another shard before service.
    pub migrated: u64,
    /// Chunks still queued.
    pub queued: u64,
    /// High-water mark of charged bytes.
    pub mem_peak: u64,
    /// Bytes currently charged.
    pub mem_charged: u64,
    /// Most sessions ever concurrently open, fleet-wide.
    pub peak_sessions: usize,
}

/// The deterministic multi-tenant admission state machine.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    tenants: BTreeMap<String, TenantState>,
    sessions: Bulkhead,
    memory: Arc<ByteGauge>,
    cap: Arc<LevelCap>,
    codel: Codel,
    breaker: FleetBreaker,
    queue: VecDeque<QueuedChunk>,
    log: ServiceLog,
    durable: Option<DurableSink>,
    journal_chunks: bool,
    offered: u64,
    served: u64,
    rejected: u64,
    shed: u64,
    migrated: u64,
}

impl AdmissionController {
    /// A fresh controller: fleet Healthy, queue empty, budget untouched.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            sessions: Bulkhead::new(cfg.max_sessions),
            codel: Codel::new(cfg.codel),
            breaker: FleetBreaker::new(cfg.breaker),
            cfg,
            tenants: BTreeMap::new(),
            memory: Arc::new(ByteGauge::new()),
            cap: Arc::new(LevelCap::new()),
            queue: VecDeque::new(),
            log: ServiceLog::new(),
            durable: None,
            journal_chunks: false,
            offered: 0,
            served: 0,
            rejected: 0,
            shed: 0,
            migrated: 0,
        }
    }

    /// Attaches a write-ahead journal for shed and fleet-transition events.
    #[must_use]
    pub fn with_durable(mut self, sink: DurableSink) -> Self {
        self.durable = Some(sink);
        self
    }

    /// Additionally journals every chunk admission (write-ahead of the
    /// enqueue) and every serve, so a crashed shard's exact queue can be
    /// reconstructed as `admits − serves − sheds` by `(tenant, seq)`.
    /// Requires a [`DurableSink`]; a replicated fleet enables this so
    /// crash failover can replay in-flight work instead of booking it as
    /// loss.
    #[must_use]
    pub fn with_chunk_journal(mut self) -> Self {
        self.journal_chunks = true;
        self
    }

    /// The shared quality ceiling sessions must classify under.
    pub fn level_cap(&self) -> Arc<LevelCap> {
        Arc::clone(&self.cap)
    }

    /// The shared byte gauge sessions must meter their queues with.
    pub fn memory(&self) -> Arc<ByteGauge> {
        Arc::clone(&self.memory)
    }

    /// The current fleet state.
    pub fn fleet_state(&self) -> FleetState {
        self.breaker.state()
    }

    /// The configuration the controller runs with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    fn tenant(&mut self, name: &str) -> &mut TenantState {
        let cfg = &self.cfg;
        self.tenants.entry(name.to_string()).or_insert_with(|| TenantState {
            bucket: TokenBucket::new(cfg.tenant_rps, cfg.tenant_burst),
            sessions: Bulkhead::new(cfg.tenant_sessions),
            stats: TenantStats::default(),
            next_seq: 0,
        })
    }

    /// Opens a session for `tenant` at tick `now`.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::BrownedOut`] when the fleet refuses new sessions,
    /// [`AdmissionError::FleetSaturated`] / [`AdmissionError::TenantSaturated`]
    /// when a bulkhead is full.
    pub fn open_session(&mut self, tenant: &str, now: u64) -> Result<(), AdmissionError> {
        if !self.breaker.state().admits_sessions() {
            self.reject(tenant, now, AdmissionError::BrownedOut)?;
        }
        if self.sessions.in_flight() >= self.sessions.limit() {
            let limit = self.sessions.limit();
            self.reject(tenant, now, AdmissionError::FleetSaturated { limit })?;
        }
        let limit = self.cfg.tenant_sessions;
        let t = self.tenant(tenant);
        if !t.sessions.try_acquire() {
            let e = AdmissionError::TenantSaturated { tenant: tenant.to_string(), limit };
            self.reject(tenant, now, e)?;
        }
        let peak = {
            let t = self.tenant(tenant);
            t.stats.peak_sessions = t.stats.peak_sessions.max(t.sessions.in_flight());
            t.sessions.in_flight()
        };
        debug_assert!(peak <= limit);
        assert!(self.sessions.try_acquire(), "checked above; bulkhead cannot refuse");
        Ok(())
    }

    /// Closes one of `tenant`'s sessions.
    pub fn close_session(&mut self, tenant: &str) {
        self.sessions.release();
        self.tenant(tenant).sessions.release();
    }

    /// Records a refusal against `tenant` and returns it as an `Err`. (The
    /// `Result` return is a convenience so call sites can `?` it.)
    fn reject(
        &mut self,
        tenant: &str,
        now: u64,
        error: AdmissionError,
    ) -> Result<(), AdmissionError> {
        self.log.push(ServiceEvent::AdmissionRejected {
            tick: now,
            tenant: tenant.to_string(),
            reason: error.tag().to_string(),
        });
        Err(error)
    }

    /// Offers one chunk of `cost` bytes on behalf of `tenant` at tick
    /// `now`. On success the chunk is queued and its bytes are charged.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::BrownedOut`], [`AdmissionError::RateLimited`] or
    /// [`AdmissionError::MemoryExhausted`] — each refusal increments the
    /// tenant's and the fleet's `rejected` counters.
    pub fn offer(&mut self, tenant: &str, cost: u64, now: u64) -> Result<(), AdmissionError> {
        let seq = {
            let t = self.tenant(tenant);
            let seq = t.next_seq;
            t.next_seq += 1;
            seq
        };
        self.offer_tagged(tenant, cost, now, seq)
    }

    /// [`offer`](Self::offer) with a caller-assigned per-tenant sequence
    /// number. A fleet coordinator uses this to keep a tenant's chunk
    /// numbering global across shards: the coordinator assigns `seq` once
    /// per chunk, and the tag survives migration, so the tenant's served
    /// order is independent of how many shards the fleet runs.
    ///
    /// # Errors
    ///
    /// Same as [`offer`](Self::offer).
    pub fn offer_tagged(
        &mut self,
        tenant: &str,
        cost: u64,
        now: u64,
        seq: u64,
    ) -> Result<(), AdmissionError> {
        self.offered += 1;
        self.tenant(tenant).stats.offered += 1;
        let outcome = self.try_admit(tenant, cost, now, seq);
        if let Err(e) = &outcome {
            self.rejected += 1;
            self.tenant(tenant).stats.rejected += 1;
            let e = e.clone();
            let _ = self.reject(tenant, now, e);
        }
        outcome
    }

    fn try_admit(
        &mut self,
        tenant: &str,
        cost: u64,
        now: u64,
        seq: u64,
    ) -> Result<(), AdmissionError> {
        if self.breaker.state() == FleetState::BrownOut {
            return Err(AdmissionError::BrownedOut);
        }
        if !self.tenant(tenant).bucket.try_take(now) {
            return Err(AdmissionError::RateLimited { tenant: tenant.to_string() });
        }
        if !self.memory.try_charge(cost, self.cfg.mem_budget) {
            return Err(AdmissionError::MemoryExhausted {
                requested: cost,
                charged: self.memory.charged(),
                budget: self.cfg.mem_budget,
            });
        }
        // Write-ahead: journal the admission *before* the enqueue, so a
        // crash between the two replays a chunk that never entered the
        // queue — harmless at-least-once, never silent loss.
        if self.journal_chunks {
            if let Some(sink) = &self.durable {
                sink.record_admit(&ChunkAdmit {
                    tick: now,
                    tenant: tenant.to_string(),
                    seq,
                    cost,
                });
            }
        }
        self.queue.push_back(QueuedChunk { tenant: tenant.to_string(), cost, enqueued: now, seq });
        Ok(())
    }

    /// Empties the ingest queue for shard evacuation, releasing every
    /// chunk's bytes and counting each as `migrated` (fleet-wide and per
    /// tenant). The returned chunks keep their `seq` tags; the caller
    /// re-offers them through another shard's front door, where they are
    /// counted as that shard's `offered` — so the per-shard conservation
    /// identity `offered == served + rejected + shed + queued + migrated`
    /// rolls up exactly across the fleet.
    pub fn evacuate(&mut self) -> Vec<QueuedChunk> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(chunk) = self.queue.pop_front() {
            self.memory.release(chunk.cost);
            self.migrated += 1;
            self.tenant(&chunk.tenant).stats.migrated += 1;
            out.push(chunk);
        }
        out
    }

    /// Dequeues up to `capacity` chunks for service at tick `now`,
    /// applying CoDel: a shed chunk does not consume capacity (shedding is
    /// how the queue catches up). Released bytes are returned to the
    /// budget either way.
    pub fn drain(&mut self, now: u64, capacity: usize) -> Vec<QueuedChunk> {
        let mut out = Vec::new();
        while out.len() < capacity {
            let Some(chunk) = self.queue.pop_front() else { break };
            self.memory.release(chunk.cost);
            let sojourn = now.saturating_sub(chunk.enqueued);
            match self.codel.on_dequeue(sojourn, now) {
                CodelVerdict::Serve => {
                    self.served += 1;
                    self.tenant(&chunk.tenant).stats.served += 1;
                    if self.journal_chunks {
                        if let Some(sink) = &self.durable {
                            sink.record_serve(&ChunkServe {
                                tick: now,
                                tenant: chunk.tenant.clone(),
                                seq: chunk.seq,
                            });
                        }
                    }
                    out.push(chunk);
                }
                CodelVerdict::Shed => {
                    self.shed += 1;
                    self.tenant(&chunk.tenant).stats.shed += 1;
                    if let Some(sink) = &self.durable {
                        sink.record_shed(now, &chunk.tenant, sojourn, chunk.seq);
                    }
                    self.log.push(ServiceEvent::LoadShed {
                        tick: now,
                        tenant: chunk.tenant,
                        sojourn,
                    });
                }
            }
        }
        out
    }

    /// Feeds the breaker one overload observation (standing queue latency
    /// or a memory budget under pressure) and, on a transition, moves the
    /// shared [`LevelCap`] so every session cheapens (or recovers) at once.
    pub fn observe(&mut self, now: u64) {
        let head_sojourn = self
            .queue
            .front()
            .map_or(0, |c| now.saturating_sub(c.enqueued));
        let mem_strained = self.memory.charged() > self.cfg.mem_budget / 2;
        let overloaded = head_sojourn > self.cfg.codel.target || mem_strained;
        if let Some((from, to)) = self.breaker.observe(overloaded) {
            self.cap.set(to.level_cap());
            if let Some(sink) = &self.durable {
                sink.record_fleet_transition(now, from, to);
            }
            self.log.push(ServiceEvent::FleetTransition { tick: now, from, to });
        }
    }

    /// Chunks currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Fleet-wide counters. `offered == served + rejected + shed +
    /// queued + migrated` holds at every tick by construction.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            offered: self.offered,
            served: self.served,
            rejected: self.rejected,
            shed: self.shed,
            migrated: self.migrated,
            queued: self.queue.len() as u64,
            mem_peak: self.memory.peak(),
            mem_charged: self.memory.charged(),
            peak_sessions: self.sessions.peak(),
        }
    }

    /// Per-tenant counters, in tenant-name order (deterministic).
    pub fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        self.tenants.iter().map(|(k, v)| (k.clone(), v.stats)).collect()
    }

    /// The event log (rejections, sheds, fleet transitions).
    pub fn log(&self) -> &ServiceLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AdmissionConfig {
        AdmissionConfig {
            max_sessions: 3,
            tenant_sessions: 2,
            mem_budget: 1000,
            tenant_rps: 1000,
            tenant_burst: 1000,
            ..AdmissionConfig::default()
        }
    }

    fn conserve(c: &AdmissionController) {
        let s = c.stats();
        assert_eq!(
            s.offered,
            s.served + s.rejected + s.shed + s.queued + s.migrated,
            "conservation violated: {s:?}"
        );
    }

    #[test]
    fn bulkheads_guard_sessions_per_tenant_and_globally() {
        let mut c = AdmissionController::new(small());
        assert!(c.open_session("a", 0).is_ok());
        assert!(c.open_session("a", 0).is_ok());
        let err = c.open_session("a", 0).unwrap_err();
        assert!(matches!(err, AdmissionError::TenantSaturated { ref tenant, limit: 2 }
            if tenant == "a"), "{err:?}");
        assert!(c.open_session("b", 0).is_ok());
        let err = c.open_session("c", 0).unwrap_err();
        assert!(matches!(err, AdmissionError::FleetSaturated { limit: 3 }), "{err:?}");
        // Closing a session frees both bulkheads.
        c.close_session("a");
        assert!(c.open_session("c", 0).is_ok());
        assert_eq!(c.log().rejections(), 2);
    }

    #[test]
    fn rate_limit_and_memory_budget_guard_offers() {
        let mut c = AdmissionController::new(AdmissionConfig {
            tenant_rps: 1,
            tenant_burst: 2,
            ..small()
        });
        assert!(c.offer("a", 100, 0).is_ok());
        assert!(c.offer("a", 100, 0).is_ok());
        let err = c.offer("a", 100, 0).unwrap_err();
        assert!(matches!(err, AdmissionError::RateLimited { .. }), "{err:?}");
        // Tenant "b" has its own bucket but shares the byte budget.
        assert!(c.offer("b", 700, 0).is_ok());
        let err = c.offer("b", 200, 1000).unwrap_err();
        assert!(
            matches!(err, AdmissionError::MemoryExhausted { requested: 200, budget: 1000, .. }),
            "{err:?}"
        );
        conserve(&c);
        // Serving a chunk returns its bytes.
        let served = c.drain(1000, 1);
        assert_eq!(served.len(), 1);
        assert!(c.offer("b", 200, 1000).is_ok());
        conserve(&c);
    }

    #[test]
    fn standing_latency_sheds_and_trips_the_fleet() {
        let mut c = AdmissionController::new(AdmissionConfig {
            mem_budget: u64::MAX / 2,
            ..small()
        });
        // Load far beyond drain capacity: 20 offers/tick, 1 served/tick.
        let mut now = 0;
        for _ in 0..600 {
            for k in 0..20 {
                let _ = c.offer(if k % 2 == 0 { "a" } else { "b" }, 64, now);
            }
            c.drain(now, 1);
            c.observe(now);
            now += 1;
        }
        let s = c.stats();
        assert!(s.shed > 0, "standing latency must shed: {s:?}");
        assert!(c.log().sheds() > 0);
        assert!(
            c.fleet_state() > FleetState::Healthy,
            "sustained overload must trip the breaker: {:?}",
            c.fleet_state()
        );
        assert!(!c.log().fleet_transitions().is_empty());
        conserve(&c);
        // Drain everything: conservation with queued == 0.
        while c.queue_depth() > 0 {
            now += 1;
            c.drain(now, usize::MAX);
        }
        conserve(&c);
        let s = c.stats();
        assert_eq!(s.offered, s.served + s.rejected + s.shed);
    }

    #[test]
    fn brown_out_closes_the_front_door_and_recovery_reopens_it() {
        let mut c = AdmissionController::new(small());
        // Force the breaker all the way down with a standing queue.
        assert!(c.offer("a", 10, 0).is_ok());
        for now in 0..100 {
            c.observe(now); // head sojourn grows without bound
        }
        assert_eq!(c.fleet_state(), FleetState::BrownOut);
        let err = c.offer("a", 10, 100).unwrap_err();
        assert!(matches!(err, AdmissionError::BrownedOut), "{err:?}");
        let err = c.open_session("a", 100).unwrap_err();
        assert!(matches!(err, AdmissionError::BrownedOut), "{err:?}");
        // Brown-out forces every session to shed.
        assert_eq!(
            c.level_cap().get(),
            emoleak_core::online::InferenceLevel::Shed
        );
        conserve(&c);
        // Drain the queue; calm observations climb the breaker back up.
        c.drain(100, usize::MAX);
        for now in 100..600 {
            c.observe(now);
        }
        assert_eq!(c.fleet_state(), FleetState::Healthy);
        assert_eq!(
            c.level_cap().get(),
            emoleak_core::online::InferenceLevel::Cnn,
            "recovery lifts the cap"
        );
        assert!(c.offer("a", 10, 600).is_ok());
        conserve(&c);
    }

    #[test]
    fn evacuation_releases_bytes_counts_migrated_and_keeps_seq_tags() {
        let mut c = AdmissionController::new(small());
        assert!(c.offer("a", 100, 0).is_ok());
        assert!(c.offer("b", 200, 0).is_ok());
        assert!(c.offer("a", 100, 1).is_ok());
        assert_eq!(c.stats().mem_charged, 400);

        let moved = c.evacuate();
        assert_eq!(moved.len(), 3);
        // Auto-assigned seqs count per tenant, and survive evacuation.
        let tags: Vec<(&str, u64)> =
            moved.iter().map(|q| (q.tenant.as_str(), q.seq)).collect();
        assert_eq!(tags, vec![("a", 0), ("b", 0), ("a", 1)]);
        let s = c.stats();
        assert_eq!(s.migrated, 3);
        assert_eq!(s.mem_charged, 0, "evacuated bytes are released");
        assert_eq!(c.queue_depth(), 0);
        conserve(&c);

        // Re-offering through another controller's front door preserves
        // the tag and makes the two-shard roll-up conserve.
        let mut other = AdmissionController::new(small());
        for q in &moved {
            assert!(other.offer_tagged(&q.tenant, q.cost, 2, q.seq).is_ok());
        }
        let served = other.drain(2, usize::MAX);
        assert_eq!(
            served.iter().map(|q| (q.tenant.as_str(), q.seq)).collect::<Vec<_>>(),
            tags
        );
        let (a, b) = (c.stats(), other.stats());
        assert_eq!(
            a.offered + b.offered,
            a.served + b.served + a.rejected + b.rejected + a.shed + b.shed
                + a.queued + b.queued + a.migrated + b.migrated
        );
    }

    #[test]
    fn tenant_isolation_one_flood_does_not_starve_the_other() {
        let mut c = AdmissionController::new(AdmissionConfig {
            tenant_rps: 5,
            tenant_burst: 5,
            mem_budget: u64::MAX / 2,
            ..small()
        });
        for now in 0..1000 {
            // "flood" offers 10/tick; "polite" offers 1 every 250 ticks
            // (4/s, under its 5/s limit).
            for _ in 0..10 {
                let _ = c.offer("flood", 8, now);
            }
            if now % 250 == 0 {
                let _ = c.offer("polite", 8, now);
            }
            c.drain(now, 50);
            c.observe(now);
        }
        let stats: BTreeMap<_, _> = c.tenant_stats().into_iter().collect();
        let polite = stats["polite"];
        let flood = stats["flood"];
        assert_eq!(
            polite.rejected, 0,
            "a tenant under its own rate limit is never refused: {polite:?}"
        );
        assert!(flood.rejected > 0, "the flood is throttled: {flood:?}");
        conserve(&c);
    }
}
