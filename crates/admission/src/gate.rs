//! The fleet gate: overload protection in front of real
//! [`StreamService`](emoleak_stream::StreamService) sessions.
//!
//! [`AdmissionController`] is a pure state machine; [`FleetGate`] is its
//! thread-safe front end. A caller asks the gate to
//! [`admit`](FleetGate::admit) a session for a tenant; on success it gets
//! a [`SessionPermit`] that (a) holds the tenant's and the fleet's
//! bulkhead slots until dropped, and (b)
//! [`configure`](SessionPermit::configure)s a [`StreamConfig`] with the
//! shared byte gauge and fleet level cap — so every admitted session's
//! queues bill the one budget and obey the one quality ceiling.

use crate::config::AdmissionConfig;
use crate::controller::AdmissionController;
use emoleak_core::admission::AdmissionError;
use emoleak_stream::ladder::LevelCap;
use emoleak_stream::queue::ByteGauge;
use emoleak_stream::service::StreamConfig;
use std::sync::{Arc, Mutex};

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A thread-safe admission front end for a fleet of streaming sessions.
#[derive(Clone)]
pub struct FleetGate {
    ctrl: Arc<Mutex<AdmissionController>>,
}

impl FleetGate {
    /// A gate over a fresh controller.
    pub fn new(cfg: AdmissionConfig) -> Self {
        FleetGate { ctrl: Arc::new(Mutex::new(AdmissionController::new(cfg))) }
    }

    /// A gate over an already-configured controller (e.g. one with a
    /// durable sink attached).
    pub fn from_controller(ctrl: AdmissionController) -> Self {
        FleetGate { ctrl: Arc::new(Mutex::new(ctrl)) }
    }

    /// The shared controller, for driving `drain`/`observe` or reading
    /// stats and the event log.
    pub fn controller(&self) -> Arc<Mutex<AdmissionController>> {
        Arc::clone(&self.ctrl)
    }

    /// Admits a session for `tenant` at logical tick `now`.
    ///
    /// # Errors
    ///
    /// Whatever [`AdmissionController::open_session`] refuses with:
    /// brown-out, a full tenant bulkhead, or a full fleet bulkhead.
    pub fn admit(&self, tenant: &str, now: u64) -> Result<SessionPermit, AdmissionError> {
        let mut ctrl = locked(&self.ctrl);
        ctrl.open_session(tenant, now)?;
        Ok(SessionPermit {
            tenant: tenant.to_string(),
            ctrl: Arc::clone(&self.ctrl),
            memory: ctrl.memory(),
            cap: ctrl.level_cap(),
        })
    }
}

/// A held admission: one session's bulkhead slots plus the shared gauges
/// it must run under. Dropping the permit releases the slots.
pub struct SessionPermit {
    tenant: String,
    ctrl: Arc<Mutex<AdmissionController>>,
    memory: Arc<ByteGauge>,
    cap: Arc<LevelCap>,
}

impl core::fmt::Debug for SessionPermit {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SessionPermit").field("tenant", &self.tenant).finish_non_exhaustive()
    }
}

impl SessionPermit {
    /// The tenant this permit belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Plugs the fleet's shared byte gauge and level cap into a session
    /// config: the session's queues meter the fleet budget and its
    /// classify stage obeys the fleet ceiling.
    #[must_use]
    pub fn configure(&self, cfg: StreamConfig) -> StreamConfig {
        StreamConfig {
            memory: Some(Arc::clone(&self.memory)),
            fleet_cap: Some(Arc::clone(&self.cap)),
            ..cfg
        }
    }
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        locked(&self.ctrl).close_session(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_core::admission::FleetState;

    fn gate() -> FleetGate {
        FleetGate::new(AdmissionConfig {
            max_sessions: 2,
            tenant_sessions: 1,
            ..AdmissionConfig::default()
        })
    }

    #[test]
    fn permits_hold_and_release_bulkhead_slots() {
        let g = gate();
        let a = g.admit("a", 0).unwrap();
        assert!(matches!(
            g.admit("a", 0).unwrap_err(),
            AdmissionError::TenantSaturated { .. }
        ));
        let _b = g.admit("b", 0).unwrap();
        assert!(matches!(
            g.admit("c", 0).unwrap_err(),
            AdmissionError::FleetSaturated { .. }
        ));
        drop(a);
        let _c = g.admit("c", 1).unwrap();
        let stats = locked(&g.controller()).stats();
        assert_eq!(stats.peak_sessions, 2);
    }

    #[test]
    fn configure_wires_the_shared_gauges_into_a_session_config() {
        let g = gate();
        let permit = g.admit("a", 0).unwrap();
        let cfg = permit.configure(StreamConfig::default());
        let (gauge, cap) = (cfg.memory.unwrap(), cfg.fleet_cap.unwrap());
        // Same instances the controller enforces with.
        assert!(Arc::ptr_eq(&gauge, &locked(&g.controller()).memory()));
        assert!(Arc::ptr_eq(&cap, &locked(&g.controller()).level_cap()));
    }

    #[test]
    fn browned_out_gate_refuses_new_sessions() {
        let g = gate();
        {
            let ctrl = g.controller();
            let mut c = locked(&ctrl);
            let _ = c.offer("a", 1, 0);
            for now in 0..100 {
                c.observe(now);
            }
            assert_eq!(c.fleet_state(), FleetState::BrownOut);
        }
        assert!(matches!(g.admit("b", 100).unwrap_err(), AdmissionError::BrownedOut));
    }
}
