//! Property tests for the simulated message plane: under *arbitrary*
//! duplicate/drop/reorder schedules, a chunk offer is never applied
//! twice, and the fleet conservation identity
//! `offered == served + rejected + shed + queued + migrated` holds at
//! every tick — including across partition windows, lease failovers, and
//! journal replays.

use emoleak_admission::AdmissionConfig;
use emoleak_fleet::config::NetConfig;
use emoleak_fleet::{FleetConfig, FleetCoordinator, NetProfile, NetProfileKind, NodeId, SimNet};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once at the plane: every payload sent is applied exactly
    /// once at its destination, whatever the fault schedule and however
    /// small the dedup window (the watermark covers evicted seqs).
    #[test]
    fn arbitrary_fault_schedules_never_double_apply(
        // A fault mix heavy on duplication and reordering (the schedules
        // the dedup window exists for), moderate drop so retransmission
        // liveness is exercised too.
        faults in (0u32..=300_000, 0u32..=800_000, 0u32..=1_000_000, 0u64..=4),
        delay_ppm in 0u32..=600_000,
        seed in 0u64..u64::MAX,
        dedup_window in 8usize..=256,
        n in 1usize..=40,
    ) {
        let (drop_ppm, dup_ppm, reorder_ppm, delay_max) = faults;
        let profile = NetProfile { drop_ppm, dup_ppm, reorder_ppm, delay_max, delay_ppm };
        let mut net: SimNet<u32> = SimNet::new(profile, seed, dedup_window, 2);
        let mut applied: BTreeMap<(NodeId, u32), u32> = BTreeMap::new();
        let horizon = (n as u64) + 160;
        for now in 0..horizon {
            // Two independent links so cross-link seq spaces can't mask
            // each other.
            if (now as usize) < n {
                net.send(NodeId::Coordinator, NodeId::Shard(0), now as u32, now);
                net.send(NodeId::Coordinator, NodeId::Shard(1), now as u32, now);
            }
            for d in net.pump(now) {
                *applied.entry((d.dst, d.payload)).or_insert(0) += 1;
                net.accept(d.src, d.dst, d.seq, now);
            }
        }
        for shard in [NodeId::Shard(0), NodeId::Shard(1)] {
            for p in 0..n as u32 {
                let count = applied.get(&(shard, p)).copied().unwrap_or(0);
                prop_assert!(
                    count == 1,
                    "payload {} to {} applied {} times under {:?}",
                    p, shard, count, net.stats()
                );
            }
        }
    }

    /// Conservation end to end: a real fleet driven through a faulty
    /// plane — with a proptest-drawn partition window thrown in — keeps
    /// the chunk identity at every tick, never serves a chunk twice, and
    /// drains to an empty queue.
    #[test]
    fn fleet_conserves_and_never_double_serves_under_chaos(
        seed in 0u64..u64::MAX,
        chaotic in 0u32..=1,
        part_start in 10u64..=60,
        part_len in 1u64..=40,
        capacity in 1usize..=6,
    ) {
        let profile = if chaotic == 1 { NetProfileKind::Chaotic } else { NetProfileKind::Lossy };
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "emoleak-fleet-prop-{}-{seed:x}-{part_start}-{part_len}-{capacity}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FleetConfig {
            shards: 4,
            replicas: 1,
            ledger_every: 10,
            scrub_every: 10,
            net: NetConfig { profile, seed, lease_ticks: 6, dedup_window: 64 },
            admission: AdmissionConfig {
                mem_budget: u64::MAX / 2,
                tenant_rps: 1_000_000,
                tenant_burst: 1_000_000,
                ..AdmissionConfig::default()
            },
            ..FleetConfig::default()
        };
        let mut c = FleetCoordinator::new(cfg, &dir).unwrap();
        let tenants: Vec<String> = (0..8).map(|t| format!("tenant-{t}")).collect();
        let mut served: BTreeMap<(String, u64), u32> = BTreeMap::new();
        for now in 0..90 {
            if now == part_start {
                c.partition_shard(1);
            }
            if now == part_start + part_len {
                c.heal_partitions();
            }
            for t in &tenants {
                let _ = c.offer(t, 64, now);
            }
            for chunk in c.advance(now, capacity, &[]) {
                *served.entry((chunk.tenant, chunk.seq)).or_insert(0) += 1;
            }
            let s = c.stats();
            prop_assert!(s.conserves(), "tick {}: {:?}", now, s);
        }
        for now in 90..260 {
            for chunk in c.advance(now, usize::MAX, &[]) {
                *served.entry((chunk.tenant, chunk.seq)).or_insert(0) += 1;
            }
        }
        for ((tenant, seq), count) in &served {
            prop_assert!(*count == 1, "chunk ({}, {}) served {} times", tenant, seq, count);
        }
        let s = c.stats();
        prop_assert!(s.conserves(), "final: {:?}", s);
        prop_assert!(s.queued == 0, "drain window must finish: {:?}", s);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
