//! Partition-tolerance contract tests at the fleet boundary.
//!
//! The simulated message plane must be **byte-invisible** when faultless
//! (`NetProfile::ideal` produces the exact served stream of the direct
//! in-process path), and **split-brain-free** when hostile: a partitioned
//! shard self-fences when its lease runs out, the coordinator fails over
//! only after the grant provably expired, the dead shard's queue replays
//! with zero loss, and a resurrected stale incarnation's journal appends
//! are refused with a typed [`DurableError::Fenced`] — bytes untouched.
//!
//! The global no-double-serve check is the split-brain proof: if a
//! deposed shard ever served while its queue was replayed elsewhere, a
//! `(tenant, seq)` pair would appear twice in the served stream.

use emoleak_admission::AdmissionConfig;
use emoleak_durable::DurableError;
use emoleak_fleet::config::NetConfig;
use emoleak_fleet::{FailoverKind, FleetConfig, FleetCoordinator, NetProfileKind};
use emoleak_stream::durable::recover_run;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("emoleak-fleet-net-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(profile: NetProfileKind) -> FleetConfig {
    FleetConfig {
        shards: 4,
        replicas: 1,
        ledger_every: 10,
        scrub_every: 10,
        net: NetConfig { profile, seed: 7, lease_ticks: 6, dedup_window: 1024 },
        admission: AdmissionConfig {
            mem_budget: u64::MAX / 2,
            tenant_rps: 1_000_000,
            tenant_burst: 1_000_000,
            ..AdmissionConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn tenants(n: usize) -> Vec<String> {
    (0..n).map(|t| format!("tenant-{t}")).collect()
}

fn assert_no_double_serve(served: &[(String, u64, u64)]) {
    let mut seen = BTreeSet::new();
    for (tenant, seq, _) in served {
        assert!(
            seen.insert((tenant.clone(), *seq)),
            "chunk ({tenant}, {seq}) served twice — split-brain or dedup failure"
        );
    }
}

/// Drives a simple campaign: `ticks` offer rounds at `capacity`, then a
/// generous drain window with offers stopped. Returns the served stream.
fn run_campaign(
    c: &mut FleetCoordinator,
    ts: &[String],
    ticks: u64,
    capacity: usize,
) -> Vec<(String, u64, u64)> {
    let mut served = Vec::new();
    for now in 0..ticks {
        for t in ts {
            let _ = c.offer(t, 64, now);
        }
        for chunk in c.advance(now, capacity, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
    }
    for now in ticks..ticks + 50 {
        for chunk in c.advance(now, usize::MAX, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
    }
    served
}

#[test]
fn ideal_transport_is_byte_invisible_on_the_clean_path() {
    let ts = tenants(16);
    let dir_off = scratch("ideal-off");
    let mut off = FleetCoordinator::new(config(NetProfileKind::Off), &dir_off).unwrap();
    assert!(!off.net_enabled());
    let served_off = run_campaign(&mut off, &ts, 100, 8);

    let dir_net = scratch("ideal-on");
    let mut net = FleetCoordinator::new(config(NetProfileKind::Ideal), &dir_net).unwrap();
    assert!(net.net_enabled());
    let served_net = run_campaign(&mut net, &ts, 100, 8);

    assert_eq!(
        served_off, served_net,
        "the ideal plane must not change a single served byte"
    );
    let (a, b) = (off.stats(), net.stats());
    assert_eq!(a, b, "clean-path counters must match exactly");
    assert!(a.conserves() && b.conserves());
    assert_eq!(b.queued, 0, "the drain window must empty every queue");
    let ns = net.net_stats().expect("transport mode reports plane counters");
    assert!(ns.sent > 0 && ns.delivered > 0);
    assert_eq!(
        (ns.dropped, ns.duplicated, ns.deduped, ns.retransmits, ns.partitioned),
        (0, 0, 0, 0, 0),
        "an ideal plane has no faults: {ns:?}"
    );
    std::fs::remove_dir_all(&dir_off).unwrap();
    std::fs::remove_dir_all(&dir_net).unwrap();
}

/// The full-partition drill, shared by two tests: partition shard 1 at
/// tick 40, keep the load coming, and let the lease machinery converge.
/// Returns the coordinator (post-drain), the served stream, the tick the
/// shard was first observed self-fenced, and the failover tick.
fn partition_drill(dir: &Path, one_way: bool) -> (FleetCoordinator, Vec<(String, u64, u64)>, u64, u64) {
    let mut c = FleetCoordinator::new(config(NetProfileKind::Ideal), dir).unwrap();
    let ts = tenants(16);
    let victim = 1;
    let mut served = Vec::new();
    let mut self_fenced_at = None;
    let mut failover_at = None;
    for now in 0..120 {
        if now == 40 {
            if one_way {
                // The shard can hear the coordinator but not answer: the
                // asymmetric case where only the lease can save us.
                c.partition_shard_one_way(victim, true);
            } else {
                c.partition_shard(victim);
            }
        }
        for t in &ts {
            let _ = c.offer(t, 64, now);
        }
        for chunk in c.advance(now, 2, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
        if self_fenced_at.is_none() && c.shard_self_fenced(victim, now) {
            self_fenced_at = Some(now);
        }
        if failover_at.is_none() && !c.failovers().is_empty() {
            failover_at = Some(now);
        }
    }
    for now in 120..180 {
        for chunk in c.advance(now, usize::MAX, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
    }
    let self_fenced_at = self_fenced_at.expect("the victim must self-fence");
    let failover_at = failover_at.expect("the coordinator must fail the victim over");
    (c, served, self_fenced_at, failover_at)
}

#[test]
fn full_partition_self_fences_then_fails_over_with_zero_loss() {
    let dir = scratch("partition");
    let (c, served, self_fenced_at, failover_at) = partition_drill(&dir, false);
    // No split-brain: the shard stopped serving (lease ran out) strictly
    // before the coordinator acted on the provably-expired grant.
    assert!(
        self_fenced_at < failover_at,
        "self-fence at {self_fenced_at} must precede failover at {failover_at}"
    );
    let event = c.failovers()[0];
    assert_eq!(event.shard, 1);
    assert_eq!(event.kind, FailoverKind::Crash);
    assert_eq!(event.crash_loss, 0, "the journal replays the queue exactly: {event:?}");
    assert!(event.recovered > 0, "the starved queue must replay: {event:?}");
    let s = c.stats();
    assert!(s.conserves(), "{s:?}");
    assert_eq!(s.crash_loss, 0, "a partition must lose nothing: {s:?}");
    assert_eq!(s.queued, 0);
    assert_no_double_serve(&served);
    let ns = c.net_stats().unwrap();
    assert!(ns.partitioned > 0, "the partition must actually bite: {ns:?}");
    assert!(ns.retransmits > 0, "blocked frames must retry: {ns:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn asymmetric_partition_forces_self_fence_before_failover() {
    let dir = scratch("asymmetric");
    let (c, served, self_fenced_at, failover_at) = partition_drill(&dir, true);
    // One-way loss (shard → coordinator blocked): offers still land and
    // are admitted, but acks vanish, so the coordinator stops extending
    // and the shard's lease runs down. Self-fence must still strictly
    // precede the failover.
    assert!(self_fenced_at < failover_at, "{self_fenced_at} vs {failover_at}");
    let event = c.failovers()[0];
    assert_eq!(event.kind, FailoverKind::Crash);
    assert_eq!(
        event.crash_loss, 0,
        "offers admitted during the half-open window replay from the journal: {event:?}"
    );
    let s = c.stats();
    assert!(s.conserves(), "{s:?}");
    assert_eq!(s.crash_loss, 0, "{s:?}");
    assert_no_double_serve(&served);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn healing_before_lease_expiry_resumes_without_failover() {
    let dir = scratch("heal");
    let mut c = FleetCoordinator::new(config(NetProfileKind::Ideal), &dir).unwrap();
    let ts = tenants(16);
    let mut served = Vec::new();
    for now in 0..120 {
        if now == 40 {
            c.partition_shard(1);
        }
        if now == 44 {
            // Healed while the last grant is still live: the next probe
            // through extends the lease and nothing ever fences.
            c.heal_partitions();
        }
        for t in &ts {
            let _ = c.offer(t, 64, now);
        }
        for chunk in c.advance(now, 8, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
    }
    for now in 120..170 {
        for chunk in c.advance(now, usize::MAX, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
    }
    assert!(c.failovers().is_empty(), "a healed blip must not fail anything over");
    assert_eq!(c.view().live, 4, "all four shards still serve");
    let s = c.stats();
    assert!(s.conserves(), "{s:?}");
    assert_eq!(s.crash_loss, 0, "{s:?}");
    assert_eq!(s.queued, 0);
    assert_no_double_serve(&served);
    // At-least-once across the blip: the frames blocked by the partition
    // were retransmitted through after the heal, not lost.
    let ns = c.net_stats().unwrap();
    assert!(ns.partitioned > 0 && ns.retransmits > 0, "{ns:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resurrected_stale_writer_is_refused_typed_and_bytes_stay_identical() {
    let dir = scratch("stale");
    let (c, _served, _sf, _fo) = partition_drill(&dir, false);
    let victim = 1;
    assert_eq!(c.fence_token_of(victim), Some(1), "first incarnation holds token 1");
    // Snapshot the fenced journal before the resurrection attempt.
    let journal = emoleak_fleet::shard_journal_path(&dir, victim);
    let before_bytes = std::fs::read(&journal).unwrap();
    let (before_run, defects) = recover_run(&journal).unwrap();
    assert!(defects.is_empty(), "{defects:?}");
    assert_eq!(before_run.fence_token, Some(1), "the journal carries its epoch stamp");

    // The stale incarnation wakes up and tries to write. Twice, for luck.
    for probe in 0..2 {
        let err = c
            .stale_writer_probe(victim, 500 + probe)
            .expect("the stale writer must be refused");
        assert!(err.is_fenced(), "{err}");
        match &err {
            DurableError::Fenced { held, current, .. } => {
                assert_eq!((*held, *current), (1, 2), "{err}");
            }
            other => panic!("expected Fenced, got {other:?}"),
        }
    }

    // Byte-identical: the refusal happened before the file was touched.
    let after_bytes = std::fs::read(&journal).unwrap();
    assert_eq!(before_bytes, after_bytes, "a fenced append must not move a single byte");
    let (after_run, defects) = recover_run(&journal).unwrap();
    assert!(defects.is_empty(), "{defects:?}");
    assert_eq!(before_run, after_run, "recovery is identical before and after the attempt");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lossy_and_chaotic_profiles_conserve_and_never_double_serve() {
    for (name, profile) in
        [("lossy", NetProfileKind::Lossy), ("chaotic", NetProfileKind::Chaotic)]
    {
        let dir = scratch(name);
        let mut c = FleetCoordinator::new(config(profile), &dir).unwrap();
        let ts = tenants(12);
        let mut served = Vec::new();
        for now in 0..150 {
            for t in &ts {
                let _ = c.offer(t, 64, now);
            }
            for chunk in c.advance(now, 4, &[]) {
                served.push((chunk.tenant, chunk.seq, chunk.cost));
            }
            assert!(c.stats().conserves(), "tick {now} ({name}): {:?}", c.stats());
        }
        for now in 150..260 {
            for chunk in c.advance(now, usize::MAX, &[]) {
                served.push((chunk.tenant, chunk.seq, chunk.cost));
            }
        }
        let s = c.stats();
        assert!(s.conserves(), "{name}: {s:?}");
        assert_eq!(s.queued, 0, "{name}: the drain window must finish: {s:?}");
        assert_no_double_serve(&served);
        let ns = c.net_stats().unwrap();
        assert!(ns.dropped > 0 && ns.retransmits > 0, "{name}: faults must fire: {ns:?}");
        assert!(ns.deduped > 0, "{name}: the dedup window must catch duplicates: {ns:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn coordinator_restart_rebuilds_the_plane_and_keeps_serving() {
    let dir = scratch("restart");
    let ts = tenants(16);
    let mut c = FleetCoordinator::new(config(NetProfileKind::Ideal), &dir).unwrap();
    let mut served = Vec::new();
    for now in 0..60 {
        for t in &ts {
            let _ = c.offer(t, 64, now);
        }
        for chunk in c.advance(now, 8, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
    }
    c.checkpoint(60).unwrap();
    drop(c);
    // A fresh incarnation: new plane, new leases, fresh fence epochs. The
    // queues replay out of the journals and service continues.
    let mut c = FleetCoordinator::recover(config(NetProfileKind::Ideal), &dir).unwrap();
    assert!(c.net_enabled(), "the recovered coordinator must re-arm its transport");
    for now in 60..120 {
        for t in &ts {
            let _ = c.offer(t, 64, now);
        }
        for chunk in c.advance(now, 8, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
    }
    for now in 120..170 {
        for chunk in c.advance(now, usize::MAX, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
    }
    // recover() books one reconciliation crash per then-live shard; a
    // clean restart reconciles all four losslessly and loses none later
    // (in particular, the fresh leases must not mass-expire at tick 60).
    assert_eq!(c.failovers().len(), 4, "{:?}", c.failovers());
    assert!(
        c.failovers().iter().all(|f| f.tick == 60 && f.crash_loss == 0),
        "{:?}",
        c.failovers()
    );
    assert_eq!(c.view().live, 4);
    let s = c.stats();
    assert!(s.conserves(), "{s:?}");
    assert_eq!(s.queued, 0);
    assert_no_double_serve(&served);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn determinism_same_seed_same_bytes_under_chaos() {
    let run = |tag: &str| {
        let dir = scratch(&format!("det-{tag}"));
        let mut c = FleetCoordinator::new(config(NetProfileKind::Chaotic), &dir).unwrap();
        let ts = tenants(8);
        let served = run_campaign(&mut c, &ts, 80, 3);
        let stats = c.stats();
        let net = c.net_stats().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        (served, stats, net)
    };
    let a = run("a");
    let b = run("b");
    assert_eq!(a.0, b.0, "same seed must replay the same served stream");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "even the fault counters must replay");
}
