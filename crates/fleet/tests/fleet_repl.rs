//! Replication contract tests at the fleet boundary: zero-loss crash
//! failover must be byte-identical for any worker count, a double failure
//! must book honest loss, and replication must be invisible on the clean
//! path (same served stream with `replicas = 1` and `replicas = 0`).
//!
//! The thread-identity check uses `emoleak_exec::with_threads`, the same
//! mechanism the determinism suites use elsewhere: the identical campaign
//! runs under 1 and 4 workers and every observable — the served
//! `(tenant, seq, cost)` stream, the conservation counters, the failover
//! ledger — is compared exactly.

use emoleak_admission::AdmissionConfig;
use emoleak_exec::with_threads;
use emoleak_fleet::{FailoverKind, FleetConfig, FleetCoordinator, FleetStats};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("emoleak-fleet-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(replicas: u32) -> FleetConfig {
    FleetConfig {
        shards: 4,
        replicas,
        ledger_every: 10,
        scrub_every: 10,
        admission: AdmissionConfig {
            mem_budget: u64::MAX / 2,
            tenant_rps: 1_000_000,
            tenant_burst: 1_000_000,
            ..AdmissionConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn tenants(n: usize) -> Vec<String> {
    (0..n).map(|t| format!("tenant-{t}")).collect()
}

/// One deterministic campaign: 120 capacity-starved ticks, a mid-run hard
/// kill (when `kill` is set), then a full drain. Returns the served
/// stream in served order plus the final counters.
fn campaign(
    dir: &std::path::Path,
    replicas: u32,
    kill: bool,
) -> (Vec<(String, u64, u64)>, FleetStats, Vec<FailoverKind>) {
    let mut c = FleetCoordinator::new(config(replicas), dir).unwrap();
    let ts = tenants(16);
    let mut served = Vec::new();
    for now in 0..120 {
        if kill && now == 60 {
            // Starved queues guarantee work in flight at the kill.
            let event = c.kill_shard(1, now);
            assert_eq!(event.kind, FailoverKind::Crash);
        }
        for t in &ts {
            let _ = c.offer(t, 64, now);
        }
        for chunk in c.advance(now, 2, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
        // No react(): the sustained starvation would brown-out-fence the
        // fleet, and this suite tests the *crash* path in isolation.
        assert!(c.stats().conserves(), "tick {now}: {:?}", c.stats());
    }
    let mut now = 120;
    while c.stats().queued > 0 {
        for chunk in c.advance(now, usize::MAX, &[]) {
            served.push((chunk.tenant, chunk.seq, chunk.cost));
        }
        now += 1;
    }
    let kinds = c.failovers().iter().map(|f| f.kind).collect();
    (served, c.stats(), kinds)
}

#[test]
fn replicated_crash_failover_is_lossless_and_thread_identical() {
    let dir1 = scratch("t1");
    let dir4 = scratch("t4");
    let (served1, stats1, kinds1) = with_threads(1, || campaign(&dir1, 1, true));
    let (served4, stats4, kinds4) = with_threads(4, || campaign(&dir4, 1, true));

    // The replication contract: a crash with a clean journal copy loses
    // nothing, and the replay is visible in the books.
    assert_eq!(stats1.crash_loss, 0, "replicated failover must be lossless: {stats1:?}");
    assert!(stats1.recovered > 0, "the starved queue must replay: {stats1:?}");
    assert!(stats1.conserves(), "{stats1:?}");
    assert_eq!(kinds1, vec![FailoverKind::Crash]);

    // The determinism contract: every observable is worker-count-blind.
    assert_eq!(served1, served4, "served stream diverged across thread counts");
    assert_eq!(stats1, stats4, "counters diverged across thread counts");
    assert_eq!(kinds1, kinds4);

    std::fs::remove_dir_all(&dir1).unwrap();
    std::fs::remove_dir_all(&dir4).unwrap();
}

#[test]
fn double_failure_books_honest_loss_not_a_silent_leak() {
    let dir = scratch("double");
    let mut c = FleetCoordinator::new(config(1), &dir).unwrap();
    let ts = tenants(16);
    for now in 0..60 {
        for t in &ts {
            let _ = c.offer(t, 64, now);
        }
        c.advance(now, 2, &[]);
    }
    // Disk loss + corrupted replica: no clean copy testifies.
    let replica = c.replica_path_of(1).expect("replication is on");
    let mut bytes = std::fs::read(&replica).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&replica, &bytes).unwrap();
    let event = c.kill_shard_with_disk_loss(1, 60);
    assert!(event.crash_loss > 0, "a double failure must book loss: {event:?}");
    assert_eq!(event.recovered, 0, "a damaged copy must never replay: {event:?}");
    assert!(c.stats().conserves(), "{:?}", c.stats());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replication_is_invisible_on_the_clean_path() {
    let dir_on = scratch("clean-on");
    let dir_off = scratch("clean-off");
    let (served_on, stats_on, kinds_on) = campaign(&dir_on, 1, false);
    let (served_off, stats_off, kinds_off) = campaign(&dir_off, 0, false);

    assert!(kinds_on.is_empty() && kinds_off.is_empty(), "clean runs fail nothing over");
    assert_eq!(
        served_on, served_off,
        "replication changed what was served on the clean path"
    );
    assert_eq!(stats_on, stats_off, "replication changed the clean-path books");
    assert_eq!(stats_on.crash_loss, 0);
    assert_eq!(stats_on.recovered, 0);

    std::fs::remove_dir_all(&dir_on).unwrap();
    std::fs::remove_dir_all(&dir_off).unwrap();
}
