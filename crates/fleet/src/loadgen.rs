//! A deterministic diurnal/bursty load generator.
//!
//! Real capture fleets see two load shapes at once: a slow diurnal swell
//! (device populations wake and sleep) and sharp bursts (a batch of
//! devices comes online together). [`LoadProfile`] models both as a pure
//! function of `(seed, tick)` — no wall clock, no shared RNG — so a bench
//! run is replayable bit-for-bit and byte-identical across worker counts.
//!
//! The offered rate at tick `t` is
//!
//! ```text
//! rate(t) = base_rps · (1 + amplitude · sin(2πt / period)) · burst(t)
//! ```
//!
//! where `burst(t)` is `burst_multiplier` inside seeded burst windows and
//! `1` outside. Fractional rates resolve by deterministic dithering: the
//! fractional part is compared against a per-tick uniform draw derived
//! with [`derive_seed`], so long-run throughput matches the real-valued
//! rate without accumulating drift.

use emoleak_exec::derive_seed;

/// A deterministic diurnal + burst load shape.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Mean offered chunks per tick at the diurnal midline.
    pub base_rate: f64,
    /// Diurnal swing as a fraction of `base_rate` (0 = flat).
    pub amplitude: f64,
    /// Diurnal period, ticks.
    pub period: u64,
    /// A burst window opens when the per-window draw falls below this
    /// probability (0 = never).
    pub burst_prob: f64,
    /// Burst window length, ticks.
    pub burst_len: u64,
    /// Rate multiplier inside a burst window.
    pub burst_multiplier: f64,
    /// The profile's RNG stream seed.
    pub seed: u64,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            base_rate: 8.0,
            amplitude: 0.5,
            period: 600,
            burst_prob: 0.05,
            burst_len: 20,
            burst_multiplier: 4.0,
            seed: 0x10AD,
        }
    }
}

/// A uniform draw in `[0, 1)` from stream `(seed, index)`.
fn u01(seed: u64, index: u64) -> f64 {
    (derive_seed(seed, index) >> 11) as f64 / (1u64 << 53) as f64
}

impl LoadProfile {
    /// Whether tick `t` falls inside a burst window. Windows are aligned
    /// to `burst_len` boundaries; each window draws once.
    pub fn in_burst(&self, t: u64) -> bool {
        if self.burst_prob <= 0.0 || self.burst_len == 0 {
            return false;
        }
        let window = t / self.burst_len;
        u01(self.seed ^ 0xB0B5, window) < self.burst_prob
    }

    /// The real-valued offered rate at tick `t`.
    pub fn rate(&self, t: u64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (t % self.period) as f64 / self.period as f64;
        let diurnal = self.base_rate * (1.0 + self.amplitude * phase.sin());
        if self.in_burst(t) {
            diurnal * self.burst_multiplier
        } else {
            diurnal
        }
    }

    /// The integer number of chunks to offer at tick `t` (dithered, so the
    /// long-run mean matches [`rate`](Self::rate)).
    pub fn offers_at(&self, t: u64) -> u64 {
        let rate = self.rate(t).max(0.0);
        let whole = rate.floor();
        let frac = rate - whole;
        whole as u64 + u64::from(u01(self.seed, t) < frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_profile_is_a_pure_function_of_seed_and_tick() {
        let p = LoadProfile::default();
        let a: Vec<u64> = (0..2000).map(|t| p.offers_at(t)).collect();
        let b: Vec<u64> = (0..2000).map(|t| p.offers_at(t)).collect();
        assert_eq!(a, b);
        let q = LoadProfile { seed: 0xDEAD, ..p };
        assert_ne!(a, (0..2000).map(|t| q.offers_at(t)).collect::<Vec<_>>());
    }

    #[test]
    fn long_run_mean_tracks_the_configured_rate() {
        let p = LoadProfile { burst_prob: 0.0, ..LoadProfile::default() };
        let ticks = 10 * p.period;
        let total: u64 = (0..ticks).map(|t| p.offers_at(t)).sum();
        let mean = total as f64 / ticks as f64;
        // The sinusoid integrates to zero over whole periods; dithering is
        // unbiased.
        assert!(
            (mean - p.base_rate).abs() < 0.25,
            "mean {mean} strays from base {}",
            p.base_rate
        );
    }

    #[test]
    fn bursts_multiply_the_rate_and_respect_their_windows() {
        let p = LoadProfile { burst_prob: 0.3, ..LoadProfile::default() };
        let bursty: u64 = (0..6000).filter(|t| p.in_burst(*t)).count() as u64;
        assert!(bursty > 0, "p=0.3 over 300 windows must open some");
        let calm = LoadProfile { burst_prob: 0.0, ..p.clone() };
        let some_burst_tick = (0..6000).find(|t| p.in_burst(*t)).unwrap();
        assert!(p.rate(some_burst_tick) > calm.rate(some_burst_tick) * 3.0);
    }
}
