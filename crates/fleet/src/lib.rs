//! `emoleak-fleet`: a fault-contained sharded fleet for the EmoLeak
//! streaming service.
//!
//! The robustness arc so far hardened a *single process*: supervised
//! streaming ([`emoleak_stream`]), crash-safe journals
//! ([`emoleak_durable`]), and multi-tenant admission control
//! ([`emoleak_admission`]). One poisoned tenant or wedged stage could
//! still brown out the whole attack pipeline. This crate splits the
//! pipeline into **shards** — independent admission domains that share
//! nothing — and puts a **coordinator** over them:
//!
//! | piece | role | module |
//! |---|---|---|
//! | [`HashRing`] | seeded consistent hashing; only a dead shard's tenants move | [`ring`] |
//! | [`Shard`] | controller + journal segment + panic firewall | [`shard`] |
//! | [`FleetCoordinator`] | routing, parallel advance, health, failover, conservation | [`coordinator`] |
//! | [`FleetService`] | real sessions per shard, brown-out spill-over | [`service`] |
//! | [`LoadProfile`] | deterministic diurnal/bursty load for the perf baseline | [`loadgen`] |
//! | [`FleetConfig`] | `EMOLEAK_SHARDS` / `EMOLEAK_FLEET_SEED` tuning | [`config`] |
//! | [`SimNet`] | simulated message plane: faults, at-least-once, dedup | [`transport`] |
//!
//! Two invariants carry the whole design:
//!
//! 1. **Conservation.** Per shard, at every tick:
//!    `offered == served + rejected + shed + queued + migrated`. Migrated
//!    chunks re-enter through another shard's front door (counting in its
//!    `offered`), so the fleet-wide roll-up satisfies the same identity by
//!    construction — through graceful fencing, crash reconciliation, and
//!    coordinator restart alike. Crash losses are *booked* (as shed,
//!    surfaced as [`FleetStats::crash_loss`]), never silently leaked.
//! 2. **Determinism.** Ring placement, per-tenant chunk seqs, shard
//!    advance order, and the load generator are all pure functions of
//!    seeds and logical ticks. Clean-path output is byte-identical across
//!    `EMOLEAK_THREADS` and across shard counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod coordinator;
pub mod loadgen;
pub mod ring;
pub mod service;
pub mod shard;
pub mod transport;

pub use config::{DiskConfig, FleetConfig, NetConfig};
pub use coordinator::{
    coordinator_journal_path, FailoverEvent, FailoverKind, FleetCoordinator, FleetInternalError,
    FleetStats, FleetView, REC_CHECKPOINT,
};
pub use loadgen::LoadProfile;
pub use ring::HashRing;
pub use service::{FleetService, Placement};
pub use shard::{shard_journal_path, Shard, ShardHealth, ShardState, ShardTick};
pub use transport::{Delivery, Msg, NetProfile, NetProfileKind, NetStats, NodeId, SimNet};

/// Commonly used types for fleet consumers.
pub mod prelude {
    pub use crate::config::FleetConfig;
    pub use crate::coordinator::{FleetCoordinator, FleetStats, FleetView};
    pub use crate::loadgen::LoadProfile;
    pub use crate::ring::HashRing;
    pub use crate::service::FleetService;
    pub use crate::shard::{ShardHealth, ShardState};
    pub use crate::transport::{NetProfile, NetProfileKind, SimNet};
}
