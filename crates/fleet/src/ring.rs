//! The consistent-hash ring placing tenants on shards.
//!
//! Placement must be three things at once:
//!
//! 1. **deterministic** — the ring is a pure function of
//!    `(EMOLEAK_FLEET_SEED, live shard set)`, never of insertion order or
//!    wall clock, so two coordinators (or one coordinator before and after
//!    a restart) agree on every tenant's home;
//! 2. **balanced** — each shard owns many small arcs (virtual nodes) of
//!    the hash circle rather than one big one, so tenant mass spreads
//!    within a provable bound;
//! 3. **minimally disruptive** — removing a shard deletes only *its* arcs;
//!    every tenant whose point falls elsewhere keeps its home. This is the
//!    bounded-movement invariant failover relies on: only the dead shard's
//!    tenants move.
//!
//! Hashing is the same SplitMix64 avalanche mix the rest of the repo
//! derives RNG streams with ([`emoleak_exec::derive_seed`]), applied to a
//! FNV-1a digest of the tenant name — no external hash crate needed, and
//! the mapping is stable across platforms.

use emoleak_exec::derive_seed;
use std::collections::BTreeSet;

/// FNV-1a over the tenant name: a stable, platform-independent digest to
/// feed the SplitMix64 finisher.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A seeded consistent-hash ring over shard ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    seed: u64,
    vnodes: usize,
    /// `(point, shard)` sorted by point (shard id breaks the — practically
    /// impossible — 64-bit point tie, keeping the order total).
    points: Vec<(u64, u32)>,
    shards: BTreeSet<u32>,
}

impl HashRing {
    /// A ring of `shards` shards (ids `0..shards`), `vnodes` virtual nodes
    /// each, hashed under `seed`.
    pub fn new(seed: u64, shards: u32, vnodes: usize) -> HashRing {
        let mut ring = HashRing { seed, vnodes, points: Vec::new(), shards: BTreeSet::new() };
        for id in 0..shards {
            ring.insert_shard(id);
        }
        ring
    }

    /// Adds a shard's virtual nodes (idempotent).
    pub fn insert_shard(&mut self, id: u32) {
        if !self.shards.insert(id) {
            return;
        }
        let shard_seed = derive_seed(self.seed, u64::from(id));
        for v in 0..self.vnodes {
            self.points.push((derive_seed(shard_seed, v as u64), id));
        }
        self.points.sort_unstable();
    }

    /// Removes a shard's virtual nodes; tenants hashed elsewhere keep
    /// their homes (the bounded-movement invariant). Returns whether the
    /// shard was present.
    pub fn remove_shard(&mut self, id: u32) -> bool {
        if !self.shards.remove(&id) {
            return false;
        }
        self.points.retain(|(_, s)| *s != id);
        true
    }

    /// Whether `id` is live in the ring.
    pub fn contains(&self, id: u32) -> bool {
        self.shards.contains(&id)
    }

    /// Live shard ids, ascending.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.shards.iter().copied().collect()
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards at all.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The tenant's point on the hash circle.
    fn point(&self, tenant: &str) -> u64 {
        derive_seed(self.seed, fnv1a(tenant))
    }

    /// The index of the first virtual node at or after `point` (wrapping).
    fn successor(&self, point: u64) -> usize {
        match self.points.binary_search(&(point, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The tenant's home shard.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty — routing against a dead fleet is a
    /// caller bug, not a recoverable condition.
    pub fn route(&self, tenant: &str) -> u32 {
        assert!(!self.points.is_empty(), "route on an empty ring");
        self.points[self.successor(self.point(tenant))].1
    }

    /// The shard's deterministic follower: the first *other* live shard
    /// encountered walking the circle from the shard's first virtual node.
    ///
    /// This is the replication chain: shard `id`'s journal is shipped to
    /// `successor_shard(id)`. The choice is a pure function of
    /// `(seed, live shard set)` — rebalance-aware (removing an unrelated
    /// shard usually keeps the pairing; removing the follower itself
    /// deterministically promotes the next shard on the walk) and
    /// agreed-on by any two coordinators without coordination. `None` when
    /// the shard is not live or has no peer to replicate to.
    pub fn successor_shard(&self, id: u32) -> Option<u32> {
        if !self.shards.contains(&id) || self.shards.len() < 2 {
            return None;
        }
        let shard_seed = derive_seed(self.seed, u64::from(id));
        let start = self.successor(derive_seed(shard_seed, 0));
        for k in 0..self.points.len() {
            let shard = self.points[(start + k) % self.points.len()].1;
            if shard != id {
                return Some(shard);
            }
        }
        None
    }

    /// Every live shard in the tenant's preference order: the home shard
    /// first, then each remaining shard in ring-walk order. Failover uses
    /// this as the migration chain — the chain's prefix is stable under
    /// removal of any *other* shard.
    pub fn route_chain(&self, tenant: &str) -> Vec<u32> {
        let mut chain = Vec::with_capacity(self.shards.len());
        if self.points.is_empty() {
            return chain;
        }
        let start = self.successor(self.point(tenant));
        for k in 0..self.points.len() {
            let shard = self.points[(start + k) % self.points.len()].1;
            if !chain.contains(&shard) {
                chain.push(shard);
                if chain.len() == self.shards.len() {
                    break;
                }
            }
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_a_pure_function_of_seed_and_shard_set() {
        let a = HashRing::new(0xE40, 4, 32);
        let mut b = HashRing::new(0xE40, 0, 32);
        // Insertion order must not matter.
        for id in [3, 1, 0, 2] {
            b.insert_shard(id);
        }
        assert_eq!(a, b);
        for t in 0..200 {
            let tenant = format!("tenant-{t}");
            assert_eq!(a.route(&tenant), b.route(&tenant));
        }
        // A different seed is a different ring.
        let c = HashRing::new(0xE41, 4, 32);
        assert!((0..200).any(|t| {
            let tenant = format!("tenant-{t}");
            a.route(&tenant) != c.route(&tenant)
        }));
    }

    #[test]
    fn removal_moves_only_the_dead_shards_tenants() {
        let full = HashRing::new(7, 4, 64);
        let mut cut = full.clone();
        assert!(cut.remove_shard(2));
        assert!(!cut.remove_shard(2), "double remove reports absence");
        let mut moved = 0;
        for t in 0..500 {
            let tenant = format!("tenant-{t}");
            let before = full.route(&tenant);
            let after = cut.route(&tenant);
            if before == 2 {
                moved += 1;
                assert_ne!(after, 2);
            } else {
                assert_eq!(before, after, "tenant {tenant} moved without cause");
            }
        }
        assert!(moved > 0, "shard 2 owned no tenants — vnode count too low");
    }

    #[test]
    fn successor_shard_is_deterministic_and_rebalance_aware() {
        let ring = HashRing::new(0xE40, 4, 64);
        for id in 0..4 {
            let follower = ring.successor_shard(id).expect("4-shard ring has followers");
            assert_ne!(follower, id, "a shard cannot follow itself");
            assert_eq!(ring.successor_shard(id), Some(follower), "must be stable");
        }
        // Removing the follower promotes a new one deterministically; the
        // primary never pairs with a dead shard.
        let mut cut = ring.clone();
        let follower = ring.successor_shard(0).unwrap();
        cut.remove_shard(follower);
        let promoted = cut.successor_shard(0).expect("two live peers remain");
        assert_ne!(promoted, follower);
        assert_ne!(promoted, 0);
        // A lone shard (or a dead one) has no follower.
        let solo = HashRing::new(0xE40, 1, 64);
        assert_eq!(solo.successor_shard(0), None);
        assert_eq!(ring.successor_shard(99), None);
    }

    #[test]
    fn route_chain_starts_at_home_and_covers_every_live_shard() {
        let ring = HashRing::new(11, 4, 32);
        for t in 0..100 {
            let tenant = format!("tenant-{t}");
            let chain = ring.route_chain(&tenant);
            assert_eq!(chain[0], ring.route(&tenant));
            let mut sorted = chain.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "chain misses a shard: {chain:?}");
        }
    }
}
