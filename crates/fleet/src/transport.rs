//! A deterministic simulated message plane for coordinator↔shard traffic.
//!
//! PR 6's fleet assumed the coordinator could always reach every shard:
//! offers, health scans, and evacuations were direct in-process calls
//! that could never be lost, delayed, or reordered. Real deployments run
//! shards across cores and hosts, where the *network* is the dominant
//! fault domain. [`SimNet`] is that network, simulated: every frame is
//! subject to a seeded [`NetProfile`] fault model — drop, duplicate,
//! delay, reorder — plus scripted one-way and full partitions, in the
//! spirit of `phone::FaultProfile`'s sensor nemesis.
//!
//! # At-least-once delivery
//!
//! The plane gives the fleet exactly the guarantees a real datagram
//! network would force it to build:
//!
//! - **Per-sender sequence numbers.** Every directed link `(src, dst)`
//!   numbers its frames; the sender keeps each unacked frame in an
//!   outbox and retransmits it every [`SimNet::rto`] ticks until an ack
//!   arrives (acks ride the reverse link and suffer the same faults).
//! - **Idempotent dedup window at the receiver.** The receiver remembers
//!   the last `dedup_window` sequence numbers per link; a retransmitted
//!   or duplicated frame whose seq was already *accepted* is silently
//!   re-acked and never surfaced again, so at-least-once transmission
//!   becomes exactly-once application.
//!
//! Delivery is two-phase: [`SimNet::pump`] surfaces the frames due this
//! tick (faults already applied, duplicates already filtered), and the
//! endpoint owner calls [`SimNet::accept`] — which enters the seq into
//! the dedup window, schedules the ack, and marks the outbox entry
//! applied — or [`SimNet::refuse`] for a frame that reached a dead or
//! retired endpoint (no ack: the sender keeps retransmitting until a
//! failover re-routes or discards the pending frame).
//!
//! # Determinism
//!
//! Everything is a pure function of the profile, the seed, and the order
//! of `send`/`pump` calls: fault draws come from one SplitMix64 stream,
//! frames are delivered in `(deliver_at, order)` order with a monotonic
//! order counter (perturbed only by seeded reorder jitter), and time is
//! the fleet's logical tick — never the wall clock. Two runs with the
//! same seed replay byte-identically on any machine or thread count.
//!
//! Under [`NetProfile::ideal`] — zero loss, zero delay, no duplication,
//! no reorder — a frame sent at tick `t` is delivered at tick `t` in
//! send order, so a fleet routed through the ideal plane produces the
//! same served stream, byte for byte, as the direct in-process path.

use crate::shard::ShardHealth;
use emoleak_admission::{AdmissionStats, QueuedChunk};
use emoleak_exec::{derive_seed, splitmix64};
use std::collections::{BTreeMap, BTreeSet};

/// A network endpoint address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeId {
    /// The fleet coordinator.
    Coordinator,
    /// Shard `id`'s node.
    Shard(u32),
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NodeId::Coordinator => write!(f, "coordinator"),
            NodeId::Shard(id) => write!(f, "shard-{id}"),
        }
    }
}

/// The stochastic fault model one link draw lives under. Probabilities
/// are parts-per-million so the profile stays `Eq`-comparable and every
/// draw is integer arithmetic — bit-identical on every platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetProfile {
    /// Probability (ppm) a transmitted frame is silently dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) a transmitted frame is duplicated in flight.
    pub dup_ppm: u32,
    /// Probability (ppm) a frame's relative order is perturbed within its
    /// delivery tick.
    pub reorder_ppm: u32,
    /// Maximum extra delivery delay, ticks (each delayed frame draws
    /// uniformly from `1..=delay_max`; `0` = every frame arrives the tick
    /// it was sent).
    pub delay_max: u64,
    /// Probability (ppm) a frame is delayed at all.
    pub delay_ppm: u32,
}

impl NetProfile {
    /// The perfect network: zero loss, zero delay, in-order. A fleet
    /// routed through this plane is byte-identical to the direct
    /// in-process path.
    pub fn ideal() -> NetProfile {
        NetProfile { drop_ppm: 0, dup_ppm: 0, reorder_ppm: 0, delay_max: 0, delay_ppm: 0 }
    }

    /// A flaky but serviceable network: occasional loss, duplication,
    /// and short delays.
    pub fn lossy() -> NetProfile {
        NetProfile {
            drop_ppm: 50_000,     // 5%
            dup_ppm: 20_000,      // 2%
            reorder_ppm: 100_000, // 10%
            delay_max: 2,
            delay_ppm: 150_000, // 15%
        }
    }

    /// A hostile network: heavy loss, frequent duplication, long delays,
    /// aggressive reordering. Liveness still holds — retransmission plus
    /// dedup grind every frame through eventually.
    pub fn chaotic() -> NetProfile {
        NetProfile {
            drop_ppm: 150_000,    // 15%
            dup_ppm: 50_000,      // 5%
            reorder_ppm: 250_000, // 25%
            delay_max: 4,
            delay_ppm: 300_000, // 30%
        }
    }
}

/// The named profile presets the `EMOLEAK_NET` knob selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetProfileKind {
    /// Transport off: the coordinator talks to shards by direct
    /// in-process calls (the PR 6 path, byte-for-byte).
    #[default]
    Off,
    /// [`NetProfile::ideal`]: traffic flows through the plane, faultless.
    Ideal,
    /// [`NetProfile::lossy`].
    Lossy,
    /// [`NetProfile::chaotic`].
    Chaotic,
}

impl NetProfileKind {
    /// The profile this preset names; `None` for [`NetProfileKind::Off`].
    pub fn profile(self) -> Option<NetProfile> {
        match self {
            NetProfileKind::Off => None,
            NetProfileKind::Ideal => Some(NetProfile::ideal()),
            NetProfileKind::Lossy => Some(NetProfile::lossy()),
            NetProfileKind::Chaotic => Some(NetProfile::chaotic()),
        }
    }

    /// The knob spelling of this preset.
    pub fn name(self) -> &'static str {
        match self {
            NetProfileKind::Off => "off",
            NetProfileKind::Ideal => "ideal",
            NetProfileKind::Lossy => "lossy",
            NetProfileKind::Chaotic => "chaotic",
        }
    }
}

impl core::str::FromStr for NetProfileKind {
    type Err = ();

    fn from_str(s: &str) -> Result<NetProfileKind, ()> {
        match s {
            "off" => Ok(NetProfileKind::Off),
            "ideal" => Ok(NetProfileKind::Ideal),
            "lossy" => Ok(NetProfileKind::Lossy),
            "chaotic" => Ok(NetProfileKind::Chaotic),
            _ => Err(()),
        }
    }
}

/// Coordinator↔shard traffic: everything the fleet says over the plane.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Coordinator → shard: one seq-tagged chunk offer.
    Offer {
        /// The owning tenant.
        tenant: String,
        /// The coordinator-assigned per-tenant chunk seq.
        chunk_seq: u64,
        /// The chunk's admission cost.
        cost: u64,
    },
    /// Coordinator → shard: a heartbeat probe carrying the lease grant.
    /// The shard may serve while `now <= lease_until`; past that it must
    /// self-fence (stop draining and emitting) until a fresher grant
    /// arrives.
    Probe {
        /// The tick up to which the shard holds the serving lease.
        lease_until: u64,
    },
    /// Shard → coordinator: the probe's acknowledgement, carrying the
    /// shard's health sample at delivery time.
    ProbeAck {
        /// The sampled health.
        health: ShardHealth,
    },
    /// Coordinator → shard: drain and fence yourself (graceful failover).
    Drain,
    /// Shard → coordinator: the drain's result — the evacuated queue
    /// (seq tags intact) plus the shard's final counters for the retired
    /// ledger.
    Evacuated {
        /// The evacuated chunks, ready to re-offer elsewhere.
        chunks: Vec<QueuedChunk>,
        /// The shard's final admission counters.
        stats: AdmissionStats,
    },
}

/// One frame surfaced by [`SimNet::pump`]: a fresh (never-accepted)
/// message due for delivery this tick.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// The sending endpoint.
    pub src: NodeId,
    /// The receiving endpoint.
    pub dst: NodeId,
    /// The link-local sequence number.
    pub seq: u64,
    /// The payload.
    pub payload: P,
}

/// Plane-wide counters, for chaos reports and the bench's overhead
/// column.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`SimNet::send`].
    pub sent: u64,
    /// Fresh frames surfaced (and accepted) by endpoints.
    pub delivered: u64,
    /// Transmissions lost to the stochastic drop fault.
    pub dropped: u64,
    /// Transmissions lost to a scripted partition.
    pub partitioned: u64,
    /// Extra in-flight copies created by the duplication fault.
    pub duplicated: u64,
    /// Frames filtered by the receiver's dedup window (retransmits and
    /// duplicates of already-accepted seqs).
    pub deduped: u64,
    /// Retransmissions of unacked outbox frames.
    pub retransmits: u64,
    /// Frames an endpoint refused (dead or retired receiver).
    pub refused: u64,
}

/// One pending (sent, not yet acked) frame in the sender's outbox.
#[derive(Debug, Clone)]
struct Pending<P> {
    src: NodeId,
    dst: NodeId,
    seq: u64,
    payload: P,
    last_sent: u64,
    /// Whether the frame was accepted by the receiver at least once. An
    /// applied frame may still sit in the outbox (its ack was lost); a
    /// failover discards applied frames and re-routes unapplied ones.
    applied: bool,
}

/// One in-flight data frame.
#[derive(Debug, Clone)]
struct Wire<P> {
    deliver_at: u64,
    order: u64,
    src: NodeId,
    dst: NodeId,
    seq: u64,
    payload: P,
}

/// One in-flight ack frame (receiver → sender, acking `seq` on the
/// forward link).
#[derive(Debug, Clone, Copy)]
struct AckWire {
    deliver_at: u64,
    src: NodeId,
    dst: NodeId,
    seq: u64,
}

/// The receiver's per-link dedup window: a low-watermark (every seq below
/// it was accepted) plus the set of accepted seqs at or above it, capped
/// at `window` entries.
#[derive(Debug, Clone, Default)]
struct DedupWindow {
    watermark: u64,
    seen: BTreeSet<u64>,
}

impl DedupWindow {
    fn contains(&self, seq: u64) -> bool {
        seq < self.watermark || self.seen.contains(&seq)
    }

    fn insert(&mut self, seq: u64, window: usize) {
        if seq < self.watermark {
            return;
        }
        self.seen.insert(seq);
        // Advance the watermark over the contiguous prefix.
        while self.seen.remove(&self.watermark) {
            self.watermark += 1;
        }
        // Cap the sparse set. Evicting the lowest seqs raises the
        // effective floor; with retransmission every `rto` ticks a live
        // frame's seq cannot fall `window` behind the newest accepted
        // seq, so nothing in flight is ever mistaken for a duplicate.
        while self.seen.len() > window {
            if let Some(lowest) = self.seen.iter().next().copied() {
                self.seen.remove(&lowest);
                self.watermark = self.watermark.max(lowest + 1);
            }
        }
    }
}

/// The simulated message plane. Generic over the payload so the fault
/// machinery is testable with plain values; the fleet instantiates
/// `SimNet<Msg>`.
#[derive(Debug, Clone)]
pub struct SimNet<P> {
    profile: NetProfile,
    rng: u64,
    order: u64,
    rto: u64,
    dedup_window: usize,
    wires: Vec<Wire<P>>,
    acks: Vec<AckWire>,
    outbox: Vec<Pending<P>>,
    send_seq: BTreeMap<(NodeId, NodeId), u64>,
    dedup: BTreeMap<(NodeId, NodeId), DedupWindow>,
    blocked: BTreeSet<(NodeId, NodeId)>,
    stats: NetStats,
}

impl<P: Clone> SimNet<P> {
    /// A fresh plane under `profile`, drawing faults from `seed`.
    /// `dedup_window` caps each link's receiver-side memory; `rto` is the
    /// retransmission timeout in ticks.
    pub fn new(profile: NetProfile, seed: u64, dedup_window: usize, rto: u64) -> SimNet<P> {
        SimNet {
            profile,
            rng: derive_seed(seed, 0x7E1E_C0DE),
            order: 0,
            rto: rto.max(1),
            dedup_window: dedup_window.max(1),
            wires: Vec::new(),
            acks: Vec::new(),
            outbox: Vec::new(),
            send_seq: BTreeMap::new(),
            dedup: BTreeMap::new(),
            blocked: BTreeSet::new(),
            stats: NetStats::default(),
        }
    }

    /// The plane's counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The retransmission timeout, ticks.
    pub fn rto(&self) -> u64 {
        self.rto
    }

    /// Blocks the directed link `from → to` (frames transmitted while
    /// blocked are lost; the reverse direction is untouched).
    pub fn block(&mut self, from: NodeId, to: NodeId) {
        self.blocked.insert((from, to));
    }

    /// Unblocks the directed link `from → to`.
    pub fn heal(&mut self, from: NodeId, to: NodeId) {
        self.blocked.remove(&(from, to));
    }

    /// Blocks both directions between `a` and `b` (a full partition of
    /// the pair).
    pub fn partition_pair(&mut self, a: NodeId, b: NodeId) {
        self.block(a, b);
        self.block(b, a);
    }

    /// Heals both directions between `a` and `b`.
    pub fn heal_pair(&mut self, a: NodeId, b: NodeId) {
        self.heal(a, b);
        self.heal(b, a);
    }

    /// Heals every scripted partition.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Whether the directed link `from → to` is currently blocked.
    pub fn is_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.blocked.contains(&(from, to))
    }

    fn draw(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    fn chance(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.draw() % 1_000_000 < u64::from(ppm)
    }

    /// One physical transmission attempt of a frame (first send or
    /// retransmit): partition check, then the stochastic faults.
    fn transmit(&mut self, src: NodeId, dst: NodeId, seq: u64, payload: &P, now: u64) {
        if self.is_blocked(src, dst) {
            self.stats.partitioned += 1;
            return;
        }
        if self.chance(self.profile.drop_ppm) {
            self.stats.dropped += 1;
            return;
        }
        let copies = if self.chance(self.profile.dup_ppm) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let extra = if self.profile.delay_max > 0 && self.chance(self.profile.delay_ppm) {
                1 + self.draw() % self.profile.delay_max
            } else {
                0
            };
            let mut order = self.order;
            self.order += 1;
            if self.chance(self.profile.reorder_ppm) {
                // Perturb the relative order within the delivery tick:
                // jump the frame ahead of up to 16 later sends.
                order += 1 + self.draw() % 16;
            }
            self.wires.push(Wire {
                deliver_at: now + extra,
                order,
                src,
                dst,
                seq,
                payload: payload.clone(),
            });
        }
    }

    fn transmit_ack(&mut self, src: NodeId, dst: NodeId, seq: u64, now: u64) {
        // Acks ride the reverse link and suffer the same partition and
        // drop faults; a lost ack just means one more retransmission.
        if self.is_blocked(src, dst) {
            self.stats.partitioned += 1;
            return;
        }
        if self.chance(self.profile.drop_ppm) {
            self.stats.dropped += 1;
            return;
        }
        let extra = if self.profile.delay_max > 0 && self.chance(self.profile.delay_ppm) {
            1 + self.draw() % self.profile.delay_max
        } else {
            0
        };
        self.acks.push(AckWire { deliver_at: now + extra, src, dst, seq });
    }

    /// Sends `payload` from `src` to `dst` at tick `now`: assigns the
    /// link's next seq, stores the frame in the outbox (retransmitted
    /// every `rto` ticks until acked), and attempts the first
    /// transmission. Returns the assigned seq.
    pub fn send(&mut self, src: NodeId, dst: NodeId, payload: P, now: u64) -> u64 {
        let seq = {
            let s = self.send_seq.entry((src, dst)).or_insert(0);
            let seq = *s;
            *s += 1;
            seq
        };
        self.stats.sent += 1;
        self.transmit(src, dst, seq, &payload, now);
        self.outbox.push(Pending { src, dst, seq, payload, last_sent: now, applied: false });
        seq
    }

    /// One plane tick: retransmits overdue outbox frames, applies due
    /// acks, and returns the fresh data frames due for delivery, in
    /// deterministic `(deliver_at, order)` order with duplicates already
    /// filtered (and re-acked). The caller must [`SimNet::accept`] or
    /// [`SimNet::refuse`] each returned frame.
    pub fn pump(&mut self, now: u64) -> Vec<Delivery<P>> {
        // 1. Apply due acks first: an ack that has already arrived must
        //    cancel the retransmission it races, or every clean
        //    probe/ack round-trip would spuriously retransmit once the
        //    RTO elapses in the same pump.
        let due_acks: Vec<AckWire> = {
            let (due, rest): (Vec<AckWire>, Vec<AckWire>) =
                self.acks.drain(..).partition(|a| a.deliver_at <= now);
            self.acks = rest;
            due
        };
        for ack in due_acks {
            // The ack travels dst→src of the data link: it acks seq on
            // the (ack.dst, ack.src) data link.
            self.outbox
                .retain(|p| !(p.src == ack.dst && p.dst == ack.src && p.seq == ack.seq));
        }
        // 2. Retransmit overdue unacked frames.
        let overdue: Vec<(NodeId, NodeId, u64, P)> = self
            .outbox
            .iter_mut()
            .filter(|p| now.saturating_sub(p.last_sent) >= self.rto)
            .map(|p| {
                p.last_sent = now;
                (p.src, p.dst, p.seq, p.payload.clone())
            })
            .collect();
        for (src, dst, seq, payload) in overdue {
            self.stats.retransmits += 1;
            self.transmit(src, dst, seq, &payload, now);
        }
        // 3. Deliver due data frames in deterministic order, filtering
        //    duplicates of already-accepted seqs.
        let mut due: Vec<Wire<P>> = Vec::new();
        let mut rest: Vec<Wire<P>> = Vec::with_capacity(self.wires.len());
        for w in self.wires.drain(..) {
            if w.deliver_at <= now {
                due.push(w);
            } else {
                rest.push(w);
            }
        }
        self.wires = rest;
        due.sort_by_key(|w| (w.deliver_at, w.order));
        let mut fresh: Vec<Delivery<P>> = Vec::new();
        let mut in_batch: BTreeSet<(NodeId, NodeId, u64)> = BTreeSet::new();
        for w in due {
            let link = (w.src, w.dst);
            let accepted_before =
                self.dedup.get(&link).is_some_and(|d| d.contains(w.seq));
            if accepted_before {
                // Retransmit of an applied frame: filter, and re-ack in
                // case the earlier ack was lost.
                self.stats.deduped += 1;
                self.transmit_ack(w.dst, w.src, w.seq, now);
                continue;
            }
            if !in_batch.insert((w.src, w.dst, w.seq)) {
                // An in-flight duplicate landing the same tick as its
                // twin: drop silently. If the twin is accepted its ack
                // covers both; if it is refused, no ack may be sent.
                self.stats.deduped += 1;
                continue;
            }
            fresh.push(Delivery { src: w.src, dst: w.dst, seq: w.seq, payload: w.payload });
        }
        fresh
    }

    /// Accepts a delivered frame: enters its seq into the link's dedup
    /// window (later copies are filtered), schedules the ack, and marks
    /// the outbox entry applied.
    pub fn accept(&mut self, src: NodeId, dst: NodeId, seq: u64, now: u64) {
        self.stats.delivered += 1;
        self.dedup.entry((src, dst)).or_default().insert(seq, self.dedup_window);
        self.transmit_ack(dst, src, seq, now);
        if let Some(p) =
            self.outbox.iter_mut().find(|p| p.src == src && p.dst == dst && p.seq == seq)
        {
            p.applied = true;
        }
    }

    /// Refuses a delivered frame (dead or retired endpoint): no ack, no
    /// dedup entry — the sender keeps retransmitting until a failover
    /// discards or re-routes the pending frame.
    pub fn refuse(&mut self) {
        self.stats.refused += 1;
    }

    /// Removes every pending frame destined to `dst` and returns them
    /// with their applied flag. A failover calls this: applied frames are
    /// already accounted at the receiver (the journal is the authority)
    /// and are discarded; unapplied frames never reached it and are
    /// re-routed by the caller.
    pub fn take_pending_to(&mut self, dst: NodeId) -> Vec<(NodeId, u64, P, bool)> {
        let (taken, rest): (Vec<Pending<P>>, Vec<Pending<P>>) =
            self.outbox.drain(..).partition(|p| p.dst == dst);
        self.outbox = rest;
        taken.into_iter().map(|p| (p.src, p.seq, p.payload, p.applied)).collect()
    }

    /// Pending (unacked) frames currently destined to `dst`.
    pub fn pending_to(&self, dst: NodeId) -> usize {
        self.outbox.iter().filter(|p| p.dst == dst).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId::Coordinator;
    const B: NodeId = NodeId::Shard(1);

    fn drain_accept(net: &mut SimNet<u32>, now: u64) -> Vec<u32> {
        let due = net.pump(now);
        let mut out = Vec::new();
        for d in due {
            net.accept(d.src, d.dst, d.seq, now);
            out.push(d.payload);
        }
        out
    }

    #[test]
    fn ideal_plane_delivers_same_tick_in_send_order() {
        let mut net: SimNet<u32> = SimNet::new(NetProfile::ideal(), 7, 64, 2);
        for v in 0..10 {
            net.send(A, B, v, 5);
        }
        assert_eq!(drain_accept(&mut net, 5), (0..10).collect::<Vec<_>>());
        // Acked next tick; nothing retransmits, nothing re-delivers.
        assert!(net.pump(6).is_empty());
        assert!(net.pump(7).is_empty());
        assert_eq!(net.pending_to(B), 0, "acks cleared the outbox");
        let s = net.stats();
        assert_eq!((s.dropped, s.duplicated, s.deduped, s.retransmits), (0, 0, 0, 0));
    }

    #[test]
    fn dropped_frames_are_retransmitted_until_acked() {
        // 100% drop: nothing arrives while the fault holds.
        let mut net: SimNet<u32> =
            SimNet::new(NetProfile { drop_ppm: 1_000_000, ..NetProfile::ideal() }, 7, 64, 2);
        net.send(A, B, 42, 0);
        assert!(net.pump(0).is_empty());
        assert!(net.pump(2).is_empty(), "retransmit at rto also dropped");
        assert!(net.stats().retransmits >= 1);
        // Heal the fault: the next retransmission lands exactly once.
        net.profile.drop_ppm = 0;
        let mut got = Vec::new();
        for now in 3..10 {
            got.extend(drain_accept(&mut net, now));
        }
        assert_eq!(got, vec![42]);
        assert_eq!(net.pending_to(B), 0);
    }

    #[test]
    fn duplicates_and_retransmits_apply_exactly_once() {
        // 100% duplication: every frame arrives twice; the window filters
        // the twin.
        let mut net: SimNet<u32> =
            SimNet::new(NetProfile { dup_ppm: 1_000_000, ..NetProfile::ideal() }, 7, 64, 2);
        for v in 0..20 {
            net.send(A, B, v, 1);
        }
        assert_eq!(drain_accept(&mut net, 1), (0..20).collect::<Vec<_>>());
        assert_eq!(net.stats().deduped, 20, "every twin filtered");
        // Nothing ghosts in later.
        for now in 2..8 {
            assert!(drain_accept(&mut net, now).is_empty());
        }
    }

    #[test]
    fn refused_frames_keep_retransmitting_until_taken() {
        let mut net: SimNet<u32> = SimNet::new(NetProfile::ideal(), 7, 64, 2);
        net.send(A, B, 9, 0);
        let due = net.pump(0);
        assert_eq!(due.len(), 1);
        net.refuse();
        // Refused: not deduped, not acked — the retransmit surfaces it
        // again.
        let due = net.pump(2);
        assert_eq!(due.len(), 1, "refused frame must come back");
        assert_eq!(due[0].payload, 9);
        // A failover takes it out of the outbox, unapplied.
        let pending = net.take_pending_to(B);
        assert_eq!(pending.len(), 1);
        assert!(!pending[0].3, "never applied");
        assert!(net.pump(4).is_empty() || net.pump(6).is_empty());
    }

    #[test]
    fn one_way_partition_blocks_only_that_direction() {
        let mut net: SimNet<u32> = SimNet::new(NetProfile::ideal(), 7, 64, 2);
        net.block(A, B);
        net.send(A, B, 1, 0);
        net.send(B, A, 2, 0);
        let due = net.pump(0);
        assert_eq!(due.len(), 1);
        assert_eq!((due[0].src, due[0].payload), (B, 2));
        net.accept(B, A, due[0].seq, 0);
        assert!(net.stats().partitioned >= 1);
        // Heal: the blocked frame's retransmission gets through.
        net.heal(A, B);
        let mut got = Vec::new();
        for now in 1..6 {
            got.extend(drain_accept(&mut net, now));
        }
        assert_eq!(got, vec![1], "at-least-once across the heal");
    }

    #[test]
    fn full_partition_loses_nothing_after_heal() {
        let mut net: SimNet<u32> = SimNet::new(NetProfile::ideal(), 7, 64, 2);
        net.partition_pair(A, B);
        for v in 0..5 {
            net.send(A, B, v, 0);
        }
        for now in 0..4 {
            assert!(net.pump(now).is_empty());
        }
        net.heal_pair(A, B);
        let mut got = Vec::new();
        for now in 4..12 {
            got.extend(drain_accept(&mut net, now));
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chaotic_profile_is_deterministic_and_eventually_complete() {
        let run = |seed: u64| -> (Vec<u32>, NetStats) {
            let mut net: SimNet<u32> = SimNet::new(NetProfile::chaotic(), seed, 256, 2);
            let mut got = Vec::new();
            for now in 0..200u64 {
                if now < 50 {
                    net.send(A, B, now as u32, now);
                }
                for d in net.pump(now) {
                    net.accept(d.src, d.dst, d.seq, now);
                    got.push(d.payload);
                }
            }
            (got, net.stats())
        };
        let (a1, s1) = run(11);
        let (a2, s2) = run(11);
        assert_eq!(a1, a2, "same seed, same schedule");
        assert_eq!(s1, s2);
        let mut sorted = a1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>(), "all 50 applied exactly once");
        assert_eq!(a1.len(), 50, "dedup window killed every duplicate");
        let (b1, _) = run(12);
        assert_ne!(a1, b1, "different seed, different schedule");
        assert!(s1.dropped > 0 && s1.duplicated > 0 && s1.retransmits > 0, "{s1:?}");
    }

    #[test]
    fn dedup_window_watermark_survives_eviction() {
        let mut w = DedupWindow::default();
        for seq in 0..100 {
            w.insert(seq, 8);
        }
        assert_eq!(w.watermark, 100);
        assert!(w.contains(57));
        assert!(!w.contains(100));
        // Sparse far-ahead seqs evict the lowest once past the cap.
        let mut w = DedupWindow::default();
        for seq in (0..40).step_by(2) {
            w.insert(seq, 4);
        }
        assert!(w.seen.len() <= 4);
        assert!(w.contains(38));
        assert!(w.contains(0), "evicted seqs fall below the watermark (still seen)");
    }
}
