//! Fleet tuning, with the same strict environment contract as the
//! admission layer: a set-but-malformed knob errors, it is never silently
//! defaulted.
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `EMOLEAK_SHARDS` | number of independent shards | 4 |
//! | `EMOLEAK_FLEET_SEED` | consistent-hash ring seed | `0xE40F_1EE7` |
//! | `EMOLEAK_REPLICAS` | journal replicas per shard (0 disables replication) | 1 |
//! | `EMOLEAK_SCRUB_EVERY` | ticks between anti-entropy scrub passes (0 disables) | 25 |
//! | `EMOLEAK_NET` | transport profile: `off`, `ideal`, `lossy`, `chaotic` | `off` |
//! | `EMOLEAK_NET_SEED` | transport fault seed (0 derives from the fleet seed) | 0 |
//! | `EMOLEAK_NET_LEASE_TICKS` | shard serving-lease length, ticks | 8 |
//! | `EMOLEAK_NET_DEDUP_WINDOW` | receiver dedup window, seqs per link | 1024 |

use crate::transport::NetProfileKind;
use emoleak_admission::AdmissionConfig;
use emoleak_core::EmoleakError;
use emoleak_exec::parse_checked;

/// Tuning for the simulated message plane
/// ([`SimNet`](crate::transport::SimNet)) the coordinator routes
/// shard traffic through when the profile is not
/// [`NetProfileKind::Off`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Which fault profile the plane runs under. `Off` keeps the PR 6
    /// direct in-process path, byte for byte.
    pub profile: NetProfileKind,
    /// Seed for the plane's fault draws. `0` derives a stream from the
    /// fleet seed so one knob reseeds everything together.
    pub seed: u64,
    /// The serving-lease length, in ticks. Each coordinator heartbeat
    /// grants `now + lease_ticks`; a shard whose lease expires unrenewed
    /// self-fences, and the coordinator fails it over only after the
    /// grant provably expired — the two deadlines are the same number,
    /// so no tick exists where both sides believe they may act.
    pub lease_ticks: u64,
    /// Receiver-side dedup window per directed link, in sequence numbers.
    pub dedup_window: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            profile: NetProfileKind::Off,
            seed: 0,
            lease_ticks: 8,
            dedup_window: 1024,
        }
    }
}

impl NetConfig {
    /// Whether traffic flows through the simulated plane at all.
    pub fn enabled(&self) -> bool {
        self.profile != NetProfileKind::Off
    }
}

/// Tuning for a sharded fleet ([`FleetCoordinator`](crate::FleetCoordinator)
/// / [`FleetService`](crate::FleetService)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of independent shards (each owns its controller, journal
    /// segment, and — in a [`FleetService`](crate::FleetService) — its
    /// session gate).
    pub shards: u32,
    /// Consistent-hash ring seed: placement is a pure function of this
    /// and the live shard set.
    pub seed: u64,
    /// Virtual nodes per shard on the ring (more = tighter balance).
    pub vnodes: usize,
    /// Consecutive BrownOut health observations of one shard before the
    /// coordinator fences it and migrates its tenants.
    pub failover_after: u32,
    /// Contained panics a shard survives before it is declared dead.
    pub restart_budget: u32,
    /// Ticks between journaled shard-ledger snapshots (the crash-recovery
    /// reconciliation floor: a kill loses at most this much accounting).
    pub ledger_every: u64,
    /// Journal replicas per shard. `1` ships every committed record to the
    /// shard's deterministic ring successor, so a crashed primary's queue
    /// replays with zero loss; `0` disables replication (and chunk-level
    /// journaling with it), restoring the PR 6 bounded-loss behaviour.
    /// Values above 1 are capped at 1 — the chain has a single follower.
    pub replicas: u32,
    /// Ticks between anti-entropy scrub passes. Each pass CRC-verifies one
    /// live shard's replica against its primary (round-robin over the
    /// fleet) and read-repairs lag or divergence. `0` disables scrubbing.
    pub scrub_every: u64,
    /// Simulated-transport tuning (`EMOLEAK_NET*`). Off by default: the
    /// coordinator talks to shards by direct calls unless a profile is
    /// selected.
    pub net: NetConfig,
    /// Per-shard admission tuning.
    pub admission: AdmissionConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            seed: 0xE40F_1EE7,
            vnodes: 64,
            failover_after: 3,
            restart_budget: 3,
            ledger_every: 50,
            replicas: 1,
            scrub_every: 25,
            net: NetConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

impl FleetConfig {
    /// The defaults with `EMOLEAK_SHARDS` / `EMOLEAK_FLEET_SEED` overrides
    /// applied (and the nested [`AdmissionConfig`] read through its own
    /// `from_env`).
    ///
    /// # Errors
    ///
    /// [`EmoleakError::Config`] when a set knob is malformed or out of
    /// range (`EMOLEAK_SHARDS` must be positive).
    pub fn from_env() -> Result<Self, EmoleakError> {
        let mut cfg = FleetConfig { admission: AdmissionConfig::from_env()?, ..Self::default() };
        if let Some(n) = parse_checked::<u32>("EMOLEAK_SHARDS", "a positive shard count", |&n| {
            n > 0
        })? {
            cfg.shards = n;
        }
        if let Some(s) = parse_checked::<u64>("EMOLEAK_FLEET_SEED", "a u64 seed", |_| true)? {
            cfg.seed = s;
        }
        if let Some(r) = parse_checked::<u32>("EMOLEAK_REPLICAS", "0 or 1 replicas", |&r| r <= 1)? {
            cfg.replicas = r;
        }
        if let Some(n) =
            parse_checked::<u64>("EMOLEAK_SCRUB_EVERY", "a tick interval (0 disables)", |_| true)?
        {
            cfg.scrub_every = n;
        }
        if let Some(kind) = parse_checked::<NetProfileKind>(
            "EMOLEAK_NET",
            "one of off, ideal, lossy, chaotic",
            |_| true,
        )? {
            cfg.net.profile = kind;
        }
        if let Some(s) =
            parse_checked::<u64>("EMOLEAK_NET_SEED", "a u64 seed (0 derives)", |_| true)?
        {
            cfg.net.seed = s;
        }
        if let Some(t) =
            parse_checked::<u64>("EMOLEAK_NET_LEASE_TICKS", "a positive tick count", |&t| t > 0)?
        {
            cfg.net.lease_ticks = t;
        }
        if let Some(w) = parse_checked::<usize>(
            "EMOLEAK_NET_DEDUP_WINDOW",
            "a positive window size",
            |&w| w > 0,
        )? {
            cfg.net.dedup_window = w;
        }
        Ok(cfg)
    }

    /// Whether shards replicate their journals (and journal per-chunk
    /// admit/serve records to make replay exact).
    pub fn replicated(&self) -> bool {
        self.replicas > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; this test owns these eight names.
    #[test]
    fn env_overrides_are_strict() {
        const NAMES: [&str; 8] = [
            "EMOLEAK_SHARDS",
            "EMOLEAK_FLEET_SEED",
            "EMOLEAK_REPLICAS",
            "EMOLEAK_SCRUB_EVERY",
            "EMOLEAK_NET",
            "EMOLEAK_NET_SEED",
            "EMOLEAK_NET_LEASE_TICKS",
            "EMOLEAK_NET_DEDUP_WINDOW",
        ];
        for name in NAMES {
            std::env::remove_var(name);
        }
        assert_eq!(FleetConfig::from_env().unwrap(), FleetConfig::default());
        assert!(FleetConfig::default().replicated(), "replication is on by default");
        assert!(!FleetConfig::default().net.enabled(), "transport is off by default");

        std::env::set_var("EMOLEAK_SHARDS", "2");
        std::env::set_var("EMOLEAK_FLEET_SEED", "12345");
        std::env::set_var("EMOLEAK_REPLICAS", "0");
        std::env::set_var("EMOLEAK_SCRUB_EVERY", "10");
        std::env::set_var("EMOLEAK_NET", "lossy");
        std::env::set_var("EMOLEAK_NET_SEED", "99");
        std::env::set_var("EMOLEAK_NET_LEASE_TICKS", "12");
        std::env::set_var("EMOLEAK_NET_DEDUP_WINDOW", "256");
        let cfg = FleetConfig::from_env().unwrap();
        assert_eq!(cfg.shards, 2);
        assert_eq!(cfg.seed, 12345);
        assert_eq!(cfg.replicas, 0);
        assert!(!cfg.replicated());
        assert_eq!(cfg.scrub_every, 10);
        assert_eq!(cfg.net.profile, NetProfileKind::Lossy);
        assert!(cfg.net.enabled());
        assert_eq!(cfg.net.seed, 99);
        assert_eq!(cfg.net.lease_ticks, 12);
        assert_eq!(cfg.net.dedup_window, 256);

        std::env::set_var("EMOLEAK_NET", "flaky-wifi");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_NET"));
        std::env::remove_var("EMOLEAK_NET");

        std::env::set_var("EMOLEAK_NET_LEASE_TICKS", "0");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_NET_LEASE_TICKS"));
        std::env::remove_var("EMOLEAK_NET_LEASE_TICKS");

        std::env::set_var("EMOLEAK_REPLICAS", "3");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_REPLICAS"));
        std::env::remove_var("EMOLEAK_REPLICAS");

        std::env::set_var("EMOLEAK_SHARDS", "0");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_SHARDS"));
        for name in NAMES {
            std::env::remove_var(name);
        }
    }
}
