//! Fleet tuning, with the same strict environment contract as the
//! admission layer: a set-but-malformed knob errors, it is never silently
//! defaulted.
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `EMOLEAK_SHARDS` | number of independent shards | 4 |
//! | `EMOLEAK_FLEET_SEED` | consistent-hash ring seed | `0xE40F_1EE7` |

use emoleak_admission::AdmissionConfig;
use emoleak_core::EmoleakError;
use emoleak_exec::parse_checked;

/// Tuning for a sharded fleet ([`FleetCoordinator`](crate::FleetCoordinator)
/// / [`FleetService`](crate::FleetService)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of independent shards (each owns its controller, journal
    /// segment, and — in a [`FleetService`](crate::FleetService) — its
    /// session gate).
    pub shards: u32,
    /// Consistent-hash ring seed: placement is a pure function of this
    /// and the live shard set.
    pub seed: u64,
    /// Virtual nodes per shard on the ring (more = tighter balance).
    pub vnodes: usize,
    /// Consecutive BrownOut health observations of one shard before the
    /// coordinator fences it and migrates its tenants.
    pub failover_after: u32,
    /// Contained panics a shard survives before it is declared dead.
    pub restart_budget: u32,
    /// Ticks between journaled shard-ledger snapshots (the crash-recovery
    /// reconciliation floor: a kill loses at most this much accounting).
    pub ledger_every: u64,
    /// Per-shard admission tuning.
    pub admission: AdmissionConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            seed: 0xE40F_1EE7,
            vnodes: 64,
            failover_after: 3,
            restart_budget: 3,
            ledger_every: 50,
            admission: AdmissionConfig::default(),
        }
    }
}

impl FleetConfig {
    /// The defaults with `EMOLEAK_SHARDS` / `EMOLEAK_FLEET_SEED` overrides
    /// applied (and the nested [`AdmissionConfig`] read through its own
    /// `from_env`).
    ///
    /// # Errors
    ///
    /// [`EmoleakError::Config`] when a set knob is malformed or out of
    /// range (`EMOLEAK_SHARDS` must be positive).
    pub fn from_env() -> Result<Self, EmoleakError> {
        let mut cfg = FleetConfig { admission: AdmissionConfig::from_env()?, ..Self::default() };
        if let Some(n) = parse_checked::<u32>("EMOLEAK_SHARDS", "a positive shard count", |&n| {
            n > 0
        })? {
            cfg.shards = n;
        }
        if let Some(s) = parse_checked::<u64>("EMOLEAK_FLEET_SEED", "a u64 seed", |_| true)? {
            cfg.seed = s;
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; this test owns these two names.
    #[test]
    fn env_overrides_are_strict() {
        for name in ["EMOLEAK_SHARDS", "EMOLEAK_FLEET_SEED"] {
            std::env::remove_var(name);
        }
        assert_eq!(FleetConfig::from_env().unwrap(), FleetConfig::default());

        std::env::set_var("EMOLEAK_SHARDS", "2");
        std::env::set_var("EMOLEAK_FLEET_SEED", "12345");
        let cfg = FleetConfig::from_env().unwrap();
        assert_eq!(cfg.shards, 2);
        assert_eq!(cfg.seed, 12345);

        std::env::set_var("EMOLEAK_SHARDS", "0");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_SHARDS"));
        for name in ["EMOLEAK_SHARDS", "EMOLEAK_FLEET_SEED"] {
            std::env::remove_var(name);
        }
    }
}
