//! Fleet tuning, with the same strict environment contract as the
//! admission layer: a set-but-malformed knob errors, it is never silently
//! defaulted.
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `EMOLEAK_SHARDS` | number of independent shards | 4 |
//! | `EMOLEAK_FLEET_SEED` | consistent-hash ring seed | `0xE40F_1EE7` |
//! | `EMOLEAK_REPLICAS` | journal replicas per shard (0 disables replication) | 1 |
//! | `EMOLEAK_SCRUB_EVERY` | ticks between anti-entropy scrub passes (0 disables) | 25 |
//! | `EMOLEAK_NET` | transport profile: `off`, `ideal`, `lossy`, `chaotic` | `off` |
//! | `EMOLEAK_NET_SEED` | transport fault seed (0 derives from the fleet seed) | 0 |
//! | `EMOLEAK_NET_LEASE_TICKS` | shard serving-lease length, ticks | 8 |
//! | `EMOLEAK_NET_DEDUP_WINDOW` | receiver dedup window, seqs per link | 1024 |
//! | `EMOLEAK_DISK_BYTE_BUDGET` | bytes each shard's disk accepts before ENOSPC (arms the nemesis) | off |
//! | `EMOLEAK_DISK_EIO_PPM` | per-op EIO probability, parts-per-million (arms) | off |
//! | `EMOLEAK_DISK_STALL_EVERY` | every Nth fsync stalls (0 never; arms) | off |
//! | `EMOLEAK_DISK_STALL_TICKS` | ticks each stalling fsync charges (arms) | off |
//! | `EMOLEAK_DISK_SEED` | disk-fault seed (arms, even alone: a quiet armed VFS) | derived |

use crate::transport::NetProfileKind;
use emoleak_admission::AdmissionConfig;
use emoleak_core::EmoleakError;
use emoleak_durable::FaultPlan;
use emoleak_exec::{derive_seed, parse_checked};
use emoleak_stream::disk::DiskGaugeConfig;

/// Tuning for the simulated message plane
/// ([`SimNet`](crate::transport::SimNet)) the coordinator routes
/// shard traffic through when the profile is not
/// [`NetProfileKind::Off`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Which fault profile the plane runs under. `Off` keeps the PR 6
    /// direct in-process path, byte for byte.
    pub profile: NetProfileKind,
    /// Seed for the plane's fault draws. `0` derives a stream from the
    /// fleet seed so one knob reseeds everything together.
    pub seed: u64,
    /// The serving-lease length, in ticks. Each coordinator heartbeat
    /// grants `now + lease_ticks`; a shard whose lease expires unrenewed
    /// self-fences, and the coordinator fails it over only after the
    /// grant provably expired — the two deadlines are the same number,
    /// so no tick exists where both sides believe they may act.
    pub lease_ticks: u64,
    /// Receiver-side dedup window per directed link, in sequence numbers.
    pub dedup_window: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            profile: NetProfileKind::Off,
            seed: 0,
            lease_ticks: 8,
            dedup_window: 1024,
        }
    }
}

impl NetConfig {
    /// Whether traffic flows through the simulated plane at all.
    pub fn enabled(&self) -> bool {
        self.profile != NetProfileKind::Off
    }
}

/// Tuning for the storage fault domain: an optional disk nemesis
/// ([`FaultVfs`](emoleak_durable::FaultVfs) plan) plus the per-shard
/// [`DiskGauge`](emoleak_stream::DiskGauge) that drives the durability
/// degradation ladder.
///
/// `plan: None` keeps shards on the real filesystem through
/// [`OsVfs`](emoleak_durable::OsVfs) with no gauge — the pre-nemesis
/// byte-identical path. Arming any `EMOLEAK_DISK_*` knob installs a
/// seeded `FaultVfs` per shard (seed derived from the plan seed and the
/// shard id) and the gauge with it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskConfig {
    /// The fault plan, or `None` for the real filesystem. A *quiet* plan
    /// (all severities zero) is a valid armed state: it must be
    /// byte-identical to `None` — that invariant is what makes the
    /// nemesis trustworthy.
    pub plan: Option<FaultPlan>,
    /// Hysteresis and watermark tuning for the durability ladder. Only
    /// consulted when `plan` is armed.
    pub gauge: DiskGaugeConfig,
}

impl DiskConfig {
    /// Whether shards run on the injectable fault VFS.
    pub fn armed(&self) -> bool {
        self.plan.is_some()
    }

    /// The plan for one shard: the fleet-level plan reseeded so each
    /// shard draws an independent fault stream.
    pub fn shard_plan(&self, fleet_seed: u64, shard: u32) -> Option<FaultPlan> {
        self.plan.map(|plan| FaultPlan {
            seed: derive_seed(derive_seed(plan.seed, fleet_seed), u64::from(shard)),
            ..plan
        })
    }
}

/// Tuning for a sharded fleet ([`FleetCoordinator`](crate::FleetCoordinator)
/// / [`FleetService`](crate::FleetService)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of independent shards (each owns its controller, journal
    /// segment, and — in a [`FleetService`](crate::FleetService) — its
    /// session gate).
    pub shards: u32,
    /// Consistent-hash ring seed: placement is a pure function of this
    /// and the live shard set.
    pub seed: u64,
    /// Virtual nodes per shard on the ring (more = tighter balance).
    pub vnodes: usize,
    /// Consecutive BrownOut health observations of one shard before the
    /// coordinator fences it and migrates its tenants.
    pub failover_after: u32,
    /// Contained panics a shard survives before it is declared dead.
    pub restart_budget: u32,
    /// Ticks between journaled shard-ledger snapshots (the crash-recovery
    /// reconciliation floor: a kill loses at most this much accounting).
    pub ledger_every: u64,
    /// Journal replicas per shard. `1` ships every committed record to the
    /// shard's deterministic ring successor, so a crashed primary's queue
    /// replays with zero loss; `0` disables replication (and chunk-level
    /// journaling with it), restoring the PR 6 bounded-loss behaviour.
    /// Values above 1 are capped at 1 — the chain has a single follower.
    pub replicas: u32,
    /// Ticks between anti-entropy scrub passes. Each pass CRC-verifies one
    /// live shard's replica against its primary (round-robin over the
    /// fleet) and read-repairs lag or divergence. `0` disables scrubbing.
    pub scrub_every: u64,
    /// Simulated-transport tuning (`EMOLEAK_NET*`). Off by default: the
    /// coordinator talks to shards by direct calls unless a profile is
    /// selected.
    pub net: NetConfig,
    /// Per-shard admission tuning.
    pub admission: AdmissionConfig,
    /// Storage fault-domain tuning (`EMOLEAK_DISK_*`). Unarmed by
    /// default: shards write through the real filesystem with no gauge.
    pub disk: DiskConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            seed: 0xE40F_1EE7,
            vnodes: 64,
            failover_after: 3,
            restart_budget: 3,
            ledger_every: 50,
            replicas: 1,
            scrub_every: 25,
            net: NetConfig::default(),
            admission: AdmissionConfig::default(),
            disk: DiskConfig::default(),
        }
    }
}

impl FleetConfig {
    /// The defaults with `EMOLEAK_SHARDS` / `EMOLEAK_FLEET_SEED` overrides
    /// applied (and the nested [`AdmissionConfig`] read through its own
    /// `from_env`).
    ///
    /// # Errors
    ///
    /// [`EmoleakError::Config`] when a set knob is malformed or out of
    /// range (`EMOLEAK_SHARDS` must be positive).
    pub fn from_env() -> Result<Self, EmoleakError> {
        let mut cfg = FleetConfig { admission: AdmissionConfig::from_env()?, ..Self::default() };
        if let Some(n) = parse_checked::<u32>("EMOLEAK_SHARDS", "a positive shard count", |&n| {
            n > 0
        })? {
            cfg.shards = n;
        }
        if let Some(s) = parse_checked::<u64>("EMOLEAK_FLEET_SEED", "a u64 seed", |_| true)? {
            cfg.seed = s;
        }
        if let Some(r) = parse_checked::<u32>("EMOLEAK_REPLICAS", "0 or 1 replicas", |&r| r <= 1)? {
            cfg.replicas = r;
        }
        if let Some(n) =
            parse_checked::<u64>("EMOLEAK_SCRUB_EVERY", "a tick interval (0 disables)", |_| true)?
        {
            cfg.scrub_every = n;
        }
        if let Some(kind) = parse_checked::<NetProfileKind>(
            "EMOLEAK_NET",
            "one of off, ideal, lossy, chaotic",
            |_| true,
        )? {
            cfg.net.profile = kind;
        }
        if let Some(s) =
            parse_checked::<u64>("EMOLEAK_NET_SEED", "a u64 seed (0 derives)", |_| true)?
        {
            cfg.net.seed = s;
        }
        if let Some(t) =
            parse_checked::<u64>("EMOLEAK_NET_LEASE_TICKS", "a positive tick count", |&t| t > 0)?
        {
            cfg.net.lease_ticks = t;
        }
        if let Some(w) = parse_checked::<usize>(
            "EMOLEAK_NET_DEDUP_WINDOW",
            "a positive window size",
            |&w| w > 0,
        )? {
            cfg.net.dedup_window = w;
        }
        // Any EMOLEAK_DISK_* knob arms the nemesis; the plan starts quiet
        // (all severities off) so setting only the seed yields an armed
        // but fault-free VFS — the byte-identity control case.
        let mut plan = FaultPlan::quiet(derive_seed(cfg.seed, 0xD15C));
        let mut armed = false;
        if let Some(b) =
            parse_checked::<u64>("EMOLEAK_DISK_BYTE_BUDGET", "a positive byte budget", |&b| b > 0)?
        {
            plan.byte_budget = b;
            armed = true;
        }
        if let Some(p) = parse_checked::<u32>(
            "EMOLEAK_DISK_EIO_PPM",
            "a probability in parts-per-million (0..=1000000)",
            |&p| p <= 1_000_000,
        )? {
            plan.eio_ppm = p;
            armed = true;
        }
        if let Some(n) = parse_checked::<u64>(
            "EMOLEAK_DISK_STALL_EVERY",
            "an fsync interval (0 never stalls)",
            |_| true,
        )? {
            plan.stall_every = n;
            armed = true;
        }
        if let Some(t) =
            parse_checked::<u64>("EMOLEAK_DISK_STALL_TICKS", "a stall cost in ticks", |_| true)?
        {
            plan.stall_ticks = t;
            armed = true;
        }
        if let Some(s) = parse_checked::<u64>("EMOLEAK_DISK_SEED", "a u64 seed", |_| true)? {
            plan.seed = s;
            armed = true;
        }
        if armed {
            cfg.disk.plan = Some(plan);
        }
        Ok(cfg)
    }

    /// Whether shards replicate their journals (and journal per-chunk
    /// admit/serve records to make replay exact).
    pub fn replicated(&self) -> bool {
        self.replicas > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; this test owns these thirteen names.
    #[test]
    fn env_overrides_are_strict() {
        const NAMES: [&str; 13] = [
            "EMOLEAK_SHARDS",
            "EMOLEAK_FLEET_SEED",
            "EMOLEAK_REPLICAS",
            "EMOLEAK_SCRUB_EVERY",
            "EMOLEAK_NET",
            "EMOLEAK_NET_SEED",
            "EMOLEAK_NET_LEASE_TICKS",
            "EMOLEAK_NET_DEDUP_WINDOW",
            "EMOLEAK_DISK_BYTE_BUDGET",
            "EMOLEAK_DISK_EIO_PPM",
            "EMOLEAK_DISK_STALL_EVERY",
            "EMOLEAK_DISK_STALL_TICKS",
            "EMOLEAK_DISK_SEED",
        ];
        for name in NAMES {
            std::env::remove_var(name);
        }
        assert_eq!(FleetConfig::from_env().unwrap(), FleetConfig::default());
        assert!(FleetConfig::default().replicated(), "replication is on by default");
        assert!(!FleetConfig::default().net.enabled(), "transport is off by default");
        assert!(!FleetConfig::default().disk.armed(), "disk nemesis is off by default");

        std::env::set_var("EMOLEAK_SHARDS", "2");
        std::env::set_var("EMOLEAK_FLEET_SEED", "12345");
        std::env::set_var("EMOLEAK_REPLICAS", "0");
        std::env::set_var("EMOLEAK_SCRUB_EVERY", "10");
        std::env::set_var("EMOLEAK_NET", "lossy");
        std::env::set_var("EMOLEAK_NET_SEED", "99");
        std::env::set_var("EMOLEAK_NET_LEASE_TICKS", "12");
        std::env::set_var("EMOLEAK_NET_DEDUP_WINDOW", "256");
        let cfg = FleetConfig::from_env().unwrap();
        assert_eq!(cfg.shards, 2);
        assert_eq!(cfg.seed, 12345);
        assert_eq!(cfg.replicas, 0);
        assert!(!cfg.replicated());
        assert_eq!(cfg.scrub_every, 10);
        assert_eq!(cfg.net.profile, NetProfileKind::Lossy);
        assert!(cfg.net.enabled());
        assert_eq!(cfg.net.seed, 99);
        assert_eq!(cfg.net.lease_ticks, 12);
        assert_eq!(cfg.net.dedup_window, 256);

        // Any disk knob arms the nemesis; unset knobs stay at their quiet
        // values and the seed derives from the fleet seed.
        std::env::set_var("EMOLEAK_DISK_EIO_PPM", "2500");
        std::env::set_var("EMOLEAK_DISK_STALL_EVERY", "4");
        let cfg = FleetConfig::from_env().unwrap();
        let plan = cfg.disk.plan.expect("a set disk knob arms the plan");
        assert!(cfg.disk.armed());
        assert_eq!(plan.eio_ppm, 2500);
        assert_eq!(plan.stall_every, 4);
        assert_eq!(plan.byte_budget, u64::MAX, "unset knobs stay quiet");
        assert_eq!(plan.seed, derive_seed(cfg.seed, 0xD15C));
        let (a, b) = (cfg.disk.shard_plan(cfg.seed, 0), cfg.disk.shard_plan(cfg.seed, 1));
        assert_ne!(a.unwrap().seed, b.unwrap().seed, "shards draw independent fault streams");

        std::env::set_var("EMOLEAK_DISK_SEED", "777");
        let cfg = FleetConfig::from_env().unwrap();
        assert_eq!(cfg.disk.plan.unwrap().seed, 777);
        std::env::remove_var("EMOLEAK_DISK_EIO_PPM");
        std::env::remove_var("EMOLEAK_DISK_STALL_EVERY");

        // A seed alone arms a *quiet* plan: the byte-identity control case.
        let cfg = FleetConfig::from_env().unwrap();
        assert_eq!(cfg.disk.plan.unwrap(), FaultPlan::quiet(777));
        std::env::remove_var("EMOLEAK_DISK_SEED");

        std::env::set_var("EMOLEAK_DISK_EIO_PPM", "1000001");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_DISK_EIO_PPM"));
        std::env::remove_var("EMOLEAK_DISK_EIO_PPM");

        std::env::set_var("EMOLEAK_NET", "flaky-wifi");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_NET"));
        std::env::remove_var("EMOLEAK_NET");

        std::env::set_var("EMOLEAK_NET_LEASE_TICKS", "0");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_NET_LEASE_TICKS"));
        std::env::remove_var("EMOLEAK_NET_LEASE_TICKS");

        std::env::set_var("EMOLEAK_REPLICAS", "3");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_REPLICAS"));
        std::env::remove_var("EMOLEAK_REPLICAS");

        std::env::set_var("EMOLEAK_SHARDS", "0");
        let err = FleetConfig::from_env().unwrap_err();
        assert!(matches!(err, EmoleakError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("EMOLEAK_SHARDS"));
        for name in NAMES {
            std::env::remove_var(name);
        }
    }
}
