//! One shard: an isolated admission domain with its own journal segment
//! and a panic firewall.
//!
//! A shard owns everything whose failure must stay contained: its
//! [`AdmissionController`] (queue, token buckets, byte gauge, breaker),
//! and its [`DurableSink`] journal segment (`shard-<id>.log`). Nothing is
//! shared with sibling shards, so a panic storm, memory squeeze, or
//! hostile-input burst inside one shard cannot — by construction, not by
//! discipline — touch the others.
//!
//! The panic firewall lives in [`Shard::advance`]: every tick runs under
//! `catch_unwind`, a caught panic burns one unit of the shard's restart
//! budget, and an exhausted budget flips the shard to [`ShardState::Dead`]
//! (dropping the controller, exactly as a crashed process would lose its
//! memory). The coordinator then reconciles the shard from its journal —
//! see [`crate::FleetCoordinator`].

use crate::config::DiskConfig;
use emoleak_admission::{AdmissionConfig, AdmissionController, AdmissionStats, QueuedChunk};
use emoleak_core::admission::{AdmissionError, DurabilityLevel, FleetState};
use emoleak_durable::{Defect, DurableError, FaultVfs, OsVfs, Vfs};
use emoleak_stream::durable::{DurableSink, LedgerRecord};
use emoleak_stream::log::ServiceLog;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// A shard's position in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Serving: routed offers land here.
    Active,
    /// Drained gracefully: queue evacuated, final ledger written, removed
    /// from the ring. Terminal.
    Fenced,
    /// Crashed (restart budget exhausted, or killed): in-memory state
    /// lost; only the journal segment remains. Terminal.
    Dead,
}

/// One health sample of one shard, as aggregated by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// The shard's id.
    pub id: u32,
    /// Lifecycle state.
    pub state: ShardState,
    /// The shard's breaker state (Healthy → BrownOut); `BrownOut` for a
    /// dead or fenced shard.
    pub fleet: FleetState,
    /// Chunks waiting in the shard's ingest queue.
    pub queue_depth: usize,
    /// Bytes currently charged against the shard's budget.
    pub mem_charged: u64,
    /// The shard's byte budget.
    pub mem_budget: u64,
    /// Contained panics so far.
    pub restarts_used: u32,
    /// Contained panics the shard survives before dying.
    pub restart_budget: u32,
    /// Whether the shard's replica is latched (a ship failed and no scrub
    /// has repaired it yet). Always `false` with replication off.
    pub replica_latched: bool,
    /// The shard's storage durability level. [`DurabilityLevel::Durable`]
    /// whenever the disk gauge is unarmed (or the shard is retired).
    pub durability: DurabilityLevel,
    /// Records committed in memory but journaled nowhere because the
    /// gauge had degraded — honest would-be-lost-on-crash accounting.
    pub unjournaled: u64,
}

/// What one [`Shard::advance`] tick produced.
#[derive(Debug, Default)]
pub struct ShardTick {
    /// Chunks served to the backend this tick (empty if the tick panicked).
    pub served: Vec<QueuedChunk>,
    /// Whether a panic was caught (and contained) this tick.
    pub panicked: bool,
    /// Whether this tick exhausted the restart budget and killed the shard.
    pub died: bool,
}

/// An isolated admission domain: controller + journal segment + firewall.
pub struct Shard {
    id: u32,
    state: ShardState,
    ctrl: Option<AdmissionController>,
    sink: DurableSink,
    dir: PathBuf,
    journal_path: PathBuf,
    follower: Option<u32>,
    restarts_used: u32,
    restart_budget: u32,
    ledger_every: u64,
    next_ledger: u64,
    /// Final counters snapshotted at [`Shard::fence`], held until the
    /// coordinator books them into its retired ledger (in transport mode
    /// the booking rides an `Evacuated` message and may arrive ticks
    /// later; until then the roll-up still sees these numbers).
    final_stats: Option<AdmissionStats>,
    /// Whether the shard's liveness is lease-gated (transport mode). An
    /// ungated shard serves unconditionally (the direct-call path).
    lease_gated: bool,
    /// The tick up to which the shard holds the serving lease.
    lease_until: u64,
}

impl core::fmt::Debug for Shard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("restarts_used", &self.restarts_used)
            .finish_non_exhaustive()
    }
}

/// The journal segment path for shard `id` under `dir`.
pub fn shard_journal_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("shard-{id}.log"))
}

/// The replica segment path for `primary`'s journal hosted on `follower`.
/// The follower id is part of the name so a rebalance re-homes to a fresh
/// file and a crashed primary's replica is findable from ring state alone.
pub fn shard_replica_path(dir: &Path, primary: u32, follower: u32) -> PathBuf {
    dir.join(format!("shard-{primary}.replica-on-{follower}.log"))
}

impl Shard {
    /// A fresh shard with its journal segment at `dir/shard-<id>.log`
    /// (truncating any previous segment — each fleet run owns its
    /// segments).
    ///
    /// `journal_chunks` turns on per-chunk admit/serve records (the exact
    /// replay that makes crash failover lossless); `follower` names the
    /// shard whose node hosts this shard's synchronous replica, or `None`
    /// for an unreplicated shard. The two are independent: a replicated
    /// fleet journals chunks even on a momentarily follower-less shard, so
    /// a process kill with the disk intact still replays exactly.
    ///
    /// `disk` carries this shard's (already reseeded) fault plan and the
    /// durability-gauge tuning. An unarmed plan puts the shard on the real
    /// filesystem with no gauge — byte-identical to the pre-nemesis path.
    ///
    /// # Errors
    ///
    /// [`emoleak_durable::DurableError`] when a segment cannot be created.
    #[allow(clippy::too_many_arguments)] // construction facts, each orthogonal
    pub fn new(
        id: u32,
        dir: &Path,
        admission: AdmissionConfig,
        restart_budget: u32,
        ledger_every: u64,
        journal_chunks: bool,
        follower: Option<u32>,
        disk: DiskConfig,
    ) -> Result<Shard, emoleak_durable::DurableError> {
        let journal_path = shard_journal_path(dir, id);
        let (vfs, gauge): (Arc<dyn Vfs>, _) = match disk.plan {
            Some(plan) => (Arc::new(FaultVfs::new(plan)), Some(disk.gauge)),
            None => (Arc::new(OsVfs), None),
        };
        let sink = match follower {
            Some(f) => DurableSink::create_replicated_with(
                &journal_path,
                &shard_replica_path(dir, id, f),
                vfs,
                gauge,
            )?,
            None => DurableSink::create_with(&journal_path, vfs, gauge)?,
        };
        let mut ctrl = AdmissionController::new(admission).with_durable(sink.clone());
        if journal_chunks {
            ctrl = ctrl.with_chunk_journal();
        }
        Ok(Shard {
            id,
            state: ShardState::Active,
            ctrl: Some(ctrl),
            sink,
            dir: dir.to_path_buf(),
            journal_path,
            follower,
            restarts_used: 0,
            restart_budget,
            ledger_every,
            next_ledger: ledger_every,
            final_stats: None,
            lease_gated: false,
            lease_until: 0,
        })
    }

    /// The shard's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The shard's lifecycle state.
    pub fn state(&self) -> ShardState {
        self.state
    }

    /// The shard's journal segment path.
    pub fn journal_path(&self) -> &Path {
        &self.journal_path
    }

    /// The shard hosting this shard's replica, when replication is on.
    pub fn follower(&self) -> Option<u32> {
        self.follower
    }

    /// The replica segment's path, when replication is on.
    pub fn replica_path(&self) -> Option<PathBuf> {
        self.sink.replica_path()
    }

    /// Re-homes the replica to `follower` (the ring's current successor
    /// after a rebalance): the old copy is deleted and a byte-identical
    /// copy of the primary is rebuilt on the new follower. A no-op when
    /// the follower is unchanged or the shard is retired.
    pub fn rehome_replica(&mut self, follower: Option<u32>) {
        if self.state != ShardState::Active || self.follower == follower {
            return;
        }
        let path = follower.map(|f| shard_replica_path(&self.dir, self.id, f));
        self.sink.rehome_replica(path.as_deref());
        self.follower = follower;
    }

    /// One anti-entropy scrub pass: CRC-verify the replica against the
    /// primary and read-repair any lag or divergence. Returns the defects
    /// found (detection plus repair); empty for a healthy or unreplicated
    /// shard. See [`DurableSink::scrub_replica`].
    pub fn scrub(&self) -> Vec<Defect> {
        self.sink.scrub_replica()
    }

    /// Arms the nemesis: the next replica ship tears mid-frame and the
    /// replica latches (a kill landing mid-ship; the primary record still
    /// commits). See [`DurableSink::tear_replica_next`].
    pub fn tear_replica_next(&self, frac: f64) {
        self.sink.tear_replica_next(frac);
    }

    /// Arms the fencing token: the shard's incarnation holds `token`, and
    /// every journal append is checked against the shared `authority`
    /// (the coordinator's monotonic minimum). A stale incarnation's
    /// appends are refused with [`DurableError::Fenced`] before touching
    /// the file. The token is also stamped into the journal so recovery
    /// can attribute each epoch.
    pub fn arm_fence(&self, token: u64, authority: Arc<AtomicU64>) {
        self.sink.set_fence(token, authority);
    }

    /// The fencing token this shard's journal writer holds, if armed.
    pub fn fence_token(&self) -> Option<u64> {
        self.sink.fence_token()
    }

    /// Turns on lease gating with an initial grant through `until`.
    /// From here on the shard only drains and emits while `now` is within
    /// the granted lease; past it, [`Shard::advance`] freezes until a
    /// fresher grant arrives (self-fencing: the split-brain half).
    pub fn enable_lease(&mut self, until: u64) {
        self.lease_gated = true;
        self.lease_until = until;
    }

    /// Extends the lease to `until` (monotonic: a late-arriving older
    /// grant never shortens it).
    pub fn grant_lease(&mut self, until: u64) {
        self.lease_until = self.lease_until.max(until);
    }

    /// Whether the shard is lease-gated and its lease has expired at
    /// `now` — i.e. it is currently self-fenced and will not serve.
    pub fn lease_expired(&self, now: u64) -> bool {
        self.lease_gated && now > self.lease_until
    }

    /// Attempts one journal append as this shard's (possibly stale)
    /// incarnation and returns the typed refusal, if any. The chaos
    /// harness resurrects a fenced shard and calls this to prove the
    /// fencing token rejects the write without touching the bytes.
    pub fn stale_append_probe(&self, now: u64) -> Option<DurableError> {
        self.sink.record_ledger(&LedgerRecord {
            tick: now,
            offered: 0,
            served: 0,
            rejected: 0,
            shed: 0,
            queued: 0,
            migrated: 0,
        });
        self.sink.take_error()
    }

    /// The live controller, or `None` for a fenced/dead shard.
    fn ctrl_mut(&mut self) -> &mut AdmissionController {
        self.ctrl.as_mut().expect("offer/advance on a retired shard is a coordinator bug")
    }

    /// Offers one seq-tagged chunk through the shard's front door.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::WritesRefused`] when the disk gauge sits at the
    /// bottom rung (the shard cannot journal *or* buffer honestly, so it
    /// refuses rather than silently accepting doomed work — the caller
    /// retries after failover); otherwise whatever the shard's
    /// [`AdmissionController`] refuses with.
    ///
    /// # Panics
    ///
    /// Panics if the shard is not [`ShardState::Active`] — the coordinator
    /// must never route to a retired shard.
    pub fn offer_tagged(
        &mut self,
        tenant: &str,
        cost: u64,
        now: u64,
        seq: u64,
    ) -> Result<(), AdmissionError> {
        assert_eq!(self.state, ShardState::Active, "offer to a retired shard");
        if !self.durability_level().accepts_writes() {
            return Err(AdmissionError::WritesRefused { shard: self.id });
        }
        self.ctrl_mut().offer_tagged(tenant, cost, now, seq)
    }

    /// Runs one tick: drain up to `capacity` chunks, feed the breaker one
    /// observation, and journal a ledger snapshot on the configured
    /// cadence — all inside the panic firewall. `inject_panic` models a
    /// hostile chunk killing the drain worker at pickup (before any chunk
    /// is dequeued, so the accounting stays consistent); the panic is
    /// caught here and never crosses the shard boundary.
    pub fn advance(&mut self, now: u64, capacity: usize, inject_panic: bool) -> ShardTick {
        if self.state != ShardState::Active {
            return ShardTick::default();
        }
        if self.lease_expired(now) {
            // Self-fenced: the lease ran out unrenewed, so for all this
            // shard knows the coordinator has already failed it over.
            // Serving now would be the split-brain half — freeze instead
            // (queue intact) until a fresher grant arrives.
            return ShardTick::default();
        }
        let ctrl = self.ctrl.as_mut().expect("active shard has a controller");
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected: hostile chunk killed shard {} drain worker", self.id);
            }
            let served = ctrl.drain(now, capacity);
            ctrl.observe(now);
            served
        }));
        match outcome {
            Ok(served) => {
                if now >= self.next_ledger {
                    let ctrl = self.ctrl.as_ref().expect("active shard has a controller");
                    let ledger = ledger_at(now, &ctrl.stats());
                    self.sink.record_ledger(&ledger);
                    self.next_ledger = now + self.ledger_every;
                }
                ShardTick { served, panicked: false, died: false }
            }
            Err(_) => {
                self.restarts_used += 1;
                let died = self.restarts_used > self.restart_budget;
                if died {
                    // Crash semantics: in-memory state (queue included) is
                    // gone; the journal segment is all that survives.
                    self.ctrl = None;
                    self.state = ShardState::Dead;
                }
                ShardTick { served: Vec::new(), panicked: true, died }
            }
        }
    }

    /// One health sample for the coordinator's fleet view.
    pub fn health(&self) -> ShardHealth {
        let (fleet, queue_depth, mem_charged, mem_budget) = match &self.ctrl {
            Some(c) => {
                let s = c.stats();
                (c.fleet_state(), c.queue_depth(), s.mem_charged, c.config().mem_budget)
            }
            None => (FleetState::BrownOut, 0, 0, 0),
        };
        ShardHealth {
            id: self.id,
            state: self.state,
            fleet,
            queue_depth,
            mem_charged,
            mem_budget,
            restarts_used: self.restarts_used,
            restart_budget: self.restart_budget,
            replica_latched: self.sink.replica_latched(),
            durability: self.durability_level(),
            unjournaled: self.sink.unjournaled(),
        }
    }

    /// The shard's storage durability level: what the disk gauge reports,
    /// or [`DurabilityLevel::Durable`] when the gauge is unarmed.
    pub fn durability_level(&self) -> DurabilityLevel {
        self.sink.durability_level().unwrap_or(DurabilityLevel::Durable)
    }

    /// Records that committed in memory but reached no journal because
    /// the gauge had degraded. See [`DurableSink::unjournaled`].
    pub fn unjournaled(&self) -> u64 {
        self.sink.unjournaled()
    }

    /// Drains the shard's durability transitions observed so far, as
    /// `(seq, from, to)` in the sink's record clock. The coordinator
    /// re-stamps them onto its tick clock when it surfaces them as
    /// [`ServiceEvent::DurabilityTransition`](emoleak_stream::ServiceEvent).
    pub fn take_durability_transitions(
        &self,
    ) -> Vec<(u64, DurabilityLevel, DurabilityLevel)> {
        self.sink.take_durability_transitions()
    }

    /// Current admission counters: the live controller's, or — for a
    /// fenced shard whose final snapshot has not yet been booked into the
    /// coordinator's retired ledger — the frozen final counters, so the
    /// fleet-wide roll-up conserves across the in-flight window. `None`
    /// once retired *and* booked (or dead).
    pub fn stats(&self) -> Option<AdmissionStats> {
        self.ctrl.as_ref().map(AdmissionController::stats).or(self.final_stats)
    }

    /// Consumes the fenced shard's final counters (the coordinator calls
    /// this exactly once, when it books them into its retired ledger).
    pub fn take_final_stats(&mut self) -> Option<AdmissionStats> {
        self.final_stats.take()
    }

    /// The shard's event log, or `None` for a retired shard.
    pub fn log(&self) -> Option<&ServiceLog> {
        self.ctrl.as_ref().map(AdmissionController::log)
    }

    /// Gracefully retires the shard: evacuates its queue (each chunk
    /// counted `migrated`, bytes released), writes the final ledger, and
    /// fences it. Returns the evacuated chunks (seq tags intact, ready to
    /// re-offer elsewhere) and the shard's final counters for the
    /// coordinator's retired ledger.
    ///
    /// # Panics
    ///
    /// Panics if the shard is not [`ShardState::Active`].
    pub fn fence(&mut self, now: u64) -> (Vec<QueuedChunk>, AdmissionStats) {
        assert_eq!(self.state, ShardState::Active, "fence on a retired shard");
        let ctrl = self.ctrl.as_mut().expect("active shard has a controller");
        let evacuated = ctrl.evacuate();
        let stats = ctrl.stats();
        self.sink.record_ledger(&ledger_at(now, &stats));
        self.ctrl = None;
        self.state = ShardState::Fenced;
        self.final_stats = Some(stats);
        (evacuated, stats)
    }

    /// Hard-kills the shard: no evacuation, no final ledger — exactly what
    /// a `SIGKILL` leaves behind. The chaos harness uses this; recovery
    /// goes through the journal segment.
    pub fn kill(&mut self) {
        self.ctrl = None;
        self.state = ShardState::Dead;
        // A crash loses memory — any unbooked final snapshot included.
        // The journal segment is the sole authority from here, so the
        // coordinator's reconciliation cannot double-count.
        self.final_stats = None;
    }

    /// Kills the shard *and destroys its local disk*: the primary journal
    /// segment is deleted along with the in-memory state. Only the replica
    /// on the follower's node survives — this is the failure replication
    /// exists for. (The open handle keeps writing into an unlinked inode,
    /// exactly like a real machine loss severing the disk.)
    pub fn kill_with_disk_loss(&mut self) {
        self.kill();
        let _ = std::fs::remove_file(&self.journal_path);
    }
}

/// A ledger snapshot of `stats` at tick `now`.
fn ledger_at(now: u64, s: &AdmissionStats) -> LedgerRecord {
    LedgerRecord {
        tick: now,
        offered: s.offered,
        served: s.served,
        rejected: s.rejected,
        shed: s.shed,
        queued: s.queued,
        migrated: s.migrated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_stream::durable::recover_run;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("emoleak-shard-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn shard(dir: &Path) -> Shard {
        Shard::new(0, dir, AdmissionConfig::default(), 2, 10, false, None, DiskConfig::default())
            .unwrap()
    }

    #[test]
    fn panics_are_contained_and_budgeted() {
        let dir = scratch("panic");
        let mut s = shard(&dir);
        s.offer_tagged("a", 64, 0, 0).unwrap();
        // Two contained panics: still Active, queue intact.
        for now in 1..=2 {
            let tick = s.advance(now, 8, true);
            assert!(tick.panicked && !tick.died);
            assert_eq!(s.state(), ShardState::Active);
        }
        assert_eq!(s.health().queue_depth, 1, "contained panic must not lose the queue");
        // The third exhausts the budget of 2: Dead, controller gone.
        let tick = s.advance(3, 8, true);
        assert!(tick.panicked && tick.died);
        assert_eq!(s.state(), ShardState::Dead);
        assert!(s.stats().is_none());
        // A dead shard's advance is a no-op, not a panic.
        let tick = s.advance(4, 8, false);
        assert!(tick.served.is_empty() && !tick.panicked);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledgers_land_on_cadence_and_on_fence() {
        let dir = scratch("ledger");
        let mut s = shard(&dir);
        for now in 0..25 {
            s.offer_tagged("a", 64, now, now).unwrap();
            s.advance(now, 1, false);
        }
        // Cadence 10 with next_ledger starting at 10: ticks 10 and 20.
        let (evacuated, stats) = s.fence(25);
        assert!(evacuated.is_empty(), "capacity 1 kept up with 1 offer/tick");
        assert_eq!(stats.offered, stats.served + stats.migrated);
        let (run, defects) = recover_run(s.journal_path()).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(
            run.ledgers.iter().map(|l| l.tick).collect::<Vec<_>>(),
            vec![10, 20, 25],
            "cadence ledgers plus the fence ledger"
        );
        let last = run.ledgers.last().unwrap();
        assert_eq!(last.offered, stats.offered);
        assert_eq!(last.served, stats.served);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_loss_leaves_only_the_replica_and_rehome_moves_it() {
        let dir = scratch("diskloss");
        let mut s = Shard::new(
            0,
            &dir,
            AdmissionConfig::default(),
            2,
            10,
            true,
            Some(1),
            DiskConfig::default(),
        )
        .unwrap();
        for now in 0..12 {
            s.offer_tagged("a", 64, now, now).unwrap();
            s.advance(now, 1, false);
        }
        assert_eq!(s.follower(), Some(1));
        let old_replica = s.replica_path().unwrap();
        assert_eq!(old_replica, shard_replica_path(&dir, 0, 1));

        // Rebalance: the follower moves to shard 2; the old copy is gone,
        // the new copy replays the full primary stream.
        s.rehome_replica(Some(2));
        assert!(!old_replica.exists(), "rehome must delete the old copy");
        let replica = s.replica_path().unwrap();
        assert_eq!(replica, shard_replica_path(&dir, 0, 2));
        let (primary_run, _) = recover_run(s.journal_path()).unwrap();
        let (replica_run, defects) = recover_run(&replica).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(primary_run, replica_run, "rehome rebuilds the exact stream");
        assert_eq!(primary_run.admits.len(), 12, "chunk journaling records every admit");

        // Disk loss: the primary file is gone; the replica still replays.
        s.kill_with_disk_loss();
        assert_eq!(s.state(), ShardState::Dead);
        assert!(!s.journal_path().exists(), "the primary disk is gone");
        let (survivor, defects) = recover_run(&replica).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(survivor, replica_run);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_pins_durability_and_refuses_at_the_front_door() {
        use emoleak_durable::FaultPlan;
        use emoleak_stream::DiskGaugeConfig;
        let dir = scratch("enospc");
        // A 64-byte disk with the refuse watermark far above it: the first
        // journal append that probes free space pins the gauge straight to
        // the bottom rung.
        let disk = DiskConfig {
            plan: Some(FaultPlan { byte_budget: 64, ..FaultPlan::quiet(9) }),
            gauge: DiskGaugeConfig {
                low_water: 1 << 20,
                refuse_water: 1 << 20,
                ..DiskGaugeConfig::default()
            },
        };
        let mut s =
            Shard::new(0, &dir, AdmissionConfig::default(), 2, 10, false, None, disk).unwrap();
        assert_eq!(s.durability_level(), DurabilityLevel::Durable);
        for now in 0..=10 {
            let _ = s.offer_tagged("a", 64, now, now);
            s.advance(now, 1, false);
        }
        assert_eq!(s.durability_level(), DurabilityLevel::RefuseWrites);
        let err = s.offer_tagged("a", 64, 11, 11).unwrap_err();
        assert!(matches!(err, AdmissionError::WritesRefused { shard: 0 }), "{err:?}");
        let h = s.health();
        assert_eq!(h.durability, DurabilityLevel::RefuseWrites);
        let moves = s.take_durability_transitions();
        assert!(
            moves.iter().all(|(_, from, to)| to > from),
            "pressure-only runs degrade monotonically: {moves:?}"
        );
        assert!(!moves.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_leaves_only_the_journal() {
        let dir = scratch("kill");
        let mut s = shard(&dir);
        for now in 0..12 {
            s.offer_tagged("a", 64, now, now).unwrap();
            s.advance(now, 1, false);
        }
        s.kill();
        assert_eq!(s.state(), ShardState::Dead);
        let (run, _) = recover_run(s.journal_path()).unwrap();
        assert!(!run.complete, "a killed shard never writes a summary");
        assert_eq!(run.ledgers.last().unwrap().tick, 10, "only the cadence ledger");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
