//! The fleet coordinator: routing, health aggregation, failover, and the
//! fleet-wide conservation ledger.
//!
//! The coordinator owns the [`HashRing`] and every [`Shard`]. It assigns
//! each tenant a global chunk sequence (so served order is independent of
//! shard count), routes offers to the tenant's home shard, advances all
//! shards one tick **in parallel** (each shard is owned by exactly one
//! worker per tick — [`emoleak_exec::par_map_vec_indexed`] keeps the
//! result order and therefore the byte stream deterministic), and watches
//! per-shard health.
//!
//! # Failover and the conservation algebra
//!
//! The PR-5 identity `offered == served + rejected + shed + queued`
//! gains a `migrated` term and becomes *per shard*:
//!
//! ```text
//! offered_s == served_s + rejected_s + shed_s + queued_s + migrated_s
//! ```
//!
//! A migrated chunk is **re-offered through the target shard's normal
//! front door**, so it counts once in the source shard's `migrated` and
//! once in the target's `offered` — the fleet-wide roll-up (retired
//! shards' final ledgers plus live shards' counters) then satisfies the
//! identity by construction, with no special cases.
//!
//! Two failover paths:
//!
//! - **graceful** (sustained BrownOut): the shard is fenced — queue
//!   evacuated with seq tags intact, final ledger journaled — its vnodes
//!   leave the ring (only *its* tenants move), and the evacuees are
//!   re-offered along each tenant's new route.
//! - **crash** (panic budget exhausted, or a hard kill): in-memory state
//!   is gone. The coordinator replays the shard's journal segment: the
//!   last ledger gives a consistent counter snapshot, the journaled shed
//!   events give the *exact* shed count, and the coordinator's own routed
//!   count bounds the offers. Whatever the journal cannot account for is
//!   booked as `crash_loss` (and counted as shed), keeping the identity
//!   exact instead of silently leaking chunks.

use crate::config::FleetConfig;
use crate::ring::HashRing;
use crate::shard::{Shard, ShardHealth, ShardState};
use emoleak_admission::QueuedChunk;
use emoleak_core::admission::{AdmissionError, FleetState};
use emoleak_durable::{Dec, DurableError, Enc, Journal};
use emoleak_exec::par_map_vec_indexed;
use emoleak_stream::durable::{recover_run, LedgerRecord};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Coordinator-journal record kind: one checkpoint.
pub const REC_CHECKPOINT: u8 = 1;

/// Fleet-wide counters: live shards plus the retired ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Chunks offered across all shards (migrated chunks count again at
    /// their target — see the module docs).
    pub offered: u64,
    /// Chunks served to backends.
    pub served: u64,
    /// Chunks refused at a front door.
    pub rejected: u64,
    /// Chunks shed (CoDel sheds plus crash losses).
    pub shed: u64,
    /// Chunks still queued on live shards.
    pub queued: u64,
    /// Chunks evacuated out of a shard.
    pub migrated: u64,
    /// The subset of `shed` that a crashed shard's journal could not
    /// account for (in-memory queue lost to the crash).
    pub crash_loss: u64,
}

impl FleetStats {
    /// The fleet conservation identity.
    pub fn conserves(&self) -> bool {
        self.offered == self.served + self.rejected + self.shed + self.queued + self.migrated
    }
}

/// Why a shard was failed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverKind {
    /// Sustained BrownOut: fenced and evacuated.
    Graceful,
    /// Crash: reconciled from the journal segment.
    Crash,
}

/// One failover the coordinator performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverEvent {
    /// The tick it happened at.
    pub tick: u64,
    /// The shard that left the ring.
    pub shard: u32,
    /// Graceful or crash.
    pub kind: FailoverKind,
    /// Chunks evacuated and re-offered (graceful only).
    pub moved_chunks: u64,
    /// Evacuated chunks the target shards refused.
    pub reoffer_rejected: u64,
    /// Chunks booked as crash loss (crash only).
    pub crash_loss: u64,
}

/// The aggregated health picture one `view()` call returns.
#[derive(Debug, Clone)]
pub struct FleetView {
    /// Per-shard health samples, shard-id order.
    pub shards: Vec<ShardHealth>,
    /// Shards still in the ring.
    pub live: usize,
    /// The worst live shard's breaker state ([`FleetState::Healthy`] when
    /// nothing is live — an empty fleet has nothing to brown out).
    pub worst: FleetState,
    /// Total chunks queued across live shards.
    pub queue_depth_total: usize,
    /// Total contained panics across all shards.
    pub restart_burn: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct RetiredTotals {
    offered: u64,
    served: u64,
    rejected: u64,
    shed: u64,
    migrated: u64,
}

/// The fleet coordinator. See the module docs for the failover model.
pub struct FleetCoordinator {
    cfg: FleetConfig,
    dir: PathBuf,
    ring: HashRing,
    shards: Vec<Shard>,
    routed: BTreeMap<u32, u64>,
    tenant_seq: BTreeMap<String, u64>,
    retired: RetiredTotals,
    crash_loss: u64,
    brownout_streak: BTreeMap<u32, u32>,
    checkpoint: Journal,
    ckpt_seq: u64,
    failovers: Vec<FailoverEvent>,
}

/// The coordinator's own checkpoint journal path under `dir`.
pub fn coordinator_journal_path(dir: &Path) -> PathBuf {
    dir.join("coordinator.log")
}

impl FleetCoordinator {
    /// A fresh fleet under `dir`: shards `0..cfg.shards`, each with its
    /// own journal segment, plus the coordinator's checkpoint journal.
    ///
    /// # Errors
    ///
    /// [`DurableError`] when `dir` or a journal cannot be created.
    pub fn new(cfg: FleetConfig, dir: &Path) -> Result<FleetCoordinator, DurableError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| DurableError::io(dir, "create fleet dir", &e))?;
        let mut shards = Vec::with_capacity(cfg.shards as usize);
        for id in 0..cfg.shards {
            shards.push(Shard::new(
                id,
                dir,
                cfg.admission.clone(),
                cfg.restart_budget,
                cfg.ledger_every,
            )?);
        }
        let checkpoint = Journal::create(&coordinator_journal_path(dir))?;
        Ok(FleetCoordinator {
            ring: HashRing::new(cfg.seed, cfg.shards, cfg.vnodes),
            routed: (0..cfg.shards).map(|id| (id, 0)).collect(),
            cfg,
            dir: dir.to_path_buf(),
            shards,
            tenant_seq: BTreeMap::new(),
            retired: RetiredTotals::default(),
            crash_loss: 0,
            brownout_streak: BTreeMap::new(),
            checkpoint,
            ckpt_seq: 0,
            failovers: Vec::new(),
        })
    }

    /// The live routing ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The fleet's tuning.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Every failover performed so far, in order.
    pub fn failovers(&self) -> &[FailoverEvent] {
        &self.failovers
    }

    fn shard_mut(&mut self, id: u32) -> &mut Shard {
        self.shards
            .iter_mut()
            .find(|s| s.id() == id)
            .expect("ring routed to a shard the coordinator does not own")
    }

    /// Offers one chunk for `tenant`: assigns the tenant's next global
    /// seq, routes to the home shard, and counts the route. The seq
    /// advances even on a refusal, so numbering is a pure function of the
    /// offer stream — not of per-shard admission outcomes.
    ///
    /// # Errors
    ///
    /// Whatever the home shard's front door refuses with.
    ///
    /// # Panics
    ///
    /// Panics if every shard has been retired (empty ring).
    pub fn offer(&mut self, tenant: &str, cost: u64, now: u64) -> Result<(), AdmissionError> {
        let seq = {
            let s = self.tenant_seq.entry(tenant.to_string()).or_insert(0);
            let seq = *s;
            *s += 1;
            seq
        };
        let id = self.ring.route(tenant);
        *self.routed.entry(id).or_insert(0) += 1;
        self.shard_mut(id).offer_tagged(tenant, cost, now, seq)
    }

    /// Advances every live shard one tick in parallel (drain up to
    /// `capacity` chunks each, observe, ledger on cadence). `panics` names
    /// the shard ids whose drain worker the chaos harness kills this tick;
    /// those panics are contained inside their shard. Served chunks come
    /// back in shard-id-then-queue order — deterministic for any worker
    /// count. A shard whose restart budget dies this tick is crash-failed
    /// over before this returns.
    pub fn advance(&mut self, now: u64, capacity: usize, panics: &[u32]) -> Vec<QueuedChunk> {
        let shards = std::mem::take(&mut self.shards);
        let mut results = par_map_vec_indexed(shards, |_, mut shard| {
            let inject = panics.contains(&shard.id());
            let tick = shard.advance(now, capacity, inject);
            (shard, tick)
        });
        let mut served = Vec::new();
        let mut deaths = Vec::new();
        for (shard, tick) in &mut results {
            served.append(&mut tick.served);
            if tick.died {
                deaths.push(shard.id());
            }
        }
        self.shards = results.into_iter().map(|(s, _)| s).collect();
        for id in deaths {
            self.crash_failover(id, now);
        }
        served
    }

    /// Scans health, advances per-shard BrownOut streaks, and fences any
    /// shard browned out for `failover_after` consecutive scans — unless
    /// it is the last one standing (fencing the whole fleet would turn a
    /// brown-out into a blackout; the single shard's own breaker already
    /// sheds load). Returns the failovers performed.
    pub fn react(&mut self, now: u64) -> Vec<FailoverEvent> {
        let mut fenced = Vec::new();
        for h in self.view().shards {
            if h.state != ShardState::Active || !self.ring.contains(h.id) {
                continue;
            }
            let streak = self.brownout_streak.entry(h.id).or_insert(0);
            if h.fleet == FleetState::BrownOut {
                *streak += 1;
            } else {
                *streak = 0;
            }
            if *streak >= self.cfg.failover_after && self.ring.len() > 1 {
                fenced.push(h.id);
            }
        }
        let mut events = Vec::new();
        for id in fenced {
            if self.ring.len() > 1 {
                events.push(self.graceful_failover(id, now));
            }
        }
        events
    }

    /// Hard-kills shard `id` (chaos: a `SIGKILL` mid-campaign) and
    /// immediately crash-fails it over.
    pub fn kill_shard(&mut self, id: u32, now: u64) -> FailoverEvent {
        self.shard_mut(id).kill();
        self.crash_failover(id, now)
    }

    /// Fences shard `id`, retires its final counters, removes it from the
    /// ring, and re-offers its evacuated queue along each tenant's new
    /// route (seq tags intact).
    fn graceful_failover(&mut self, id: u32, now: u64) -> FailoverEvent {
        let (evacuated, stats) = self.shard_mut(id).fence(now);
        debug_assert_eq!(stats.queued, 0, "fence evacuates before snapshotting");
        self.retired.offered += stats.offered;
        self.retired.served += stats.served;
        self.retired.rejected += stats.rejected;
        self.retired.shed += stats.shed;
        self.retired.migrated += stats.migrated;
        self.routed.remove(&id);
        self.ring.remove_shard(id);
        let moved = evacuated.len() as u64;
        let mut reoffer_rejected = 0;
        for chunk in evacuated {
            let target = self.ring.route(&chunk.tenant);
            *self.routed.entry(target).or_insert(0) += 1;
            if self
                .shard_mut(target)
                .offer_tagged(&chunk.tenant, chunk.cost, now, chunk.seq)
                .is_err()
            {
                reoffer_rejected += 1;
            }
        }
        let event = FailoverEvent {
            tick: now,
            shard: id,
            kind: FailoverKind::Graceful,
            moved_chunks: moved,
            reoffer_rejected,
            crash_loss: 0,
        };
        self.failovers.push(event);
        event
    }

    /// Reconciles a crashed shard from its journal segment and the
    /// coordinator's routed count, then removes it from the ring. See the
    /// module docs for the algebra.
    fn crash_failover(&mut self, id: u32, now: u64) -> FailoverEvent {
        let routed = self.routed.remove(&id).unwrap_or(0);
        let path = crate::shard::shard_journal_path(&self.dir, id);
        let (ledger, exact_shed) = match recover_run(&path) {
            Ok((run, _defects)) => {
                let ledger = run.ledgers.last().copied().unwrap_or_default();
                (ledger, run.sheds.len() as u64)
            }
            // An unreadable segment accounts for nothing: everything
            // routed becomes crash loss. Never happens with a healthy
            // disk; never panics without one.
            Err(_) => (LedgerRecord::default(), 0),
        };
        let known = ledger.served + ledger.rejected + exact_shed + ledger.migrated;
        // `routed` counts every chunk the coordinator sent; the journal
        // can only under-report (post-ledger serves/rejects, the queue at
        // the moment of death). After a coordinator restart `routed` comes
        // from a checkpoint and may itself lag the journal — the max of
        // the two lower bounds is the tightest honest estimate.
        let offered = routed.max(ledger.offered).max(known);
        let loss = offered - known;
        self.retired.offered += offered;
        self.retired.served += ledger.served;
        self.retired.rejected += ledger.rejected;
        self.retired.shed += exact_shed + loss;
        self.retired.migrated += ledger.migrated;
        self.crash_loss += loss;
        self.ring.remove_shard(id);
        let event = FailoverEvent {
            tick: now,
            shard: id,
            kind: FailoverKind::Crash,
            moved_chunks: 0,
            reoffer_rejected: 0,
            crash_loss: loss,
        };
        self.failovers.push(event);
        event
    }

    /// The aggregated health picture.
    pub fn view(&self) -> FleetView {
        let shards: Vec<ShardHealth> = self.shards.iter().map(Shard::health).collect();
        let live: Vec<&ShardHealth> =
            shards.iter().filter(|h| self.ring.contains(h.id)).collect();
        FleetView {
            live: live.len(),
            worst: live.iter().map(|h| h.fleet).max().unwrap_or(FleetState::Healthy),
            queue_depth_total: live.iter().map(|h| h.queue_depth).sum(),
            restart_burn: shards.iter().map(|h| h.restarts_used).sum(),
            shards,
        }
    }

    /// The fleet-wide roll-up: retired ledgers plus live counters.
    /// [`FleetStats::conserves`] holds at every tick by construction.
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats {
            offered: self.retired.offered,
            served: self.retired.served,
            rejected: self.retired.rejected,
            shed: self.retired.shed,
            queued: 0,
            migrated: self.retired.migrated,
            crash_loss: self.crash_loss,
        };
        for shard in &self.shards {
            if let Some(a) = shard.stats() {
                s.offered += a.offered;
                s.served += a.served;
                s.rejected += a.rejected;
                s.shed += a.shed;
                s.queued += a.queued;
                s.migrated += a.migrated;
            }
        }
        s
    }

    /// Journals a coordinator checkpoint: live shard set, routed counts,
    /// per-tenant seqs, and the retired ledger. [`FleetCoordinator::recover`]
    /// restarts from the newest one.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when the append fails.
    pub fn checkpoint(&mut self, now: u64) -> Result<(), DurableError> {
        let mut enc = Enc::new();
        enc.u64(now);
        let live = self.ring.shard_ids();
        enc.u64(live.len() as u64);
        for id in &live {
            enc.u64(u64::from(*id));
            enc.u64(self.routed.get(id).copied().unwrap_or(0));
        }
        enc.u64(self.retired.offered)
            .u64(self.retired.served)
            .u64(self.retired.rejected)
            .u64(self.retired.shed)
            .u64(self.retired.migrated)
            .u64(self.crash_loss);
        enc.u64(self.tenant_seq.len() as u64);
        for (tenant, seq) in &self.tenant_seq {
            enc.str(tenant).u64(*seq);
        }
        let seq = self.ckpt_seq;
        self.checkpoint.append(REC_CHECKPOINT, seq, &enc.into_bytes())?;
        self.ckpt_seq += 1;
        Ok(())
    }

    /// Restarts a coordinator from `dir` after a crash: replays the
    /// newest checkpoint, reconciles every then-live shard from its
    /// journal segment as a crash (the process died — their memory is
    /// gone), and brings up fresh shards under the same ids. The ring is
    /// rebuilt from the same seed and shard set, so every tenant keeps
    /// its home; per-tenant seqs resume where the checkpoint left them.
    ///
    /// # Errors
    ///
    /// [`DurableError`] when the checkpoint journal is unreadable or
    /// `dir` has no checkpoint at all.
    pub fn recover(cfg: FleetConfig, dir: &Path) -> Result<FleetCoordinator, DurableError> {
        let ckpt_path = coordinator_journal_path(dir);
        let (_journal, records, _defects) = Journal::open(&ckpt_path)?;
        let last = records
            .iter()
            .rev()
            .find(|r| r.kind == REC_CHECKPOINT)
            .ok_or_else(|| DurableError::Corrupt {
                path: ckpt_path.display().to_string(),
                offset: 0,
                detail: "no checkpoint to recover from".to_string(),
            })?;
        let corrupt = |e: emoleak_durable::WireError| DurableError::Corrupt {
            path: ckpt_path.display().to_string(),
            offset: e.offset,
            detail: e.detail,
        };
        let mut dec = Dec::new(&last.data);
        let tick = dec.u64().map_err(corrupt)?;
        let live_n = dec.u64().map_err(corrupt)? as usize;
        let mut live = Vec::with_capacity(live_n);
        for _ in 0..live_n {
            let id = dec.u64().map_err(corrupt)? as u32;
            let routed = dec.u64().map_err(corrupt)?;
            live.push((id, routed));
        }
        let retired = RetiredTotals {
            offered: dec.u64().map_err(corrupt)?,
            served: dec.u64().map_err(corrupt)?,
            rejected: dec.u64().map_err(corrupt)?,
            shed: dec.u64().map_err(corrupt)?,
            migrated: dec.u64().map_err(corrupt)?,
        };
        let crash_loss = dec.u64().map_err(corrupt)?;
        let tenants_n = dec.u64().map_err(corrupt)? as usize;
        let mut tenant_seq = BTreeMap::new();
        for _ in 0..tenants_n {
            let tenant = dec.str().map_err(corrupt)?;
            let seq = dec.u64().map_err(corrupt)?;
            tenant_seq.insert(tenant, seq);
        }
        dec.finish().map_err(corrupt)?;

        // The process died with the checkpointed shards live: reconcile
        // each from its segment, then restart it fresh under the same id.
        let mut coord = FleetCoordinator {
            ring: HashRing::new(cfg.seed, 0, cfg.vnodes),
            routed: BTreeMap::new(),
            cfg,
            dir: dir.to_path_buf(),
            shards: Vec::new(),
            tenant_seq,
            retired,
            crash_loss,
            brownout_streak: BTreeMap::new(),
            checkpoint: Journal::create(&ckpt_path)?,
            ckpt_seq: 0,
            failovers: Vec::new(),
        };
        for (id, routed) in &live {
            coord.ring.insert_shard(*id);
            coord.routed.insert(*id, *routed);
        }
        for (id, _) in &live {
            coord.crash_failover(*id, tick);
        }
        // Fresh shards under the same ids (truncating the reconciled
        // segments), same seed: every tenant keeps its home.
        coord.routed.clear();
        for (id, _) in &live {
            coord.shards.push(Shard::new(
                *id,
                dir,
                coord.cfg.admission.clone(),
                coord.cfg.restart_budget,
                coord.cfg.ledger_every,
            )?);
            coord.ring.insert_shard(*id);
            coord.routed.insert(*id, 0);
        }
        Ok(coord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("emoleak-coord-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small(shards: u32) -> FleetConfig {
        FleetConfig {
            shards,
            ledger_every: 10,
            admission: emoleak_admission::AdmissionConfig {
                mem_budget: u64::MAX / 2,
                tenant_rps: 1_000_000,
                tenant_burst: 1_000_000,
                ..Default::default()
            },
            ..FleetConfig::default()
        }
    }

    fn tenants(n: usize) -> Vec<String> {
        (0..n).map(|t| format!("tenant-{t}")).collect()
    }

    #[test]
    fn clean_path_conserves_and_serves_everything() {
        let dir = scratch("clean");
        let mut c = FleetCoordinator::new(small(4), &dir).unwrap();
        let ts = tenants(16);
        for now in 0..200 {
            for t in &ts {
                c.offer(t, 64, now).unwrap();
            }
            c.advance(now, 64, &[]);
        }
        let mut now = 200;
        while c.stats().queued > 0 {
            c.advance(now, usize::MAX, &[]);
            now += 1;
        }
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        assert_eq!(s.offered, 16 * 200);
        assert_eq!(s.served, s.offered, "clean path serves everything: {s:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killing_a_shard_keeps_the_identity_and_only_moves_its_tenants() {
        let dir = scratch("kill");
        let mut c = FleetCoordinator::new(small(4), &dir).unwrap();
        let ts = tenants(24);
        let homes: BTreeMap<&String, u32> =
            ts.iter().map(|t| (t, c.ring().route(t))).collect();
        for now in 0..100 {
            for t in &ts {
                // Capacity-starved on purpose (queues must be non-empty at
                // the kill); brown-out refusals are part of the deal.
                let _ = c.offer(t, 64, now);
            }
            c.advance(now, 2, &[]);
        }
        let victim = 1;
        let event = c.kill_shard(victim, 100);
        assert_eq!(event.kind, FailoverKind::Crash);
        assert!(c.stats().conserves(), "{:?}", c.stats());
        // Bounded movement: only the victim's tenants re-home.
        for t in &ts {
            let new_home = c.ring().route(t);
            if homes[t] == victim {
                assert_ne!(new_home, victim);
            } else {
                assert_eq!(new_home, homes[t], "{t} moved without cause");
            }
        }
        // The fleet keeps serving; the identity keeps holding.
        for now in 101..200 {
            for t in &ts {
                let _ = c.offer(t, 64, now);
            }
            c.advance(now, usize::MAX, &[]);
        }
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        assert!(s.crash_loss > 0, "a kill with queued work must book loss: {s:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panic_storm_is_contained_until_the_budget_dies_then_reconciled() {
        let dir = scratch("storm");
        let mut c = FleetCoordinator::new(small(2), &dir).unwrap();
        let ts = tenants(8);
        let mut died_at = None;
        for now in 0..50 {
            for t in &ts {
                let _ = c.offer(t, 64, now);
            }
            // Shard 0 eats a hostile chunk every tick; budget 3 → dead at
            // the 4th panic.
            c.advance(now, 8, &[0]);
            if c.view().live == 1 && died_at.is_none() {
                died_at = Some(now);
            }
            assert!(c.stats().conserves(), "tick {now}: {:?}", c.stats());
        }
        let died_at = died_at.expect("the storm must eventually kill shard 0");
        assert_eq!(died_at, 3, "budget 3 contains exactly 3 panics");
        assert_eq!(c.failovers().len(), 1);
        assert_eq!(c.failovers()[0].kind, FailoverKind::Crash);
        // Shard 1 never noticed.
        let h1 = c.view().shards.iter().find(|h| h.id == 1).unwrap().restarts_used;
        assert_eq!(h1, 0, "the storm leaked across the shard boundary");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sustained_brownout_fences_gracefully_with_zero_loss() {
        let dir = scratch("brownout");
        let mut cfg = small(2);
        // Tiny budget so one tenant's flood browns its shard out.
        cfg.admission.mem_budget = 4096;
        let mut c = FleetCoordinator::new(cfg, &dir).unwrap();
        // Find a tenant homed on shard 0 and flood it; drain nothing.
        let flooder = (0..64)
            .map(|t| format!("tenant-{t}"))
            .find(|t| c.ring().route(t) == 0)
            .unwrap();
        let mut fenced = false;
        for now in 0..400 {
            for _ in 0..8 {
                let _ = c.offer(&flooder, 64, now);
            }
            c.advance(now, 0, &[]);
            let events = c.react(now);
            if !events.is_empty() {
                assert_eq!(events[0].kind, FailoverKind::Graceful);
                assert_eq!(events[0].shard, 0);
                assert!(events[0].moved_chunks > 0, "{events:?}");
                fenced = true;
                break;
            }
        }
        assert!(fenced, "sustained brown-out must fence the shard");
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        assert_eq!(s.crash_loss, 0, "graceful failover loses nothing");
        assert!(s.migrated > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coordinator_restart_recovers_from_the_checkpoint() {
        let dir = scratch("restart");
        let ts = tenants(12);
        let (pre_stats, seqs) = {
            let mut c = FleetCoordinator::new(small(3), &dir).unwrap();
            for now in 0..60 {
                for t in &ts {
                    // Capacity-starved: refusals are expected and still
                    // advance the tenant's seq.
                    let _ = c.offer(t, 64, now);
                }
                c.advance(now, 2, &[]);
                if now % 20 == 19 {
                    c.checkpoint(now).unwrap();
                }
            }
            (c.stats(), c.tenant_seq.clone())
            // Dropped without a final checkpoint: ticks 40..59 are the
            // window a restart must reconcile honestly.
        };
        let c = FleetCoordinator::recover(small(3), &dir).unwrap();
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        // Everything checkpoint-known or journal-known is retired;
        // nothing silently vanishes: recovered offered covers at least
        // the last checkpoint's routing and at most what really ran.
        assert!(s.offered <= pre_stats.offered, "recovered more than ran: {s:?}");
        assert!(
            s.offered >= 12 * 40,
            "recovery lost checkpointed routing: {} < {}",
            s.offered,
            12 * 40
        );
        // Seqs resume from the checkpoint: monotone, never reused from 0.
        for t in &ts {
            let recovered = c.tenant_seq.get(t).copied().unwrap_or(0);
            assert!(recovered >= 40, "{t} seq rewound to {recovered}");
            assert!(recovered <= seqs[t]);
        }
        assert_eq!(c.view().live, 3, "all shards restart fresh");
        assert!(c.stats().conserves());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
