//! The fleet coordinator: routing, health aggregation, failover, and the
//! fleet-wide conservation ledger.
//!
//! The coordinator owns the [`HashRing`] and every [`Shard`]. It assigns
//! each tenant a global chunk sequence (so served order is independent of
//! shard count), routes offers to the tenant's home shard, advances all
//! shards one tick **in parallel** (each shard is owned by exactly one
//! worker per tick — [`emoleak_exec::par_map_vec_indexed`] keeps the
//! result order and therefore the byte stream deterministic), and watches
//! per-shard health.
//!
//! # Failover and the conservation algebra
//!
//! The PR-5 identity `offered == served + rejected + shed + queued`
//! gains a `migrated` term and becomes *per shard*:
//!
//! ```text
//! offered_s == served_s + rejected_s + shed_s + queued_s + migrated_s
//! ```
//!
//! A migrated chunk is **re-offered through the target shard's normal
//! front door**, so it counts once in the source shard's `migrated` and
//! once in the target's `offered` — the fleet-wide roll-up (retired
//! shards' final ledgers plus live shards' counters) then satisfies the
//! identity by construction, with no special cases.
//!
//! Two failover paths:
//!
//! - **graceful** (sustained BrownOut): the shard is fenced — queue
//!   evacuated with seq tags intact, final ledger journaled — its vnodes
//!   leave the ring (only *its* tenants move), and the evacuees are
//!   re-offered along each tenant's new route.
//! - **crash** (panic budget exhausted, or a hard kill): in-memory state
//!   is gone. With replication on (the default), the shard journaled an
//!   admit record before every enqueue and a serve/shed record after
//!   every dequeue, and shipped each committed record synchronously to a
//!   deterministic follower ([`HashRing::successor_shard`]). The
//!   coordinator replays the first *clean* surviving segment — primary
//!   (process death, disk intact) or replica (disk loss) — reconstructs
//!   the exact queue at death (`admits − serves − sheds`), and re-offers
//!   it along each tenant's new route: `crash_loss == 0`, with the
//!   replayed chunks surfaced as [`FleetStats::recovered`] (they count as
//!   `migrated` in the identity, like a graceful evacuation). Only when
//!   *every* copy is damaged (a double failure: primary disk lost *and*
//!   replica corrupted) does the coordinator fall back to bounded-loss
//!   reconciliation — last ledger snapshot plus exact journaled sheds,
//!   bounded by the routed count — and book the honest residual as
//!   `crash_loss` (counted as shed), keeping the identity exact instead
//!   of silently leaking chunks.
//!
//! # Anti-entropy scrubbing
//!
//! Replicas are only worth what they can replay. On a logical-tick
//! cadence (`EMOLEAK_SCRUB_EVERY`), the coordinator CRC-verifies one live
//! shard's replica against its primary (round-robin over the fleet),
//! classifies any difference ([`Defect::ReplicaLag`] /
//! [`Defect::ReplicaDiverged`]), and read-repairs it by deterministic
//! rebuild ([`Defect::ScrubRepaired`]). Findings accumulate on the
//! [`FleetView`]. Scrubbing runs on ticks, not wall clock, so fleet
//! output stays byte-identical across thread counts.

use crate::config::{DiskConfig, FleetConfig};
use crate::ring::HashRing;
use crate::shard::{shard_journal_path, shard_replica_path, Shard, ShardHealth, ShardState};
use crate::transport::{Msg, NetStats, NodeId, SimNet};
use emoleak_admission::{AdmissionStats, QueuedChunk};
use emoleak_core::admission::{AdmissionError, DurabilityLevel, FleetState};
use emoleak_durable::{Dec, Defect, DurableError, Enc, Journal};
use emoleak_exec::{derive_seed, par_map_vec_indexed};
use emoleak_stream::durable::{recover_run, ChunkAdmit, LedgerRecord};
use emoleak_stream::log::{ServiceEvent, ServiceLog};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Coordinator-journal record kind: one checkpoint.
pub const REC_CHECKPOINT: u8 = 1;

/// Fleet-wide counters: live shards plus the retired ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Chunks offered across all shards (migrated chunks count again at
    /// their target — see the module docs).
    pub offered: u64,
    /// Chunks served to backends.
    pub served: u64,
    /// Chunks refused at a front door.
    pub rejected: u64,
    /// Chunks shed (CoDel sheds plus crash losses).
    pub shed: u64,
    /// Chunks still queued on live shards.
    pub queued: u64,
    /// Chunks evacuated out of a shard.
    pub migrated: u64,
    /// The subset of `shed` that a crashed shard's journal could not
    /// account for (in-memory queue lost to the crash).
    pub crash_loss: u64,
    /// The subset of `migrated` that was *replayed* out of a crashed
    /// shard's surviving journal (primary or replica) and re-offered —
    /// work that replication rescued from the crash. Not a new identity
    /// term: recovered chunks count as `migrated` at the dead shard and
    /// `offered` at their new home, exactly like a graceful evacuation.
    pub recovered: u64,
}

impl FleetStats {
    /// The fleet conservation identity.
    pub fn conserves(&self) -> bool {
        self.offered == self.served + self.rejected + self.shed + self.queued + self.migrated
    }
}

/// Why a shard was failed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverKind {
    /// Sustained BrownOut: fenced and evacuated.
    Graceful,
    /// Crash: reconciled from the journal segment.
    Crash,
}

/// One failover the coordinator performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverEvent {
    /// The tick it happened at.
    pub tick: u64,
    /// The shard that left the ring.
    pub shard: u32,
    /// Graceful or crash.
    pub kind: FailoverKind,
    /// Chunks moved off the shard and re-offered: a graceful evacuation,
    /// or a crash replay out of a surviving journal.
    pub moved_chunks: u64,
    /// Moved chunks the target shards refused.
    pub reoffer_rejected: u64,
    /// Chunks booked as crash loss (crash only; zero when a clean journal
    /// copy survived).
    pub crash_loss: u64,
    /// Chunks replayed from a surviving journal copy (crash only).
    pub recovered: u64,
}

/// The aggregated health picture one `view()` call returns.
#[derive(Debug, Clone)]
pub struct FleetView {
    /// Per-shard health samples, shard-id order.
    pub shards: Vec<ShardHealth>,
    /// Shards still in the ring.
    pub live: usize,
    /// The worst live shard's breaker state ([`FleetState::Healthy`] when
    /// nothing is live — an empty fleet has nothing to brown out).
    pub worst: FleetState,
    /// Total chunks queued across live shards.
    pub queue_depth_total: usize,
    /// Total contained panics across all shards.
    pub restart_burn: u32,
    /// Live shards whose replica is currently latched (a ship failed and
    /// no scrub has repaired it yet).
    pub replicas_latched: usize,
    /// Every defect the anti-entropy scrubber has found (and repaired) so
    /// far, in detection order.
    pub scrub_events: Vec<Defect>,
    /// Every internal invariant violation the coordinator detected and
    /// survived, in detection order. Empty in a correct build.
    pub internal_errors: Vec<FleetInternalError>,
    /// The worst storage durability level among live shards
    /// ([`DurabilityLevel::Durable`] when nothing is live, or the disk
    /// gauge is unarmed).
    pub durability_worst: DurabilityLevel,
    /// Shard-ticks spent at each durability level (indexed like
    /// [`DurabilityLevel::ALL`], best rung first), accumulated over every
    /// `advance` for live shards. The fleet's storage-health budget:
    /// `[all, 0, 0, 0]` on a healthy disk.
    pub durability_level_ticks: [u64; 4],
    /// Records committed in memory but journaled nowhere across all
    /// shards — the honest would-be-lost-on-crash exposure right now.
    pub unjournaled_total: u64,
}

/// A violated internal invariant the coordinator detected — and survived —
/// at runtime. These are coordinator *bugs made visible*: instead of a
/// `debug_assert` that vanishes in release builds (or an abort that takes
/// the fleet down), the violation is booked honestly (conservation stays
/// exact) and reported here for harnesses and operators to flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetInternalError {
    /// A fence returned a non-empty queue snapshot: `Shard::fence` is
    /// specified to evacuate before snapshotting, so the final counters
    /// should always show `queued == 0`. The residual was booked as shed
    /// (and counted into `crash_loss`) so the identity still holds.
    FenceLeftQueue {
        /// The fenced shard.
        shard: u32,
        /// Chunks the final snapshot still showed queued.
        queued: u64,
    },
}

impl core::fmt::Display for FleetInternalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetInternalError::FenceLeftQueue { shard, queued } => write!(
                f,
                "invariant violated: fencing shard {shard} left {queued} chunk(s) queued \
                 (booked as shed)"
            ),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct RetiredTotals {
    offered: u64,
    served: u64,
    rejected: u64,
    shed: u64,
    migrated: u64,
}

/// One shard's serving lease, as the coordinator tracks it.
#[derive(Debug, Clone, Copy)]
struct Lease {
    /// The furthest `lease_until` the coordinator has granted. The shard
    /// may serve through this tick, so failover before `now >
    /// granted_until` could split-brain; the coordinator never does.
    granted_until: u64,
    /// The tick the last probe ack arrived. Grants stop when this goes
    /// stale, which freezes `granted_until` and starts the failover clock.
    last_ack: u64,
}

/// The transport-mode state: the simulated plane plus the lease table and
/// the probe-derived health cache.
struct NetRuntime {
    net: SimNet<Msg>,
    lease_ticks: u64,
    leases: BTreeMap<u32, Lease>,
    /// Latest `ProbeAck` health per shard, with its arrival tick. `react`
    /// keys off this in transport mode: the coordinator can only act on
    /// what the (unreliable) plane actually told it.
    health_cache: BTreeMap<u32, (u64, ShardHealth)>,
}

/// The fleet coordinator. See the module docs for the failover model.
pub struct FleetCoordinator {
    cfg: FleetConfig,
    dir: PathBuf,
    ring: HashRing,
    shards: Vec<Shard>,
    routed: BTreeMap<u32, u64>,
    tenant_seq: BTreeMap<String, u64>,
    retired: RetiredTotals,
    crash_loss: u64,
    recovered: u64,
    brownout_streak: BTreeMap<u32, u32>,
    checkpoint: Journal,
    ckpt_seq: u64,
    failovers: Vec<FailoverEvent>,
    scrub_events: Vec<Defect>,
    internal_errors: Vec<FleetInternalError>,
    /// `Some` when `cfg.net` selects a profile: all shard traffic flows
    /// through the simulated plane. `None` is the direct-call path,
    /// byte-for-byte the PR 6 behaviour.
    net: Option<NetRuntime>,
    /// Per-shard fencing-token authority: the minimum token the shard's
    /// journal currently accepts. Shared (`Arc`) with the shard's sink so
    /// a resurrected stale incarnation checks the *live* value.
    fence_authorities: BTreeMap<u32, Arc<AtomicU64>>,
    /// The coordinator's own event log: durability transitions drained
    /// from shard gauges, re-stamped onto the tick clock.
    log: ServiceLog,
    /// Shard-ticks spent at each durability level (see
    /// [`FleetView::durability_level_ticks`]).
    durability_level_ticks: [u64; 4],
}

/// The coordinator's own checkpoint journal path under `dir`.
pub fn coordinator_journal_path(dir: &Path) -> PathBuf {
    dir.join("coordinator.log")
}

impl FleetCoordinator {
    /// A fresh fleet under `dir`: shards `0..cfg.shards`, each with its
    /// own journal segment, plus the coordinator's checkpoint journal.
    ///
    /// # Errors
    ///
    /// [`DurableError`] when `dir` or a journal cannot be created.
    pub fn new(cfg: FleetConfig, dir: &Path) -> Result<FleetCoordinator, DurableError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| DurableError::io(dir, "create fleet dir", &e))?;
        // The ring first: replication pairs (primary → follower) are read
        // off it before any shard exists.
        let ring = HashRing::new(cfg.seed, cfg.shards, cfg.vnodes);
        let mut shards = Vec::with_capacity(cfg.shards as usize);
        for id in 0..cfg.shards {
            let follower = if cfg.replicated() { ring.successor_shard(id) } else { None };
            shards.push(Shard::new(
                id,
                dir,
                cfg.admission.clone(),
                cfg.restart_budget,
                cfg.ledger_every,
                cfg.replicated(),
                follower,
                DiskConfig { plan: cfg.disk.shard_plan(cfg.seed, id), gauge: cfg.disk.gauge },
            )?);
        }
        let checkpoint = Journal::create(&coordinator_journal_path(dir))?;
        let mut coord = FleetCoordinator {
            ring,
            routed: (0..cfg.shards).map(|id| (id, 0)).collect(),
            cfg,
            dir: dir.to_path_buf(),
            shards,
            tenant_seq: BTreeMap::new(),
            retired: RetiredTotals::default(),
            crash_loss: 0,
            recovered: 0,
            brownout_streak: BTreeMap::new(),
            checkpoint,
            ckpt_seq: 0,
            failovers: Vec::new(),
            scrub_events: Vec::new(),
            internal_errors: Vec::new(),
            net: None,
            fence_authorities: BTreeMap::new(),
            log: ServiceLog::new(),
            durability_level_ticks: [0; 4],
        };
        coord.arm_transport(0);
        Ok(coord)
    }

    /// The fencing token every first shard incarnation holds. Authorities
    /// start below it (0 = accept anything), and a failover raises the
    /// shard's authority past it, fencing the incarnation out.
    const FIRST_INCARNATION_TOKEN: u64 = 1;

    /// Brings up the simulated message plane when the config selects a
    /// profile: every shard gets a fencing token on its journal writer, a
    /// lease gate on its drain loop, and a lease entry at the coordinator.
    /// `start` anchors the first lease grants: tick 0 for a fresh fleet,
    /// the checkpoint tick for a recovered one — a recovered coordinator
    /// resumes mid-clock, and leases dated from 0 would all look expired
    /// on the first advance, failing over the entire (healthy) fleet.
    fn arm_transport(&mut self, start: u64) {
        let Some(profile) = self.cfg.net.profile.profile() else { return };
        let seed = match self.cfg.net.seed {
            0 => derive_seed(self.cfg.seed, 0x005E_70FF_A111),
            s => s,
        };
        let lease_ticks = self.cfg.net.lease_ticks;
        let mut leases = BTreeMap::new();
        for shard in &mut self.shards {
            let authority = Arc::new(AtomicU64::new(0));
            shard.arm_fence(Self::FIRST_INCARNATION_TOKEN, authority.clone());
            shard.enable_lease(start + lease_ticks);
            self.fence_authorities.insert(shard.id(), authority);
            leases.insert(
                shard.id(),
                Lease { granted_until: start + lease_ticks, last_ack: start },
            );
        }
        self.net = Some(NetRuntime {
            net: SimNet::new(profile, seed, self.cfg.net.dedup_window, 2),
            lease_ticks,
            leases,
            health_cache: BTreeMap::new(),
        });
    }

    /// The live routing ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The fleet's tuning.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Every failover performed so far, in order.
    pub fn failovers(&self) -> &[FailoverEvent] {
        &self.failovers
    }

    fn shard_mut(&mut self, id: u32) -> &mut Shard {
        self.shards
            .iter_mut()
            .find(|s| s.id() == id)
            .expect("ring routed to a shard the coordinator does not own")
    }

    /// Offers one chunk for `tenant`: assigns the tenant's next global
    /// seq, routes to the home shard, and counts the route. The seq
    /// advances even on a refusal, so numbering is a pure function of the
    /// offer stream — not of per-shard admission outcomes.
    ///
    /// In transport mode the offer is *sent*, not applied: it rides the
    /// plane as a `Msg::Offer` and is admitted when it arrives (same tick
    /// under [`crate::transport::NetProfile::ideal`]). The call then
    /// always returns `Ok` — admission refusals happen at the shard's
    /// front door on delivery and are counted there.
    ///
    /// # Errors
    ///
    /// Whatever the home shard's front door refuses with (direct mode).
    ///
    /// # Panics
    ///
    /// Panics if every shard has been retired (empty ring).
    pub fn offer(&mut self, tenant: &str, cost: u64, now: u64) -> Result<(), AdmissionError> {
        let seq = {
            let s = self.tenant_seq.entry(tenant.to_string()).or_insert(0);
            let seq = *s;
            *s += 1;
            seq
        };
        let id = self.ring.route(tenant);
        if let Some(rt) = self.net.as_mut() {
            let msg = Msg::Offer { tenant: tenant.to_string(), chunk_seq: seq, cost };
            rt.net.send(NodeId::Coordinator, NodeId::Shard(id), msg, now);
            return Ok(());
        }
        self.offer_to_shard(id, tenant, cost, now, seq)
    }

    /// Routes one tagged chunk into shard `id`'s front door, keeping the
    /// books exact. A [`AdmissionError::WritesRefused`] refusal fires
    /// *before* the shard's controller can count the offer, so it is
    /// booked at the coordinator's retired ledger instead — and not
    /// against the shard's routed count, which must keep matching what
    /// its journal can prove at reconciliation.
    fn offer_to_shard(
        &mut self,
        id: u32,
        tenant: &str,
        cost: u64,
        now: u64,
        seq: u64,
    ) -> Result<(), AdmissionError> {
        let res = self.shard_mut(id).offer_tagged(tenant, cost, now, seq);
        match &res {
            Err(AdmissionError::WritesRefused { .. }) => {
                self.retired.offered += 1;
                self.retired.rejected += 1;
            }
            _ => *self.routed.entry(id).or_insert(0) += 1,
        }
        res
    }

    /// Advances every live shard one tick in parallel (drain up to
    /// `capacity` chunks each, observe, ledger on cadence). `panics` names
    /// the shard ids whose drain worker the chaos harness kills this tick;
    /// those panics are contained inside their shard. Served chunks come
    /// back in shard-id-then-queue order — deterministic for any worker
    /// count. A shard whose restart budget dies this tick is crash-failed
    /// over before this returns.
    pub fn advance(&mut self, now: u64, capacity: usize, panics: &[u32]) -> Vec<QueuedChunk> {
        if self.net.is_some() {
            self.net_deliver(now);
            self.lease_expiry_failover(now);
        }
        let shards = std::mem::take(&mut self.shards);
        let mut results = par_map_vec_indexed(shards, |_, mut shard| {
            let inject = panics.contains(&shard.id());
            let tick = shard.advance(now, capacity, inject);
            (shard, tick)
        });
        let mut served = Vec::new();
        let mut deaths = Vec::new();
        for (shard, tick) in &mut results {
            served.append(&mut tick.served);
            if tick.died {
                deaths.push(shard.id());
            }
        }
        self.shards = results.into_iter().map(|(s, _)| s).collect();
        self.track_durability(now);
        for id in deaths {
            self.crash_failover(id, now);
        }
        self.scrub_tick(now);
        if self.net.is_some() {
            self.net_probe(now);
        }
        served
    }

    /// Pumps the plane at `now` and applies every fresh delivery: offers
    /// land at shard front doors, probes extend shard leases (and are
    /// acked with a health sample), drains fence shards, and evacuations
    /// book the retired counters and re-offer the evacuated queue.
    fn net_deliver(&mut self, now: u64) {
        let mut rt = self.net.take().expect("net_deliver requires transport mode");
        for d in rt.net.pump(now) {
            match d.dst {
                NodeId::Shard(id) => self.net_deliver_to_shard(&mut rt, id, d, now),
                NodeId::Coordinator => self.net_deliver_to_coordinator(&mut rt, d, now),
            }
        }
        self.net = Some(rt);
    }

    /// Applies one delivery addressed to shard `id` (the coordinator owns
    /// every shard object, so it runs the shard's receive logic in place —
    /// deterministically, in delivery order).
    fn net_deliver_to_shard(
        &mut self,
        rt: &mut NetRuntime,
        id: u32,
        d: crate::transport::Delivery<Msg>,
        now: u64,
    ) {
        let alive = self
            .shards
            .iter()
            .any(|s| s.id() == id && s.state() == ShardState::Active);
        match d.payload {
            Msg::Offer { tenant, chunk_seq, cost } => {
                if !alive || !self.ring.contains(id) {
                    // Dead, fenced, or already off the ring: refuse. The
                    // frame stays pending and the failover path re-routes
                    // it (`take_pending_to`) — at-least-once, never lost.
                    rt.net.refuse();
                    return;
                }
                // A refusal here is the shard's front door rejecting
                // (counted in its `rejected`, or at the coordinator for a
                // storage refusal) — delivery still succeeded.
                let _ = self.offer_to_shard(id, &tenant, cost, now, chunk_seq);
                rt.net.accept(d.src, d.dst, d.seq, now);
            }
            Msg::Probe { lease_until } => {
                if !alive {
                    rt.net.refuse();
                    return;
                }
                let shard = self.shard_mut(id);
                shard.grant_lease(lease_until);
                let health = shard.health();
                rt.net.accept(d.src, d.dst, d.seq, now);
                rt.net.send(NodeId::Shard(id), NodeId::Coordinator, Msg::ProbeAck { health }, now);
            }
            Msg::Drain => {
                if !alive {
                    rt.net.refuse();
                    return;
                }
                let (chunks, stats) = self.shard_mut(id).fence(now);
                rt.net.accept(d.src, d.dst, d.seq, now);
                rt.net.send(
                    NodeId::Shard(id),
                    NodeId::Coordinator,
                    Msg::Evacuated { chunks, stats },
                    now,
                );
            }
            // Shards never receive acks or evacuations; a misrouted frame
            // is refused (and eventually discarded by failover cleanup).
            Msg::ProbeAck { .. } | Msg::Evacuated { .. } => rt.net.refuse(),
        }
    }

    /// Applies one delivery addressed to the coordinator.
    fn net_deliver_to_coordinator(
        &mut self,
        rt: &mut NetRuntime,
        d: crate::transport::Delivery<Msg>,
        now: u64,
    ) {
        let NodeId::Shard(from) = d.src else {
            rt.net.refuse();
            return;
        };
        match d.payload {
            Msg::ProbeAck { health } => {
                rt.net.accept(d.src, d.dst, d.seq, now);
                if let Some(lease) = rt.leases.get_mut(&from) {
                    lease.last_ack = lease.last_ack.max(now);
                }
                rt.health_cache.insert(from, (now, health));
            }
            Msg::Evacuated { chunks, stats } => {
                rt.net.accept(d.src, d.dst, d.seq, now);
                // Gate on the shard's unbooked final snapshot: if a lease
                // expiry crash-failed this shard while the evacuation was
                // in flight, the journal already reconciled it and this
                // message is a stale duplicate of that accounting.
                if self.shard_mut(from).take_final_stats().is_none() {
                    return;
                }
                self.book_fenced_stats(from, &stats);
                self.bump_fence_authority(from);
                rt.leases.remove(&from);
                rt.health_cache.remove(&from);
                let moved = chunks.len() as u64;
                let mut lost = Vec::new();
                for chunk in chunks {
                    if self.ring.is_empty() {
                        lost.push(chunk);
                        continue;
                    }
                    let target = self.ring.route(&chunk.tenant);
                    let msg = Msg::Offer {
                        tenant: chunk.tenant,
                        chunk_seq: chunk.seq,
                        cost: chunk.cost,
                    };
                    rt.net.send(NodeId::Coordinator, NodeId::Shard(target), msg, now);
                }
                if !lost.is_empty() {
                    // No live shard left to take the evacuees: booked
                    // honestly, never silently leaked.
                    self.retired.shed += lost.len() as u64;
                    self.crash_loss += lost.len() as u64;
                }
                self.net_reroute_pending(rt, from, now);
                self.failovers.push(FailoverEvent {
                    tick: now,
                    shard: from,
                    kind: FailoverKind::Graceful,
                    moved_chunks: moved,
                    reoffer_rejected: 0,
                    crash_loss: lost.len() as u64,
                    recovered: 0,
                });
            }
            // The coordinator never receives offers, probes, or drains.
            Msg::Offer { .. } | Msg::Probe { .. } | Msg::Drain => rt.net.refuse(),
        }
    }

    /// Takes every frame still pending to retired shard `id` off the
    /// plane. Offers that were never applied at the receiver re-route to
    /// the tenant's current home (at-least-once across failover); applied
    /// frames are already accounted by the receiver's journal, and
    /// control frames (probes, drains) die with the endpoint.
    fn net_reroute_pending(&mut self, rt: &mut NetRuntime, id: u32, now: u64) {
        let pending = rt.net.take_pending_to(NodeId::Shard(id));
        for (_src, _seq, msg, applied) in pending {
            if applied {
                continue;
            }
            if let Msg::Offer { tenant, chunk_seq, cost } = msg {
                if self.ring.is_empty() {
                    self.retired.offered += 1;
                    self.retired.shed += 1;
                    self.crash_loss += 1;
                    continue;
                }
                let target = self.ring.route(&tenant);
                let msg = Msg::Offer { tenant, chunk_seq, cost };
                rt.net.send(NodeId::Coordinator, NodeId::Shard(target), msg, now);
            }
        }
    }

    /// Fails over every shard whose lease *provably* expired: the
    /// coordinator granted `lease_until` values only up to
    /// `granted_until`, so once `now > granted_until` the shard — which
    /// can hold no fresher grant — has already self-fenced. Failing over
    /// before that tick could split-brain; at it, it cannot.
    fn lease_expiry_failover(&mut self, now: u64) {
        let expired: Vec<u32> = self
            .net
            .as_ref()
            .map(|rt| {
                // One extra tick beyond the recorded grant: the grant
                // value a shard holds was delivered a tick after it was
                // recorded here, so the epsilon guarantees the shard's
                // own lease check fires strictly first — even when every
                // grant up to the horizon was delivered (one-way
                // partitions). No split-brain without relying on
                // intra-tick ordering.
                rt.leases
                    .iter()
                    .filter(|(_, l)| now > l.granted_until + 1)
                    .map(|(id, _)| *id)
                    .collect()
            })
            .unwrap_or_default();
        for id in expired {
            // The shard is unreachable or wedged; treat it as dead. Its
            // journal segment (and replica) reconcile the exact queue.
            self.shard_mut(id).kill();
            self.crash_failover(id, now);
        }
    }

    /// Sends this tick's heartbeat probes. A probe extends the shard's
    /// lease to `now + lease_ticks` — but only while acks are fresh: once
    /// `last_ack` goes stale the coordinator stops granting, the shard's
    /// lease runs down, and both sides converge on a fence/failover with
    /// no overlap.
    fn net_probe(&mut self, now: u64) {
        let mut rt = self.net.take().expect("net_probe requires transport mode");
        let live: Vec<u32> = self
            .shards
            .iter()
            .filter(|s| s.state() == ShardState::Active && self.ring.contains(s.id()))
            .map(Shard::id)
            .collect();
        for id in live {
            let Some(lease) = rt.leases.get_mut(&id) else { continue };
            let until = if now.saturating_sub(lease.last_ack) <= rt.lease_ticks {
                // Acks are fresh: extend the grant.
                let until = now + rt.lease_ticks;
                lease.granted_until = lease.granted_until.max(until);
                until
            } else {
                // Acks went stale: extending now could grant a lease the
                // coordinator is about to expire, so the probe re-states
                // the frozen grant instead (`grant_lease` is monotonic, so
                // this never extends anything). Probing continues so a
                // healed partition resumes the handshake — the first ack
                // through refreshes `last_ack` and grants resume.
                lease.granted_until
            };
            rt.net.send(
                NodeId::Coordinator,
                NodeId::Shard(id),
                Msg::Probe { lease_until: until },
                now,
            );
        }
        self.net = Some(rt);
    }

    /// Books this tick's storage picture: per-level occupancy across live
    /// shards (the `durability_level_ticks` budget) and every gauge
    /// transition drained from the shards, re-stamped onto the tick clock
    /// and surfaced as typed [`ServiceEvent::DurabilityTransition`]s on
    /// the coordinator's log. Runs once per `advance`, *before* death
    /// processing, so a shard that dies this tick still reports its last
    /// transitions.
    fn track_durability(&mut self, now: u64) {
        let mut moves: Vec<(u32, DurabilityLevel, DurabilityLevel)> = Vec::new();
        for shard in &self.shards {
            if shard.state() == ShardState::Active && self.ring.contains(shard.id()) {
                let level = shard.durability_level();
                if let Some(idx) = DurabilityLevel::ALL.iter().position(|l| *l == level) {
                    self.durability_level_ticks[idx] += 1;
                }
            }
            for (_, from, to) in shard.take_durability_transitions() {
                moves.push((shard.id(), from, to));
            }
        }
        for (shard, from, to) in moves {
            self.log.push(ServiceEvent::DurabilityTransition { tick: now, shard, from, to });
        }
    }

    /// One anti-entropy pass on cadence: every `scrub_every` ticks, one
    /// live shard (round-robin over the fleet in id order, so every
    /// replica gets verified within `live × scrub_every` ticks) has its
    /// replica CRC-verified against its primary and read-repaired.
    /// Logical ticks only — deterministic for any thread count.
    fn scrub_tick(&mut self, now: u64) {
        let every = self.cfg.scrub_every;
        if !self.cfg.replicated() || every == 0 || !now.is_multiple_of(every) {
            return;
        }
        let live: Vec<u32> = self
            .shards
            .iter()
            .filter(|s| s.state() == ShardState::Active && self.ring.contains(s.id()))
            .map(Shard::id)
            .collect();
        if live.is_empty() {
            return;
        }
        let victim = live[((now / every) as usize) % live.len()];
        let found = self.shard_mut(victim).scrub();
        self.scrub_events.extend(found);
    }

    /// Scans health, advances per-shard BrownOut streaks, and fences any
    /// shard browned out for `failover_after` consecutive scans — unless
    /// it is the last one standing (fencing the whole fleet would turn a
    /// brown-out into a blackout; the single shard's own breaker already
    /// sheds load). A shard whose disk gauge sits at the bottom rung
    /// ([`DurabilityLevel::RefuseWrites`]) counts as browned out too: its
    /// storage cannot hold work honestly, so the same streak drains it to
    /// healthier disks through the existing fencing machinery. Returns
    /// the failovers performed.
    pub fn react(&mut self, now: u64) -> Vec<FailoverEvent> {
        let mut fenced = Vec::new();
        for h in self.health_samples() {
            if h.state != ShardState::Active || !self.ring.contains(h.id) {
                continue;
            }
            let streak = self.brownout_streak.entry(h.id).or_insert(0);
            if h.fleet == FleetState::BrownOut || h.durability == DurabilityLevel::RefuseWrites {
                *streak += 1;
            } else {
                *streak = 0;
            }
            if *streak >= self.cfg.failover_after && self.ring.len() > 1 {
                fenced.push(h.id);
            }
        }
        let mut events = Vec::new();
        for id in fenced {
            if self.ring.len() > 1 {
                if self.net.is_some() {
                    self.net_drain(id, now);
                } else {
                    events.push(self.graceful_failover(id, now));
                }
            }
        }
        events
    }

    /// The health samples `react` keys off. Direct mode reads each shard
    /// in place; transport mode reads the probe-derived cache — the
    /// coordinator can only act on what the plane actually delivered, so
    /// a partitioned shard's health freezes at its last ack (its *lease*
    /// is what expires, not its health picture).
    fn health_samples(&self) -> Vec<ShardHealth> {
        match &self.net {
            None => self.shards.iter().map(Shard::health).collect(),
            Some(rt) => self
                .shards
                .iter()
                .map(|s| rt.health_cache.get(&s.id()).map_or_else(|| s.health(), |(_, h)| *h))
                .collect(),
        }
    }

    /// Starts a graceful failover over the plane: the shard leaves the
    /// ring immediately (no new offers route to it) and a `Msg::Drain`
    /// is sent; the shard fences on receipt and ships its queue back as
    /// `Msg::Evacuated`, which books the retirement and re-offers the
    /// evacuees. At-least-once delivery carries both legs through loss.
    fn net_drain(&mut self, id: u32, now: u64) {
        self.routed.remove(&id);
        self.ring.remove_shard(id);
        self.rehome_replicas();
        // The fencing authority is NOT bumped yet: the shard still has to
        // write its final ledger when the drain lands. The bump happens
        // when the evacuation is booked (or a lease expiry crash-fails
        // the shard first).
        let rt = self.net.as_mut().expect("net_drain requires transport mode");
        rt.net.send(NodeId::Coordinator, NodeId::Shard(id), Msg::Drain, now);
    }

    /// Raises shard `id`'s fencing authority past its incarnation's
    /// token: any append the stale writer attempts from here on is
    /// refused with [`DurableError::Fenced`], before touching the bytes.
    fn bump_fence_authority(&mut self, id: u32) {
        if let Some(auth) = self.fence_authorities.get(&id) {
            auth.store(Self::FIRST_INCARNATION_TOKEN + 1, Ordering::SeqCst);
        }
    }

    /// Hard-kills shard `id` (chaos: a `SIGKILL` mid-campaign) and
    /// immediately crash-fails it over. The process dies but the disk
    /// survives: reconciliation replays the primary journal.
    pub fn kill_shard(&mut self, id: u32, now: u64) -> FailoverEvent {
        self.shard_mut(id).kill();
        self.crash_failover(id, now)
    }

    /// Kills shard `id` *and destroys its disk* (chaos: a machine loss) —
    /// the primary journal is gone; only the replica on the follower's
    /// node can reconcile. This is the failure replication exists for.
    pub fn kill_shard_with_disk_loss(&mut self, id: u32, now: u64) -> FailoverEvent {
        self.shard_mut(id).kill_with_disk_loss();
        self.crash_failover(id, now)
    }

    /// Arms the nemesis on shard `id`: its next replica ship tears
    /// mid-frame and the replica latches (the primary record still
    /// commits). See [`Shard::tear_replica_next`].
    pub fn tear_replica_next(&mut self, id: u32, frac: f64) {
        self.shard_mut(id).tear_replica_next(frac);
    }

    /// Shard `id`'s replica segment path, when it has a follower.
    pub fn replica_path_of(&self, id: u32) -> Option<PathBuf> {
        self.shards.iter().find(|s| s.id() == id).and_then(Shard::replica_path)
    }

    /// Fences shard `id`, retires its final counters, removes it from the
    /// ring, and re-offers its evacuated queue along each tenant's new
    /// route (seq tags intact).
    fn graceful_failover(&mut self, id: u32, now: u64) -> FailoverEvent {
        let (evacuated, stats) = self.shard_mut(id).fence(now);
        // Consume the shard's retained snapshot (it is being booked right
        // here) so the live roll-up does not count it a second time.
        let _ = self.shard_mut(id).take_final_stats();
        self.book_fenced_stats(id, &stats);
        self.routed.remove(&id);
        self.ring.remove_shard(id);
        self.rehome_replicas();
        let moved = evacuated.len() as u64;
        let mut reoffer_rejected = 0;
        for chunk in evacuated {
            let target = self.ring.route(&chunk.tenant);
            if self.offer_to_shard(target, &chunk.tenant, chunk.cost, now, chunk.seq).is_err() {
                reoffer_rejected += 1;
            }
        }
        let event = FailoverEvent {
            tick: now,
            shard: id,
            kind: FailoverKind::Graceful,
            moved_chunks: moved,
            reoffer_rejected,
            crash_loss: 0,
            recovered: 0,
        };
        self.failovers.push(event);
        event
    }

    /// Books a fenced shard's final counters into the retired ledger,
    /// enforcing the fence invariant *in release builds*: `Shard::fence`
    /// evacuates before snapshotting, so `queued` must be zero. A
    /// violation (a coordinator bug) is reported as a typed
    /// [`FleetInternalError`] and the residual is booked as shed, keeping
    /// the conservation identity exact instead of aborting the fleet.
    fn book_fenced_stats(&mut self, id: u32, stats: &AdmissionStats) {
        if stats.queued != 0 {
            self.internal_errors
                .push(FleetInternalError::FenceLeftQueue { shard: id, queued: stats.queued });
            self.retired.shed += stats.queued;
            self.crash_loss += stats.queued;
        }
        self.retired.offered += stats.offered;
        self.retired.served += stats.served;
        self.retired.rejected += stats.rejected;
        self.retired.shed += stats.shed;
        self.retired.migrated += stats.migrated;
    }

    /// Re-pairs every live shard with its current ring successor after a
    /// membership change. Shards whose follower moved get a fresh replica
    /// rebuilt from their primary (the old copy is deleted); unchanged
    /// pairings are untouched.
    fn rehome_replicas(&mut self) {
        if !self.cfg.replicated() {
            return;
        }
        let ring = self.ring.clone();
        for shard in &mut self.shards {
            if shard.state() == ShardState::Active && ring.contains(shard.id()) {
                shard.rehome_replica(ring.successor_shard(shard.id()));
            }
        }
    }

    /// Reconciles a crashed shard, removes it from the ring, re-pairs the
    /// survivors' replicas, and re-offers whatever queue a surviving
    /// journal copy replays. See the module docs for the algebra.
    fn crash_failover(&mut self, id: u32, now: u64) -> FailoverEvent {
        let routed = self.routed.remove(&id).unwrap_or(0);
        // The dead shard's replica lives where its *last rehome* put it —
        // the Shard object remembers; the ring is the fallback for a
        // shard the coordinator no longer holds (post-restart reconcile
        // goes through `reconcile_books` directly instead).
        let follower = self
            .shards
            .iter()
            .find(|s| s.id() == id)
            .map_or_else(|| self.ring.successor_shard(id), Shard::follower);
        // The sink's unjournaled counter survives an in-process kill (the
        // Shard object outlives its controller), so a degraded shard's
        // admitted-but-never-journaled records can be booked honestly.
        let unjournaled =
            self.shards.iter().find(|s| s.id() == id).map_or(0, Shard::unjournaled);
        let (queue, booked_loss) = self.reconcile_books(id, follower, routed, unjournaled);
        self.ring.remove_shard(id);
        self.rehome_replicas();
        if self.net.is_some() {
            // Fence the dead incarnation out of its journal (a resurrected
            // stale writer gets a typed refusal, not a corrupted replay),
            // then clear its lease and re-route its undelivered offers.
            self.bump_fence_authority(id);
            let mut rt = self.net.take().expect("checked above");
            rt.leases.remove(&id);
            rt.health_cache.remove(&id);
            self.net_reroute_pending(&mut rt, id, now);
            self.net = Some(rt);
        }
        let (recovered, reoffer_rejected, residual_loss) = self.reoffer_recovered(queue, now);
        let event = FailoverEvent {
            tick: now,
            shard: id,
            kind: FailoverKind::Crash,
            moved_chunks: recovered,
            reoffer_rejected,
            crash_loss: booked_loss + residual_loss,
            recovered,
        };
        self.failovers.push(event);
        event
    }

    /// Reconciles a dead shard's counters from the best surviving journal
    /// copy. Returns the exact queue at the moment of death when a clean
    /// copy replays it (loss limited to records the shard's degraded
    /// gauge never journaled — `unjournaled`, booked as shed), or an
    /// empty queue plus the honest bounded loss (already booked as shed)
    /// when every copy is damaged or replication is off. Touches books
    /// only — never the ring.
    fn reconcile_books(
        &mut self,
        id: u32,
        follower: Option<u32>,
        routed: u64,
        unjournaled: u64,
    ) -> (Vec<ChunkAdmit>, u64) {
        let primary = shard_journal_path(&self.dir, id);
        let replica = follower.map(|f| shard_replica_path(&self.dir, id, f));
        // Only copies that *exist* testify: `recover_run` materialises a
        // fresh empty journal for a missing path, and an empty journal
        // must never pass for a clean account of a destroyed disk.
        let candidates: Vec<PathBuf> = std::iter::once(primary)
            .chain(replica.clone())
            .filter(|p| p.exists())
            .collect();
        if self.cfg.replicated() {
            // Among clean copies, the one with the most records wins: a
            // shard that spent time at ReplicaOnly has a primary that
            // scans clean but legitimately trails its replica.
            let mut best = None;
            for path in &candidates {
                let Ok((run, defects)) = recover_run(path) else { continue };
                if !defects.is_empty() {
                    // A damaged copy is a *detected* liar: fsync ordering
                    // and CRCs guarantee a clean scan covers every commit,
                    // so only clean copies are trusted for exact replay.
                    continue;
                }
                let score = run.admits.len() + run.serves.len() + run.sheds.len();
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    best = Some((score, run));
                }
            }
            if let Some((_, run)) = best {
                // Exact replay: every admit was journaled before its
                // enqueue, every serve/shed after its dequeue, so the
                // queue at death is the admit multiset minus both.
                let mut done: BTreeSet<(String, u64)> = run
                    .serves
                    .iter()
                    .map(|s| (s.tenant.clone(), s.seq))
                    .chain(run.sheds.iter().map(|(_, t, _, seq)| (t.clone(), *seq)))
                    .collect();
                let queue: Vec<ChunkAdmit> = run
                    .admits
                    .iter()
                    .filter(|a| !done.remove(&(a.tenant.clone(), a.seq)))
                    .cloned()
                    .collect();
                // What survives in `done` is the *orphans*: serves/sheds
                // journaled with no matching admit record, because the
                // admit landed while the gauge was degraded past
                // journaling and the serve after a climb. Each orphan is
                // a chunk inside the routed-minus-admits gap that is
                // already evidenced as served or shed — booking it as a
                // rejection too would double-count it.
                let orphans = done.len() as u64;
                let admits = run.admits.len() as u64;
                // `routed` is exact in-process; after a coordinator
                // restart it comes from a checkpoint and may lag the
                // journal — the max is the tightest honest offer count
                // (post-checkpoint refusals are then under-counted on
                // both sides of the identity, which stays exact).
                let offered = routed.max(admits + orphans);
                // The rest of the gap is front-door refusals plus records
                // a degraded gauge admitted but never journaled. The
                // latter died with the shard's memory: book them as shed
                // crash loss, not as rejections.
                let gap = offered - admits - orphans;
                let lost = unjournaled.min(gap);
                self.retired.offered += offered;
                self.retired.served += run.serves.len() as u64;
                self.retired.rejected += gap - lost;
                self.retired.shed += run.sheds.len() as u64 + lost;
                self.crash_loss += lost;
                if let Some(r) = &replica {
                    let _ = std::fs::remove_file(r); // consumed
                }
                return (queue, lost);
            }
        }
        // Bounded-loss reconciliation (replication off, or a double
        // failure damaged every copy): the best surviving prefix's last
        // ledger plus its exact journaled sheds.
        let mut ledger = LedgerRecord::default();
        let mut exact_shed = 0;
        for path in &candidates {
            let Ok((run, _defects)) = recover_run(path) else { continue };
            let l = run.ledgers.last().copied().unwrap_or_default();
            let s = run.sheds.len() as u64;
            let known = l.served + l.rejected + s + l.migrated;
            let best = ledger.served + ledger.rejected + exact_shed + ledger.migrated;
            if known > best || (known == best && l.offered > ledger.offered) {
                ledger = l;
                exact_shed = s;
            }
        }
        let known = ledger.served + ledger.rejected + exact_shed + ledger.migrated;
        // `routed` counts every chunk the coordinator sent; the journal
        // can only under-report (post-ledger serves/rejects, the queue at
        // the moment of death). The max of the lower bounds is the
        // tightest honest estimate; the shortfall is booked, not leaked.
        let offered = routed.max(ledger.offered).max(known);
        let loss = offered - known;
        self.retired.offered += offered;
        self.retired.served += ledger.served;
        self.retired.rejected += ledger.rejected;
        self.retired.shed += exact_shed + loss;
        self.retired.migrated += ledger.migrated;
        self.crash_loss += loss;
        if let Some(r) = &replica {
            let _ = std::fs::remove_file(r);
        }
        (Vec::new(), loss)
    }

    /// Re-offers a replayed queue along each tenant's new route, booking
    /// the moves as `migrated` at the dead shard (and `recovered`
    /// fleet-wide). With no live shard left to take them, the chunks are
    /// booked as honest residual loss instead. Returns
    /// `(recovered, reoffer_rejected, residual_loss)`.
    fn reoffer_recovered(&mut self, queue: Vec<ChunkAdmit>, now: u64) -> (u64, u64, u64) {
        if queue.is_empty() {
            return (0, 0, 0);
        }
        if self.ring.is_empty() {
            let residual = queue.len() as u64;
            self.retired.shed += residual;
            self.crash_loss += residual;
            return (0, 0, residual);
        }
        let moved = queue.len() as u64;
        self.retired.migrated += moved;
        self.recovered += moved;
        let mut reoffer_rejected = 0;
        for chunk in queue {
            let target = self.ring.route(&chunk.tenant);
            if self.offer_to_shard(target, &chunk.tenant, chunk.cost, now, chunk.seq).is_err() {
                reoffer_rejected += 1;
            }
        }
        (moved, reoffer_rejected, 0)
    }

    /// The aggregated health picture.
    pub fn view(&self) -> FleetView {
        let shards: Vec<ShardHealth> = self.shards.iter().map(Shard::health).collect();
        let live: Vec<&ShardHealth> =
            shards.iter().filter(|h| self.ring.contains(h.id)).collect();
        FleetView {
            live: live.len(),
            worst: live.iter().map(|h| h.fleet).max().unwrap_or(FleetState::Healthy),
            queue_depth_total: live.iter().map(|h| h.queue_depth).sum(),
            restart_burn: shards.iter().map(|h| h.restarts_used).sum(),
            replicas_latched: live.iter().filter(|h| h.replica_latched).count(),
            scrub_events: self.scrub_events.clone(),
            internal_errors: self.internal_errors.clone(),
            durability_worst: live
                .iter()
                .map(|h| h.durability)
                .max()
                .unwrap_or(DurabilityLevel::Durable),
            durability_level_ticks: self.durability_level_ticks,
            unjournaled_total: shards.iter().map(|h| h.unjournaled).sum(),
            shards,
        }
    }

    /// The coordinator's event log: every durability transition any
    /// shard's disk gauge took, as typed
    /// [`ServiceEvent::DurabilityTransition`]s on the tick clock.
    pub fn log(&self) -> &ServiceLog {
        &self.log
    }

    /// Shard-ticks spent at each durability level, best rung first (the
    /// same accumulation [`FleetView::durability_level_ticks`] reports).
    pub fn durability_level_ticks(&self) -> [u64; 4] {
        self.durability_level_ticks
    }

    /// Whether shard traffic flows through the simulated message plane.
    pub fn net_enabled(&self) -> bool {
        self.net.is_some()
    }

    /// The message plane's counters, when transport mode is on.
    pub fn net_stats(&self) -> Option<NetStats> {
        self.net.as_ref().map(|rt| rt.net.stats())
    }

    /// Every internal invariant violation detected (and survived) so far.
    pub fn internal_errors(&self) -> &[FleetInternalError] {
        &self.internal_errors
    }

    /// Scripts a full partition between the coordinator and shard `id`:
    /// both directions of the pair are blocked until healed. Transport
    /// mode only (a no-op on the direct path, which has no network to
    /// partition).
    pub fn partition_shard(&mut self, id: u32) {
        if let Some(rt) = self.net.as_mut() {
            rt.net.partition_pair(NodeId::Coordinator, NodeId::Shard(id));
        }
    }

    /// Scripts a one-way partition: when `inbound` is true the shard can
    /// no longer reach the coordinator (acks and evacuations are lost —
    /// the asymmetric case that forces self-fencing); otherwise the
    /// coordinator can no longer reach the shard.
    pub fn partition_shard_one_way(&mut self, id: u32, inbound: bool) {
        if let Some(rt) = self.net.as_mut() {
            if inbound {
                rt.net.block(NodeId::Shard(id), NodeId::Coordinator);
            } else {
                rt.net.block(NodeId::Coordinator, NodeId::Shard(id));
            }
        }
    }

    /// Heals every scripted partition.
    pub fn heal_partitions(&mut self) {
        if let Some(rt) = self.net.as_mut() {
            rt.net.heal_all();
        }
    }

    /// Whether shard `id` is currently self-fenced: lease-gated with an
    /// expired lease, frozen until a fresher grant arrives.
    pub fn shard_self_fenced(&self, id: u32, now: u64) -> bool {
        self.shards
            .iter()
            .find(|s| s.id() == id)
            .is_some_and(|s| s.state() == ShardState::Active && s.lease_expired(now))
    }

    /// The fencing token shard `id`'s journal writer holds, when armed.
    pub fn fence_token_of(&self, id: u32) -> Option<u64> {
        self.shards.iter().find(|s| s.id() == id).and_then(Shard::fence_token)
    }

    /// Resurrects retired shard `id` as a *stale writer*: attempts one
    /// journal append under its old incarnation's token and returns the
    /// typed refusal. `Some(DurableError::Fenced { .. })` proves the
    /// fencing token rejected the write with the bytes untouched; `None`
    /// means the append went through (the shard was never fenced out).
    pub fn stale_writer_probe(&self, id: u32, now: u64) -> Option<DurableError> {
        self.shards.iter().find(|s| s.id() == id).and_then(|s| s.stale_append_probe(now))
    }

    /// The fleet-wide roll-up: retired ledgers plus live counters.
    /// [`FleetStats::conserves`] holds at every tick by construction.
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats {
            offered: self.retired.offered,
            served: self.retired.served,
            rejected: self.retired.rejected,
            shed: self.retired.shed,
            queued: 0,
            migrated: self.retired.migrated,
            crash_loss: self.crash_loss,
            recovered: self.recovered,
        };
        for shard in &self.shards {
            if let Some(a) = shard.stats() {
                s.offered += a.offered;
                s.served += a.served;
                s.rejected += a.rejected;
                s.shed += a.shed;
                s.queued += a.queued;
                s.migrated += a.migrated;
            }
        }
        s
    }

    /// Journals a coordinator checkpoint: live shard set, routed counts,
    /// per-tenant seqs, and the retired ledger. [`FleetCoordinator::recover`]
    /// restarts from the newest one.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when the append fails.
    pub fn checkpoint(&mut self, now: u64) -> Result<(), DurableError> {
        let mut enc = Enc::new();
        enc.u64(now);
        let live = self.ring.shard_ids();
        enc.u64(live.len() as u64);
        for id in &live {
            enc.u64(u64::from(*id));
            enc.u64(self.routed.get(id).copied().unwrap_or(0));
        }
        enc.u64(self.retired.offered)
            .u64(self.retired.served)
            .u64(self.retired.rejected)
            .u64(self.retired.shed)
            .u64(self.retired.migrated)
            .u64(self.crash_loss)
            .u64(self.recovered);
        enc.u64(self.tenant_seq.len() as u64);
        for (tenant, seq) in &self.tenant_seq {
            enc.str(tenant).u64(*seq);
        }
        let seq = self.ckpt_seq;
        self.checkpoint.append(REC_CHECKPOINT, seq, &enc.into_bytes())?;
        self.ckpt_seq += 1;
        Ok(())
    }

    /// Restarts a coordinator from `dir` after a crash: replays the
    /// newest checkpoint, reconciles every then-live shard from its
    /// journal segment as a crash (the process died — their memory is
    /// gone), and brings up fresh shards under the same ids. The ring is
    /// rebuilt from the same seed and shard set, so every tenant keeps
    /// its home; per-tenant seqs resume where the checkpoint left them.
    ///
    /// # Errors
    ///
    /// [`DurableError`] when the checkpoint journal is unreadable or
    /// `dir` has no checkpoint at all.
    pub fn recover(cfg: FleetConfig, dir: &Path) -> Result<FleetCoordinator, DurableError> {
        let ckpt_path = coordinator_journal_path(dir);
        let (_journal, records, _defects) = Journal::open(&ckpt_path)?;
        let last = records
            .iter()
            .rev()
            .find(|r| r.kind == REC_CHECKPOINT)
            .ok_or_else(|| DurableError::Corrupt {
                path: ckpt_path.display().to_string(),
                offset: 0,
                detail: "no checkpoint to recover from".to_string(),
            })?;
        let corrupt = |e: emoleak_durable::WireError| DurableError::Corrupt {
            path: ckpt_path.display().to_string(),
            offset: e.offset,
            detail: e.detail,
        };
        let mut dec = Dec::new(&last.data);
        let tick = dec.u64().map_err(corrupt)?;
        let live_n = dec.u64().map_err(corrupt)? as usize;
        let mut live = Vec::with_capacity(live_n);
        for _ in 0..live_n {
            let id = dec.u64().map_err(corrupt)? as u32;
            let routed = dec.u64().map_err(corrupt)?;
            live.push((id, routed));
        }
        let retired = RetiredTotals {
            offered: dec.u64().map_err(corrupt)?,
            served: dec.u64().map_err(corrupt)?,
            rejected: dec.u64().map_err(corrupt)?,
            shed: dec.u64().map_err(corrupt)?,
            migrated: dec.u64().map_err(corrupt)?,
        };
        let crash_loss = dec.u64().map_err(corrupt)?;
        let recovered = dec.u64().map_err(corrupt)?;
        let tenants_n = dec.u64().map_err(corrupt)? as usize;
        let mut tenant_seq = BTreeMap::new();
        for _ in 0..tenants_n {
            let tenant = dec.str().map_err(corrupt)?;
            let seq = dec.u64().map_err(corrupt)?;
            tenant_seq.insert(tenant, seq);
        }
        dec.finish().map_err(corrupt)?;

        // The process died with the checkpointed shards live: reconcile
        // each from its segment, then restart it fresh under the same id.
        let mut coord = FleetCoordinator {
            ring: HashRing::new(cfg.seed, 0, cfg.vnodes),
            routed: BTreeMap::new(),
            cfg,
            dir: dir.to_path_buf(),
            shards: Vec::new(),
            tenant_seq,
            retired,
            crash_loss,
            recovered,
            brownout_streak: BTreeMap::new(),
            checkpoint: Journal::create(&ckpt_path)?,
            ckpt_seq: 0,
            failovers: Vec::new(),
            scrub_events: Vec::new(),
            internal_errors: Vec::new(),
            net: None,
            fence_authorities: BTreeMap::new(),
            log: ServiceLog::new(),
            durability_level_ticks: [0; 4],
        };
        for (id, routed) in &live {
            coord.ring.insert_shard(*id);
            coord.routed.insert(*id, *routed);
        }
        // Every shard restarts under the same id, so the ring — and with
        // it each shard's follower — never changes across the restart.
        // Reconcile against the *full* ring (the replicas were shipped
        // under it), collect the replayed queues, and only re-offer once
        // fresh shards exist to take them.
        let followers: Vec<(u32, Option<u32>, u64)> = live
            .iter()
            .map(|(id, routed)| {
                let f = if coord.cfg.replicated() {
                    coord.ring.successor_shard(*id)
                } else {
                    None
                };
                (*id, f, *routed)
            })
            .collect();
        let mut queues = Vec::with_capacity(followers.len());
        for (id, follower, routed) in followers {
            // A restart lost every in-memory counter, the unjournaled
            // count included; the journal's account is the floor.
            let (queue, loss) = coord.reconcile_books(id, follower, routed, 0);
            queues.push((id, queue, loss));
        }
        // Fresh shards under the same ids (truncating the reconciled
        // segments), same seed: every tenant keeps its home.
        coord.routed.clear();
        for (id, _) in &live {
            let follower = if coord.cfg.replicated() {
                coord.ring.successor_shard(*id)
            } else {
                None
            };
            coord.shards.push(Shard::new(
                *id,
                dir,
                coord.cfg.admission.clone(),
                coord.cfg.restart_budget,
                coord.cfg.ledger_every,
                coord.cfg.replicated(),
                follower,
                DiskConfig {
                    plan: coord.cfg.disk.shard_plan(coord.cfg.seed, *id),
                    gauge: coord.cfg.disk.gauge,
                },
            )?);
            coord.routed.insert(*id, 0);
        }
        // Fresh incarnations get fresh fencing tokens, leases, and a
        // fresh plane (new seed stream; in-flight frames died with the
        // old process, exactly like a real restart).
        coord.arm_transport(tick);
        for (id, queue, booked_loss) in queues {
            let (recovered, reoffer_rejected, residual_loss) =
                coord.reoffer_recovered(queue, tick);
            coord.failovers.push(FailoverEvent {
                tick,
                shard: id,
                kind: FailoverKind::Crash,
                moved_chunks: recovered,
                reoffer_rejected,
                crash_loss: booked_loss + residual_loss,
                recovered,
            });
        }
        Ok(coord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("emoleak-coord-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small(shards: u32) -> FleetConfig {
        FleetConfig {
            shards,
            ledger_every: 10,
            admission: emoleak_admission::AdmissionConfig {
                mem_budget: u64::MAX / 2,
                tenant_rps: 1_000_000,
                tenant_burst: 1_000_000,
                ..Default::default()
            },
            ..FleetConfig::default()
        }
    }

    fn tenants(n: usize) -> Vec<String> {
        (0..n).map(|t| format!("tenant-{t}")).collect()
    }

    #[test]
    fn clean_path_conserves_and_serves_everything() {
        let dir = scratch("clean");
        let mut c = FleetCoordinator::new(small(4), &dir).unwrap();
        let ts = tenants(16);
        for now in 0..200 {
            for t in &ts {
                c.offer(t, 64, now).unwrap();
            }
            c.advance(now, 64, &[]);
        }
        let mut now = 200;
        while c.stats().queued > 0 {
            c.advance(now, usize::MAX, &[]);
            now += 1;
        }
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        assert_eq!(s.offered, 16 * 200);
        assert_eq!(s.served, s.offered, "clean path serves everything: {s:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killing_a_shard_replays_its_queue_with_zero_loss() {
        let dir = scratch("kill");
        let mut c = FleetCoordinator::new(small(4), &dir).unwrap();
        let ts = tenants(24);
        let homes: BTreeMap<&String, u32> =
            ts.iter().map(|t| (t, c.ring().route(t))).collect();
        for now in 0..100 {
            for t in &ts {
                // Capacity-starved on purpose (queues must be non-empty at
                // the kill); brown-out refusals are part of the deal.
                let _ = c.offer(t, 64, now);
            }
            c.advance(now, 2, &[]);
        }
        let victim = 1;
        let event = c.kill_shard(victim, 100);
        assert_eq!(event.kind, FailoverKind::Crash);
        assert_eq!(event.crash_loss, 0, "a clean journal replays the queue: {event:?}");
        assert!(event.recovered > 0, "the starved queue must replay: {event:?}");
        assert!(c.stats().conserves(), "{:?}", c.stats());
        // Bounded movement: only the victim's tenants re-home.
        for t in &ts {
            let new_home = c.ring().route(t);
            if homes[t] == victim {
                assert_ne!(new_home, victim);
            } else {
                assert_eq!(new_home, homes[t], "{t} moved without cause");
            }
        }
        // The fleet keeps serving; the identity keeps holding.
        for now in 101..200 {
            for t in &ts {
                let _ = c.offer(t, 64, now);
            }
            c.advance(now, usize::MAX, &[]);
        }
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        assert_eq!(s.crash_loss, 0, "replicated failover is lossless: {s:?}");
        assert!(s.recovered > 0, "{s:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn without_replication_a_kill_books_honest_loss() {
        let dir = scratch("kill-bare");
        let mut cfg = small(4);
        cfg.replicas = 0;
        let mut c = FleetCoordinator::new(cfg, &dir).unwrap();
        let ts = tenants(24);
        for now in 0..100 {
            for t in &ts {
                let _ = c.offer(t, 64, now);
            }
            c.advance(now, 2, &[]);
        }
        let event = c.kill_shard(1, 100);
        assert_eq!(event.recovered, 0, "{event:?}");
        assert!(event.crash_loss > 0, "a kill with queued work must book loss: {event:?}");
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        assert_eq!(s.recovered, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_loss_recovers_from_the_replica_and_double_failure_is_honest() {
        let dir = scratch("diskloss");
        let mut c = FleetCoordinator::new(small(4), &dir).unwrap();
        let ts = tenants(24);
        for now in 0..100 {
            for t in &ts {
                let _ = c.offer(t, 64, now);
            }
            c.advance(now, 2, &[]);
        }
        // Machine loss: primary journal destroyed; only the replica on
        // the follower's node reconciles — still zero loss.
        let event = c.kill_shard_with_disk_loss(1, 100);
        assert_eq!(event.crash_loss, 0, "the replica replays the queue: {event:?}");
        assert!(event.recovered > 0, "{event:?}");
        assert!(c.stats().conserves(), "{:?}", c.stats());

        // Double failure: shard 2's disk dies *and* its replica is
        // corrupted mid-file. No clean copy survives — the residual is
        // booked honestly, never silently leaked.
        let replica = c.replica_path_of(2).expect("replication is on");
        let mut bytes = std::fs::read(&replica).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&replica, &bytes).unwrap();
        let event = c.kill_shard_with_disk_loss(2, 101);
        assert!(event.crash_loss > 0, "a double failure must book loss: {event:?}");
        assert_eq!(event.recovered, 0, "{event:?}");
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        assert!(s.crash_loss > 0 && s.recovered > 0, "{s:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_detects_and_repairs_a_corrupted_replica_on_cadence() {
        let dir = scratch("scrub");
        let mut cfg = small(2);
        cfg.scrub_every = 10;
        let mut c = FleetCoordinator::new(cfg, &dir).unwrap();
        let ts = tenants(8);
        for now in 0..10 {
            for t in &ts {
                c.offer(t, 64, now).unwrap();
            }
            c.advance(now, 8, &[]);
        }
        // Bit-rot on shard 0's replica; the cadence scrub must find it,
        // classify it, and rebuild the copy from the primary.
        let replica = c.replica_path_of(0).expect("replication is on");
        let mut bytes = std::fs::read(&replica).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&replica, &bytes).unwrap();
        let mut now = 10;
        while c.view().scrub_events.is_empty() && now < 60 {
            for t in &ts {
                c.offer(t, 64, now).unwrap();
            }
            c.advance(now, 8, &[]);
            now += 1;
        }
        let view = c.view();
        assert!(
            view.scrub_events
                .iter()
                .any(|d| matches!(d, Defect::ReplicaDiverged { .. })),
            "{:?}",
            view.scrub_events
        );
        assert!(
            view.scrub_events
                .iter()
                .any(|d| matches!(d, Defect::ScrubRepaired { .. })),
            "{:?}",
            view.scrub_events
        );
        assert_eq!(view.replicas_latched, 0, "repair clears the latch");
        // The repaired replica reconciles a subsequent disk loss exactly.
        let event = c.kill_shard_with_disk_loss(0, now);
        assert_eq!(event.crash_loss, 0, "{event:?}");
        assert!(c.stats().conserves(), "{:?}", c.stats());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panic_storm_is_contained_until_the_budget_dies_then_reconciled() {
        let dir = scratch("storm");
        let mut c = FleetCoordinator::new(small(2), &dir).unwrap();
        let ts = tenants(8);
        let mut died_at = None;
        for now in 0..50 {
            for t in &ts {
                let _ = c.offer(t, 64, now);
            }
            // Shard 0 eats a hostile chunk every tick; budget 3 → dead at
            // the 4th panic.
            c.advance(now, 8, &[0]);
            if c.view().live == 1 && died_at.is_none() {
                died_at = Some(now);
            }
            assert!(c.stats().conserves(), "tick {now}: {:?}", c.stats());
        }
        let died_at = died_at.expect("the storm must eventually kill shard 0");
        assert_eq!(died_at, 3, "budget 3 contains exactly 3 panics");
        assert_eq!(c.failovers().len(), 1);
        assert_eq!(c.failovers()[0].kind, FailoverKind::Crash);
        // Shard 1 never noticed.
        let h1 = c.view().shards.iter().find(|h| h.id == 1).unwrap().restarts_used;
        assert_eq!(h1, 0, "the storm leaked across the shard boundary");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sustained_brownout_fences_gracefully_with_zero_loss() {
        let dir = scratch("brownout");
        let mut cfg = small(2);
        // Tiny budget so one tenant's flood browns its shard out.
        cfg.admission.mem_budget = 4096;
        let mut c = FleetCoordinator::new(cfg, &dir).unwrap();
        // Find a tenant homed on shard 0 and flood it; drain nothing.
        let flooder = (0..64)
            .map(|t| format!("tenant-{t}"))
            .find(|t| c.ring().route(t) == 0)
            .unwrap();
        let mut fenced = false;
        for now in 0..400 {
            for _ in 0..8 {
                let _ = c.offer(&flooder, 64, now);
            }
            c.advance(now, 0, &[]);
            let events = c.react(now);
            if !events.is_empty() {
                assert_eq!(events[0].kind, FailoverKind::Graceful);
                assert_eq!(events[0].shard, 0);
                assert!(events[0].moved_chunks > 0, "{events:?}");
                fenced = true;
                break;
            }
        }
        assert!(fenced, "sustained brown-out must fence the shard");
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        assert_eq!(s.crash_loss, 0, "graceful failover loses nothing");
        assert!(s.migrated > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coordinator_restart_recovers_from_the_checkpoint() {
        let dir = scratch("restart");
        let ts = tenants(12);
        let (pre_stats, seqs) = {
            let mut c = FleetCoordinator::new(small(3), &dir).unwrap();
            for now in 0..60 {
                for t in &ts {
                    // Capacity-starved: refusals are expected and still
                    // advance the tenant's seq.
                    let _ = c.offer(t, 64, now);
                }
                c.advance(now, 2, &[]);
                if now % 20 == 19 {
                    c.checkpoint(now).unwrap();
                }
            }
            (c.stats(), c.tenant_seq.clone())
            // Dropped without a final checkpoint: ticks 40..59 are the
            // window a restart must reconcile honestly.
        };
        let c = FleetCoordinator::recover(small(3), &dir).unwrap();
        let s = c.stats();
        assert!(s.conserves(), "{s:?}");
        // Everything checkpoint-known or journal-known is retired;
        // nothing silently vanishes: recovered offered covers at least
        // the last checkpoint's routing and at most what really ran —
        // plus the replayed queues, which (like any migration) count a
        // second time at their new home's front door.
        assert!(
            s.offered <= pre_stats.offered + s.recovered,
            "recovered more than ran: {s:?}"
        );
        assert!(
            s.offered >= 12 * 40,
            "recovery lost checkpointed routing: {} < {}",
            s.offered,
            12 * 40
        );
        // Seqs resume from the checkpoint: monotone, never reused from 0.
        for t in &ts {
            let recovered = c.tenant_seq.get(t).copied().unwrap_or(0);
            assert!(recovered >= 40, "{t} seq rewound to {recovered}");
            assert!(recovered <= seqs[t]);
        }
        assert_eq!(c.view().live, 3, "all shards restart fresh");
        assert!(c.stats().conserves());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quiet_armed_disk_is_byte_identical_to_the_real_path() {
        use emoleak_durable::FaultPlan;
        let dir_a = scratch("quiet-a");
        let dir_b = scratch("quiet-b");
        let mut cfg_b = small(2);
        cfg_b.disk.plan = Some(FaultPlan::quiet(123));
        let mut a = FleetCoordinator::new(small(2), &dir_a).unwrap();
        let mut b = FleetCoordinator::new(cfg_b, &dir_b).unwrap();
        let ts = tenants(8);
        for now in 0..40 {
            for t in &ts {
                a.offer(t, 64, now).unwrap();
                b.offer(t, 64, now).unwrap();
            }
            a.advance(now, 8, &[]);
            b.advance(now, 8, &[]);
        }
        assert_eq!(a.stats(), b.stats());
        let view = b.view();
        assert_eq!(view.durability_worst, DurabilityLevel::Durable);
        assert_eq!(view.durability_level_ticks[1..], [0, 0, 0]);
        assert!(view.durability_level_ticks[0] > 0);
        assert_eq!(view.unjournaled_total, 0);
        assert!(b.log().events().is_empty(), "a quiet disk never transitions");
        for id in 0..2 {
            let pa = std::fs::read(shard_journal_path(&dir_a, id)).unwrap();
            let pb = std::fs::read(shard_journal_path(&dir_b, id)).unwrap();
            assert_eq!(pa, pb, "shard {id}: quiet FaultVfs must be byte-identical to OsVfs");
        }
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn storage_brownout_drains_through_the_fencing_machinery() {
        use emoleak_durable::FaultPlan;
        use emoleak_stream::DiskGaugeConfig;
        let dir = scratch("disk-drain");
        let mut cfg = small(2);
        // Tiny disks with the refuse watermark far above them: the first
        // journaled append pins every shard's gauge at the bottom rung.
        cfg.disk.plan = Some(FaultPlan { byte_budget: 4096, ..FaultPlan::quiet(5) });
        cfg.disk.gauge = DiskGaugeConfig {
            low_water: 1 << 20,
            refuse_water: 1 << 20,
            ..DiskGaugeConfig::default()
        };
        let mut c = FleetCoordinator::new(cfg, &dir).unwrap();
        let ts = tenants(8);
        let mut fenced = false;
        for now in 0..50 {
            for t in &ts {
                let _ = c.offer(t, 64, now);
            }
            c.advance(now, 2, &[]);
            if !c.react(now).is_empty() {
                fenced = true;
            }
            assert!(c.stats().conserves(), "tick {now}: {:?}", c.stats());
        }
        assert!(fenced, "sustained storage refusal must fence a shard");
        let view = c.view();
        assert_eq!(view.live, 1, "the last shard is never fenced");
        assert_eq!(view.durability_worst, DurabilityLevel::RefuseWrites);
        assert!(view.durability_level_ticks[3] > 0, "{:?}", view.durability_level_ticks);
        let moves = c.log().durability_transitions();
        assert!(!moves.is_empty());
        assert!(
            moves.iter().all(|(_, _, from, to)| to > from),
            "pressure-only runs degrade monotonically: {moves:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
