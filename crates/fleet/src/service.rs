//! The session layer: real [`StreamService`](emoleak_stream::StreamService)
//! sessions admitted through per-shard gates, with brown-out spill-over.
//!
//! Where [`crate::FleetCoordinator`] multiplexes *chunks* through shard
//! admission queues, [`FleetService`] places whole *sessions*: each shard
//! owns a [`FleetGate`] (its own bulkheads, byte gauge, and level cap),
//! a tenant's session is admitted at its home shard, and —
//! the migration path — a session refused because its home shard is
//! browned out or saturated walks the tenant's
//! [`route_chain`](crate::HashRing::route_chain) and is admitted by the
//! first healthy shard instead. On the clean path no spill happens, every
//! session runs under identical gate wiring, and the per-tenant verdict
//! stream is therefore byte-identical across shard counts — the
//! invariance `tests/fleet_service.rs` and CI pin.

use crate::config::FleetConfig;
use crate::ring::HashRing;
use emoleak_admission::{FleetGate, SessionPermit};
use emoleak_core::admission::AdmissionError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A sharded front end for real streaming sessions.
pub struct FleetService {
    ring: HashRing,
    gates: BTreeMap<u32, FleetGate>,
    migrated_sessions: AtomicU64,
}

/// A granted placement: which shard admitted the session, and the permit
/// holding its slots.
#[derive(Debug)]
pub struct Placement {
    /// The shard that admitted the session.
    pub shard: u32,
    /// Whether the session spilled past its home shard.
    pub migrated: bool,
    /// The admission permit (configure session configs through it; slots
    /// release on drop).
    pub permit: SessionPermit,
}

impl FleetService {
    /// A fleet of `cfg.shards` gates, each over its own fresh controller.
    pub fn new(cfg: &FleetConfig) -> FleetService {
        FleetService {
            ring: HashRing::new(cfg.seed, cfg.shards, cfg.vnodes),
            gates: (0..cfg.shards)
                .map(|id| (id, FleetGate::new(cfg.admission.clone())))
                .collect(),
            migrated_sessions: AtomicU64::new(0),
        }
    }

    /// The live ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The gate of shard `id` (e.g. to trip its breaker in a test, or to
    /// read its stats).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::ShardFenced`] for an unknown or fenced shard id:
    /// a routing decision can race a concurrent fence, and the race is a
    /// retryable refusal (the ring has already re-homed the tenant), not
    /// a fleet-aborting bug.
    pub fn gate(&self, id: u32) -> Result<&FleetGate, AdmissionError> {
        self.gates.get(&id).ok_or(AdmissionError::ShardFenced { shard: id })
    }

    /// The tenant's home shard.
    pub fn home(&self, tenant: &str) -> u32 {
        self.ring.route(tenant)
    }

    /// Fences shard `id`: its gate is dropped (open permits keep their
    /// clone of the controller and release cleanly) and its vnodes leave
    /// the ring, so every subsequent admit re-homes its tenants. Returns
    /// whether the shard was live. Refuses to fence the last shard.
    pub fn fence_shard(&mut self, id: u32) -> bool {
        if self.ring.len() <= 1 || !self.ring.contains(id) {
            return false;
        }
        self.ring.remove_shard(id);
        self.gates.remove(&id);
        true
    }

    /// Admits a session for `tenant`, walking its route chain: home shard
    /// first, then — only when the home gate refuses — each surviving
    /// shard in ring order. A session admitted past its home counts as
    /// migrated.
    ///
    /// # Errors
    ///
    /// The *home* shard's refusal when every shard in the chain refuses
    /// (the home error names the root cause; later refusals are
    /// congestion it caused).
    pub fn admit(&self, tenant: &str, now: u64) -> Result<Placement, AdmissionError> {
        let chain = self.ring.route_chain(tenant);
        let Some(home) = chain.first().copied() else {
            // An empty chain means an empty ring. `fence_shard` refuses
            // to fence the last shard, so no caller reaches this today —
            // but a typed refusal beats a panic if that invariant bends.
            return Err(AdmissionError::BrownedOut);
        };
        let mut home_err = None;
        for (hop, id) in chain.iter().enumerate() {
            // A chain hop can name a shard fenced between routing and
            // admission; the typed refusal degrades to the next hop
            // instead of aborting the walk.
            match self.gate(*id).and_then(|g| g.admit(tenant, now)) {
                Ok(permit) => {
                    let migrated = hop > 0;
                    if migrated {
                        self.migrated_sessions.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(Placement { shard: *id, migrated, permit });
                }
                Err(e) => {
                    if hop == 0 {
                        home_err = Some(e);
                    }
                }
            }
        }
        Err(home_err.unwrap_or(AdmissionError::ShardFenced { shard: home }))
    }

    /// Sessions admitted away from their home shard so far.
    pub fn migrated_sessions(&self) -> u64 {
        self.migrated_sessions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_core::online::InferenceLevel;

    fn service(shards: u32) -> FleetService {
        FleetService::new(&FleetConfig {
            shards,
            admission: emoleak_admission::AdmissionConfig {
                max_sessions: 2,
                tenant_sessions: 2,
                ..Default::default()
            },
            ..FleetConfig::default()
        })
    }

    #[test]
    fn sessions_home_deterministically_and_stay_put_when_healthy() {
        let svc = service(4);
        for t in 0..32 {
            let tenant = format!("tenant-{t}");
            let placement = svc.admit(&tenant, 0).unwrap();
            assert_eq!(placement.shard, svc.home(&tenant));
            assert!(!placement.migrated);
        }
        assert_eq!(svc.migrated_sessions(), 0);
    }

    #[test]
    fn browned_out_home_spills_to_the_next_shard_in_the_chain() {
        let svc = service(4);
        let tenant = "tenant-7";
        let home = svc.home(tenant);
        // Trip the home shard's breaker to BrownOut.
        {
            let ctrl = svc.gate(home).unwrap().controller();
            let mut c = ctrl.lock().unwrap();
            let _ = c.offer(tenant, 1, 0);
            for now in 0..100 {
                c.observe(now);
            }
            assert_eq!(c.level_cap().get(), InferenceLevel::Shed);
        }
        let placement = svc.admit(tenant, 100).unwrap();
        assert_ne!(placement.shard, home, "session stayed on a browned-out shard");
        assert!(placement.migrated);
        assert_eq!(svc.migrated_sessions(), 1);
        // A healthy tenant homed elsewhere is untouched.
        let other = (0..64)
            .map(|t| format!("tenant-{t}"))
            .find(|t| svc.home(t) != home)
            .unwrap();
        let p = svc.admit(&other, 100).unwrap();
        assert!(!p.migrated, "isolation: other homes must not spill");
    }

    #[test]
    fn fencing_a_shard_rehomes_only_its_tenants() {
        let mut svc = service(4);
        let tenants: Vec<String> = (0..64).map(|t| format!("tenant-{t}")).collect();
        let homes: Vec<u32> = tenants.iter().map(|t| svc.home(t)).collect();
        assert!(svc.fence_shard(2));
        assert!(!svc.fence_shard(2), "double fence reports dead");
        for (t, old) in tenants.iter().zip(&homes) {
            let new = svc.home(t);
            if *old == 2 {
                assert_ne!(new, 2);
            } else {
                assert_eq!(new, *old, "{t} re-homed without cause");
            }
        }
        // The last shard can never be fenced.
        assert!(svc.fence_shard(0));
        assert!(svc.fence_shard(1));
        assert!(!svc.fence_shard(3), "fencing the last shard would black out the fleet");
    }

    #[test]
    fn routing_to_a_fenced_shard_refuses_typed_instead_of_panicking() {
        let mut svc = service(4);
        assert!(svc.fence_shard(2));
        // Direct gate access to the fenced id is a typed, retryable
        // refusal — not a panic.
        let err = svc.gate(2).err().expect("fenced gate must refuse");
        assert_eq!(err, AdmissionError::ShardFenced { shard: 2 });
        assert_eq!(err.tag(), "shard-fenced");
        // Admission still works for every tenant: the chain walk degrades
        // past the fenced hop.
        for t in 0..32 {
            let tenant = format!("tenant-{t}");
            let placement = svc.admit(&tenant, 0).unwrap();
            assert_ne!(placement.shard, 2, "placed on a fenced shard");
        }
    }
}
