//! f64 matrix multiply: scalar reference and a cache-blocked fast path.
//!
//! Both kernels compute `C += A · B` for row-major `A` (`m × k`),
//! `B` (`k × n`) and `C` (`m × n`). Accumulating *onto* `C` (instead of
//! overwriting it) lets convolution callers preload the bias for free.
//!
//! # Bit-exactness
//!
//! For every output element `C[i][j]`, both kernels perform the identical
//! chain of IEEE-754 operations: starting from the preloaded value, add
//! `A[i][kk] * B[kk][j]` for `kk = 0, 1, …, k-1`, rounding after every
//! multiply and every add. The fast kernel only changes *which element's*
//! next addition runs when (blocking over `kk` and vectorizing over `j`),
//! never the per-element order — so the two are bit-identical for **all**
//! inputs, including non-finite values and signed zeros. The differential
//! proptest harness (`tests/proptest_kernels.rs`) holds that line.

/// k-dimension block size for the fast kernel: one `KC × n` panel of `B`
/// (at n ≈ 1024: 512 KiB worst case, typically ≤ 32 KiB for the CNN's
/// 32×32 maps) stays hot in cache while every row of `A` streams over it.
const KC: usize = 64;

fn check_dims(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &[f64]) {
    assert_eq!(a.len(), m * k, "gemm: A must be m*k");
    assert_eq!(b.len(), k * n, "gemm: B must be k*n");
    assert_eq!(c.len(), m * n, "gemm: C must be m*n");
}

/// Scalar reference: per-element register accumulation in ascending `kk`.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m`/`k`/`n`.
pub fn gemm_ref(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    check_dims(m, k, n, a, b, c);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let mut acc = c[i * n + j];
            for (kk, &aik) in arow.iter().enumerate() {
                acc += aik * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Cache-blocked fast path: identical per-element operation order to
/// [`gemm_ref`], reorganized as `kk`-blocked row-panel updates whose inner
/// `j` loop the compiler can vectorize.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m`/`k`/`n`.
pub fn gemm_fast(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    check_dims(m, k, n, a, b, c);
    let mut kk0 = 0;
    while kk0 < k {
        let kend = (kk0 + KC).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for kk in kk0..kend {
                let aik = arow[kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
        kk0 = kend;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mat(rng: &mut StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    #[test]
    fn small_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] + [1 0; 0 1]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [1.0, 0.0, 0.0, 1.0];
        gemm_ref(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [20.0, 22.0, 43.0, 51.0]);
        let mut c = [1.0, 0.0, 0.0, 1.0];
        gemm_fast(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [20.0, 22.0, 43.0, 51.0]);
    }

    #[test]
    fn fast_is_bit_identical_across_blocking_boundaries() {
        let mut rng = StdRng::seed_from_u64(7);
        // k values straddling the KC block edge exercise the panel loop.
        for (m, k, n) in [(1, 1, 1), (3, 63, 5), (4, 64, 4), (2, 65, 7), (5, 130, 3)] {
            let a = mat(&mut rng, m * k);
            let b = mat(&mut rng, k * n);
            let init = mat(&mut rng, m * n);
            let mut c_ref = init.clone();
            let mut c_fast = init;
            gemm_ref(m, k, n, &a, &b, &mut c_ref);
            gemm_fast(m, k, n, &a, &b, &mut c_fast);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&c_ref), bits(&c_fast), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn signed_zeros_and_nans_round_trip_identically() {
        let a = [0.0, -0.0, f64::NAN, 1.0];
        let b = [-0.0, 1.0, 0.5, -0.0];
        let mut c_ref = [-0.0, 0.0, -0.0, 0.0];
        let mut c_fast = c_ref;
        gemm_ref(2, 2, 2, &a, &b, &mut c_ref);
        gemm_fast(2, 2, 2, &a, &b, &mut c_fast);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&c_ref), bits(&c_fast));
    }

    #[test]
    #[should_panic(expected = "gemm: A must be m*k")]
    fn mismatched_dims_panic() {
        gemm_ref(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut [0.0; 4]);
    }
}
