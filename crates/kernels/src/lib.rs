//! # emoleak-kernels
//!
//! Optimized kernels for the per-verdict critical path, paired with the
//! straightforward scalar implementations they replace.
//!
//! Every speech window the streaming service classifies runs the same hot
//! loop: STFT → spectrogram resize → Table-II features → conv/dense
//! forward. This crate owns the compute-dense pieces of that loop:
//!
//! - [`gemm`] — f64 matrix multiply, as a per-element scalar reference and
//!   a cache-blocked fast path that is **bit-identical** to the reference
//!   (same additions, same order, same rounding);
//! - [`conv`] — im2col lowering plus fused conv+bias(+ReLU) kernels for
//!   the CNN's Conv1d/Conv2d forward passes;
//! - [`int8`] — symmetric int8 quantization and an i32-accumulating int8
//!   GEMM backing the `cnn-int8` degradation rung.
//!
//! # The reference/fast contract
//!
//! Callers in `dsp`, `features` and `ml` keep their original scalar
//! implementations compiled in as the *reference path* and dispatch on
//! [`KernelMode`] (the `EMOLEAK_KERNELS` knob, default [`KernelMode::Fast`])
//! at the top of each operation. The contract, enforced by
//! `tests/proptest_kernels.rs` and `tests/kernel_parity.rs` at the
//! workspace root, is that on the f64 path the two modes are
//! **bit-identical** — not merely close. Optimizations are therefore
//! restricted to ones that preserve the exact sequence of rounded
//! floating-point operations per output value: blocking/reordering across
//! *independent* outputs, allocation elimination, and plan/scratch reuse.
//! Anything that would reassociate a single output's accumulation belongs
//! on the explicitly-lossy int8 rung instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod gemm;
pub mod int8;

pub use conv::{Activation, Conv1dScratch, Conv2dScratch};

use emoleak_exec::EnvError;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};

/// Environment knob selecting the kernel implementation.
pub const ENV_KERNELS: &str = "EMOLEAK_KERNELS";

/// Which implementation of the hot-path kernels to run.
///
/// The two modes are bit-identical on the f64 path; `Reference` exists so
/// differential tests (and suspicious operators) can re-run any workload
/// through the plain scalar code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// The straightforward scalar implementations the kernels replaced.
    Reference,
    /// im2col + cache-blocked GEMM, scratch-buffer STFT, fused features.
    #[default]
    Fast,
}

impl FromStr for KernelMode {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(KernelMode::Reference),
            "fast" => Ok(KernelMode::Fast),
            _ => Err(()),
        }
    }
}

impl core::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            KernelMode::Reference => "reference",
            KernelMode::Fast => "fast",
        })
    }
}

impl KernelMode {
    /// Strictly parses `EMOLEAK_KERNELS`; unset means [`KernelMode::Fast`].
    ///
    /// Entry points that already return errors (bench binaries, config
    /// validation) use this form so a typo'd knob surfaces as
    /// `EmoleakError::Config` instead of silently running the default.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError`] when the variable is set to anything other
    /// than `reference` or `fast`.
    pub fn from_env_checked() -> Result<KernelMode, EnvError> {
        Ok(emoleak_exec::parse_checked::<KernelMode>(
            ENV_KERNELS,
            "\"reference\" or \"fast\"",
            |_| true,
        )?
        .unwrap_or_default())
    }

    /// Reads `EMOLEAK_KERNELS`, warning once on stderr and falling back to
    /// [`KernelMode::Fast`] if it is malformed.
    ///
    /// This is the accessor the hot paths use: it is called once per
    /// *top-level operation* (one spectrogram, one feature vector, one conv
    /// forward), never per element, and deliberately re-reads the
    /// environment each time so the differential parity tests can flip
    /// modes within one process.
    #[must_use]
    pub fn current() -> KernelMode {
        static WARNED: AtomicBool = AtomicBool::new(false);
        match KernelMode::from_env_checked() {
            Ok(mode) => mode,
            Err(e) => {
                if !WARNED.swap(true, Ordering::Relaxed) {
                    eprintln!("emoleak-kernels: {e}; using the fast path");
                }
                KernelMode::Fast
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_both_spellings_and_rejects_garbage() {
        assert_eq!("reference".parse(), Ok(KernelMode::Reference));
        assert_eq!("fast".parse(), Ok(KernelMode::Fast));
        assert_eq!("Fast".parse::<KernelMode>(), Err(()));
        assert_eq!("".parse::<KernelMode>(), Err(()));
        assert_eq!(KernelMode::default(), KernelMode::Fast);
    }

    #[test]
    fn mode_displays_its_knob_spelling() {
        assert_eq!(KernelMode::Reference.to_string(), "reference");
        assert_eq!(KernelMode::Fast.to_string(), "fast");
    }

    // `from_env_checked` / `current` read the process-global environment;
    // the env-driven behavior is covered by tests/kernel_parity.rs (which
    // owns the variable in its own test binary) rather than here, where
    // parallel in-crate tests would race on it.
}
