//! Symmetric int8 quantization and an i32-accumulating int8 GEMM.
//!
//! These back the `cnn-int8` rung of the stream degradation ladder: a
//! post-training quantization of the spectrogram CNN that trades a bounded
//! accuracy loss for integer arithmetic. Unlike the f64 kernels, the int8
//! path is **explicitly lossy** — it is a distinct [`InferenceLevel`] the
//! operator opts into under load, never a silent substitution, so the
//! bit-exactness contract of the f64 reference/fast pair does not apply
//! here. Determinism still does: quantization and the integer GEMM are
//! exact, so the rung's verdicts are byte-identical across thread counts
//! and kernel modes.
//!
//! [`InferenceLevel`]: https://docs.rs/emoleak-core

/// Symmetric per-tensor quantization to int8: `q = round(v / scale)`
/// clamped to `[-127, 127]`, with `scale = max|v| / 127` (1.0 for an
/// all-zero tensor). Non-finite values saturate.
#[must_use]
pub fn quantize_symmetric(values: &[f64]) -> (Vec<i8>, f64) {
    let max = values.iter().fold(0.0f64, |a, &v| if v.is_finite() { a.max(v.abs()) } else { a });
    let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
    let q = values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                0
            } else {
                (v / scale).round().clamp(-127.0, 127.0) as i8
            }
        })
        .collect();
    (q, scale)
}

/// Reconstructs the real value a quantized entry represents.
#[inline]
#[must_use]
pub fn dequantize(q: i8, scale: f64) -> f64 {
    f64::from(q) * scale
}

/// Integer GEMM: `C += A · B` for row-major int8 `A` (`m × k`), `B`
/// (`k × n`) with i32 accumulation. With `|q| ≤ 127`, an i32 accumulator
/// is exact up to k ≈ 133 000 taps — far beyond any layer here — so the
/// result is order-independent and deterministic by construction.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m`/`k`/`n`.
pub fn gemm_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert_eq!(a.len(), m * k, "gemm_i8: A must be m*k");
    assert_eq!(b.len(), k * n, "gemm_i8: B must be k*n");
    assert_eq!(c.len(), m * n, "gemm_i8: C must be m*n");
    // Same ikj row-panel shape as the f64 fast kernel; i16 products widen
    // into the i32 accumulator without overflow.
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0 {
                continue;
            }
            let aik = i32::from(aik);
            let brow = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * i32::from(bv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_round_trips_within_half_step() {
        let v = [0.5, -1.0, 0.25, 0.0, 1.0];
        let (q, scale) = quantize_symmetric(&v);
        for (orig, &qi) in v.iter().zip(&q) {
            let back = dequantize(qi, scale);
            assert!((orig - back).abs() <= scale / 2.0 + 1e-12, "{orig} -> {back}");
        }
        // Extremes hit the full ±127 range.
        assert_eq!(q[1], -127);
        assert_eq!(q[4], 127);
    }

    #[test]
    fn all_zero_tensor_uses_unit_scale() {
        let (q, scale) = quantize_symmetric(&[0.0, 0.0]);
        assert_eq!(q, vec![0, 0]);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn non_finite_values_saturate_or_zero() {
        let (q, scale) = quantize_symmetric(&[f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 1.0]);
        assert_eq!(scale, 1.0 / 127.0);
        assert_eq!(q, vec![127, -127, 0, 127]);
    }

    #[test]
    fn integer_gemm_is_exact() {
        // [1 2; 3 4] * [5 6; 7 8]
        let a: [i8; 4] = [1, 2, 3, 4];
        let b: [i8; 4] = [5, 6, 7, 8];
        let mut c = [0i32; 4];
        gemm_i8(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19, 22, 43, 50]);
    }

    #[test]
    fn worst_case_accumulation_does_not_overflow() {
        let k = 4096;
        let a = vec![127i8; k];
        let b = vec![-127i8; k];
        let mut c = [0i32];
        gemm_i8(1, k, 1, &a, &b, &mut c);
        assert_eq!(c[0], -(127 * 127 * k as i32));
    }
}
