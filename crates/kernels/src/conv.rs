//! Convolution kernels: scalar reference and im2col + blocked-GEMM fast
//! path, with fused bias preload and optional fused ReLU.
//!
//! Layout matches `emoleak_ml::nn`: stride 1, "same" zero padding, input
//! `[C_in, H, W]` / `[C_in, L]`, weights `[out][in][kh][kw]` / `[out][in][k]`.
//!
//! # Bit-exactness and the padded-tap hazard
//!
//! The reference kernels *skip* out-of-bounds taps; im2col instead lowers
//! them to explicit `0.0` entries, so the fast path adds `w · 0.0 = ±0.0`
//! terms the reference never sees. Adding `±0.0` to an accumulator is an
//! IEEE-754 no-op **unless** the accumulator is exactly `-0.0` (then
//! `-0.0 + 0.0 = +0.0`) or the weight is non-finite (`NaN · 0.0 = NaN`,
//! `∞ · 0.0 = NaN`). The accumulator starts at the bias and, in
//! round-to-nearest, a sum can only be `-0.0` when *both* operands are
//! `-0.0` — so with a bias that is not `-0.0`, the accumulator never
//! becomes `-0.0` and every padded-tap addition is exact. Trained biases
//! cannot be `-0.0` (they start at `+0.0`, and neither SGD/momentum nor
//! Adam updates can produce `-0.0` from a non-`-0.0` parameter), but the
//! kernels do not rely on callers knowing that: [`conv2d_fast`] /
//! [`conv1d_fast`] check the hazard preconditions and silently delegate to
//! the reference path for hand-built pathological parameters. Bit-identity
//! is therefore unconditional.

use crate::gemm::gemm_fast;

/// Activation fused into the convolution's output pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// No activation: plain conv + bias.
    #[default]
    Identity,
    /// `v.max(0.0)`, bitwise-identical to `emoleak_ml`'s ReLU layer.
    Relu,
}

impl Activation {
    fn apply(self, out: &mut [f64]) {
        if self == Activation::Relu {
            for v in out {
                *v = v.max(0.0);
            }
        }
    }
}

/// True when the im2col lowering's extra `w · 0.0` terms are provably
/// exact no-ops (see the module docs); false falls back to the reference.
fn fast_path_safe(weights: &[f64], bias: &[f64]) -> bool {
    weights.iter().all(|v| v.is_finite())
        && !bias.iter().any(|v| *v == 0.0 && v.is_sign_negative())
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// Reusable im2col buffer for [`conv2d_fast`]; hold one per layer so the
/// steady-state forward pass performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct Conv2dScratch {
    cols: Vec<f64>,
}

/// Scalar reference 2-D convolution (+ bias, + optional fused activation),
/// writing `[C_out, H, W]` into `out`.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_ref(
    input: &[f64],
    in_ch: usize,
    h: usize,
    w: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    weights: &[f64],
    bias: &[f64],
    act: Activation,
    out: &mut Vec<f64>,
) {
    assert_eq!(input.len(), in_ch * h * w, "conv2d: input must be C*H*W");
    assert_eq!(weights.len(), out_ch * in_ch * kh * kw, "conv2d: bad weight count");
    assert_eq!(bias.len(), out_ch, "conv2d: bad bias count");
    let (ph, pw) = (kh / 2, kw / 2);
    out.clear();
    out.resize(out_ch * h * w, 0.0);
    for o in 0..out_ch {
        for y in 0..h {
            for x in 0..w {
                let mut acc = bias[o];
                for c in 0..in_ch {
                    for ky in 0..kh {
                        let iy = (y + ky).wrapping_sub(ph);
                        if iy >= h {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (x + kx).wrapping_sub(pw);
                            if ix >= w {
                                continue;
                            }
                            acc += weights[((o * in_ch + c) * kh + ky) * kw + kx]
                                * input[(c * h + iy) * w + ix];
                        }
                    }
                }
                out[(o * h + y) * w + x] = acc;
            }
        }
    }
    act.apply(out);
}

/// im2col + cache-blocked GEMM 2-D convolution, bit-identical to
/// [`conv2d_ref`] for all inputs (pathological parameters delegate to it).
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_fast(
    input: &[f64],
    in_ch: usize,
    h: usize,
    w: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    weights: &[f64],
    bias: &[f64],
    act: Activation,
    scratch: &mut Conv2dScratch,
    out: &mut Vec<f64>,
) {
    if !fast_path_safe(weights, bias) {
        return conv2d_ref(input, in_ch, h, w, out_ch, kh, kw, weights, bias, act, out);
    }
    assert_eq!(input.len(), in_ch * h * w, "conv2d: input must be C*H*W");
    assert_eq!(weights.len(), out_ch * in_ch * kh * kw, "conv2d: bad weight count");
    assert_eq!(bias.len(), out_ch, "conv2d: bad bias count");
    let k_dim = in_ch * kh * kw;
    let n = h * w;
    im2col_2d(input, in_ch, h, w, kh, kw, &mut scratch.cols);
    let cols = &scratch.cols;

    // out = bias ⊕ W · cols, accumulated in the same ascending-k order as
    // the reference's register accumulation.
    out.clear();
    out.resize(out_ch * n, 0.0);
    for (o, orow) in out.chunks_exact_mut(n).enumerate() {
        orow.fill(bias[o]);
    }
    gemm_fast(out_ch, k_dim, n, weights, cols, out);
    act.apply(out);
}

/// Lowers a `[C_in, H, W]` map to the `[C_in·kh·kw × H·W]` im2col patch
/// matrix for a stride-1 "same"-padded convolution: row `(c, ky, kx)` —
/// matching the `[out][in][kh][kw]` weight layout — column `(y, x)`,
/// out-of-bounds taps as `0.0`. Shared by the f64 fast path and the int8
/// quantized path.
pub fn im2col_2d(
    input: &[f64],
    in_ch: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    cols: &mut Vec<f64>,
) {
    assert_eq!(input.len(), in_ch * h * w, "im2col2d: input must be C*H*W");
    let (ph, pw) = (kh / 2, kw / 2);
    let n = h * w;
    cols.clear();
    cols.resize(in_ch * kh * kw * n, 0.0);
    for c in 0..in_ch {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                let dst = &mut cols[row * n..(row + 1) * n];
                for y in 0..h {
                    let iy = (y + ky).wrapping_sub(ph);
                    if iy >= h {
                        continue; // whole row stays zero-padded
                    }
                    let src = &input[(c * h + iy) * w..(c * h + iy + 1) * w];
                    // valid x satisfy 0 <= x + kx - pw < w
                    let x0 = pw.saturating_sub(kx);
                    let x1 = ((w + pw).saturating_sub(kx)).min(w);
                    if x0 < x1 {
                        dst[y * w + x0..y * w + x1]
                            .copy_from_slice(&src[x0 + kx - pw..x1 + kx - pw]);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

/// Reusable im2col buffer for [`conv1d_fast`].
#[derive(Debug, Clone, Default)]
pub struct Conv1dScratch {
    cols: Vec<f64>,
}

/// Scalar reference 1-D convolution (+ bias, + optional fused activation),
/// writing `[C_out, L]` into `out`.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_ref(
    input: &[f64],
    in_ch: usize,
    l: usize,
    out_ch: usize,
    k: usize,
    weights: &[f64],
    bias: &[f64],
    act: Activation,
    out: &mut Vec<f64>,
) {
    assert_eq!(input.len(), in_ch * l, "conv1d: input must be C*L");
    assert_eq!(weights.len(), out_ch * in_ch * k, "conv1d: bad weight count");
    assert_eq!(bias.len(), out_ch, "conv1d: bad bias count");
    let p = k / 2;
    out.clear();
    out.resize(out_ch * l, 0.0);
    for o in 0..out_ch {
        for t in 0..l {
            let mut acc = bias[o];
            for c in 0..in_ch {
                for kk in 0..k {
                    let it = (t + kk).wrapping_sub(p);
                    if it >= l {
                        continue;
                    }
                    acc += weights[(o * in_ch + c) * k + kk] * input[c * l + it];
                }
            }
            out[o * l + t] = acc;
        }
    }
    act.apply(out);
}

/// im2col + cache-blocked GEMM 1-D convolution, bit-identical to
/// [`conv1d_ref`] for all inputs (pathological parameters delegate to it).
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_fast(
    input: &[f64],
    in_ch: usize,
    l: usize,
    out_ch: usize,
    k: usize,
    weights: &[f64],
    bias: &[f64],
    act: Activation,
    scratch: &mut Conv1dScratch,
    out: &mut Vec<f64>,
) {
    if !fast_path_safe(weights, bias) {
        return conv1d_ref(input, in_ch, l, out_ch, k, weights, bias, act, out);
    }
    assert_eq!(input.len(), in_ch * l, "conv1d: input must be C*L");
    assert_eq!(weights.len(), out_ch * in_ch * k, "conv1d: bad weight count");
    assert_eq!(bias.len(), out_ch, "conv1d: bad bias count");
    let k_dim = in_ch * k;
    im2col_1d(input, in_ch, l, k, &mut scratch.cols);
    let cols = &scratch.cols;

    out.clear();
    out.resize(out_ch * l, 0.0);
    for (o, orow) in out.chunks_exact_mut(l).enumerate() {
        orow.fill(bias[o]);
    }
    gemm_fast(out_ch, k_dim, l, weights, cols, out);
    act.apply(out);
}

/// Lowers a `[C_in, L]` map to the `[C_in·k × L]` im2col patch matrix for
/// a stride-1 "same"-padded convolution (see [`im2col_2d`]).
pub fn im2col_1d(input: &[f64], in_ch: usize, l: usize, k: usize, cols: &mut Vec<f64>) {
    assert_eq!(input.len(), in_ch * l, "im2col1d: input must be C*L");
    let p = k / 2;
    cols.clear();
    cols.resize(in_ch * k * l, 0.0);
    for c in 0..in_ch {
        for kk in 0..k {
            let row = c * k + kk;
            let dst = &mut cols[row * l..(row + 1) * l];
            let src = &input[c * l..(c + 1) * l];
            // valid t satisfy 0 <= t + kk - p < l
            let t0 = p.saturating_sub(kk);
            let t1 = ((l + p).saturating_sub(kk)).min(l);
            if t0 < t1 {
                dst[t0..t1].copy_from_slice(&src[t0 + kk - p..t1 + kk - p]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vals(rng: &mut StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-1.5..1.5)).collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn conv2d_fast_matches_ref_bitwise_over_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        // Odd and even kernels, 1x1, non-square maps, multi-channel.
        for (in_ch, h, w, out_ch, kh, kw) in
            [(1, 4, 4, 2, 3, 3), (2, 5, 3, 3, 1, 1), (3, 6, 7, 2, 2, 2), (2, 1, 9, 4, 3, 5)]
        {
            let input = vals(&mut rng, in_ch * h * w);
            let weights = vals(&mut rng, out_ch * in_ch * kh * kw);
            let bias = vals(&mut rng, out_ch);
            let (mut r, mut f) = (Vec::new(), Vec::new());
            let mut scratch = Conv2dScratch::default();
            for act in [Activation::Identity, Activation::Relu] {
                conv2d_ref(&input, in_ch, h, w, out_ch, kh, kw, &weights, &bias, act, &mut r);
                conv2d_fast(
                    &input, in_ch, h, w, out_ch, kh, kw, &weights, &bias, act, &mut scratch,
                    &mut f,
                );
                assert_eq!(bits(&r), bits(&f), "shape ({in_ch},{h},{w},{out_ch},{kh},{kw})");
            }
        }
    }

    #[test]
    fn conv1d_fast_matches_ref_bitwise_over_shapes() {
        let mut rng = StdRng::seed_from_u64(13);
        for (in_ch, l, out_ch, k) in [(1, 8, 2, 3), (2, 5, 3, 1), (3, 9, 2, 4), (1, 1, 1, 7)] {
            let input = vals(&mut rng, in_ch * l);
            let weights = vals(&mut rng, out_ch * in_ch * k);
            let bias = vals(&mut rng, out_ch);
            let (mut r, mut f) = (Vec::new(), Vec::new());
            let mut scratch = Conv1dScratch::default();
            conv1d_ref(&input, in_ch, l, out_ch, k, &weights, &bias, Activation::Identity, &mut r);
            conv1d_fast(
                &input,
                in_ch,
                l,
                out_ch,
                k,
                &weights,
                &bias,
                Activation::Identity,
                &mut scratch,
                &mut f,
            );
            assert_eq!(bits(&r), bits(&f), "shape ({in_ch},{l},{out_ch},{k})");
        }
    }

    #[test]
    fn pathological_parameters_fall_back_and_stay_bit_identical() {
        // A -0.0 bias and a NaN weight are exactly the cases where im2col's
        // padded zeros would not be no-ops; the fast path must delegate.
        let input = [1.0, -2.0, 3.0, 0.5];
        let mut scratch = Conv2dScratch::default();
        let (mut r, mut f) = (Vec::new(), Vec::new());
        for (weights, bias) in [
            (vec![0.5, -0.25, 1.0, 2.0, -1.0, 0.0, 0.75, -0.5, 0.125], vec![-0.0]),
            (vec![0.5, f64::NAN, 1.0, 2.0, -1.0, 0.0, 0.75, -0.5, 0.125], vec![0.1]),
        ] {
            conv2d_ref(&input, 1, 2, 2, 1, 3, 3, &weights, &bias, Activation::Identity, &mut r);
            conv2d_fast(
                &input,
                1,
                2,
                2,
                1,
                3,
                3,
                &weights,
                &bias,
                Activation::Identity,
                &mut scratch,
                &mut f,
            );
            assert_eq!(bits(&r), bits(&f));
        }
    }

    #[test]
    fn fused_relu_clamps_negative_outputs() {
        let input = [1.0, 1.0];
        let weights = [-1.0];
        let bias = [0.25];
        let mut out = Vec::new();
        conv1d_ref(&input, 1, 2, 1, 1, &weights, &bias, Activation::Relu, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
        conv1d_ref(&input, 1, 2, 1, 1, &weights, &bias, Activation::Identity, &mut out);
        assert_eq!(out, vec![-0.75, -0.75]);
    }

    #[test]
    fn scratch_reuse_across_differing_shapes_is_clean() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut scratch = Conv2dScratch::default();
        // Big shape first, then small: stale tail bytes must not leak in.
        for (h, w) in [(8, 8), (2, 3)] {
            let input = vals(&mut rng, h * w);
            let weights = vals(&mut rng, 9);
            let bias = vals(&mut rng, 1);
            let (mut r, mut f) = (Vec::new(), Vec::new());
            conv2d_ref(&input, 1, h, w, 1, 3, 3, &weights, &bias, Activation::Identity, &mut r);
            conv2d_fast(
                &input,
                1,
                h,
                w,
                1,
                3,
                3,
                &weights,
                &bias,
                Activation::Identity,
                &mut scratch,
                &mut f,
            );
            assert_eq!(bits(&r), bits(&f), "{h}x{w}");
        }
    }
}
