//! Seeded noise sources shared by the speech synthesizer and the phone
//! channel simulator.
//!
//! Everything in the reproduction is deterministic given a seed, so
//! experiment tables are exactly re-runnable. Gaussian samples come from the
//! Box–Muller transform (we avoid a `rand_distr` dependency); pink noise uses
//! the Voss–McCartney averaging scheme and models the `1/f` character of
//! hand/body movement in the handheld setting.

use rand::Rng;

/// A Box–Muller Gaussian sampler wrapping any [`rand::Rng`] state.
///
/// # Example
///
/// ```
/// use emoleak_dsp::noise::Gaussian;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut g = Gaussian::new();
/// let x = g.sample(&mut rng, 0.0, 1.0);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gaussian {
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a sampler with no cached spare value.
    pub fn new() -> Self {
        Gaussian { spare: None }
    }

    /// Draws one `N(mean, std²)` sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        let z = match self.spare.take() {
            Some(z) => z,
            None => {
                // Box–Muller: two uniforms -> two independent normals.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen::<f64>();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std * z
    }

    /// Fills `out` with independent `N(mean, std²)` samples.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64], mean: f64, std: f64) {
        for v in out {
            *v = self.sample(rng, mean, std);
        }
    }
}

/// Generates `n` samples of zero-mean white Gaussian noise with standard
/// deviation `std`.
pub fn white_noise<R: Rng + ?Sized>(rng: &mut R, n: usize, std: f64) -> Vec<f64> {
    let mut g = Gaussian::new();
    let mut out = vec![0.0; n];
    g.fill(rng, &mut out, 0.0, std);
    out
}

/// A Voss–McCartney pink-noise (`1/f`) generator.
///
/// Pink noise approximates the low-frequency drift spectrum of human hand
/// and body movement, the dominant noise source in the paper's handheld
/// ear-speaker setting (§III-B.2).
#[derive(Debug, Clone)]
pub struct PinkNoise {
    rows: Vec<f64>,
    counter: u64,
    gaussian: Gaussian,
}

impl PinkNoise {
    /// Creates a generator with `octaves` rows (more rows extend the `1/f`
    /// region to lower frequencies; 16 covers any trace we produce).
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is 0 or greater than 48.
    pub fn new(octaves: usize) -> Self {
        assert!(octaves > 0 && octaves <= 48, "octaves must be in 1..=48");
        PinkNoise {
            rows: vec![0.0; octaves],
            counter: 0,
            gaussian: Gaussian::new(),
        }
    }

    /// Produces the next pink-noise sample (unit-ish variance before
    /// scaling).
    pub fn next_sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        // Update the row selected by the number of trailing zeros; row k
        // updates every 2^k samples.
        let k = (self.counter.trailing_zeros() as usize).min(self.rows.len() - 1);
        self.rows[k] = self.gaussian.sample(rng, 0.0, 1.0);
        let sum: f64 = self.rows.iter().sum();
        sum / (self.rows.len() as f64).sqrt()
    }

    /// Generates `n` samples scaled by `std`.
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize, std: f64) -> Vec<f64> {
        (0..n).map(|_| std * self.next_sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gaussian_moments_are_correct() {
        let mut r = rng(42);
        let x = white_noise(&mut r, 100_000, 2.0);
        assert!(stats::mean(&x).abs() < 0.05);
        assert!((stats::std_dev(&x) - 2.0).abs() < 0.05);
        let k = stats::kurtosis(&x);
        assert!((k - 3.0).abs() < 0.15, "kurtosis {k}");
    }

    #[test]
    fn gaussian_is_deterministic_for_seed() {
        let mut a = rng(7);
        let mut b = rng(7);
        let xa = white_noise(&mut a, 100, 1.0);
        let xb = white_noise(&mut b, 100, 1.0);
        assert_eq!(xa, xb);
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = rng(7);
        let mut b = rng(8);
        assert_ne!(white_noise(&mut a, 16, 1.0), white_noise(&mut b, 16, 1.0));
    }

    #[test]
    fn pink_noise_has_low_frequency_dominance() {
        let mut r = rng(3);
        let mut pink = PinkNoise::new(16);
        let x = pink.generate(&mut r, 1 << 14, 1.0);
        let fft = crate::Fft::new(1 << 14);
        let p = fft.power_spectrum(&x);
        // Compare energy in low band vs an equal-width high band.
        let low: f64 = p[1..256].iter().sum();
        let high: f64 = p[4096..4351].iter().sum();
        assert!(
            low > 5.0 * high,
            "pink noise should be low-frequency dominated (low={low:.1}, high={high:.1})"
        );
    }

    #[test]
    fn white_noise_is_spectrally_flat() {
        let mut r = rng(9);
        let x = white_noise(&mut r, 1 << 14, 1.0);
        let fft = crate::Fft::new(1 << 14);
        let p = fft.power_spectrum(&x);
        let low: f64 = p[1..2048].iter().sum();
        let high: f64 = p[2048..4095].iter().sum();
        let ratio = low / high;
        assert!((0.8..1.25).contains(&ratio), "white ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "octaves")]
    fn pink_rejects_zero_octaves() {
        PinkNoise::new(0);
    }
}
