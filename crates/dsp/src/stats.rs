//! Descriptive statistics used by the Table II time-domain features.
//!
//! All functions operate on `&[f64]` and are defined to return `f64::NAN` on
//! empty input (the feature pipeline then removes NaN rows, exactly as the
//! paper's preprocessing does in §IV-D.1).

/// Arithmetic mean; NaN on empty input.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Minimum value; NaN on empty input.
pub fn min(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::NAN, |a, b| if a.is_nan() || b < a { b } else { a })
}

/// Maximum value; NaN on empty input.
pub fn max(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::NAN, |a, b| if a.is_nan() || b > a { b } else { a })
}

/// Population variance; NaN on empty input.
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation; NaN on empty input.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Range (max − min); NaN on empty input.
pub fn range(x: &[f64]) -> f64 {
    max(x) - min(x)
}

/// Coefficient of variation, `σ/|μ|`. NaN on empty input; infinite when the
/// mean is zero (removed later as invalid, like the paper's NaN cleaning).
pub fn coefficient_of_variation(x: &[f64]) -> f64 {
    std_dev(x) / mean(x).abs()
}

/// Sample skewness (third standardized moment, population form). Zero for
/// perfectly symmetric data; NaN on empty or constant input.
pub fn skewness(x: &[f64]) -> f64 {
    let m = mean(x);
    let s = std_dev(x);
    if x.is_empty() || s == 0.0 {
        return f64::NAN;
    }
    x.iter().map(|v| ((v - m) / s).powi(3)).sum::<f64>() / x.len() as f64
}

/// Excess-free kurtosis (fourth standardized moment; 3.0 for a Gaussian).
/// NaN on empty or constant input.
pub fn kurtosis(x: &[f64]) -> f64 {
    let m = mean(x);
    let s = std_dev(x);
    if x.is_empty() || s == 0.0 {
        return f64::NAN;
    }
    x.iter().map(|v| ((v - m) / s).powi(4)).sum::<f64>() / x.len() as f64
}

/// Linear-interpolated quantile `q ∈ [0, 1]`; NaN on empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(x: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if x.is_empty() {
        return f64::NAN;
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let w = pos - lo as f64;
    sorted[lo] * (1.0 - w) + sorted[hi] * w
}

/// Median (50th percentile).
pub fn median(x: &[f64]) -> f64 {
    quantile(x, 0.5)
}

/// Rate of crossings of the signal's own mean, in crossings per sample
/// (`MeanCrossingRate` of Table II). NaN on input shorter than 2.
pub fn mean_crossing_rate(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return f64::NAN;
    }
    let m = mean(x);
    let crossings = x
        .windows(2)
        .filter(|w| (w[0] - m) * (w[1] - m) < 0.0)
        .count();
    crossings as f64 / (x.len() - 1) as f64
}

/// Zero-crossing rate in crossings per sample. NaN on input shorter than 2.
pub fn zero_crossing_rate(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return f64::NAN;
    }
    let crossings = x.windows(2).filter(|w| w[0] * w[1] < 0.0).count();
    crossings as f64 / (x.len() - 1) as f64
}

/// Root-mean-square amplitude; NaN on empty input.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Total energy `Σ x²`; zero on empty input.
pub fn energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Shannon entropy (nats) of a non-negative distribution after normalization.
/// Returns NaN if the distribution sums to zero or is empty.
pub fn shannon_entropy(p: &[f64]) -> f64 {
    let total: f64 = p.iter().filter(|v| v.is_finite() && **v > 0.0).sum();
    if p.is_empty() || total <= 0.0 {
        return f64::NAN;
    }
    -p.iter()
        .filter(|v| v.is_finite() && **v > 0.0)
        .map(|&v| {
            let q = v / total;
            q * q.ln()
        })
        .sum::<f64>()
}

/// Pearson correlation between two equal-length slices; NaN if either is
/// constant or empty.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal lengths");
    let n = x.len();
    if n == 0 {
        return f64::NAN;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for i in 0..n {
        let a = x[i] - mx;
        let b = y[i] - my;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    num / (dx.sqrt() * dy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(quantile(&[], 0.5).is_nan());
        assert!(mean_crossing_rate(&[1.0]).is_nan());
        assert!(rms(&[]).is_nan());
        assert!(shannon_entropy(&[]).is_nan());
    }

    #[test]
    fn basic_moments() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&x) - 2.5).abs() < EPS);
        assert!((variance(&x) - 1.25).abs() < EPS);
        assert!((std_dev(&x) - 1.25f64.sqrt()).abs() < EPS);
        assert!((range(&x) - 3.0).abs() < EPS);
        assert!((coefficient_of_variation(&x) - 1.25f64.sqrt() / 2.5).abs() < EPS);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&x).abs() < EPS);
    }

    #[test]
    fn right_tail_gives_positive_skew() {
        let x = [0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(skewness(&x) > 1.0);
    }

    #[test]
    fn gaussian_kurtosis_near_three() {
        // Deterministic pseudo-Gaussian via CLT of a fixed LCG.
        let mut state = 12345u64;
        let mut lcg = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let x: Vec<f64> = (0..20000)
            .map(|_| (0..12).map(|_| lcg()).sum::<f64>() / 2.0)
            .collect();
        let k = kurtosis(&x);
        assert!((k - 3.0).abs() < 0.2, "kurtosis {k}");
    }

    #[test]
    fn quantiles_interpolate() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&x, 0.0) - 1.0).abs() < EPS);
        assert!((quantile(&x, 1.0) - 4.0).abs() < EPS);
        assert!((median(&x) - 2.5).abs() < EPS);
        assert!((quantile(&x, 0.25) - 1.75).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn crossing_rates() {
        // Alternating signal crosses its mean (0) at every step.
        let x = [1.0, -1.0, 1.0, -1.0, 1.0];
        assert!((mean_crossing_rate(&x) - 1.0).abs() < EPS);
        assert!((zero_crossing_rate(&x) - 1.0).abs() < EPS);
        // Constant signal never crosses.
        let c = [2.0; 10];
        assert_eq!(mean_crossing_rate(&c), 0.0);
    }

    #[test]
    fn entropy_extremes() {
        // Uniform distribution has maximal entropy ln(n).
        let u = [0.25; 4];
        assert!((shannon_entropy(&u) - 4.0f64.ln()).abs() < EPS);
        // Point mass has zero entropy.
        let p = [1.0, 0.0, 0.0];
        assert!(shannon_entropy(&p).abs() < EPS);
        // All-zero distribution is invalid.
        assert!(shannon_entropy(&[0.0, 0.0]).is_nan());
    }

    #[test]
    fn pearson_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < EPS);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < EPS);
        assert!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]).is_nan());
    }

    #[test]
    fn energy_and_rms_relate() {
        let x = [3.0, 4.0];
        assert!((energy(&x) - 25.0).abs() < EPS);
        assert!((rms(&x) - (12.5f64).sqrt()).abs() < EPS);
    }
}
