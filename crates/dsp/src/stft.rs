//! Short-time Fourier transform and power spectrograms.
//!
//! Figures 2–4 of the paper are spectrograms of accelerometer traces; the
//! spectrogram classifier (§IV-C) consumes labeled spectrogram images. This
//! module produces the time–frequency matrices those tools need.

use crate::{fft::Fft, window::Window, Complex, DspError};
use emoleak_kernels::KernelMode;
use serde::{Deserialize, Serialize};

/// STFT analysis parameters.
///
/// # Example
///
/// ```
/// use emoleak_dsp::{StftConfig, Window};
/// let cfg = StftConfig::new(256, 64).with_window(Window::Hamming);
/// let signal: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.3).sin()).collect();
/// let spec = cfg.spectrogram(&signal, 500.0).unwrap();
/// assert_eq!(spec.num_bins(), 129);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StftConfig {
    /// Frame length in samples (rounded up to a power of two for the FFT).
    pub frame_len: usize,
    /// Hop between consecutive frames in samples.
    pub hop: usize,
    /// Analysis window.
    pub window: Window,
}

impl StftConfig {
    /// Creates a configuration with a Hamming window.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len` or `hop` is zero.
    pub fn new(frame_len: usize, hop: usize) -> Self {
        assert!(frame_len > 0, "frame_len must be positive");
        assert!(hop > 0, "hop must be positive");
        StftConfig { frame_len, hop, window: Window::Hamming }
    }

    /// Sets the analysis window.
    #[must_use]
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// FFT length: the frame length rounded up to a power of two.
    pub fn n_fft(&self) -> usize {
        self.frame_len.next_power_of_two()
    }

    /// Number of frames produced for a signal of length `n`.
    pub fn num_frames(&self, n: usize) -> usize {
        if n < self.frame_len {
            0
        } else {
            (n - self.frame_len) / self.hop + 1
        }
    }

    /// Computes the power spectrogram of `signal` sampled at `fs` Hz,
    /// dispatching on the `EMOLEAK_KERNELS` knob (see
    /// [`spectrogram_in_mode`](Self::spectrogram_in_mode)).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if the signal is shorter than one
    /// frame.
    pub fn spectrogram(&self, signal: &[f64], fs: f64) -> Result<Spectrogram, DspError> {
        self.spectrogram_in_mode(signal, fs, KernelMode::current())
    }

    /// [`spectrogram`](Self::spectrogram) with an explicit kernel mode —
    /// the dispatch seam the differential tests and benches drive directly
    /// (no process-global environment mutation needed).
    ///
    /// The fast path reuses one complex transform scratch and one bin
    /// buffer across all frames instead of allocating two `Vec`s per
    /// frame; the butterfly arithmetic is untouched, so the two modes are
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if the signal is shorter than one
    /// frame.
    pub fn spectrogram_in_mode(
        &self,
        signal: &[f64],
        fs: f64,
        mode: KernelMode,
    ) -> Result<Spectrogram, DspError> {
        let frames = self.num_frames(signal.len());
        if frames == 0 {
            return Err(DspError::EmptyInput);
        }
        let n_fft = self.n_fft();
        let fft = Fft::new(n_fft);
        let coeffs = self.window.coefficients(self.frame_len);
        let bins = n_fft / 2 + 1;
        let mut power = Vec::with_capacity(frames * bins);
        let mut frame = vec![0.0; self.frame_len];
        let mut scratch: Vec<Complex> = Vec::new();
        let mut bin_buf: Vec<f64> = Vec::new();
        for t in 0..frames {
            let start = t * self.hop;
            frame.copy_from_slice(&signal[start..start + self.frame_len]);
            Window::apply_with(&coeffs, &mut frame);
            match mode {
                KernelMode::Reference => {
                    let spec = fft.power_spectrum(&frame);
                    power.extend_from_slice(&spec);
                }
                KernelMode::Fast => {
                    fft.power_spectrum_into(&frame, &mut scratch, &mut bin_buf);
                    power.extend_from_slice(&bin_buf);
                }
            }
        }
        Ok(Spectrogram {
            power,
            num_frames: frames,
            num_bins: bins,
            fs,
            hop: self.hop,
            n_fft,
        })
    }
}

/// A power spectrogram: `num_frames × num_bins` matrix in row-major order
/// (one row per time frame).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spectrogram {
    power: Vec<f64>,
    num_frames: usize,
    num_bins: usize,
    fs: f64,
    hop: usize,
    n_fft: usize,
}

impl Spectrogram {
    /// Number of time frames (rows).
    pub fn num_frames(&self) -> usize {
        self.num_frames
    }

    /// Number of frequency bins (columns), `n_fft/2 + 1`.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// The sampling rate the spectrogram was computed at.
    pub fn sample_rate(&self) -> f64 {
        self.fs
    }

    /// Power value at frame `t`, bin `k`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `k` is out of range.
    #[inline]
    pub fn at(&self, t: usize, k: usize) -> f64 {
        assert!(t < self.num_frames && k < self.num_bins, "index out of range");
        self.power[t * self.num_bins + k]
    }

    /// The power row for frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn frame(&self, t: usize) -> &[f64] {
        assert!(t < self.num_frames, "frame index out of range");
        &self.power[t * self.num_bins..(t + 1) * self.num_bins]
    }

    /// Center time (seconds) of frame `t`.
    pub fn frame_time(&self, t: usize) -> f64 {
        (t * self.hop) as f64 / self.fs + self.n_fft as f64 / (2.0 * self.fs)
    }

    /// Frequency (Hz) of bin `k`.
    pub fn bin_frequency(&self, k: usize) -> f64 {
        k as f64 * self.fs / self.n_fft as f64
    }

    /// Flattens the power matrix (row-major) — used to feed image classifiers.
    pub fn as_flat(&self) -> &[f64] {
        &self.power
    }

    /// Converts power to decibels with a floor, `10·log10(max(p, floor))`.
    pub fn to_db(&self, floor: f64) -> Vec<f64> {
        self.power
            .iter()
            .map(|&p| 10.0 * p.max(floor).log10())
            .collect()
    }

    /// Per-frame total power (energy envelope over time).
    pub fn frame_energies(&self) -> Vec<f64> {
        (0..self.num_frames)
            .map(|t| self.frame(t).iter().sum())
            .collect()
    }

    /// Per-bin total power (long-term spectrum).
    pub fn bin_energies(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.num_bins];
        for t in 0..self.num_frames {
            for (a, p) in acc.iter_mut().zip(self.frame(t)) {
                *a += p;
            }
        }
        acc
    }

    /// Bilinearly resizes the dB-scaled spectrogram to `rows × cols` — the
    /// 32×32 resize of §IV-C.1.
    pub fn resize_db(&self, rows: usize, cols: usize, floor: f64) -> Vec<f64> {
        let db = self.to_db(floor);
        bilinear_resize(&db, self.num_frames, self.num_bins, rows, cols)
    }
}

/// Bilinear resize of a row-major `src_rows × src_cols` matrix to
/// `dst_rows × dst_cols`.
///
/// # Panics
///
/// Panics if the source dimensions do not match `src.len()` or if any
/// dimension is zero.
pub fn bilinear_resize(
    src: &[f64],
    src_rows: usize,
    src_cols: usize,
    dst_rows: usize,
    dst_cols: usize,
) -> Vec<f64> {
    assert_eq!(src.len(), src_rows * src_cols, "source dimension mismatch");
    assert!(src_rows > 0 && src_cols > 0 && dst_rows > 0 && dst_cols > 0);
    let mut out = Vec::with_capacity(dst_rows * dst_cols);
    let rscale = if dst_rows > 1 { (src_rows - 1) as f64 / (dst_rows - 1) as f64 } else { 0.0 };
    let cscale = if dst_cols > 1 { (src_cols - 1) as f64 / (dst_cols - 1) as f64 } else { 0.0 };
    for r in 0..dst_rows {
        let fy = r as f64 * rscale;
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(src_rows - 1);
        let wy = fy - y0 as f64;
        for c in 0..dst_cols {
            let fx = c as f64 * cscale;
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(src_cols - 1);
            let wx = fx - x0 as f64;
            let v00 = src[y0 * src_cols + x0];
            let v01 = src[y0 * src_cols + x1];
            let v10 = src[y1 * src_cols + x0];
            let v11 = src[y1 * src_cols + x1];
            let top = v00 * (1.0 - wx) + v01 * wx;
            let bot = v10 * (1.0 - wx) + v11 * wx;
            out.push(top * (1.0 - wy) + bot * wy);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn spectrogram_dimensions() {
        let cfg = StftConfig::new(128, 32);
        let spec = cfg.spectrogram(&tone(50.0, 500.0, 1000), 500.0).unwrap();
        assert_eq!(spec.num_frames(), (1000 - 128) / 32 + 1);
        assert_eq!(spec.num_bins(), 65);
    }

    #[test]
    fn too_short_signal_errors() {
        let cfg = StftConfig::new(128, 32);
        assert_eq!(cfg.spectrogram(&[0.0; 64], 500.0), Err(DspError::EmptyInput));
    }

    #[test]
    fn tone_energy_lands_in_expected_bin() {
        let fs = 512.0;
        let cfg = StftConfig::new(256, 64).with_window(Window::Hann);
        let spec = cfg.spectrogram(&tone(64.0, fs, 2048), fs).unwrap();
        // 64 Hz at n_fft=256, fs=512 → bin 32.
        let long_term = spec.bin_energies();
        let peak = long_term
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 32);
        assert!((spec.bin_frequency(peak) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn chirp_moves_energy_over_time() {
        let fs = 500.0;
        let n = 5000;
        // Linear chirp 20 → 200 Hz.
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let f = 20.0 + 18.0 * t * 10.0 / 2.0; // instantaneous phase integral below
                (2.0 * std::f64::consts::PI * f * t).sin()
            })
            .collect();
        let cfg = StftConfig::new(256, 64);
        let spec = cfg.spectrogram(&x, fs).unwrap();
        let peak_bin = |t: usize| {
            spec.frame(t)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        assert!(peak_bin(spec.num_frames() - 1) > peak_bin(0));
    }

    #[test]
    fn frame_energy_tracks_amplitude_envelope() {
        let fs = 500.0;
        // Quiet first half, loud second half.
        let mut x = tone(40.0, fs, 4000);
        for v in x.iter_mut().take(2000) {
            *v *= 0.1;
        }
        let cfg = StftConfig::new(128, 64);
        let spec = cfg.spectrogram(&x, fs).unwrap();
        let e = spec.frame_energies();
        let first: f64 = e[..10].iter().sum();
        let last: f64 = e[e.len() - 10..].iter().sum();
        assert!(last > 20.0 * first);
    }

    #[test]
    fn db_conversion_floors() {
        let cfg = StftConfig::new(64, 32);
        let spec = cfg.spectrogram(&vec![0.0; 256], 500.0).unwrap();
        let db = spec.to_db(1e-12);
        assert!(db.iter().all(|&v| (v + 120.0).abs() < 1e-9));
    }

    #[test]
    fn resize_identity_when_same_size() {
        let src = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let out = bilinear_resize(&src, 2, 3, 2, 3);
        assert_eq!(out, src);
    }

    #[test]
    fn resize_upscales_smoothly() {
        let src = vec![0.0, 1.0, 1.0, 2.0]; // 2x2
        let out = bilinear_resize(&src, 2, 2, 3, 3);
        assert_eq!(out.len(), 9);
        assert!((out[4] - 1.0).abs() < 1e-12); // center = average
        assert_eq!(out[0], 0.0);
        assert_eq!(out[8], 2.0);
    }

    #[test]
    fn num_frames_edge_cases() {
        let cfg = StftConfig::new(64, 16);
        // Empty signal and anything shorter than one frame: no frames.
        assert_eq!(cfg.num_frames(0), 0);
        assert_eq!(cfg.num_frames(63), 0);
        // Exactly one frame.
        assert_eq!(cfg.num_frames(64), 1);
        // One sample short of the next hop boundary still yields only the
        // frames that fully fit: a single-sample tail is dropped.
        assert_eq!(cfg.num_frames(64 + 16 - 1), 1);
        assert_eq!(cfg.num_frames(64 + 16), 2);
        assert_eq!(cfg.num_frames(64 + 16 + 1), 2);

        // hop larger than frame_len: frames skip samples entirely.
        let gappy = StftConfig::new(64, 100);
        assert_eq!(gappy.num_frames(63), 0);
        assert_eq!(gappy.num_frames(64), 1);
        assert_eq!(gappy.num_frames(163), 1);
        assert_eq!(gappy.num_frames(164), 2);
        let spec = gappy.spectrogram(&vec![0.5; 264], 500.0).unwrap();
        assert_eq!(spec.num_frames(), 3);
    }

    #[test]
    fn empty_signal_errors() {
        let cfg = StftConfig::new(64, 16);
        assert_eq!(cfg.spectrogram(&[], 500.0), Err(DspError::EmptyInput));
    }

    #[test]
    fn fast_and_reference_spectrograms_are_bit_identical() {
        use emoleak_kernels::KernelMode;
        let fs = 500.0;
        let x = tone(42.0, fs, 1234);
        for cfg in [StftConfig::new(128, 32), StftConfig::new(100, 150)] {
            let r = cfg.spectrogram_in_mode(&x, fs, KernelMode::Reference).unwrap();
            let f = cfg.spectrogram_in_mode(&x, fs, KernelMode::Fast).unwrap();
            assert_eq!(r.num_frames(), f.num_frames());
            let bits = |s: &Spectrogram| {
                s.as_flat().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(bits(&r), bits(&f));
        }
    }

    #[test]
    fn frame_time_increases_with_hop() {
        let cfg = StftConfig::new(128, 64);
        let spec = cfg.spectrogram(&vec![0.1; 1024], 500.0).unwrap();
        assert!(spec.frame_time(1) > spec.frame_time(0));
        let dt = spec.frame_time(1) - spec.frame_time(0);
        assert!((dt - 64.0 / 500.0).abs() < 1e-12);
    }
}
