//! Analysis windows for the STFT.
//!
//! The paper's MATLAB spectrogram tool uses Hamming windows by default; we
//! provide the common families so spectrogram shape can be studied as an
//! ablation.

use serde::{Deserialize, Serialize};

/// An analysis window family.
///
/// # Example
///
/// ```
/// use emoleak_dsp::Window;
/// let hann = Window::Hann.coefficients(16);
/// assert!(hann[0] < 1e-12);              // Hann tapers to zero
/// assert!((hann[8] - 1.0).abs() < 0.05); // ...and peaks near the middle
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Window {
    /// All-ones window (no tapering).
    Rectangular,
    /// Hann window, `0.5 − 0.5·cos(2πn/(N−1))`.
    Hann,
    /// Hamming window, `0.54 − 0.46·cos(2πn/(N−1))` — MATLAB's default.
    #[default]
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

impl Window {
    /// Generates the window coefficients for length `n`.
    ///
    /// Length 0 yields an empty vector; length 1 yields `[1.0]` for every
    /// family (the symmetric-window convention).
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let denom = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / denom;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// Applies the window to `frame` in place.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != frame.len()` when using
    /// [`Window::apply_with`]; this convenience method computes matching
    /// coefficients itself and cannot panic.
    pub fn apply(self, frame: &mut [f64]) {
        let coeffs = self.coefficients(frame.len());
        Self::apply_with(&coeffs, frame);
    }

    /// Applies precomputed `coeffs` to `frame` in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn apply_with(coeffs: &[f64], frame: &mut [f64]) {
        assert_eq!(coeffs.len(), frame.len(), "window/frame length mismatch");
        for (x, w) in frame.iter_mut().zip(coeffs) {
            *x *= w;
        }
    }

    /// The coherent gain (mean of the coefficients), used to normalize
    /// spectrogram magnitudes across window families.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let c = self.coefficients(n);
        if c.is_empty() {
            return 0.0;
        }
        c.iter().sum::<f64>() / c.len() as f64
    }
}

impl core::fmt::Display for Window {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Window::Rectangular => "rectangular",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(9)
            .iter()
            .all(|&w| w == 1.0));
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(33);
            for i in 0..c.len() {
                assert!((c[i] - c[c.len() - 1 - i]).abs() < 1e-12, "{w} not symmetric");
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero_hamming_are_not() {
        let hann = Window::Hann.coefficients(32);
        let hamming = Window::Hamming.coefficients(32);
        assert!(hann[0].abs() < 1e-12);
        assert!((hamming[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Blackman.coefficients(1), vec![1.0]);
    }

    #[test]
    fn apply_multiplies_elementwise() {
        let mut frame = vec![2.0; 8];
        Window::Hann.apply(&mut frame);
        let c = Window::Hann.coefficients(8);
        for (f, w) in frame.iter().zip(&c) {
            assert!((f - 2.0 * w).abs() < 1e-12);
        }
    }

    #[test]
    fn coherent_gain_is_mean() {
        let g = Window::Rectangular.coherent_gain(10);
        assert!((g - 1.0).abs() < 1e-12);
        let g = Window::Hann.coherent_gain(4096);
        assert!((g - 0.5).abs() < 1e-3);
    }

    #[test]
    fn peak_is_at_center() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(65);
            let (argmax, _) = c
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap();
            assert_eq!(argmax, 32, "{w}");
        }
    }
}
