//! Minimal complex-number arithmetic used by the FFT.
//!
//! We deliberately avoid an external `num-complex` dependency; the FFT only
//! needs addition, subtraction, multiplication, scaling, conjugation and
//! magnitude.

use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A complex number in Cartesian form, `re + i·im`.
///
/// # Example
///
/// ```
/// use emoleak_dsp::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a + b, Complex::new(4.0, 1.0));
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the unit-magnitude complex number `e^{iθ}`.
    #[inline]
    pub fn from_polar_angle(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Creates a complex number from magnitude and phase.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// The magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared magnitude `|z|²` (cheaper than [`Complex::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }

}

impl Div for Complex {
    type Output = Complex;

    /// Complex division.
    ///
    /// # Panics
    ///
    /// Does not panic, but dividing by a zero denominator yields non-finite
    /// components, matching IEEE-754 semantics.
    #[inline]
    fn div(self, rhs: Complex) -> Self {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl core::fmt::Display for Complex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn addition_and_subtraction_are_componentwise() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert!(close(a + b, Complex::new(-2.0, 2.5)));
        assert!(close(a - b, Complex::new(4.0, 1.5)));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -5.0);
        // (2+3i)(4-5i) = 8 -10i + 12i +15 = 23 + 2i
        assert!(close(a * b, Complex::new(23.0, 2.0)));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, -Complex::ONE));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -5.0);
        let q = (a * b) / b;
        assert!(close(q, a));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        let z = Complex::new(1.5, -2.5);
        assert_eq!(z.conj(), Complex::new(1.5, 2.5));
        // z * conj(z) = |z|^2
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < 1e-12 && p.im.abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign_correctly() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn add_assign_and_mul_assign() {
        let mut z = Complex::ONE;
        z += Complex::I;
        z *= Complex::new(0.0, 1.0);
        assert!(close(z, Complex::new(-1.0, 1.0)));
    }
}
