//! Mel-frequency cepstral coefficients.
//!
//! The audio-domain emotion recognizers the paper compares against
//! (Table VII: Zeeshan et al., Pappagari et al., Gokilavani et al.) are
//! MFCC-based. This module provides the MFCC front end used by the
//! reproduction's audio-domain baseline, implemented from scratch:
//! STFT → mel filterbank → log → DCT-II.

use crate::{fft::next_pow2, window::Window, Fft};
use serde::{Deserialize, Serialize};

/// MFCC extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MfccConfig {
    /// Number of mel filterbank channels.
    pub num_filters: usize,
    /// Number of cepstral coefficients to keep (including C0).
    pub num_coeffs: usize,
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop between frames in samples.
    pub hop: usize,
    /// Lowest filterbank edge in Hz.
    pub low_hz: f64,
    /// Highest filterbank edge in Hz (clamped to Nyquist).
    pub high_hz: f64,
}

impl Default for MfccConfig {
    fn default() -> Self {
        MfccConfig {
            num_filters: 26,
            num_coeffs: 13,
            frame_len: 200, // 25 ms at 8 kHz
            hop: 80,        // 10 ms at 8 kHz
            low_hz: 50.0,
            high_hz: 4000.0,
        }
    }
}

/// Converts Hz to mel (HTK formula).
#[inline]
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mel to Hz (HTK formula).
#[inline]
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// An MFCC extractor for a fixed sampling rate.
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    config: MfccConfig,
    fs: f64,
    fft: Fft,
    window: Vec<f64>,
    /// Triangular filterbank: per filter, (start bin, weights).
    filters: Vec<(usize, Vec<f64>)>,
}

impl MfccExtractor {
    /// Builds the extractor (precomputes the FFT plan and mel filterbank).
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive or the configuration is degenerate
    /// (zero filters/coefficients, `num_coeffs > num_filters`).
    pub fn new(config: MfccConfig, fs: f64) -> Self {
        assert!(fs > 0.0, "sampling rate must be positive");
        assert!(config.num_filters > 0 && config.num_coeffs > 0, "degenerate configuration");
        assert!(
            config.num_coeffs <= config.num_filters,
            "cannot keep more coefficients than filters"
        );
        let n_fft = next_pow2(config.frame_len);
        let fft = Fft::new(n_fft);
        let window = Window::Hamming.coefficients(config.frame_len);
        let bins = n_fft / 2 + 1;
        let high = config.high_hz.min(fs / 2.0);
        let low_mel = hz_to_mel(config.low_hz);
        let high_mel = hz_to_mel(high);
        // Filter edge frequencies, equally spaced in mel.
        let edges: Vec<f64> = (0..config.num_filters + 2)
            .map(|i| {
                let mel = low_mel + (high_mel - low_mel) * i as f64 / (config.num_filters + 1) as f64;
                mel_to_hz(mel)
            })
            .collect();
        let bin_hz = fs / n_fft as f64;
        let mut filters = Vec::with_capacity(config.num_filters);
        for f in 0..config.num_filters {
            let (lo, center, hi) = (edges[f], edges[f + 1], edges[f + 2]);
            let start_bin = (lo / bin_hz).ceil() as usize;
            let end_bin = ((hi / bin_hz).floor() as usize).min(bins - 1);
            let mut weights = Vec::new();
            for k in start_bin..=end_bin {
                let freq = k as f64 * bin_hz;
                let w = if freq <= center {
                    (freq - lo) / (center - lo).max(1e-12)
                } else {
                    (hi - freq) / (hi - center).max(1e-12)
                };
                weights.push(w.max(0.0));
            }
            filters.push((start_bin, weights));
        }
        MfccExtractor { config, fs, fft, window, filters }
    }

    /// The sampling rate this extractor was built for.
    pub fn sample_rate(&self) -> f64 {
        self.fs
    }

    /// MFCCs for one analysis frame (length `config.frame_len`).
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != config.frame_len`.
    pub fn frame_mfcc(&self, frame: &[f64]) -> Vec<f64> {
        assert_eq!(frame.len(), self.config.frame_len, "frame length mismatch");
        let mut windowed = frame.to_vec();
        Window::apply_with(&self.window, &mut windowed);
        let power = self.fft.power_spectrum(&windowed);
        // Mel filterbank energies → log.
        let log_energies: Vec<f64> = self
            .filters
            .iter()
            .map(|(start, weights)| {
                let e: f64 = weights
                    .iter()
                    .enumerate()
                    .map(|(i, w)| w * power.get(start + i).copied().unwrap_or(0.0))
                    .sum();
                e.max(1e-12).ln()
            })
            .collect();
        // DCT-II, orthonormal-ish scaling.
        let m = log_energies.len() as f64;
        (0..self.config.num_coeffs)
            .map(|c| {
                log_energies
                    .iter()
                    .enumerate()
                    .map(|(j, &le)| {
                        le * (std::f64::consts::PI * c as f64 * (j as f64 + 0.5) / m).cos()
                    })
                    .sum::<f64>()
                    * (2.0 / m).sqrt()
            })
            .collect()
    }

    /// Mean and standard deviation of each coefficient over all frames of a
    /// signal — a fixed-length utterance descriptor (`2 × num_coeffs`).
    /// Returns `None` if the signal is shorter than one frame.
    pub fn utterance_descriptor(&self, signal: &[f64]) -> Option<Vec<f64>> {
        let fl = self.config.frame_len;
        if signal.len() < fl {
            return None;
        }
        let frames: Vec<Vec<f64>> = (0..)
            .map(|t| t * self.config.hop)
            .take_while(|start| start + fl <= signal.len())
            .map(|start| self.frame_mfcc(&signal[start..start + fl]))
            .collect();
        let n = frames.len() as f64;
        let c = self.config.num_coeffs;
        let mut out = Vec::with_capacity(2 * c);
        for j in 0..c {
            let mean = frames.iter().map(|f| f[j]).sum::<f64>() / n;
            out.push(mean);
        }
        for j in 0..c {
            let mean = out[j];
            let var = frames.iter().map(|f| (f[j] - mean).powi(2)).sum::<f64>() / n;
            out.push(var.sqrt());
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extractor() -> MfccExtractor {
        MfccExtractor::new(MfccConfig::default(), 8000.0)
    }

    fn tone(freq: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / 8000.0).sin())
            .collect()
    }

    #[test]
    fn mel_scale_round_trips() {
        for hz in [50.0, 300.0, 1000.0, 3999.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 1e-6);
        }
        // 1000 Hz ~ 1000 mel by construction of the HTK formula.
        assert!((hz_to_mel(1000.0) - 999.99).abs() < 0.5);
    }

    #[test]
    fn frame_mfcc_has_requested_length() {
        let ex = extractor();
        let frame = tone(440.0, 200);
        assert_eq!(ex.frame_mfcc(&frame).len(), 13);
    }

    #[test]
    fn different_spectra_give_different_cepstra() {
        let ex = extractor();
        let a = ex.frame_mfcc(&tone(300.0, 200));
        let b = ex.frame_mfcc(&tone(2000.0, 200));
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum();
        assert!(dist > 1.0, "cepstral distance {dist}");
    }

    #[test]
    fn louder_signal_raises_c0_only_roughly() {
        let ex = extractor();
        let quiet = ex.frame_mfcc(&tone(500.0, 200).iter().map(|v| v * 0.1).collect::<Vec<_>>());
        let loud = ex.frame_mfcc(&tone(500.0, 200));
        // C0 tracks log energy; shape coefficients barely move.
        assert!(loud[0] > quiet[0] + 1.0);
        assert!((loud[3] - quiet[3]).abs() < 0.3);
    }

    #[test]
    fn utterance_descriptor_shape_and_short_input() {
        let ex = extractor();
        let d = ex.utterance_descriptor(&tone(440.0, 4000)).unwrap();
        assert_eq!(d.len(), 26);
        assert!(ex.utterance_descriptor(&[0.0; 50]).is_none());
    }

    #[test]
    fn amplitude_modulation_raises_c0_variance() {
        let ex = extractor();
        let stationary = ex.utterance_descriptor(&tone(440.0, 8000)).unwrap();
        // 3 Hz amplitude modulation (syllable-like) makes frame energies —
        // and hence C0 — fluctuate far more than the stationary tone.
        let am: Vec<f64> = tone(440.0, 8000)
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let t = i as f64 / 8000.0;
                v * 0.5 * (1.0 + (2.0 * std::f64::consts::PI * 3.0 * t).sin())
            })
            .collect();
        let modulated = ex.utterance_descriptor(&am).unwrap();
        assert!(
            modulated[13] > 1.5 * stationary[13],
            "AM C0 std {:.2} vs stationary {:.2}",
            modulated[13],
            stationary[13]
        );
    }

    #[test]
    #[should_panic(expected = "frame length")]
    fn wrong_frame_length_panics() {
        extractor().frame_mfcc(&[0.0; 64]);
    }
}
