//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! The EmoLeak pipeline needs spectra of accelerometer frames (a few hundred
//! samples at 200–500 Hz) and of synthesized speech (tens of thousands of
//! samples at 16 kHz). A precomputed-twiddle iterative radix-2 transform is
//! simple, allocation-free per call, and fast enough for both.

use crate::{Complex, DspError};

/// A reusable FFT plan for a fixed power-of-two size.
///
/// Construction precomputes the bit-reversal permutation and twiddle factors;
/// [`Fft::forward`] and [`Fft::inverse`] then run in `O(n log n)` without
/// allocating.
///
/// # Example
///
/// ```
/// use emoleak_dsp::{fft::Fft, Complex};
/// let fft = Fft::new(4);
/// let mut buf = vec![
///     Complex::from_real(1.0),
///     Complex::from_real(2.0),
///     Complex::from_real(3.0),
///     Complex::from_real(4.0),
/// ];
/// fft.forward(&mut buf);
/// assert!((buf[0].re - 10.0).abs() < 1e-12); // DC bin = sum
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fft {
    n: usize,
    rev: Vec<usize>,
    twiddles: Vec<Complex>, // forward twiddles, n/2 entries
}

impl Fft {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two. Use [`Fft::try_new`] for a
    /// fallible variant.
    pub fn new(n: usize) -> Self {
        Self::try_new(n).expect("fft size must be a nonzero power of two")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NonPowerOfTwo`] if `n` is zero or not a power of
    /// two.
    pub fn try_new(n: usize) -> Result<Self, DspError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(DspError::NonPowerOfTwo(n));
        }
        let bits = n.trailing_zeros();
        let rev = (0..n)
            .map(|i| i.reverse_bits() >> (usize::BITS - bits))
            .collect();
        let twiddles = (0..n / 2)
            .map(|k| Complex::from_polar_angle(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Ok(Fft { n, rev, twiddles })
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate length-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a plan always has n >= 1
    }

    /// In-place forward DFT: `X[k] = Σ x[j]·e^{-2πi jk/n}`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the plan length.
    pub fn forward(&self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer length must match plan length");
        self.permute(buf);
        self.butterflies(buf, false);
    }

    /// In-place inverse DFT, normalized by `1/n` so that
    /// `inverse(forward(x)) == x`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the plan length.
    pub fn inverse(&self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer length must match plan length");
        self.permute(buf);
        self.butterflies(buf, true);
        let inv_n = 1.0 / self.n as f64;
        for z in buf.iter_mut() {
            *z = z.scale(inv_n);
        }
    }

    /// Transforms a real signal, returning the `n/2 + 1` non-redundant bins.
    ///
    /// Input shorter than the plan length is zero-padded; longer input is an
    /// error in the caller's logic and panics.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > self.len()`.
    pub fn forward_real(&self, signal: &[f64]) -> Vec<Complex> {
        assert!(
            signal.len() <= self.n,
            "real input ({}) longer than plan ({})",
            signal.len(),
            self.n
        );
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        buf.resize(self.n, Complex::ZERO);
        self.forward(&mut buf);
        buf.truncate(self.n / 2 + 1);
        buf
    }

    /// Power spectrum (`|X[k]|²`) of a real signal over the non-redundant bins.
    pub fn power_spectrum(&self, signal: &[f64]) -> Vec<f64> {
        self.forward_real(signal)
            .into_iter()
            .map(|z| z.norm_sqr())
            .collect()
    }

    /// Allocation-free [`Fft::forward_real`]: transforms in `scratch`
    /// (grown once, then reused) and writes the `n/2 + 1` non-redundant
    /// bins into `out`. Arithmetic is identical to `forward_real`, so the
    /// results are bit-identical; only the buffer ownership differs.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > self.len()`.
    pub fn forward_real_into(
        &self,
        signal: &[f64],
        scratch: &mut Vec<Complex>,
        out: &mut Vec<Complex>,
    ) {
        self.transform_real_into(signal, scratch);
        out.clear();
        out.extend_from_slice(&scratch[..self.n / 2 + 1]);
    }

    /// Allocation-free [`Fft::power_spectrum`]: bit-identical results,
    /// caller-owned buffers.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > self.len()`.
    pub fn power_spectrum_into(
        &self,
        signal: &[f64],
        scratch: &mut Vec<Complex>,
        out: &mut Vec<f64>,
    ) {
        self.transform_real_into(signal, scratch);
        out.clear();
        out.extend(scratch[..self.n / 2 + 1].iter().map(|z| z.norm_sqr()));
    }

    fn transform_real_into(&self, signal: &[f64], scratch: &mut Vec<Complex>) {
        assert!(
            signal.len() <= self.n,
            "real input ({}) longer than plan ({})",
            signal.len(),
            self.n
        );
        scratch.clear();
        scratch.extend(signal.iter().map(|&x| Complex::from_real(x)));
        scratch.resize(self.n, Complex::ZERO);
        self.forward(scratch);
    }

    fn permute(&self, buf: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.rev[i];
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    fn butterflies(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..len / 2 {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + len / 2] * w;
                    buf[start + k] = a + b;
                    buf[start + k + len / 2] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

/// Returns the smallest power of two that is `>= n`.
///
/// # Example
///
/// ```
/// assert_eq!(emoleak_dsp::fft::next_pow2(100), 128);
/// assert_eq!(emoleak_dsp::fft::next_pow2(128), 128);
/// ```
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Frequency in Hz corresponding to FFT bin `k` for a transform of length
/// `n_fft` at sampling rate `fs`.
#[inline]
pub fn bin_frequency(k: usize, n_fft: usize, fs: f64) -> f64 {
    k as f64 * fs / n_fft as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &xj) in x.iter().enumerate() {
                    let w = Complex::from_polar_angle(
                        -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64,
                    );
                    acc += xj * w;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(Fft::try_new(0), Err(DspError::NonPowerOfTwo(0)));
        assert_eq!(Fft::try_new(12), Err(DspError::NonPowerOfTwo(12)));
        assert!(Fft::try_new(16).is_ok());
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 64] {
            let fft = Fft::new(n);
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let expected = naive_dft(&x);
            let mut got = x.clone();
            fft.forward(&mut got);
            for (g, e) in got.iter().zip(&expected) {
                assert!((g.re - e.re).abs() < 1e-9, "n={n}");
                assert!((g.im - e.im).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        let fft = Fft::new(256);
        let x: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64 * 0.11).sin(), (i as f64 * 0.05).cos()))
            .collect();
        let mut buf = x.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn sine_wave_concentrates_in_one_bin() {
        let n = 512;
        let fft = Fft::new(n);
        let k0 = 37;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).sin())
            .collect();
        let p = fft.power_spectrum(&x);
        let peak = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, k0);
        // Energy everywhere else is negligible.
        let total: f64 = p.iter().sum();
        assert!(p[k0] / total > 0.999);
    }

    #[test]
    fn real_input_zero_pads() {
        let fft = Fft::new(8);
        let spec = fft.forward_real(&[1.0, 1.0]);
        assert_eq!(spec.len(), 5);
        assert!((spec[0].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 128;
        let fft = Fft::new(n);
        let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
        fft.forward(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn bin_frequency_maps_linearly() {
        assert_eq!(bin_frequency(0, 256, 500.0), 0.0);
        assert!((bin_frequency(128, 256, 500.0) - 250.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn forward_panics_on_length_mismatch() {
        let fft = Fft::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        fft.forward(&mut buf);
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating_ones() {
        let fft = Fft::new(64);
        let (mut scratch, mut spec, mut power) = (Vec::new(), Vec::new(), Vec::new());
        // Reuse the buffers across differently-sized inputs: stale contents
        // must never leak into a later transform.
        for len in [64usize, 17, 1, 40] {
            let x: Vec<f64> = (0..len).map(|i| ((i * 7) as f64 * 0.13).sin()).collect();
            let want_spec = fft.forward_real(&x);
            fft.forward_real_into(&x, &mut scratch, &mut spec);
            assert_eq!(spec.len(), want_spec.len());
            for (a, b) in spec.iter().zip(&want_spec) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "len={len}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "len={len}");
            }
            let want_power = fft.power_spectrum(&x);
            fft.power_spectrum_into(&x, &mut scratch, &mut power);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&power), bits(&want_power), "len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "longer than plan")]
    fn into_variant_panics_on_oversized_input() {
        let fft = Fft::new(8);
        fft.power_spectrum_into(&[0.0; 9], &mut Vec::new(), &mut Vec::new());
    }
}
