//! Sample-rate conversion.
//!
//! Two uses in the reproduction:
//!
//! 1. The accelerometer samples the continuous chassis vibration at a
//!    device-specific rate (~400–500 Hz); we model that by decimating a
//!    high-rate simulation.
//! 2. Android 12's 200 Hz cap (§VI-A) is modeled by resampling recorded
//!    traces down to 200 Hz.
//!
//! Decimation deliberately supports an *unfiltered* mode because sensor
//! subsampling aliases — and that aliasing is part of the physical channel
//! EmoLeak exploits (speech energy above Nyquist folds into the accelerometer
//! band).

use crate::filter::{ButterworthDesign, FilterKind};
use crate::DspError;

/// Decimates `x` by integer factor `m`, keeping every m-th sample with **no**
/// anti-alias filter (models raw sensor subsampling where out-of-band energy
/// folds in).
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn decimate_aliasing(x: &[f64], m: usize) -> Vec<f64> {
    assert!(m > 0, "decimation factor must be positive");
    x.iter().step_by(m).copied().collect()
}

/// Decimates by integer factor `m` after an 8th-order Butterworth anti-alias
/// low-pass at 80 % of the output Nyquist.
///
/// # Errors
///
/// Returns an error if `m` is zero (as `InvalidParameter`) or the implied
/// cutoff is invalid.
pub fn decimate_filtered(x: &[f64], m: usize, fs_in: f64) -> Result<Vec<f64>, DspError> {
    if m == 0 {
        return Err(DspError::InvalidParameter("decimation factor must be positive".into()));
    }
    if m == 1 {
        return Ok(x.to_vec());
    }
    let cutoff = 0.8 * (fs_in / (2.0 * m as f64));
    let lp = ButterworthDesign::new(FilterKind::LowPass, 8, cutoff, fs_in)?.build();
    let filtered = lp.process(x);
    Ok(decimate_aliasing(&filtered, m))
}

/// Linear-interpolation resampling from `fs_in` to `fs_out` Hz (arbitrary
/// ratio). Used for the Android 200 Hz cap where the ratio is non-integer.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if either rate is non-positive, and
/// [`DspError::EmptyInput`] if `x` is empty.
pub fn resample_linear(x: &[f64], fs_in: f64, fs_out: f64) -> Result<Vec<f64>, DspError> {
    if !(fs_in > 0.0) || !(fs_out > 0.0) {
        return Err(DspError::InvalidParameter(format!(
            "sampling rates must be positive (got {fs_in} -> {fs_out})"
        )));
    }
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let duration = (x.len() - 1) as f64 / fs_in;
    let n_out = (duration * fs_out).floor() as usize + 1;
    let out = (0..n_out)
        .map(|i| {
            let t = i as f64 / fs_out;
            let pos = t * fs_in;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(x.len() - 1);
            let w = pos - lo as f64;
            x[lo] * (1.0 - w) + x[hi] * w
        })
        .collect();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn decimate_keeps_every_mth() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(decimate_aliasing(&x, 3), vec![0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn aliasing_folds_high_frequency() {
        // 180 Hz tone sampled at 400 Hz then decimated by 2 (fs=200, Nyquist
        // 100) aliases to 200-180=20 Hz.
        let fs = 400.0;
        let x = tone(180.0, fs, 10000);
        let y = decimate_aliasing(&x, 2);
        let fft = crate::Fft::new(4096);
        let p = fft.power_spectrum(&y[..4096]);
        let peak = p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let freq = peak as f64 * 200.0 / 4096.0;
        assert!((freq - 20.0).abs() < 1.0, "aliased peak at {freq} Hz");
    }

    #[test]
    fn filtered_decimation_suppresses_fold_in() {
        let fs = 400.0;
        let x = tone(180.0, fs, 16000);
        let y = decimate_filtered(&x, 2, fs).unwrap();
        let tail = &y[y.len() - 4096..];
        let energy: f64 = tail.iter().map(|v| v * v).sum::<f64>() / tail.len() as f64;
        assert!(energy < 1e-4, "leakage energy {energy}");
    }

    #[test]
    fn linear_resample_preserves_low_frequency_tone() {
        let fs_in = 420.0;
        let fs_out = 200.0;
        let x = tone(15.0, fs_in, 4200);
        let y = resample_linear(&x, fs_in, fs_out).unwrap();
        // Expected length ~ duration * fs_out.
        let expected = ((x.len() - 1) as f64 / fs_in * fs_out) as usize + 1;
        assert_eq!(y.len(), expected);
        let fft = crate::Fft::new(1024);
        let p = fft.power_spectrum(&y[..1024]);
        let peak = p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let freq = peak as f64 * fs_out / 1024.0;
        assert!((freq - 15.0).abs() < 0.5, "peak at {freq}");
    }

    #[test]
    fn resample_identity_ratio() {
        let x = tone(10.0, 100.0, 500);
        let y = resample_linear(&x, 100.0, 100.0).unwrap();
        assert_eq!(y.len(), x.len());
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(resample_linear(&[], 100.0, 50.0).is_err());
        assert!(resample_linear(&[1.0], -1.0, 50.0).is_err());
        assert!(decimate_filtered(&[1.0, 2.0], 0, 100.0).is_err());
    }
}
