//! Sample-rate conversion.
//!
//! Two uses in the reproduction:
//!
//! 1. The accelerometer samples the continuous chassis vibration at a
//!    device-specific rate (~400–500 Hz); we model that by decimating a
//!    high-rate simulation.
//! 2. Android 12's 200 Hz cap (§VI-A) is modeled by resampling recorded
//!    traces down to 200 Hz.
//!
//! Decimation deliberately supports an *unfiltered* mode because sensor
//! subsampling aliases — and that aliasing is part of the physical channel
//! EmoLeak exploits (speech energy above Nyquist folds into the accelerometer
//! band).

use crate::filter::{ButterworthDesign, FilterKind};
use crate::DspError;

/// Decimates `x` by integer factor `m`, keeping every m-th sample with **no**
/// anti-alias filter (models raw sensor subsampling where out-of-band energy
/// folds in).
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn decimate_aliasing(x: &[f64], m: usize) -> Vec<f64> {
    assert!(m > 0, "decimation factor must be positive");
    x.iter().step_by(m).copied().collect()
}

/// Decimates by integer factor `m` after an 8th-order Butterworth anti-alias
/// low-pass at 80 % of the output Nyquist.
///
/// # Errors
///
/// Returns an error if `m` is zero (as `InvalidParameter`) or the implied
/// cutoff is invalid.
pub fn decimate_filtered(x: &[f64], m: usize, fs_in: f64) -> Result<Vec<f64>, DspError> {
    if m == 0 {
        return Err(DspError::InvalidParameter("decimation factor must be positive".into()));
    }
    if m == 1 {
        return Ok(x.to_vec());
    }
    let cutoff = 0.8 * (fs_in / (2.0 * m as f64));
    let lp = ButterworthDesign::new(FilterKind::LowPass, 8, cutoff, fs_in)?.build();
    let filtered = lp.process(x);
    Ok(decimate_aliasing(&filtered, m))
}

/// Linear-interpolation resampling from `fs_in` to `fs_out` Hz (arbitrary
/// ratio). Used for the Android 200 Hz cap where the ratio is non-integer.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if either rate is non-positive, and
/// [`DspError::EmptyInput`] if `x` is empty.
pub fn resample_linear(x: &[f64], fs_in: f64, fs_out: f64) -> Result<Vec<f64>, DspError> {
    if fs_in.is_nan() || fs_in <= 0.0 || fs_out.is_nan() || fs_out <= 0.0 {
        return Err(DspError::InvalidParameter(format!(
            "sampling rates must be positive (got {fs_in} -> {fs_out})"
        )));
    }
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let duration = (x.len() - 1) as f64 / fs_in;
    let n_out = (duration * fs_out).floor() as usize + 1;
    let out = (0..n_out)
        .map(|i| {
            let t = i as f64 / fs_out;
            let pos = t * fs_in;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(x.len() - 1);
            let w = pos - lo as f64;
            x[lo] * (1.0 - w) + x[hi] * w
        })
        .collect();
    Ok(out)
}

/// Gap-aware resampling of an *irregularly timestamped* series onto a uniform
/// `fs_out` grid covering `[t[0], t[last]]`.
///
/// Real sensor logs are irregular: delivery jitter perturbs timestamps and
/// dropped events / doze blackouts leave holes. Each output grid point is
/// linearly interpolated between its two bracketing input samples — unless
/// the bracketing samples are more than `max_gap_s` apart, in which case the
/// sensor was not delivering and the output is filled with `0.0` (the sensor
/// rest level after DC removal) rather than a long interpolation ramp that
/// would smear spurious low-frequency energy across the blackout.
///
/// Timestamps must be non-decreasing (as produced by a sensor event log).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the series is empty,
/// [`DspError::InvalidParameter`] if `fs_out` is non-positive, the slice
/// lengths differ, or the timestamps are not sorted.
pub fn resample_irregular(
    t: &[f64],
    x: &[f64],
    fs_out: f64,
    max_gap_s: f64,
) -> Result<Vec<f64>, DspError> {
    if fs_out.is_nan() || fs_out <= 0.0 {
        return Err(DspError::InvalidParameter(format!(
            "output rate must be positive (got {fs_out})"
        )));
    }
    if t.len() != x.len() {
        return Err(DspError::InvalidParameter(format!(
            "timestamp/sample length mismatch ({} vs {})",
            t.len(),
            x.len()
        )));
    }
    if t.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if t.windows(2).any(|w| w[1] < w[0]) {
        return Err(DspError::InvalidParameter("timestamps must be non-decreasing".into()));
    }
    let t0 = t[0];
    let duration = t[t.len() - 1] - t0;
    let n_out = (duration * fs_out).floor() as usize + 1;
    let mut out = Vec::with_capacity(n_out);
    // `hi` walks forward monotonically: total work is O(n_in + n_out).
    let mut hi = 0usize;
    for i in 0..n_out {
        let tq = t0 + i as f64 / fs_out;
        while hi < t.len() && t[hi] < tq {
            hi += 1;
        }
        let v = if hi == 0 {
            x[0]
        } else if hi == t.len() {
            x[x.len() - 1]
        } else {
            let (ta, tb) = (t[hi - 1], t[hi]);
            if tb - ta > max_gap_s {
                0.0 // delivery blackout: rest level, not an interpolation ramp
            } else if tb - ta <= f64::EPSILON {
                x[hi]
            } else {
                let w = (tq - ta) / (tb - ta);
                x[hi - 1] * (1.0 - w) + x[hi] * w
            }
        };
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn decimate_keeps_every_mth() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(decimate_aliasing(&x, 3), vec![0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn aliasing_folds_high_frequency() {
        // 180 Hz tone sampled at 400 Hz then decimated by 2 (fs=200, Nyquist
        // 100) aliases to 200-180=20 Hz.
        let fs = 400.0;
        let x = tone(180.0, fs, 10000);
        let y = decimate_aliasing(&x, 2);
        let fft = crate::Fft::new(4096);
        let p = fft.power_spectrum(&y[..4096]);
        let peak = p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let freq = peak as f64 * 200.0 / 4096.0;
        assert!((freq - 20.0).abs() < 1.0, "aliased peak at {freq} Hz");
    }

    #[test]
    fn filtered_decimation_suppresses_fold_in() {
        let fs = 400.0;
        let x = tone(180.0, fs, 16000);
        let y = decimate_filtered(&x, 2, fs).unwrap();
        let tail = &y[y.len() - 4096..];
        let energy: f64 = tail.iter().map(|v| v * v).sum::<f64>() / tail.len() as f64;
        assert!(energy < 1e-4, "leakage energy {energy}");
    }

    #[test]
    fn linear_resample_preserves_low_frequency_tone() {
        let fs_in = 420.0;
        let fs_out = 200.0;
        let x = tone(15.0, fs_in, 4200);
        let y = resample_linear(&x, fs_in, fs_out).unwrap();
        // Expected length ~ duration * fs_out.
        let expected = ((x.len() - 1) as f64 / fs_in * fs_out) as usize + 1;
        assert_eq!(y.len(), expected);
        let fft = crate::Fft::new(1024);
        let p = fft.power_spectrum(&y[..1024]);
        let peak = p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let freq = peak as f64 * fs_out / 1024.0;
        assert!((freq - 15.0).abs() < 0.5, "peak at {freq}");
    }

    #[test]
    fn resample_identity_ratio() {
        let x = tone(10.0, 100.0, 500);
        let y = resample_linear(&x, 100.0, 100.0).unwrap();
        assert_eq!(y.len(), x.len());
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(resample_linear(&[], 100.0, 50.0).is_err());
        assert!(resample_linear(&[1.0], -1.0, 50.0).is_err());
        assert!(decimate_filtered(&[1.0, 2.0], 0, 100.0).is_err());
    }

    #[test]
    fn irregular_on_regular_grid_is_identity() {
        let fs = 100.0;
        let x = tone(7.0, fs, 500);
        let t: Vec<f64> = (0..500).map(|i| i as f64 / fs).collect();
        let y = resample_irregular(&t, &x, fs, 0.1).unwrap();
        assert_eq!(y.len(), x.len());
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn irregular_recovers_tone_from_jittered_timestamps() {
        let fs = 400.0;
        let n = 4096;
        // Jittered sample instants, still sorted.
        let t: Vec<f64> = (0..n)
            .map(|i| i as f64 / fs + 1e-4 * ((i as u64 * 2654435761) % 97) as f64 / 97.0)
            .collect();
        let x: Vec<f64> =
            t.iter().map(|&ti| (2.0 * std::f64::consts::PI * 20.0 * ti).sin()).collect();
        let y = resample_irregular(&t, &x, fs, 0.1).unwrap();
        let fft = crate::Fft::new(2048);
        let p = fft.power_spectrum(&y[..2048]);
        let peak = p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let freq = peak as f64 * fs / 2048.0;
        assert!((freq - 20.0).abs() < 0.5, "peak at {freq}");
    }

    #[test]
    fn wide_gaps_fill_with_rest_level() {
        // Two bursts of samples separated by a 1 s hole; max_gap 50 ms.
        let fs = 100.0;
        let mut t = Vec::new();
        let mut x = Vec::new();
        for i in 0..50 {
            t.push(i as f64 / fs);
            x.push(1.0);
        }
        for i in 0..50 {
            t.push(1.5 + i as f64 / fs);
            x.push(1.0);
        }
        let y = resample_irregular(&t, &x, fs, 0.05).unwrap();
        // Grid points inside the hole (0.5 .. 1.5 s) are zero-filled.
        let hole: Vec<f64> = y
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let tq = *i as f64 / fs;
                tq > 0.55 && tq < 1.45
            })
            .map(|(_, &v)| v)
            .collect();
        assert!(!hole.is_empty());
        assert!(hole.iter().all(|&v| v == 0.0), "hole not rest-filled");
        assert!((y[10] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn irregular_rejects_bad_input() {
        assert!(resample_irregular(&[], &[], 100.0, 0.1).is_err());
        assert!(resample_irregular(&[0.0, 1.0], &[1.0], 100.0, 0.1).is_err());
        assert!(resample_irregular(&[1.0, 0.5], &[1.0, 2.0], 100.0, 0.1).is_err());
        assert!(resample_irregular(&[0.0, 1.0], &[1.0, 2.0], 0.0, 0.1).is_err());
    }

    #[test]
    fn irregular_single_sample_yields_single_output() {
        let y = resample_irregular(&[3.0], &[0.7], 100.0, 0.1).unwrap();
        assert_eq!(y, vec![0.7]);
    }

    #[test]
    fn linear_single_sample_yields_single_output() {
        // Zero duration collapses to one grid point regardless of the ratio.
        let y = resample_linear(&[0.42], 100.0, 250.0).unwrap();
        assert_eq!(y, vec![0.42]);
        let y = resample_linear(&[0.42], 100.0, 7.0).unwrap();
        assert_eq!(y, vec![0.42]);
    }

    #[test]
    fn decimate_handles_empty_and_oversized_factors() {
        assert!(decimate_aliasing(&[], 3).is_empty());
        assert_eq!(decimate_aliasing(&[1.0], 5), vec![1.0]);
        // A factor larger than the signal keeps only the first sample.
        assert_eq!(decimate_aliasing(&[1.0, 2.0, 3.0], 10), vec![1.0]);
        // Unit factor is the identity.
        assert_eq!(decimate_aliasing(&[1.0, 2.0], 1), vec![1.0, 2.0]);
    }

    #[test]
    fn upsampling_preserves_endpoints_and_midpoints() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = resample_linear(&x, 100.0, 200.0).unwrap();
        assert_eq!(y.len(), 7);
        assert!((y[0]).abs() < 1e-12);
        assert!((y[6] - 3.0).abs() < 1e-12, "tail sample lands on the last input");
        assert!((y[1] - 0.5).abs() < 1e-12, "odd grid points interpolate halfway");
    }
}
