//! # emoleak-dsp
//!
//! Pure-Rust signal-processing substrate for the EmoLeak reproduction.
//!
//! The EmoLeak attack pipeline (speech playback → chassis vibration →
//! accelerometer trace → features → classifier) rests on a handful of DSP
//! primitives that the original authors got from MATLAB. This crate
//! reimplements all of them from scratch:
//!
//! - [`fft`] — iterative radix-2 complex FFT / inverse FFT and a real-input
//!   spectrum helper,
//! - [`stft`] — short-time Fourier transform and power spectrograms (Figures
//!   2–4 of the paper),
//! - [`filter`] — biquad sections and Butterworth high/low-pass designs (the
//!   paper's 1 Hz and 8 Hz high-pass filters),
//! - [`window`] — Hann / Hamming / Blackman / rectangular analysis windows,
//! - [`resample`] — decimation used to model Android's 200 Hz sampling cap,
//! - [`stats`] — the moment/quantile statistics behind the Table II features,
//! - [`envelope`] — RMS and moving-average envelopes used by speech-region
//!   detection.
//!
//! # Example
//!
//! ```
//! use emoleak_dsp::{fft::Fft, window::Window};
//!
//! let fft = Fft::new(8);
//! let spectrum = fft.forward_real(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
//! // An impulse has a flat magnitude spectrum.
//! for bin in &spectrum {
//!     assert!((bin.abs() - 1.0).abs() < 1e-9);
//! }
//! let w = Window::Hann.coefficients(8);
//! assert_eq!(w.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod envelope;
pub mod noise;
pub mod fft;
pub mod filter;
pub mod mfcc;
pub mod resample;
pub mod stats;
pub mod stft;
pub mod window;

pub use complex::Complex;
pub use fft::Fft;
pub use filter::{Biquad, ButterworthDesign, FilterCascade};
pub use stft::{Spectrogram, StftConfig};
pub use window::Window;

/// Errors produced by the DSP layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// An FFT size that is not a power of two was requested.
    NonPowerOfTwo(usize),
    /// The input was empty where a non-empty signal is required.
    EmptyInput,
    /// A filter design parameter was out of range (e.g. cutoff ≥ Nyquist).
    InvalidParameter(String),
}

impl core::fmt::Display for DspError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DspError::NonPowerOfTwo(n) => write!(f, "fft size {n} is not a power of two"),
            DspError::EmptyInput => write!(f, "input signal is empty"),
            DspError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DspError {}
