//! IIR filters: biquad sections and Butterworth designs.
//!
//! EmoLeak uses two high-pass filters:
//!
//! - an **8 Hz high-pass** applied to handheld accelerometer traces *only* for
//!   speech-region detection (§III-B.2, Figure 4b),
//! - a **1 Hz high-pass** studied in the Table I ablation, which destroys the
//!   information gain of the time-domain statistics.
//!
//! Both are realized here as cascaded Butterworth biquad sections, applied
//! either causally ([`FilterCascade::process`]) or zero-phase
//! ([`FilterCascade::filtfilt`], forward-backward like MATLAB's `filtfilt`).

use crate::DspError;
use serde::{Deserialize, Serialize};

/// A single second-order IIR section in direct form II transposed.
///
/// Transfer function: `H(z) = (b0 + b1·z⁻¹ + b2·z⁻²) / (1 + a1·z⁻¹ + a2·z⁻²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Biquad {
    /// Numerator coefficients.
    pub b: [f64; 3],
    /// Denominator coefficients `a1`, `a2` (with `a0` normalized to 1).
    pub a: [f64; 2],
}

impl Biquad {
    /// An identity (pass-through) section.
    pub const IDENTITY: Biquad = Biquad { b: [1.0, 0.0, 0.0], a: [0.0, 0.0] };

    /// Creates a section from raw coefficients with `a0` already normalized
    /// to one.
    pub fn new(b: [f64; 3], a: [f64; 2]) -> Self {
        Biquad { b, a }
    }

    /// Filters `input` into a freshly allocated output vector (causal, zero
    /// initial state).
    pub fn process(&self, input: &[f64]) -> Vec<f64> {
        let mut state = BiquadState::default();
        input.iter().map(|&x| state.step(self, x)).collect()
    }

    /// The magnitude response `|H(e^{jω})|` at normalized angular frequency
    /// `omega` (radians/sample).
    pub fn magnitude_at(&self, omega: f64) -> f64 {
        use crate::Complex;
        let z1 = Complex::from_polar_angle(-omega);
        let z2 = z1 * z1;
        let num = Complex::from_real(self.b[0])
            + z1.scale(self.b[1])
            + z2.scale(self.b[2]);
        let den = Complex::ONE + z1.scale(self.a[0]) + z2.scale(self.a[1]);
        (num / den).abs()
    }
}

/// Running state for streaming application of a [`Biquad`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BiquadState {
    s1: f64,
    s2: f64,
}

impl BiquadState {
    /// Advances the filter by one sample (direct form II transposed).
    #[inline]
    pub fn step(&mut self, c: &Biquad, x: f64) -> f64 {
        let y = c.b[0] * x + self.s1;
        self.s1 = c.b[1] * x - c.a[0] * y + self.s2;
        self.s2 = c.b[2] * x - c.a[1] * y;
        y
    }
}

/// The filter type for Butterworth design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterKind {
    /// Passes frequencies below the cutoff.
    LowPass,
    /// Passes frequencies above the cutoff.
    HighPass,
}

/// A Butterworth filter design: maximally flat passband, specified by kind,
/// order, cutoff, and sampling rate.
///
/// # Example
///
/// Designing the paper's 8 Hz high-pass at a 420 Hz accelerometer rate:
///
/// ```
/// use emoleak_dsp::filter::{ButterworthDesign, FilterKind};
/// let hp = ButterworthDesign::new(FilterKind::HighPass, 4, 8.0, 420.0)
///     .unwrap()
///     .build();
/// // DC is blocked, high band passes:
/// assert!(hp.magnitude_at_hz(0.5, 420.0) < 0.01);
/// assert!(hp.magnitude_at_hz(50.0, 420.0) > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ButterworthDesign {
    kind: FilterKind,
    order: usize,
    cutoff_hz: f64,
    fs: f64,
}

impl ButterworthDesign {
    /// Creates a design after validating parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the order is zero, the cutoff
    /// is not strictly between 0 and the Nyquist frequency, or the sampling
    /// rate is not positive.
    pub fn new(kind: FilterKind, order: usize, cutoff_hz: f64, fs: f64) -> Result<Self, DspError> {
        if order == 0 {
            return Err(DspError::InvalidParameter("order must be >= 1".into()));
        }
        if fs.is_nan() || fs <= 0.0 {
            return Err(DspError::InvalidParameter(format!(
                "sampling rate must be positive, got {fs}"
            )));
        }
        if !(cutoff_hz > 0.0 && cutoff_hz < fs / 2.0) {
            return Err(DspError::InvalidParameter(format!(
                "cutoff {cutoff_hz} Hz must lie in (0, {}) Hz",
                fs / 2.0
            )));
        }
        Ok(ButterworthDesign { kind, order, cutoff_hz, fs })
    }

    /// Builds the cascade of biquad sections realizing this design via the
    /// bilinear transform with frequency pre-warping.
    pub fn build(self) -> FilterCascade {
        // Pre-warped analog cutoff.
        let warped = (std::f64::consts::PI * self.cutoff_hz / self.fs).tan();
        let mut sections = Vec::new();
        let n = self.order;
        let n_pairs = n / 2;
        // Conjugate pole pairs of the analog Butterworth prototype.
        for k in 0..n_pairs {
            let theta = std::f64::consts::PI * (2.0 * k as f64 + 1.0) / (2.0 * n as f64)
                + std::f64::consts::FRAC_PI_2;
            // Pole at e^{jθ}: s² − 2·cosθ·s + 1 (unit analog prototype).
            let q = -1.0 / (2.0 * theta.cos());
            sections.push(self.bilinear_section(warped, q));
        }
        if n % 2 == 1 {
            sections.push(self.bilinear_first_order(warped));
        }
        FilterCascade { sections }
    }

    /// Bilinear transform of a second-order prototype section with quality
    /// factor `q`, low-pass or high-pass at pre-warped cutoff `w`.
    fn bilinear_section(&self, w: f64, q: f64) -> Biquad {
        let w2 = w * w;
        match self.kind {
            FilterKind::LowPass => {
                let norm = 1.0 / (1.0 + w / q + w2);
                Biquad {
                    b: [w2 * norm, 2.0 * w2 * norm, w2 * norm],
                    a: [2.0 * (w2 - 1.0) * norm, (1.0 - w / q + w2) * norm],
                }
            }
            FilterKind::HighPass => {
                let norm = 1.0 / (1.0 + w / q + w2);
                Biquad {
                    b: [norm, -2.0 * norm, norm],
                    a: [2.0 * (w2 - 1.0) * norm, (1.0 - w / q + w2) * norm],
                }
            }
        }
    }

    fn bilinear_first_order(&self, w: f64) -> Biquad {
        let norm = 1.0 / (1.0 + w);
        match self.kind {
            FilterKind::LowPass => Biquad {
                b: [w * norm, w * norm, 0.0],
                a: [(w - 1.0) * norm, 0.0],
            },
            FilterKind::HighPass => Biquad {
                b: [norm, -norm, 0.0],
                a: [(w - 1.0) * norm, 0.0],
            },
        }
    }
}

/// A cascade of biquad sections applied in series.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FilterCascade {
    sections: Vec<Biquad>,
}

impl FilterCascade {
    /// Creates a cascade from explicit sections.
    pub fn from_sections(sections: Vec<Biquad>) -> Self {
        FilterCascade { sections }
    }

    /// The number of biquad sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Returns `true` if the cascade has no sections (identity filter).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Causal filtering with zero initial conditions.
    pub fn process(&self, input: &[f64]) -> Vec<f64> {
        let mut out = input.to_vec();
        for s in &self.sections {
            out = s.process(&out);
        }
        out
    }

    /// Zero-phase forward–backward filtering (like MATLAB `filtfilt`): the
    /// signal is filtered, reversed, filtered again and reversed back, which
    /// squares the magnitude response and cancels phase distortion.
    pub fn filtfilt(&self, input: &[f64]) -> Vec<f64> {
        let mut out = self.process(input);
        out.reverse();
        out = self.process(&out);
        out.reverse();
        out
    }

    /// Magnitude response at `freq_hz` for a sampling rate of `fs`.
    pub fn magnitude_at_hz(&self, freq_hz: f64, fs: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * freq_hz / fs;
        self.sections
            .iter()
            .map(|s| s.magnitude_at(omega))
            .product()
    }
}

/// Convenience: the paper's 8 Hz high-pass used for handheld region detection.
///
/// # Errors
///
/// Returns an error if `fs <= 16 Hz` (cutoff would exceed Nyquist).
pub fn earpiece_region_highpass(fs: f64) -> Result<FilterCascade, DspError> {
    Ok(ButterworthDesign::new(FilterKind::HighPass, 4, 8.0, fs)?.build())
}

/// Convenience: the 1 Hz high-pass of the Table I information-gain ablation.
///
/// # Errors
///
/// Returns an error if `fs <= 2 Hz`.
pub fn ablation_1hz_highpass(fs: f64) -> Result<FilterCascade, DspError> {
    Ok(ButterworthDesign::new(FilterKind::HighPass, 4, 1.0, fs)?.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn design_rejects_bad_parameters() {
        assert!(ButterworthDesign::new(FilterKind::LowPass, 0, 10.0, 100.0).is_err());
        assert!(ButterworthDesign::new(FilterKind::LowPass, 2, 60.0, 100.0).is_err());
        assert!(ButterworthDesign::new(FilterKind::LowPass, 2, -1.0, 100.0).is_err());
        assert!(ButterworthDesign::new(FilterKind::LowPass, 2, 10.0, 0.0).is_err());
        assert!(ButterworthDesign::new(FilterKind::LowPass, 2, 10.0, 100.0).is_ok());
    }

    #[test]
    fn lowpass_attenuates_high_frequency() {
        let fs = 500.0;
        let lp = ButterworthDesign::new(FilterKind::LowPass, 4, 20.0, fs)
            .unwrap()
            .build();
        let low = lp.process(&sine(5.0, fs, 4000));
        let high = lp.process(&sine(150.0, fs, 4000));
        // Skip transient.
        assert!(rms(&low[1000..]) > 0.65);
        assert!(rms(&high[1000..]) < 0.01);
    }

    #[test]
    fn highpass_blocks_dc_and_slow_drift() {
        let fs = 420.0;
        let hp = earpiece_region_highpass(fs).unwrap();
        let dc = vec![1.0; 4000];
        let out = hp.process(&dc);
        assert!(rms(&out[2000..]) < 1e-4);
        // 0.5 Hz drift (hand movement band) strongly attenuated, 50 Hz passes.
        let drift = hp.process(&sine(0.5, fs, 8000));
        let speech = hp.process(&sine(50.0, fs, 8000));
        assert!(rms(&drift[4000..]) < 0.02);
        assert!(rms(&speech[4000..]) > 0.68);
    }

    #[test]
    fn magnitude_response_half_power_at_cutoff() {
        let fs = 1000.0;
        for order in [2usize, 3, 4, 5] {
            let lp = ButterworthDesign::new(FilterKind::LowPass, order, 100.0, fs)
                .unwrap()
                .build();
            let m = lp.magnitude_at_hz(100.0, fs);
            assert!(
                (m - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6,
                "order {order}: |H(fc)| = {m}"
            );
        }
    }

    #[test]
    fn butterworth_is_monotone() {
        let fs = 1000.0;
        let lp = ButterworthDesign::new(FilterKind::LowPass, 4, 100.0, fs)
            .unwrap()
            .build();
        let mut prev = f64::INFINITY;
        for k in 1..100 {
            let f = k as f64 * 5.0;
            let m = lp.magnitude_at_hz(f, fs);
            assert!(m <= prev + 1e-9, "response not monotone at {f} Hz");
            prev = m;
        }
    }

    #[test]
    fn filtfilt_preserves_peak_position() {
        let fs = 500.0;
        // Impulse-like bump at sample 2000.
        let mut x = vec![0.0; 4000];
        for (i, v) in x.iter_mut().enumerate().take(2020).skip(1980) {
            let t = (i as f64 - 2000.0) / 10.0;
            *v = (-t * t).exp();
        }
        let lp = ButterworthDesign::new(FilterKind::LowPass, 4, 30.0, fs)
            .unwrap()
            .build();
        let causal = lp.process(&x);
        let zero_phase = lp.filtfilt(&x);
        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0 as i64
        };
        // Causal filtering delays the peak; filtfilt does not.
        assert!(argmax(&causal) > 2000);
        assert!((argmax(&zero_phase) - 2000).abs() <= 2);
    }

    #[test]
    fn identity_biquad_passes_through() {
        let x = sine(10.0, 100.0, 64);
        let y = Biquad::IDENTITY.process(&x);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn odd_order_has_first_order_section() {
        let lp = ButterworthDesign::new(FilterKind::LowPass, 5, 50.0, 500.0)
            .unwrap()
            .build();
        assert_eq!(lp.len(), 3); // 2 biquads + 1 first-order
    }

    #[test]
    fn ablation_filter_kills_sub_hertz_content() {
        let fs = 420.0;
        let hp = ablation_1hz_highpass(fs).unwrap();
        let slow = hp.process(&sine(0.1, fs, 42000));
        assert!(rms(&slow[21000..]) < 0.06);
        let fast = hp.process(&sine(30.0, fs, 42000));
        assert!(rms(&fast[21000..]) > 0.69);
    }
}
