//! Amplitude envelopes used by speech-region detection.
//!
//! Speech regions in an accelerometer trace show as energy bursts
//! (Figure 4c); the detector thresholds a short-window RMS envelope.

/// Sliding-window RMS envelope: `out[i]` is the RMS of the window of
/// `win` samples centered at `i` (clamped at the edges).
///
/// # Panics
///
/// Panics if `win` is zero.
pub fn rms_envelope(x: &[f64], win: usize) -> Vec<f64> {
    assert!(win > 0, "window must be positive");
    if x.is_empty() {
        return Vec::new();
    }
    // Prefix sums of squares for O(n) evaluation.
    let mut prefix = Vec::with_capacity(x.len() + 1);
    prefix.push(0.0);
    for &v in x {
        prefix.push(prefix.last().unwrap() + v * v);
    }
    let half = win / 2;
    (0..x.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(x.len());
            ((prefix[hi] - prefix[lo]) / (hi - lo) as f64).sqrt()
        })
        .collect()
}

/// Simple moving average with edge clamping.
///
/// # Panics
///
/// Panics if `win` is zero.
pub fn moving_average(x: &[f64], win: usize) -> Vec<f64> {
    assert!(win > 0, "window must be positive");
    if x.is_empty() {
        return Vec::new();
    }
    let mut prefix = Vec::with_capacity(x.len() + 1);
    prefix.push(0.0);
    for &v in x {
        prefix.push(prefix.last().unwrap() + v);
    }
    let half = win / 2;
    (0..x.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(x.len());
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect()
}

/// Peak (max-abs) envelope over a sliding window.
///
/// # Panics
///
/// Panics if `win` is zero.
pub fn peak_envelope(x: &[f64], win: usize) -> Vec<f64> {
    assert!(win > 0, "window must be positive");
    let half = win / 2;
    (0..x.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(x.len());
            x[lo..hi].iter().fold(0.0f64, |a, &b| a.max(b.abs()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_envelope_of_constant_is_constant() {
        let e = rms_envelope(&[2.0; 100], 9);
        assert!(e.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn rms_envelope_tracks_burst() {
        let mut x = vec![0.0; 300];
        for (i, v) in x.iter_mut().enumerate().take(200).skip(100) {
            *v = if i.is_multiple_of(2) { 1.0 } else { -1.0 };
        }
        let e = rms_envelope(&x, 21);
        assert!(e[150] > 0.9);
        assert!(e[20] < 1e-12);
        assert!(e[280] < 1e-12);
    }

    #[test]
    fn moving_average_smooths() {
        let x = [0.0, 10.0, 0.0, 10.0, 0.0];
        let m = moving_average(&x, 5);
        assert!((m[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn peak_envelope_holds_maximum() {
        let x = [0.0, -5.0, 0.0, 0.0, 0.0];
        let p = peak_envelope(&x, 3);
        assert_eq!(p[0], 5.0);
        assert_eq!(p[1], 5.0);
        assert_eq!(p[2], 5.0);
        assert_eq!(p[3], 0.0);
    }

    #[test]
    fn empty_inputs_yield_empty() {
        assert!(rms_envelope(&[], 5).is_empty());
        assert!(moving_average(&[], 5).is_empty());
        assert!(peak_envelope(&[], 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        rms_envelope(&[1.0], 0);
    }
}
