//! Property tests locking down the DSP substrate the parallel harvest
//! leans on: FFT round-trip exactness, STFT Parseval energy conservation,
//! and the gap-aware resampler's invariants on irregular, hole-ridden
//! sensor timelines.
//!
//! These properties are what make the deterministic-parallelism contract
//! meaningful: every parallel harvest worker runs this arithmetic, so any
//! input-dependent instability here would masquerade as a scheduling bug.

use emoleak_dsp::fft::Fft;
use emoleak_dsp::resample::{resample_irregular, resample_linear};
use emoleak_dsp::stft::StftConfig;
use emoleak_dsp::window::Window;
use emoleak_dsp::{Complex, DspError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `inverse(forward(x)) == x` within 1e-9 for every length in the plan
    /// family the pipeline uses (region FFTs are 64–1024 points).
    #[test]
    fn fft_ifft_round_trip_within_1e9(
        values in prop::collection::vec(-1.0e3f64..1.0e3, 256),
        size_sel in 0usize..4,
    ) {
        let n = [64usize, 128, 256, 32][size_sel];
        let fft = Fft::new(n);
        let mut buf: Vec<Complex> =
            values[..n].iter().map(|&v| Complex::from_real(v)).collect();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (z, &v) in buf.iter().zip(&values[..n]) {
            prop_assert!((z.re - v).abs() < 1e-9, "re {} vs {}", z.re, v);
            prop_assert!(z.im.abs() < 1e-9, "im {}", z.im);
        }
    }

    /// Parseval for the STFT: for every frame, the full-spectrum power sum
    /// (unfolded from the non-redundant bins) equals `n_fft ×` the energy of
    /// the windowed frame. Checked per frame, not just in aggregate, so a
    /// single corrupted frame cannot hide in the total.
    #[test]
    fn stft_satisfies_parseval_per_frame(
        values in prop::collection::vec(-10.0f64..10.0, 200..400),
        hop_sel in 0usize..3,
    ) {
        let frame_len = 64usize;
        let hop = [16usize, 32, 64][hop_sel];
        let cfg = StftConfig::new(frame_len, hop);
        let n_fft = cfg.n_fft();
        let spec = cfg.spectrogram(&values, 420.0).unwrap();
        let coeffs = Window::Hamming.coefficients(frame_len);
        for t in 0..spec.num_frames() {
            // Unfold the one-sided power row to the full-spectrum sum: DC
            // and Nyquist appear once, interior bins twice.
            let row = spec.frame(t);
            let full: f64 = row[0]
                + row[row.len() - 1]
                + 2.0 * row[1..row.len() - 1].iter().sum::<f64>();
            let start = t * hop;
            let time_energy: f64 = values[start..start + frame_len]
                .iter()
                .zip(&coeffs)
                .map(|(x, w)| (x * w) * (x * w))
                .sum();
            let expect = n_fft as f64 * time_energy;
            prop_assert!(
                (full - expect).abs() <= 1e-9 * expect.max(1.0),
                "frame {t}: spectrum {full} vs {expect}"
            );
        }
    }

    /// The uniform resampler's output covers exactly the input duration:
    /// `floor(duration × fs_out) + 1` samples, all finite and bounded by the
    /// input range (linear interpolation cannot overshoot).
    #[test]
    fn resample_linear_length_and_bounds(
        values in prop::collection::vec(-50.0f64..50.0, 2..300),
        fs_out in 50.0f64..2000.0,
    ) {
        let fs_in = 420.0;
        let out = resample_linear(&values, fs_in, fs_out).unwrap();
        let duration = (values.len() - 1) as f64 / fs_in;
        prop_assert_eq!(out.len(), (duration * fs_out).floor() as usize + 1);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in &out {
            prop_assert!(v.is_finite());
            prop_assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
        }
    }

    /// The gap-aware resampler on an irregular, hole-ridden timeline:
    /// output length is `floor((t_last − t_0) × fs_out) + 1`, every sample
    /// is finite, and every sample is either an in-range interpolation or
    /// the `0.0` blackout fill — never an extrapolated ramp.
    #[test]
    fn resample_irregular_invariants_on_gap_ridden_input(
        deltas in prop::collection::vec(0.0f64..0.01, 10..200),
        values in prop::collection::vec(-5.0f64..5.0, 200),
        gap_at in 3usize..9,
        gap_len in 0.1f64..2.0,
    ) {
        // Build a non-decreasing timeline with one long delivery hole.
        let mut t = Vec::with_capacity(deltas.len());
        let mut now = 0.0;
        for (i, d) in deltas.iter().enumerate() {
            now += d + if i == gap_at { gap_len } else { 0.0 };
            t.push(now);
        }
        let x = &values[..t.len()];
        let fs_out = 420.0;
        let max_gap = 0.05;
        let out = resample_irregular(&t, x, fs_out, max_gap).unwrap();
        let duration = t[t.len() - 1] - t[0];
        prop_assert_eq!(out.len(), (duration * fs_out).floor() as usize + 1);
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min).min(0.0);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(0.0);
        for v in &out {
            prop_assert!(v.is_finite());
            prop_assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
        }
        // Grid points that land strictly inside the hole (the >= 0.1 s
        // delivery blackout between samples gap_at-1 and gap_at) must be
        // the 0.0 blackout fill, not an interpolation ramp.
        let hole_start = t[gap_at - 1];
        let hole_end = t[gap_at];
        let mut saw_fill = false;
        for (i, v) in out.iter().enumerate() {
            let tq = t[0] + i as f64 / fs_out;
            if tq > hole_start + 1e-9 && tq < hole_end - 1e-9 {
                prop_assert!(*v == 0.0, "grid point {tq} inside blackout not filled");
                saw_fill = true;
            }
        }
        // The hole is >= 0.1 s on a 420 Hz grid: the fill branch must fire.
        prop_assert!(saw_fill, "blackout fill never exercised");
    }

    /// Unsorted timestamps are rejected, never silently mis-resampled.
    #[test]
    fn resample_irregular_rejects_unsorted(
        swap_at in 1usize..19,
    ) {
        let mut t: Vec<f64> = (0..20).map(|i| i as f64 * 0.01).collect();
        let x = vec![1.0; 20];
        t.swap(swap_at - 1, swap_at.min(19));
        let r = resample_irregular(&t, &x, 100.0, 0.5);
        if t.windows(2).all(|w| w[1] >= w[0]) {
            prop_assert!(r.is_ok()); // degenerate swap of equal stamps
        } else {
            prop_assert!(matches!(r, Err(DspError::InvalidParameter(_))));
        }
    }
}
