//! Criterion benches for the DSP substrate: FFT, STFT, Butterworth
//! filtering, envelopes — the per-region costs behind every table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emoleak_dsp::envelope::rms_envelope;
use emoleak_dsp::filter::{ButterworthDesign, FilterKind};
use emoleak_dsp::{Fft, StftConfig, Window};
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.37).sin() + 0.2 * (i as f64 * 1.31).cos()).collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        let fft = Fft::new(n);
        let x = signal(n);
        group.bench_with_input(BenchmarkId::new("power_spectrum", n), &n, |b, _| {
            b.iter(|| black_box(fft.power_spectrum(black_box(&x))));
        });
    }
    group.finish();
}

fn bench_stft(c: &mut Criterion) {
    let x = signal(8400); // 20 s at 420 Hz
    let cfg = StftConfig::new(64, 16).with_window(Window::Hamming);
    c.bench_function("stft/spectrogram_20s_accel", |b| {
        b.iter(|| black_box(cfg.spectrogram(black_box(&x), 420.0).unwrap()));
    });
}

fn bench_filters(c: &mut Criterion) {
    let x = signal(8400);
    let hp = ButterworthDesign::new(FilterKind::HighPass, 4, 8.0, 420.0)
        .unwrap()
        .build();
    c.bench_function("filter/8hz_hpf_filtfilt_20s", |b| {
        b.iter(|| black_box(hp.filtfilt(black_box(&x))));
    });
    c.bench_function("envelope/rms_20s", |b| {
        b.iter(|| black_box(rms_envelope(black_box(&x), 21)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fft, bench_stft, bench_filters
}
criterion_main!(benches);
