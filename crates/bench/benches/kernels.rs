//! Criterion benches for the hot-path kernels: reference vs fast, side by
//! side, on the shapes the CNN forward pass actually runs. The differential
//! tests pin the two paths bit-identical; these benches show what the fast
//! path buys (and catch a regression that would make it pointless).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emoleak_kernels::conv::{conv1d_fast, conv1d_ref, conv2d_fast, conv2d_ref};
use emoleak_kernels::gemm::{gemm_fast, gemm_ref};
use emoleak_kernels::{Activation, Conv1dScratch, Conv2dScratch};
use std::hint::black_box;

fn filled(n: usize, step: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * step).sin()).collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &(m, k, n) in &[(8usize, 36usize, 1024usize), (16, 144, 1024)] {
        let a = filled(m * k, 0.11);
        let b = filled(k * n, 0.07);
        let label = format!("{m}x{k}x{n}");
        group.bench_with_input(BenchmarkId::new("reference", &label), &n, |bch, _| {
            let mut cbuf = vec![0.0; m * n];
            bch.iter(|| {
                cbuf.fill(0.0);
                gemm_ref(m, k, n, black_box(&a), black_box(&b), &mut cbuf);
                black_box(&cbuf);
            });
        });
        group.bench_with_input(BenchmarkId::new("fast", &label), &n, |bch, _| {
            let mut cbuf = vec![0.0; m * n];
            bch.iter(|| {
                cbuf.fill(0.0);
                gemm_fast(m, k, n, black_box(&a), black_box(&b), &mut cbuf);
                black_box(&cbuf);
            });
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    // The spectrogram CNN's widest layer shape (32x32 maps, 3x3 taps).
    let (in_ch, h, w, out_ch, kh, kw) = (4usize, 32usize, 32usize, 8usize, 3usize, 3usize);
    let input = filled(in_ch * h * w, 0.37);
    let weights = filled(out_ch * in_ch * kh * kw, 0.11);
    let bias = vec![0.01; out_ch];
    let mut group = c.benchmark_group("conv2d");
    group.bench_function("reference", |bch| {
        let mut out = Vec::new();
        bch.iter(|| {
            conv2d_ref(
                black_box(&input), in_ch, h, w, out_ch, kh, kw,
                &weights, &bias, Activation::Relu, &mut out,
            );
            black_box(&out);
        });
    });
    group.bench_function("fast", |bch| {
        let mut out = Vec::new();
        let mut scratch = Conv2dScratch::default();
        bch.iter(|| {
            conv2d_fast(
                black_box(&input), in_ch, h, w, out_ch, kh, kw,
                &weights, &bias, Activation::Relu, &mut scratch, &mut out,
            );
            black_box(&out);
        });
    });
    group.finish();
}

fn bench_conv1d(c: &mut Criterion) {
    // The feature CNN's first layer shape (24-wide Table-II rows).
    let (in_ch, l, out_ch, k) = (1usize, 24usize, 16usize, 3usize);
    let input = filled(in_ch * l, 0.29);
    let weights = filled(out_ch * in_ch * k, 0.13);
    let bias = vec![0.01; out_ch];
    let mut group = c.benchmark_group("conv1d");
    group.bench_function("reference", |bch| {
        let mut out = Vec::new();
        bch.iter(|| {
            conv1d_ref(
                black_box(&input), in_ch, l, out_ch, k,
                &weights, &bias, Activation::Relu, &mut out,
            );
            black_box(&out);
        });
    });
    group.bench_function("fast", |bch| {
        let mut out = Vec::new();
        let mut scratch = Conv1dScratch::default();
        bch.iter(|| {
            conv1d_fast(
                black_box(&input), in_ch, l, out_ch, k,
                &weights, &bias, Activation::Relu, &mut scratch, &mut out,
            );
            black_box(&out);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_conv2d, bench_conv1d);
criterion_main!(benches);
