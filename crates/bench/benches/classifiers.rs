//! Criterion benches for classifier training and inference on a realistic
//! harvested feature set.

use criterion::{criterion_group, criterion_main, Criterion};
use emoleak_core::prelude::*;
use emoleak_ml::nn::{feature_cnn_scaled, Tensor, TrainConfig};
use emoleak_ml::{
    forest::RandomForest, lmt::Lmt, logistic::Logistic, subspace::RandomSubspace, Classifier,
};
use std::hint::black_box;

fn harvested() -> (Vec<Vec<f64>>, Vec<usize>, usize) {
    let scenario = AttackScenario::table_top(
        CorpusSpec::tess().with_clips_per_cell(6),
        DeviceProfile::oneplus_7t(),
    );
    let mut h = scenario.harvest().expect("clean bench scenario harvests").features;
    h.fit_normalization();
    (h.features().to_vec(), h.labels().to_vec(), h.num_classes())
}

fn bench_classical(c: &mut Criterion) {
    let (x, y, k) = harvested();
    c.bench_function("train/logistic", |b| {
        b.iter(|| {
            let mut clf = Logistic::default();
            clf.fit(black_box(&x), black_box(&y), k);
            black_box(clf.predict(&x[0]))
        });
    });
    c.bench_function("train/random_forest", |b| {
        b.iter(|| {
            let mut clf = RandomForest::new(20, 10, 1);
            clf.fit(black_box(&x), black_box(&y), k);
            black_box(clf.predict(&x[0]))
        });
    });
    c.bench_function("train/lmt", |b| {
        b.iter(|| {
            let mut clf = Lmt::default();
            clf.fit(black_box(&x), black_box(&y), k);
            black_box(clf.predict(&x[0]))
        });
    });
    c.bench_function("train/random_subspace", |b| {
        b.iter(|| {
            let mut clf = RandomSubspace::new(10, 0.5, 10, 1);
            clf.fit(black_box(&x), black_box(&y), k);
            black_box(clf.predict(&x[0]))
        });
    });
}

fn bench_cnn(c: &mut Criterion) {
    let (x, y, k) = harvested();
    let tensors: Vec<Tensor> = x
        .iter()
        .map(|r| Tensor::from_shape(&[1, r.len()], r.clone()))
        .collect();
    c.bench_function("train/feature_cnn_div8_3epochs", |b| {
        b.iter(|| {
            let mut net = feature_cnn_scaled(24, k, 1, 8);
            let cfg = TrainConfig { epochs: 3, batch_size: 16, learning_rate: 1e-3, seed: 1 };
            black_box(net.fit(black_box(&tensors), black_box(&y), &[], &[], &cfg))
        });
    });
    let mut net = feature_cnn_scaled(24, k, 1, 8);
    c.bench_function("infer/feature_cnn_div8", |b| {
        b.iter(|| black_box(net.predict(black_box(&tensors[0]))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_classical, bench_cnn
}
criterion_main!(benches);
