//! Criterion benches for the attack pipeline stages: speech synthesis,
//! channel simulation, region detection and feature extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use emoleak_core::prelude::*;
use emoleak_core::scenario::Setting;
use emoleak_features::regions::RegionDetector;
use emoleak_phone::session::RecordingSession;
use emoleak_phone::{DeviceProfile, Placement, SpeakerKind, VibrationChannel};
use emoleak_synth::CorpusSpec;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_synthesis(c: &mut Criterion) {
    let corpus = CorpusSpec::tess().with_clips_per_cell(1);
    c.bench_function("synth/one_tess_clip", |b| {
        b.iter(|| black_box(corpus.clip(0, Emotion::Anger, 0)));
    });
}

fn bench_channel(c: &mut Criterion) {
    let corpus = CorpusSpec::tess().with_clips_per_cell(1);
    let clip = corpus.clip(0, Emotion::Happy, 0);
    let channel = VibrationChannel::new(
        &DeviceProfile::oneplus_7t(),
        SpeakerKind::Loudspeaker,
        Placement::TableTop,
    );
    c.bench_function("phone/channel_one_clip", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| black_box(channel.simulate(black_box(&clip.samples), clip.fs, &mut rng)));
    });
}

fn bench_extraction(c: &mut Criterion) {
    let corpus = CorpusSpec::tess().with_clips_per_cell(1);
    let clip = corpus.clip(0, Emotion::Happy, 0);
    let session = RecordingSession::new(
        &DeviceProfile::oneplus_7t(),
        Setting::TableTopLoudspeaker.speaker_kind(),
        Setting::TableTopLoudspeaker.placement(),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let trace = session.record_clip(&clip.samples, clip.fs, &mut rng);
    let detector = RegionDetector::table_top();
    c.bench_function("features/detect_regions", |b| {
        b.iter(|| black_box(detector.detect(black_box(&trace.samples), trace.fs)));
    });
    let regions = detector.detect(&trace.samples, trace.fs);
    let (s, e) = regions[0];
    let region = &trace.samples[s..e];
    c.bench_function("features/extract_24", |b| {
        b.iter(|| black_box(emoleak_features::extract_all(black_box(region), trace.fs)));
    });
}

fn bench_harvest(c: &mut Criterion) {
    let scenario = AttackScenario::table_top(
        CorpusSpec::tess().with_clips_per_cell(2),
        DeviceProfile::oneplus_7t(),
    );
    c.bench_function("pipeline/harvest_28_clips", |b| {
        b.iter(|| black_box(scenario.harvest()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_synthesis, bench_channel, bench_extraction, bench_harvest
}
criterion_main!(benches);
