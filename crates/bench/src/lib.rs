//! # emoleak-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! EmoLeak paper. One binary per experiment (see `src/bin/`), plus Criterion
//! benches for pipeline-stage throughput (see `benches/`).
//!
//! ## Scale knobs (environment variables)
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `EMOLEAK_CLIPS` | 40 | clips per (speaker, emotion) cell per campaign |
//! | `EMOLEAK_EPOCHS` | 25 | CNN training epochs |
//! | `EMOLEAK_CNN_DIV` | 4 | CNN channel-width divisor (1 = paper-exact) |
//! | `EMOLEAK_SKIP_CNN` | unset | skip the CNN rows entirely (quick runs) |
//! | `EMOLEAK_THREADS` | all cores | worker threads (`emoleak-exec`); any value produces bit-identical tables |
//!
//! The defaults complete on a single core in minutes; `EMOLEAK_CLIPS=200
//! EMOLEAK_CNN_DIV=1` reproduces the full-scale campaign. Every experiment
//! is deterministic **independent of `EMOLEAK_THREADS`**: parallel stages
//! draw from per-task RNG streams and combine results in task order, so a
//! 16-core run reproduces the single-core numbers exactly.

use emoleak_core::prelude::*;
use emoleak_core::{evaluate_feature_grid, evaluate_features, ClassifierKind, Protocol};

/// Clips per (speaker, emotion) cell for this run (`EMOLEAK_CLIPS`).
pub fn clips_per_cell() -> usize {
    std::env::var("EMOLEAK_CLIPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(40)
}

/// Whether CNN rows should be skipped (`EMOLEAK_SKIP_CNN`).
pub fn skip_cnn() -> bool {
    std::env::var("EMOLEAK_SKIP_CNN").is_ok()
}

/// Runs one classifier on a harvested campaign under the standard protocol
/// (80/20 holdout, as in the loudspeaker tables).
///
/// A dataset too degenerate to evaluate scores as `NaN` (rendered as a
/// missing table cell), matching the `EMOLEAK_SKIP_CNN` convention.
pub fn classifier_accuracy(
    harvest: &emoleak_core::HarvestResult,
    kind: ClassifierKind,
    seed: u64,
) -> f64 {
    evaluate_features(&harvest.features, kind, Protocol::Holdout8020, seed)
        .map(|eval| eval.accuracy)
        .unwrap_or(f64::NAN)
}

/// Builds a full table column (one accuracy per classifier) for a scenario.
///
/// The classifier set mirrors the paper's table (time–frequency features ×
/// {Logistic, MultiClassClassifier, trees.LMT, CNN} for loudspeaker tables).
///
/// # Errors
///
/// Propagates harvest failures ([`emoleak_core::EmoleakError`]); degenerate
/// *evaluations* degrade to `NaN` cells instead.
pub fn loudspeaker_column(
    scenario: &AttackScenario,
    seed: u64,
) -> Result<Vec<(String, f64)>, EmoleakError> {
    let harvest = scenario.harvest()?;
    let mut kinds = vec![
        ClassifierKind::Logistic,
        ClassifierKind::MultiClass,
        ClassifierKind::Lmt,
    ];
    if !skip_cnn() {
        kinds.push(ClassifierKind::Cnn);
    }
    // All classifiers of the column train in parallel on the same harvest;
    // the grid returns results in `kinds` order.
    let mut rows: Vec<(String, f64)> =
        evaluate_feature_grid(&harvest.features, &kinds, Protocol::Holdout8020, seed)
            .into_iter()
            .map(|(kind, result)| {
                (
                    kind.display_name().to_string(),
                    result.map(|eval| eval.accuracy).unwrap_or(f64::NAN),
                )
            })
            .collect();
    if skip_cnn() {
        rows.push(("CNN".to_string(), f64::NAN));
        rows.push(("Spectrogram CNN".to_string(), f64::NAN));
    } else {
        let class_names = harvest.features.class_names().to_vec();
        let spec_acc =
            emoleak_core::evaluate_spectrograms(&harvest.spectrograms, &class_names, seed)
                .map(|(eval, _history)| eval.accuracy)
                .unwrap_or(f64::NAN);
        rows.push(("Spectrogram CNN".to_string(), spec_acc));
    }
    Ok(rows)
}

/// Renders a banner line for experiment binaries.
pub fn banner(title: &str, random_guess: f64) {
    println!("\n{title}");
    println!(
        "(clips/cell = {}, CNN width divisor = {}, random guess = {:.2}%)",
        clips_per_cell(),
        emoleak_core::pipeline::cnn_width_divisor()
            .map_or_else(|e| format!("invalid ({e})"), |d| d.to_string()),
        random_guess * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_phone::DeviceProfile;
    use emoleak_synth::CorpusSpec;

    #[test]
    fn classifier_accuracy_runs_on_tiny_campaign() {
        let scenario = AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(4),
            DeviceProfile::oneplus_7t(),
        );
        let harvest = scenario.harvest().unwrap();
        let acc = classifier_accuracy(&harvest, ClassifierKind::Logistic, 1);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn env_knob_defaults() {
        // Not set in the test environment.
        assert!(clips_per_cell() >= 1);
    }
}
