//! # emoleak-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! EmoLeak paper. One binary per experiment (see `src/bin/`), plus Criterion
//! benches for pipeline-stage throughput (see `benches/`).
//!
//! ## Scale knobs (environment variables)
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `EMOLEAK_CLIPS` | 40 | clips per (speaker, emotion) cell per campaign |
//! | `EMOLEAK_EPOCHS` | 25 | CNN training epochs |
//! | `EMOLEAK_CNN_DIV` | 4 | CNN channel-width divisor (1 = paper-exact) |
//! | `EMOLEAK_SKIP_CNN` | unset | skip the CNN rows entirely (quick runs) |
//! | `EMOLEAK_THREADS` | all cores | worker threads (`emoleak-exec`); any value produces bit-identical tables |
//! | `EMOLEAK_CHECKPOINT_DIR` | unset | checkpoint campaigns here; a killed run resumes from its cursor |
//! | `EMOLEAK_SNAPSHOT_EVERY` | 4 | units between snapshot checkpoints (journal covers the gap) |
//!
//! The defaults complete on a single core in minutes; `EMOLEAK_CLIPS=200
//! EMOLEAK_CNN_DIV=1` reproduces the full-scale campaign. Every experiment
//! is deterministic **independent of `EMOLEAK_THREADS`**: parallel stages
//! draw from per-task RNG streams and combine results in task order, so a
//! 16-core run reproduces the single-core numbers exactly. The same
//! property makes resumption exact: with `EMOLEAK_CHECKPOINT_DIR` set, a
//! run killed mid-campaign restarts from its checkpoint cursor and produces
//! tables byte-identical to an uninterrupted run.

use emoleak_core::prelude::*;
use emoleak_core::{evaluate_feature_grid, evaluate_features, ClassifierKind, Protocol};
use emoleak_durable::{
    run_resumable, CampaignError, CampaignSpec, Dec, Enc, RunOptions,
};
use std::path::{Path, PathBuf};

/// Clips per (speaker, emotion) cell for this run (`EMOLEAK_CLIPS`,
/// default 40). Strict: a set-but-malformed value errors instead of
/// silently running the default campaign size.
///
/// # Errors
///
/// [`EmoleakError::Config`] when `EMOLEAK_CLIPS` is set but not a
/// positive integer.
pub fn clips_per_cell() -> Result<usize, EmoleakError> {
    Ok(emoleak_exec::parse_checked("EMOLEAK_CLIPS", "a positive integer", |&n: &usize| n > 0)?
        .unwrap_or(40))
}

/// Whether CNN rows should be skipped (`EMOLEAK_SKIP_CNN`).
pub fn skip_cnn() -> bool {
    std::env::var("EMOLEAK_SKIP_CNN").is_ok()
}

/// Where campaigns checkpoint (`EMOLEAK_CHECKPOINT_DIR`); `None` disables
/// durability. Each campaign uses its own subdirectory, so one directory
/// serves every bench bin.
pub fn checkpoint_dir() -> Option<PathBuf> {
    std::env::var_os("EMOLEAK_CHECKPOINT_DIR").map(PathBuf::from)
}

/// Units between snapshot checkpoints (`EMOLEAK_SNAPSHOT_EVERY`, default 4).
/// The write-ahead journal covers the units since the last snapshot, so
/// this trades snapshot I/O against recovery replay length, never safety.
///
/// # Errors
///
/// [`EmoleakError::Config`] when `EMOLEAK_SNAPSHOT_EVERY` is set but not a
/// positive integer.
pub fn snapshot_every() -> Result<usize, EmoleakError> {
    Ok(emoleak_exec::parse_checked(
        "EMOLEAK_SNAPSHOT_EVERY",
        "a positive integer",
        |&n: &usize| n > 0,
    )?
    .unwrap_or(4))
}

/// Fingerprints everything that shapes a campaign's unit results (FNV-1a
/// over the rendered parts). Resuming under a different configuration
/// discards the checkpoint instead of splicing incompatible results.
pub fn campaign_fingerprint(parts: &[&str]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for part in parts {
        for byte in part.bytes().chain([0xFF]) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// Runs (or resumes) a campaign of `total` typed units through the
/// durability layer. With `EMOLEAK_CHECKPOINT_DIR` unset this is just
/// `compute(0..total)`; with it set, each completed unit is journaled
/// under `<dir>/<id>/` and a rerun picks up from the recovered cursor —
/// byte-identically, because units derive their RNG streams from their
/// index.
///
/// `encode`/`decode` serialize one unit payload; `compute` must return one
/// value per index in its range.
///
/// # Errors
///
/// Propagates `compute` failures; durability failures surface as
/// [`EmoleakError::Durable`].
pub fn run_campaign<T>(
    id: &str,
    fingerprint: u64,
    total: usize,
    encode: impl Fn(&T) -> Vec<u8>,
    decode: impl Fn(&[u8]) -> Option<T>,
    mut compute: impl FnMut(std::ops::Range<usize>) -> Result<Vec<T>, EmoleakError>,
) -> Result<Vec<T>, EmoleakError> {
    let dir = checkpoint_dir().map(|d| d.join(id));
    let spec = CampaignSpec { id: id.to_string(), fingerprint, total };
    let opts = RunOptions {
        chunk: emoleak_exec::threads().max(1),
        snapshot_every: snapshot_every()?,
        crash: None,
    };
    let outcome = run_resumable(dir.as_deref(), &spec, &opts, &mut |range| {
        compute(range).map(|units| units.iter().map(&encode).collect())
    })
    .map_err(|e| match e {
        CampaignError::App(app) => app,
        CampaignError::Durable(d) => EmoleakError::Durable(d.to_string()),
    })?;
    for defect in &outcome.defects {
        eprintln!("[{id}] checkpoint recovery: {defect}");
    }
    if outcome.resumed_units > 0 {
        eprintln!(
            "[{id}] resumed from checkpoint: {}/{} unit(s) restored",
            outcome.resumed_units, total
        );
    }
    outcome
        .payloads
        .iter()
        .map(|payload| {
            decode(payload).ok_or_else(|| {
                EmoleakError::Durable(format!(
                    "campaign {id}: checkpointed unit payload does not decode"
                ))
            })
        })
        .collect()
}

/// Encodes a named table column (classifier name, accuracy) for
/// checkpointing. Accuracies round-trip as raw `f64` bits — exactly.
pub fn encode_column(rows: &Vec<(String, f64)>) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(rows.len() as u64);
    for (name, acc) in rows {
        enc.str(name).f64(*acc);
    }
    enc.into_bytes()
}

/// Decodes a column encoded by [`encode_column`].
pub fn decode_column(bytes: &[u8]) -> Option<Vec<(String, f64)>> {
    let mut dec = Dec::new(bytes);
    let n = dec.u64().ok()?;
    let mut rows = Vec::new();
    for _ in 0..n {
        let name = dec.str().ok()?;
        let acc = dec.f64().ok()?;
        rows.push((name, acc));
    }
    dec.finish().ok()?;
    Some(rows)
}

/// Atomically writes a result artifact (temp file + fsync + rename via
/// `emoleak-durable`), creating parent directories first. An interrupt
/// can no longer leave a torn `results/*` file.
///
/// # Errors
///
/// [`EmoleakError::Durable`] when the directory or file cannot be written.
pub fn write_result(path: &Path, contents: &[u8]) -> Result<(), EmoleakError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| {
            EmoleakError::Durable(format!("mkdir {}: {e}", parent.display()))
        })?;
    }
    emoleak_durable::write_atomic(path, contents)
        .map_err(|e| EmoleakError::Durable(e.to_string()))
}

/// Runs one classifier on a harvested campaign under the standard protocol
/// (80/20 holdout, as in the loudspeaker tables).
///
/// A dataset too degenerate to evaluate scores as `NaN` (rendered as a
/// missing table cell), matching the `EMOLEAK_SKIP_CNN` convention.
pub fn classifier_accuracy(
    harvest: &emoleak_core::HarvestResult,
    kind: ClassifierKind,
    seed: u64,
) -> f64 {
    evaluate_features(&harvest.features, kind, Protocol::Holdout8020, seed)
        .map(|eval| eval.accuracy)
        .unwrap_or(f64::NAN)
}

/// Builds a full table column (one accuracy per classifier) for a scenario.
///
/// The classifier set mirrors the paper's table (time–frequency features ×
/// {Logistic, MultiClassClassifier, trees.LMT, CNN} for loudspeaker tables).
///
/// # Errors
///
/// Propagates harvest failures ([`emoleak_core::EmoleakError`]); degenerate
/// *evaluations* degrade to `NaN` cells instead.
pub fn loudspeaker_column(
    scenario: &AttackScenario,
    seed: u64,
) -> Result<Vec<(String, f64)>, EmoleakError> {
    let harvest = scenario.harvest()?;
    let mut kinds = vec![
        ClassifierKind::Logistic,
        ClassifierKind::MultiClass,
        ClassifierKind::Lmt,
    ];
    if !skip_cnn() {
        kinds.push(ClassifierKind::Cnn);
    }
    // All classifiers of the column train in parallel on the same harvest;
    // the grid returns results in `kinds` order.
    let mut rows: Vec<(String, f64)> =
        evaluate_feature_grid(&harvest.features, &kinds, Protocol::Holdout8020, seed)
            .into_iter()
            .map(|(kind, result)| {
                (
                    kind.display_name().to_string(),
                    result.map(|eval| eval.accuracy).unwrap_or(f64::NAN),
                )
            })
            .collect();
    if skip_cnn() {
        rows.push(("CNN".to_string(), f64::NAN));
        rows.push(("Spectrogram CNN".to_string(), f64::NAN));
    } else {
        let class_names = harvest.features.class_names().to_vec();
        let spec_acc =
            emoleak_core::evaluate_spectrograms(&harvest.spectrograms, &class_names, seed)
                .map(|(eval, _history)| eval.accuracy)
                .unwrap_or(f64::NAN);
        rows.push(("Spectrogram CNN".to_string(), spec_acc));
    }
    Ok(rows)
}

/// Renders the banner block for experiment binaries (leading blank line,
/// title, scale-knob summary), without printing it.
pub fn banner_text(title: &str, random_guess: f64) -> String {
    format!(
        "\n{title}\n(clips/cell = {}, CNN width divisor = {}, random guess = {:.2}%)\n",
        clips_per_cell().map_or_else(|e| format!("invalid ({e})"), |n| n.to_string()),
        emoleak_core::pipeline::cnn_width_divisor()
            .map_or_else(|e| format!("invalid ({e})"), |d| d.to_string()),
        random_guess * 100.0
    )
}

/// Prints a banner line for experiment binaries.
pub fn banner(title: &str, random_guess: f64) {
    print!("{}", banner_text(title, random_guess));
}

/// Directory for published artifacts (`EMOLEAK_RESULTS_DIR`, default
/// `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("EMOLEAK_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Accumulates an experiment's rendered output, mirroring every piece to
/// stdout, then publishes the whole artifact **atomically** to
/// `results/<name>.txt` (see [`results_dir`]). This replaces the old
/// shell-redirection workflow (`bin > results/name.txt`), which left a
/// torn artifact whenever a run was interrupted mid-write.
pub struct Report {
    name: String,
    buf: String,
}

impl Report {
    /// Starts an artifact named `<name>.txt`.
    pub fn new(name: &str) -> Self {
        Report { name: name.to_string(), buf: String::new() }
    }

    /// Mirrors the standard experiment banner (see [`banner`]).
    pub fn banner(&mut self, title: &str, random_guess: f64) {
        self.block(banner_text(title, random_guess));
    }

    /// Mirrors one line (a trailing newline is added).
    pub fn line(&mut self, text: impl AsRef<str>) {
        println!("{}", text.as_ref());
        self.buf.push_str(text.as_ref());
        self.buf.push('\n');
    }

    /// Mirrors a pre-rendered block verbatim (no newline added).
    pub fn block(&mut self, text: impl AsRef<str>) {
        print!("{}", text.as_ref());
        self.buf.push_str(text.as_ref());
    }

    /// Writes the accumulated artifact atomically and returns its path.
    ///
    /// # Errors
    ///
    /// [`EmoleakError::Durable`] when the artifact cannot be written.
    pub fn publish(self) -> Result<PathBuf, EmoleakError> {
        let path = results_dir().join(format!("{}.txt", self.name));
        write_result(&path, self.buf.as_bytes())?;
        eprintln!("[{}] artifact published to {}", self.name, path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_phone::DeviceProfile;
    use emoleak_synth::CorpusSpec;

    #[test]
    fn classifier_accuracy_runs_on_tiny_campaign() {
        let scenario = AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(4),
            DeviceProfile::oneplus_7t(),
        );
        let harvest = scenario.harvest().unwrap();
        let acc = classifier_accuracy(&harvest, ClassifierKind::Logistic, 1);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn env_knob_defaults() {
        // Not set in the test environment.
        assert!(clips_per_cell().unwrap() >= 1);
        assert!(snapshot_every().unwrap() >= 1);
    }

    /// Serializes the env-mutating tests in this binary.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn column_round_trips_exactly() {
        let rows = vec![
            ("Logistic".to_string(), 0.8125),
            ("CNN".to_string(), f64::NAN),
            ("LMT".to_string(), -0.0),
        ];
        let back = decode_column(&encode_column(&rows)).unwrap();
        assert_eq!(back.len(), rows.len());
        for ((n1, a1), (n2, a2)) in rows.iter().zip(&back) {
            assert_eq!(n1, n2);
            assert_eq!(a1.to_bits(), a2.to_bits(), "bit-exact, NaN included");
        }
        assert!(decode_column(b"garbage").is_none());
    }

    #[test]
    fn fingerprint_separates_configurations() {
        let a = campaign_fingerprint(&["table5", "seed=0x7E55", "clips=40"]);
        let b = campaign_fingerprint(&["table5", "seed=0x7E55", "clips=41"]);
        assert_ne!(a, b);
        // Part boundaries matter: ["ab","c"] != ["a","bc"].
        assert_ne!(campaign_fingerprint(&["ab", "c"]), campaign_fingerprint(&["a", "bc"]));
        assert_eq!(a, campaign_fingerprint(&["table5", "seed=0x7E55", "clips=40"]));
    }

    #[test]
    fn run_campaign_without_checkpoint_dir_computes_everything() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var("EMOLEAK_CHECKPOINT_DIR");
        let got = run_campaign(
            "lib-test-plain",
            1,
            3,
            |v: &u64| v.to_le_bytes().to_vec(),
            |b| Some(u64::from_le_bytes(b.try_into().ok()?)),
            |range| Ok(range.map(|i| i as u64 * 10).collect()),
        )
        .unwrap();
        assert_eq!(got, vec![0, 10, 20]);
    }

    #[test]
    fn run_campaign_resumes_from_checkpoint_dir() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir()
            .join(format!("emoleak-bench-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("EMOLEAK_CHECKPOINT_DIR", &dir);
        let encode = |v: &u64| v.to_le_bytes().to_vec();
        let decode = |b: &[u8]| Some(u64::from_le_bytes(b.try_into().ok()?));

        let mut first_ran = 0usize;
        let a = run_campaign("lib-test-resume", 7, 4, encode, decode, |range| {
            first_ran += range.len();
            Ok(range.map(|i| i as u64 + 100).collect())
        })
        .unwrap();
        assert_eq!(first_ran, 4);

        let mut second_ran = 0usize;
        let b = run_campaign("lib-test-resume", 7, 4, encode, decode, |range| {
            second_ran += range.len();
            Ok(range.map(|i| i as u64 + 100).collect())
        })
        .unwrap();
        assert_eq!(second_ran, 0, "completed campaign must not recompute");
        assert_eq!(a, b);

        std::env::remove_var("EMOLEAK_CHECKPOINT_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_publishes_the_mirrored_artifact_atomically() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir()
            .join(format!("emoleak-bench-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("EMOLEAK_RESULTS_DIR", &dir);
        let mut report = Report::new("unit");
        report.line("header");
        report.block("cell-a cell-b\n");
        report.line(format!("acc {:.2}%", 86.304));
        let path = report.publish().unwrap();
        std::env::remove_var("EMOLEAK_RESULTS_DIR");
        assert_eq!(path, dir.join("unit.txt"));
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "header\ncell-a cell-b\nacc 86.30%\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_result_creates_parents_and_replaces_atomically() {
        let dir = std::env::temp_dir()
            .join(format!("emoleak-bench-write-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("results").join("out.json");
        write_result(&path, b"{\"a\":1}").unwrap();
        write_result(&path, b"{\"a\":2}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\":2}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
