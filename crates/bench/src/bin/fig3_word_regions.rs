//! Figure 3 — word regions in a TESS playback: the acceleration-vs-time view
//! and the per-region detection, rendered as an ASCII amplitude plot.

use emoleak_bench::Report;
use emoleak_core::prelude::*;
use emoleak_core::scenario::Setting;
use emoleak_features::regions::{detection_rate, RegionDetector};
use emoleak_phone::session::RecordingSession;
use rand::SeedableRng;

fn main() -> Result<(), EmoleakError> {
    let mut report = Report::new("fig3_word_regions");
    report.line("Figure 3: word regions in accelerometer data (TESS, loudspeaker)");
    let corpus = CorpusSpec::tess().with_clips_per_cell(3);
    let device = DeviceProfile::oneplus_7t();
    let session = RecordingSession::new(
        &device,
        Setting::TableTopLoudspeaker.speaker_kind(),
        Setting::TableTopLoudspeaker.placement(),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    // A few consecutive clips, like the paper's 1.1–2.0 s window.
    let clips: Vec<_> = (0..3)
        .map(|r| (corpus.clip(0, Emotion::Happy, r).samples, 8000.0, r))
        .collect();
    let st = session.record_session(clips, &mut rng);
    let trace = &st.trace;
    let detector = RegionDetector::table_top();
    let regions = detector.detect(&trace.samples, trace.fs);

    // ASCII amplitude strip: 100 columns over the trace.
    let cols = 100;
    let n = trace.samples.len();
    let mut amp_row = String::new();
    let mut marker_row = String::new();
    for c in 0..cols {
        let lo = c * n / cols;
        let hi = ((c + 1) * n / cols).max(lo + 1);
        let seg = &trace.samples[lo..hi.min(n)];
        let peak = seg.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let level = (peak * 400.0).min(9.0) as usize;
        amp_row.push(char::from_digit(level as u32, 10).unwrap());
        let in_region = regions.iter().any(|&(s, e)| lo < e && hi > s);
        marker_row.push(if in_region { '^' } else { ' ' });
    }
    report.line(format!("|amplitude| (0-9 scale), {:.1} s total:", trace.duration()));
    report.line(&amp_row);
    report.line(format!("{marker_row}  <- detected speech regions"));
    report.line(format!("\ndetected {} regions: {:?}", regions.len(), regions));
    // Detection-rate score against ground truth (per clip windows).
    let mut truths = Vec::new();
    for (i, span) in st.labels.iter().enumerate() {
        let clip = corpus.clip(0, Emotion::Happy, st.labels[i].label);
        let scale = trace.fs / clip.fs;
        for &(s, e) in &clip.voiced_spans {
            truths.push((
                span.start + (s as f64 * scale) as usize,
                span.start + (e as f64 * scale) as usize,
            ));
        }
    }
    report.line(format!(
        "word-region detection rate: {:.0}% (paper: ~90% table-top)",
        detection_rate(&regions, &truths) * 100.0
    ));
    report.publish()?;
    Ok(())
}
