//! §III-B.2 — speech-region extraction rates: ~90 % for the
//! table-top/loudspeaker setting, >= 45 % for the handheld/ear-speaker
//! setting.

use emoleak_bench::{clips_per_cell, Report};
use emoleak_core::prelude::*;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?);
    let mut report = Report::new("region_detection");
    report.banner("Speech-region extraction rates (TESS, OnePlus 7T)", corpus.random_guess());
    let loud = AttackScenario::table_top(corpus.clone(), DeviceProfile::oneplus_7t()).harvest()?;
    let ear = AttackScenario::handheld(corpus, DeviceProfile::oneplus_7t()).harvest()?;
    report.line(format!(
        "table-top / loudspeaker : {:.0}% of word regions (paper: ~90%)",
        loud.detection_rate * 100.0
    ));
    report.line(format!(
        "handheld / ear speaker  : {:.0}% of word regions (paper: >= 45%)",
        ear.detection_rate * 100.0
    ));
    report.publish()?;
    Ok(())
}
