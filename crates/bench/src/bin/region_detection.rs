//! §III-B.2 — speech-region extraction rates: ~90 % for the
//! table-top/loudspeaker setting, >= 45 % for the handheld/ear-speaker
//! setting.

use emoleak_bench::{banner, clips_per_cell};
use emoleak_core::prelude::*;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?);
    banner("Speech-region extraction rates (TESS, OnePlus 7T)", corpus.random_guess());
    let loud = AttackScenario::table_top(corpus.clone(), DeviceProfile::oneplus_7t()).harvest()?;
    let ear = AttackScenario::handheld(corpus, DeviceProfile::oneplus_7t()).harvest()?;
    println!(
        "table-top / loudspeaker : {:.0}% of word regions (paper: ~90%)",
        loud.detection_rate * 100.0
    );
    println!(
        "handheld / ear speaker  : {:.0}% of word regions (paper: >= 45%)",
        ear.detection_rate * 100.0
    );
    Ok(())
}
