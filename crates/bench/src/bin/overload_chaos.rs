//! Overload-chaos harness for the multi-tenant admission layer.
//!
//! Drives `emoleak_admission::AdmissionController` through a grid of
//! overload scenarios × severities × seeds and asserts the *overload
//! contract* on every run:
//!
//! * conservation — after a full drain,
//!   `offered == served + rejected + shed + migrated`, fleet-wide and per
//!   tenant (`migrated` is zero for a standalone controller; the term
//!   exists so the identity matches the fleet-wide form);
//! * bounded memory — charged bytes never exceed the budget (`mem_peak <=
//!   budget`) and a drained fleet holds zero bytes;
//! * bulkheads hold — per-tenant and fleet session peaks never exceed
//!   their limits, however hard sessions are requested;
//! * no cross-tenant starvation — a tenant under its own rate limit is
//!   never refused, no matter how hard a neighbour floods;
//! * zero escaped panics — the admission layer never panics at the caller;
//! * clean-path silence — at severity 0 nothing is rejected, shed, or
//!   tripped;
//! * a faithful journal — sheds and fleet transitions recovered from the
//!   write-ahead journal match the in-memory log exactly.
//!
//! The simulation runs entirely on the admission layer's logical clock —
//! no wall time reaches the report — and the grid is parallelized with
//! order-preserving `par_map_indexed`, so `results/overload_chaos.json`
//! is **byte-identical under any `EMOLEAK_THREADS`**. Knobs:
//! `EMOLEAK_OVERLOAD_SEVERITIES` (comma list, default `0,1,2,4`),
//! `EMOLEAK_OVERLOAD_SEEDS` (default 2), `EMOLEAK_OVERLOAD_JSON` (report
//! path). Exits non-zero if any run violates the contract.

use emoleak_admission::{AdmissionConfig, AdmissionController, BreakerConfig, CodelConfig};
use emoleak_bench::write_result;
use emoleak_core::admission::{AdmissionError, FleetState};
use emoleak_core::EmoleakError;
use emoleak_exec::{derive_seed, par_map_indexed, splitmix64};
use emoleak_stream::durable::{recover_run, DurableSink};

const TICKS: u64 = 1800;
const TENANTS: [&str; 4] = ["flood", "amber", "brook", "coral"];

#[derive(Clone, Copy)]
enum Scenario {
    /// Offered load ramps far past drain capacity and back down.
    LoadRamp,
    /// One tenant floods; three stay politely under their rate limit.
    TenantFlood,
    /// The backend stalls mid-run: drain capacity collapses, then recovers.
    SlowConsumer,
    /// Oversized chunks squeeze a small byte budget.
    MemoryPressure,
}

impl Scenario {
    const ALL: [Scenario; 4] = [
        Scenario::LoadRamp,
        Scenario::TenantFlood,
        Scenario::SlowConsumer,
        Scenario::MemoryPressure,
    ];

    fn name(self) -> &'static str {
        match self {
            Scenario::LoadRamp => "load_ramp",
            Scenario::TenantFlood => "tenant_flood",
            Scenario::SlowConsumer => "slow_consumer",
            Scenario::MemoryPressure => "memory_pressure",
        }
    }

    fn config(self) -> AdmissionConfig {
        let base = AdmissionConfig {
            max_sessions: 6,
            tenant_sessions: 2,
            mem_budget: 1 << 20,
            tenant_rps: 100_000,
            tenant_burst: 1_000,
            codel: CodelConfig { target: 5, interval: 50 },
            breaker: BreakerConfig { trip_after: 3, recover_after: 10, cooldown: 5 },
        };
        match self {
            Scenario::LoadRamp => base,
            Scenario::TenantFlood => AdmissionConfig {
                // Tight per-tenant rate: 20/s, i.e. one chunk per 50 ticks.
                tenant_rps: 20,
                tenant_burst: 4,
                ..base
            },
            // A patient breaker, so standing latency is resolved by CoDel
            // shedding rather than the brown-out front door.
            Scenario::SlowConsumer => AdmissionConfig {
                codel: CodelConfig { target: 5, interval: 25 },
                breaker: BreakerConfig { trip_after: 200, recover_after: 10, cooldown: 5 },
                ..base
            },
            // severity shapes the load, not the limits; the patient breaker
            // keeps the byte budget the binding constraint.
            Scenario::MemoryPressure => AdmissionConfig {
                mem_budget: 4096,
                breaker: BreakerConfig { trip_after: 50, recover_after: 10, cooldown: 5 },
                ..base
            },
        }
    }
}

/// Offers issued for tick `now`, as `(tenant index, cost bytes)` pairs —
/// a pure function of `(scenario, severity, seed, now)`.
fn offers(scenario: Scenario, severity: f64, seed: u64, now: u64) -> Vec<(usize, u64)> {
    let mut stream = derive_seed(seed, now);
    let mut draw = || splitmix64(&mut stream);
    let mut out = Vec::new();
    match scenario {
        Scenario::LoadRamp => {
            // Triangle ramp peaking mid-run at `2 + 10*severity` offers/tick
            // against a fixed drain of 4/tick.
            let peak = 2.0 + 10.0 * severity;
            let phase = (now as f64) / (TICKS as f64);
            let shape = 1.0 - (2.0 * phase - 1.0).abs();
            let n = (1.0 + peak * shape) as u64;
            for _ in 0..n {
                out.push(((draw() % 3 + 1) as usize, 64 + draw() % 64));
            }
        }
        Scenario::TenantFlood => {
            // Tenant 0 floods at `8*severity`/tick; the others offer once
            // every 100 ticks (10/s, half their 20/s limit).
            for _ in 0..(8.0 * severity) as u64 {
                out.push((0, 64));
            }
            for t in 1..TENANTS.len() {
                if (now + 33 * t as u64).is_multiple_of(100) {
                    out.push((t, 64));
                }
            }
        }
        Scenario::SlowConsumer => {
            // Steady 3/tick spread over the polite tenants.
            for _ in 0..3 {
                out.push(((draw() % 3 + 1) as usize, 64 + draw() % 32));
            }
        }
        Scenario::MemoryPressure => {
            // 3/tick with costs that grow with severity against the 4 KiB
            // budget (drain keeps up; memory is the scarce resource).
            for _ in 0..3 {
                let cost = 64 + (draw() % 64) * (1 + (severity * 4.0) as u64);
                out.push(((draw() % 3 + 1) as usize, cost));
            }
        }
    }
    out
}

/// Drain capacity at tick `now` — the backend the admission layer protects.
fn capacity(scenario: Scenario, severity: f64, now: u64) -> usize {
    match scenario {
        Scenario::LoadRamp => 4,
        Scenario::TenantFlood => 10,
        Scenario::SlowConsumer => {
            // The backend stalls for the middle third of the run, harder
            // with severity; at severity 0 it never stalls.
            let third = TICKS / 3;
            if severity > 0.0 && (third..2 * third).contains(&now) {
                usize::from(severity < 2.0)
            } else {
                3
            }
        }
        // Under pressure the backend lags the 3/tick offers by one, so the
        // queue — and the byte budget — is what fills up.
        Scenario::MemoryPressure => {
            if severity == 0.0 {
                3
            } else {
                2
            }
        }
    }
}

struct RunSpec {
    scenario: Scenario,
    severity: f64,
    seed: u64,
}

struct RunRecord {
    scenario: &'static str,
    severity: f64,
    seed: u64,
    ok: bool,
    violations: Vec<String>,
    offered: u64,
    served: u64,
    rejected: u64,
    shed: u64,
    mem_peak: u64,
    peak_sessions: usize,
    fleet_transitions: usize,
    worst_state: String,
    /// Served-chunk queue sojourns, ticks: `[p50, p99, p99.9, max]`.
    sojourn_ticks: [u64; 4],
}

fn run_one(index: usize, spec: &RunSpec) -> RunRecord {
    let cfg = spec.scenario.config();
    let journal = std::env::temp_dir().join(format!(
        "emoleak-overload-{}-{index}.log",
        std::process::id()
    ));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        simulate(spec, &cfg, &journal)
    }));
    let _ = std::fs::remove_file(&journal);
    match outcome {
        Ok(record) => record,
        Err(_) => RunRecord {
            scenario: spec.scenario.name(),
            severity: spec.severity,
            seed: spec.seed,
            ok: false,
            violations: vec!["escaped panic in the admission layer".to_string()],
            offered: 0,
            served: 0,
            rejected: 0,
            shed: 0,
            mem_peak: 0,
            peak_sessions: 0,
            fleet_transitions: 0,
            worst_state: "-".to_string(),
            sojourn_ticks: [0; 4],
        },
    }
}

/// `[p50, p99, p99.9, max]` of `sojourns` (all zeros when nothing was
/// served). Nearest-rank on the sorted sample.
fn sojourn_summary(mut sojourns: Vec<u64>) -> [u64; 4] {
    if sojourns.is_empty() {
        return [0; 4];
    }
    sojourns.sort_unstable();
    let rank = |p: f64| {
        let idx = ((p / 100.0) * sojourns.len() as f64).ceil() as usize;
        sojourns[idx.clamp(1, sojourns.len()) - 1]
    };
    [rank(50.0), rank(99.0), rank(99.9), *sojourns.last().unwrap()]
}

fn simulate(spec: &RunSpec, cfg: &AdmissionConfig, journal: &std::path::Path) -> RunRecord {
    let sink = DurableSink::create(journal).expect("temp journal must be creatable");
    let mut ctrl = AdmissionController::new(cfg.clone()).with_durable(sink.clone());
    let mut held: Vec<&str> = Vec::new();
    let mut sojourns: Vec<u64> = Vec::new();

    for now in 0..TICKS {
        // Session churn: every 50 ticks each tenant asks for a session,
        // every 97 ticks the oldest one closes. Refusals are expected —
        // the contract is that the bulkhead peaks never exceed the limits.
        if now % 50 == 0 {
            for t in TENANTS {
                if ctrl.open_session(t, now).is_ok() {
                    held.push(t);
                }
            }
        }
        if now % 97 == 0 {
            if let Some(t) = held.pop() {
                ctrl.close_session(t);
            }
        }
        for (tenant, cost) in offers(spec.scenario, spec.severity, spec.seed, now) {
            let _: Result<(), AdmissionError> = ctrl.offer(TENANTS[tenant], cost, now);
        }
        for chunk in ctrl.drain(now, capacity(spec.scenario, spec.severity, now)) {
            sojourns.push(now.saturating_sub(chunk.enqueued));
        }
        ctrl.observe(now);
    }
    // Full drain: whatever is still queued is served or shed, so the
    // conservation identity closes without a `queued` term.
    let mut now = TICKS;
    while ctrl.queue_depth() > 0 {
        for chunk in ctrl.drain(now, 64) {
            sojourns.push(now.saturating_sub(chunk.enqueued));
        }
        now += 1;
    }
    for t in held.drain(..) {
        ctrl.close_session(t);
    }
    sink.finish(0, emoleak_core::online::InferenceLevel::Cnn);

    let stats = ctrl.stats();
    let tenants = ctrl.tenant_stats();
    let mut violations = Vec::new();

    if stats.offered != stats.served + stats.rejected + stats.shed + stats.migrated {
        violations.push(format!(
            "conservation broken: {} offered != {} served + {} rejected + {} shed + {} migrated",
            stats.offered, stats.served, stats.rejected, stats.shed, stats.migrated
        ));
    }
    for (name, t) in &tenants {
        if t.offered != t.served + t.rejected + t.shed + t.migrated {
            violations.push(format!("tenant {name} conservation broken: {t:?}"));
        }
        if t.peak_sessions > cfg.tenant_sessions {
            violations.push(format!(
                "tenant {name} bulkhead exceeded: peak {} > limit {}",
                t.peak_sessions, cfg.tenant_sessions
            ));
        }
    }
    if stats.peak_sessions > cfg.max_sessions {
        violations.push(format!(
            "fleet bulkhead exceeded: peak {} > limit {}",
            stats.peak_sessions, cfg.max_sessions
        ));
    }
    if stats.mem_peak > cfg.mem_budget {
        violations.push(format!(
            "memory budget exceeded: peak {} > budget {}",
            stats.mem_peak, cfg.mem_budget
        ));
    }
    if stats.mem_charged != 0 {
        violations.push(format!("drained fleet still holds {} bytes", stats.mem_charged));
    }
    if spec.severity == 0.0 {
        // Clean path: the overload machinery must stay silent.
        if stats.rejected != 0 || stats.shed != 0 || !ctrl.log().fleet_transitions().is_empty()
        {
            violations.push(format!(
                "clean run was not silent: {} rejected, {} shed, {} fleet transitions",
                stats.rejected,
                stats.shed,
                ctrl.log().fleet_transitions().len()
            ));
        }
    } else {
        match spec.scenario {
            Scenario::TenantFlood => {
                for (name, t) in &tenants {
                    if *name != "flood" && t.rejected != 0 {
                        violations.push(format!(
                            "cross-tenant starvation: polite tenant {name} was refused {} time(s)",
                            t.rejected
                        ));
                    }
                }
                let flood = tenants.iter().find(|(n, _)| n == "flood");
                if flood.is_none_or(|(_, t)| t.rejected == 0) {
                    violations.push("the flood was never throttled".to_string());
                }
            }
            Scenario::SlowConsumer => {
                if stats.shed == 0 {
                    violations.push("a stalled backend must shed standing latency".to_string());
                }
            }
            Scenario::MemoryPressure => {
                let exhausted = ctrl
                    .log()
                    .events()
                    .iter()
                    .filter(|e| matches!(
                        e,
                        emoleak_stream::ServiceEvent::AdmissionRejected { reason, .. }
                            if reason == "memory-exhausted"
                    ))
                    .count();
                if spec.severity >= 2.0 && exhausted == 0 {
                    violations
                        .push("high memory pressure never refused for memory".to_string());
                }
            }
            Scenario::LoadRamp => {
                if spec.severity >= 2.0 && ctrl.log().fleet_transitions().is_empty() {
                    violations
                        .push("a hard ramp must trip the fleet breaker".to_string());
                }
            }
        }
    }

    // The journal must replay the exact sheds and fleet transitions the
    // in-memory log saw, in order.
    if let Some(e) = sink.take_error() {
        violations.push(format!("journal write failed: {e}"));
    }
    match recover_run(journal) {
        Ok((run, defects)) => {
            if !defects.is_empty() {
                violations.push(format!("journal recovery defects: {defects:?}"));
            }
            if !run.complete {
                violations.push("journal missing its end-of-run summary".to_string());
            }
            if run.fleet_transitions != ctrl.log().fleet_transitions() {
                violations.push(format!(
                    "journal fleet transitions diverge from the log: {} vs {}",
                    run.fleet_transitions.len(),
                    ctrl.log().fleet_transitions().len()
                ));
            }
            if run.sheds.len() != ctrl.log().sheds() {
                violations.push(format!(
                    "journal sheds diverge from the log: {} vs {}",
                    run.sheds.len(),
                    ctrl.log().sheds()
                ));
            }
        }
        Err(e) => violations.push(format!("journal recovery failed: {e}")),
    }

    RunRecord {
        scenario: spec.scenario.name(),
        severity: spec.severity,
        seed: spec.seed,
        ok: violations.is_empty(),
        violations,
        offered: stats.offered,
        served: stats.served,
        rejected: stats.rejected,
        shed: stats.shed,
        mem_peak: stats.mem_peak,
        peak_sessions: stats.peak_sessions,
        fleet_transitions: ctrl.log().fleet_transitions().len(),
        worst_state: ctrl
            .log()
            .worst_fleet_state()
            .map_or_else(|| "-".to_string(), |s: FleetState| s.to_string()),
        sojourn_ticks: sojourn_summary(sojourns),
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn to_json(records: &[RunRecord]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"severity\": {}, \"seed\": {}, \"ok\": {}, \
             \"offered\": {}, \"served\": {}, \"rejected\": {}, \"shed\": {}, \
             \"mem_peak\": {}, \"peak_sessions\": {}, \"fleet_transitions\": {}, \
             \"worst_state\": \"{}\", \
             \"sojourn_ticks\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}, \
             \"violations\": [{}]}}{}\n",
            r.scenario,
            json_num(r.severity),
            r.seed,
            r.ok,
            r.offered,
            r.served,
            r.rejected,
            r.shed,
            r.mem_peak,
            r.peak_sessions,
            r.fleet_transitions,
            r.worst_state,
            r.sojourn_ticks[0],
            r.sojourn_ticks[1],
            r.sojourn_ticks[2],
            r.sojourn_ticks[3],
            r.violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    out.push_str(&format!(
        "  ],\n  \"total_runs\": {},\n  \"failed_runs\": {failed}\n}}\n",
        records.len()
    ));
    out
}

fn main() -> Result<(), EmoleakError> {
    println!("Overload chaos: admission control, bulkheads, shedding, and the fleet breaker");

    let severities: Vec<f64> = emoleak_exec::parse_list_checked(
        "EMOLEAK_OVERLOAD_SEVERITIES",
        "comma-separated non-negative numbers",
        |&s: &f64| s.is_finite() && s >= 0.0,
    )?
    .unwrap_or_else(|| vec![0.0, 1.0, 2.0, 4.0]);
    let seeds: u64 = emoleak_exec::parse_checked(
        "EMOLEAK_OVERLOAD_SEEDS",
        "a positive count",
        |&n: &u64| n > 0,
    )?
    .unwrap_or(2);

    let mut grid = Vec::new();
    for scenario in Scenario::ALL {
        for &severity in &severities {
            for seed in 0..seeds {
                grid.push(RunSpec {
                    scenario,
                    severity,
                    seed: 0x0A3D ^ (seed.wrapping_mul(0x9E37_79B9)) ^ (severity.to_bits() >> 17),
                });
            }
        }
    }
    // Order-preserving parallel map: the record order — and therefore the
    // JSON bytes — is the grid order under any EMOLEAK_THREADS.
    let records = par_map_indexed(&grid, run_one);

    println!(
        "{:<16} {:>4} {:>6} {:>8} {:>8} {:>8} {:>6} {:>9} {:>6} {:>11} {:>6} {:>6}",
        "scenario", "sev", "ok", "offered", "served", "rejected", "shed", "mem_peak", "trans",
        "worst", "p99.9", "max"
    );
    println!("{}", "-".repeat(106));
    for r in &records {
        println!(
            "{:<16} {:>4} {:>6} {:>8} {:>8} {:>8} {:>6} {:>9} {:>6} {:>11} {:>6} {:>6}",
            r.scenario,
            r.severity,
            if r.ok { "ok" } else { "FAIL" },
            r.offered,
            r.served,
            r.rejected,
            r.shed,
            r.mem_peak,
            r.fleet_transitions,
            r.worst_state,
            r.sojourn_ticks[2],
            r.sojourn_ticks[3],
        );
        for v in &r.violations {
            println!("    violation: {v}");
        }
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    println!(
        "\n{} runs, {} violations; rejected: {}, shed: {}",
        records.len(),
        failed,
        records.iter().map(|r| r.rejected).sum::<u64>(),
        records.iter().map(|r| r.shed).sum::<u64>(),
    );

    let json = to_json(&records);
    let path = std::env::var("EMOLEAK_OVERLOAD_JSON")
        .unwrap_or_else(|_| "results/overload_chaos.json".to_string());
    match write_result(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path} ({e}); JSON follows:\n{json}"),
    }
    assert!(failed == 0, "{failed} overload run(s) violated the contract");
    Ok(())
}
