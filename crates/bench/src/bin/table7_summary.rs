//! Table VII — summary: vibration-domain (EmoLeak) accuracy per dataset vs
//! the audio-domain state of the art.
//!
//! Paper: SAVEE 53.77 % (audio 91.7 %), TESS 95.3 % (audio 99.57 %),
//! CREMA-D 60.32 % (audio 94.99 %). We reproduce the vibration column with
//! our pipeline and the audio column with a *clean-audio baseline*: the same
//! Table II features extracted directly from the synthesized audio (no
//! vibration channel), which stands in for the cited audio-domain systems.

use emoleak_bench::{
    campaign_fingerprint, classifier_accuracy, clips_per_cell, run_campaign, skip_cnn, Report,
};
use emoleak_core::prelude::*;
use emoleak_core::{evaluate_features, ClassifierKind, Protocol};
use emoleak_durable::{Dec, Enc};
use emoleak_features::{all_feature_names, extract_all};

const SEED: u64 = 0x7AB7;

/// One summary row's accuracies, bit-exact through the checkpoint.
fn encode_row(cell: &(f64, f64)) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.f64(cell.0).f64(cell.1);
    enc.into_bytes()
}

fn decode_row(bytes: &[u8]) -> Option<(f64, f64)> {
    let mut dec = Dec::new(bytes);
    let vib = dec.f64().ok()?;
    let audio = dec.f64().ok()?;
    dec.finish().ok()?;
    Some((vib, audio))
}

/// The audio-domain baseline: Table II features on the clean synthesized
/// audio (16× the accelerometer bandwidth, no channel loss). Clip synthesis
/// and feature extraction run in parallel per clip; rows are pushed in clip
/// order, matching the sequential iterator exactly.
fn audio_domain_accuracy(corpus: &CorpusSpec, seed: u64) -> f64 {
    let emotions = corpus.emotions().to_vec();
    let class_names: Vec<String> = emotions.iter().map(|e| e.to_string()).collect();
    let mut features = FeatureDataset::new(all_feature_names(), class_names);
    let clip_indices: Vec<usize> = (0..corpus.total_clips()).collect();
    let per_clip: Vec<Vec<(Vec<f64>, usize)>> =
        emoleak_exec::par_map_indexed(&clip_indices, |_, &i| {
            let clip = corpus.clip_at(i);
            let label = emotions.iter().position(|e| *e == clip.emotion).unwrap();
            clip.voiced_spans
                .iter()
                .map(|&(s, e)| {
                    let region = &clip.samples[s..e.min(clip.samples.len())];
                    (extract_all(region, clip.fs), label)
                })
                .collect()
        });
    for clip_rows in per_clip {
        for (row, label) in clip_rows {
            features.push(row, label);
        }
    }
    features.clean_invalid();
    evaluate_features(&features, ClassifierKind::Logistic, Protocol::Holdout8020, seed)
        .map(|eval| eval.accuracy)
        .unwrap_or(f64::NAN)
}

fn main() -> Result<(), EmoleakError> {
    let n = clips_per_cell()?;
    let mut report = Report::new("table7_summary");
    report.banner("Table VII: vibration domain vs audio domain", 1.0 / 7.0);
    let rows: [(&str, CorpusSpec, DeviceProfile); 3] = [
        ("SAVEE", CorpusSpec::savee().with_clips_per_cell(n), DeviceProfile::oneplus_7t()),
        ("TESS", CorpusSpec::tess().with_clips_per_cell(n), DeviceProfile::oneplus_7t()),
        (
            "CREMA-D",
            CorpusSpec::crema_d().with_clips_per_cell(n.clamp(2, 13)),
            DeviceProfile::galaxy_s10(),
        ),
    ];
    let mut table = ResultTable::new(
        "Summary (best classical classifier, vibration vs clean audio)",
        vec!["vibration (EmoLeak)".into(), "audio baseline".into()],
    );
    let fingerprint = campaign_fingerprint(&[
        &format!("seed={SEED:#x}"),
        &format!("clips={n}"),
        &format!("skip_cnn={}", skip_cnn()),
        &rows.iter().map(|(name, _, _)| *name).collect::<Vec<_>>().join(","),
    ]);
    // The three dataset rows are independent campaign units: run each
    // chunk in parallel, checkpoint completed rows, collect in row order.
    let row_cells = run_campaign(
        "table7_summary",
        fingerprint,
        rows.len(),
        encode_row,
        decode_row,
        |range| {
            emoleak_exec::par_map_indexed(&rows[range], |_, (_, corpus, device)| {
                let scenario = AttackScenario::table_top(corpus.clone(), device.clone());
                let harvest = scenario.harvest()?;
                let vib = [
                    ClassifierKind::Logistic,
                    ClassifierKind::MultiClass,
                    ClassifierKind::Lmt,
                ]
                .iter()
                .map(|&k| classifier_accuracy(&harvest, k, SEED))
                .fold(f64::NAN, f64::max);
                let audio = audio_domain_accuracy(corpus, SEED);
                Ok((vib, audio))
            })
            .into_iter()
            .collect()
        },
    )?;
    for ((name, _, _), (vib, audio)) in rows.iter().zip(row_cells) {
        table.push_row(name, vec![vib, audio]);
    }
    table.push_note("paper: SAVEE 53.77% vs 91.7%, TESS 95.3% vs 99.57%, CREMA-D 60.32% vs 94.99%");
    table.push_note("audio baseline = same features on clean audio (substitute for cited SOTA)");
    report.block(table.render());
    report.publish()?;
    Ok(())
}
