//! Design-choice ablation: which half of Table II does the work?
//!
//! Compares emotion-recognition accuracy using (a) the 12 time-domain
//! features only, (b) the 12 frequency-domain features only, (c) all 24 —
//! on the TESS/loudspeaker/OnePlus 7T campaign. The paper uses all 24; this
//! ablation quantifies why.

use emoleak_bench::{clips_per_cell, Report};
use emoleak_core::prelude::*;
use emoleak_core::{evaluate_features, ClassifierKind, Protocol};
use emoleak_features::FeatureDataset;

/// Projects a dataset onto a column range.
fn project(d: &FeatureDataset, cols: std::ops::Range<usize>) -> FeatureDataset {
    let mut out = FeatureDataset::new(
        d.feature_names()[cols.clone()].to_vec(),
        d.class_names().to_vec(),
    );
    for (row, &label) in d.features().iter().zip(d.labels()) {
        out.push(row[cols.clone()].to_vec(), label);
    }
    out
}

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?);
    let mut report = Report::new("ablation_features");
    report.banner("Ablation: time-domain vs frequency-domain features (TESS / OnePlus 7T)",
                  corpus.random_guess());
    let harvest = AttackScenario::table_top(corpus, DeviceProfile::oneplus_7t()).harvest()?;
    let variants: [(&str, FeatureDataset); 3] = [
        ("time-domain only (12)", project(&harvest.features, 0..12)),
        ("frequency-domain only (12)", project(&harvest.features, 12..24)),
        ("all Table II features (24)", harvest.features.clone()),
    ];
    report.line(format!("{:<30} {:>10}", "feature set", "accuracy"));
    // The three projections train independently: evaluate in parallel.
    let accs = emoleak_exec::par_map_indexed(&variants, |_, (_, data)| {
        evaluate_features(data, ClassifierKind::Logistic, Protocol::Holdout8020, 0xAB1)
            .map(|eval| eval.accuracy)
    });
    for ((name, _), acc) in variants.iter().zip(accs) {
        report.line(format!("{name:<30} {:>9.2}%", acc? * 100.0));
    }
    report.publish()?;
    Ok(())
}
