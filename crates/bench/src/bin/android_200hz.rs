//! §VI-A — the Android 12 sampling-rate restriction: TESS/loudspeaker
//! accuracy at the native sensor rate vs capped at 200 Hz.
//!
//! Paper: 95.3 % native vs 80.1 % capped — still > 5× random guessing.

use emoleak_bench::{clips_per_cell, Report};
use emoleak_core::mitigation::SamplingCapStudy;
use emoleak_core::prelude::*;
use emoleak_core::ClassifierKind;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?);
    let mut report = Report::new("android_200hz");
    report.banner("Android 200 Hz sampling cap (TESS / loudspeaker / OnePlus 7T)",
                  corpus.random_guess());
    let scenario = AttackScenario::table_top(corpus, DeviceProfile::oneplus_7t());
    let study = SamplingCapStudy::run(&scenario, ClassifierKind::Logistic, 0xA12)?;
    report.line(format!("native rate accuracy : {:.2}%", study.accuracy_default * 100.0));
    report.line(format!("200 Hz cap accuracy  : {:.2}%", study.accuracy_capped * 100.0));
    report.line(format!("random guess         : {:.2}%", study.random_guess * 100.0));
    report.line(format!(
        "attack survives the cap at >5x random guess: {}",
        study.attack_survives(5.0)
    ));
    report.line("paper: 95.3% native vs 80.1% capped");
    report.publish()?;
    Ok(())
}
