//! Figure 2 — spectrograms of the same utterance played with five different
//! emotions through the loudspeaker (OnePlus 7T, table-top), rendered as
//! ASCII heat maps (time down the page, frequency across).

use emoleak_bench::Report;
use emoleak_core::prelude::*;
use emoleak_core::scenario::Setting;
use emoleak_features::regions::RegionDetector;
use emoleak_features::spectrogram::{ascii_render, SpectrogramGenerator, IMAGE_SIZE};
use emoleak_phone::session::RecordingSession;
use rand::SeedableRng;

fn main() -> Result<(), EmoleakError> {
    let mut report = Report::new("fig2_spectrograms");
    report.line("Figure 2: accelerometer spectrograms per emotion (OnePlus 7T, loudspeaker)");
    let corpus = CorpusSpec::tess().with_clips_per_cell(1);
    let device = DeviceProfile::oneplus_7t();
    let session = RecordingSession::new(
        &device,
        Setting::TableTopLoudspeaker.speaker_kind(),
        Setting::TableTopLoudspeaker.placement(),
    );
    let detector = RegionDetector::table_top();
    let spec_gen = SpectrogramGenerator::for_accel();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for emotion in [
        Emotion::Anger,
        Emotion::Neutral,
        Emotion::Fear,
        Emotion::Happy,
        Emotion::Sad,
    ] {
        // Same speaker, same repetition index: "the same sentence by the
        // same actor with different emotions" (§III-B.5).
        let clip = corpus.clip(0, emotion, 0);
        let trace = session.record_clip(&clip.samples, clip.fs, &mut rng);
        let regions = detector.detect(&trace.samples, trace.fs);
        let Some(&(s, e)) = regions.first() else {
            report.line(format!("\n[{emotion}] (no region detected)"));
            continue;
        };
        let img = spec_gen
            .generate(&trace.samples[s..e.min(trace.samples.len())], trace.fs, 0)
            .expect("region long enough for a spectrogram");
        report.line(format!(
            "\n[{emotion}] region {:.2}-{:.2} s, freq -> 0..{:.0} Hz",
            s as f64 / trace.fs, e as f64 / trace.fs, trace.fs / 2.0
        ));
        report.block(ascii_render(&img.pixels, IMAGE_SIZE));
    }
    report.publish()?;
    Ok(())
}
