//! Table I — information gain of time–frequency features, no filter vs
//! 1 Hz high-pass.
//!
//! Paper values: unfiltered min/mean/max ≈ 1.27–1.31, CV 0.994, power 0.903,
//! smoothness 0.761; after the 1 Hz HPF everything collapses to 0 except
//! power (0.117). Our physically grounded channel reproduces the direction
//! (all level statistics drop, power retains the most) — see EXPERIMENTS.md
//! for the discrepancy discussion.

use emoleak_bench::{clips_per_cell, Report};
use emoleak_core::mitigation::FilterAblation;
use emoleak_core::prelude::*;

fn main() -> Result<(), EmoleakError> {
    // Short grouped-emotion blocks are where the posture-drift structure
    // that Table I measures lives; larger campaigns wash the in-session
    // association out (see EXPERIMENTS.md).
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?.min(6));
    let mut report = Report::new("table1_info_gain");
    report.banner("Table I: information gain, no filter vs 1 Hz high-pass (TESS, handheld)",
                  corpus.random_guess());
    let scenario = AttackScenario::handheld(corpus, DeviceProfile::oneplus_7t());
    let ablation = FilterAblation::run(&scenario)?;
    report.line(format!("{:<12} {:>10} {:>10}", "feature", "no filter", "1 Hz HPF"));
    report.line("-".repeat(34));
    for ((name, raw), hp) in ablation
        .features
        .iter()
        .zip(&ablation.gain_no_filter)
        .zip(&ablation.gain_1hz)
    {
        report.line(format!("{name:<12} {raw:>10.3} {hp:>10.3}"));
    }
    report.line(format!(
        "\nfilter significantly degrades level features: {}",
        ablation.filter_degrades_features()
    ));
    report.publish()?;
    Ok(())
}
