//! Fleet performance baseline: a sharded fleet under diurnal/bursty load.
//!
//! Drives real streaming sessions (trained bundle, recorded campaign,
//! full verdict pipeline) through a [`FleetService`] while a seeded
//! [`LoadProfile`] shapes the arrival rate — a sinusoidal diurnal cycle
//! with multiplicative bursts. Publishes the repo's perf baseline to
//! `BENCH_fleet.json`:
//!
//! * `sessions_per_sec` — admitted sessions completed per wall-clock
//!   second (the fleet's session throughput);
//! * `verdict_latency_us` — p50/p99/p99.9/max of per-region
//!   classification latency, measured inside the sessions (the tail
//!   percentiles match what stream_chaos/overload_chaos publish);
//! * `bytes_per_verdict` — ingested sample bytes per emitted verdict
//!   (the pipeline's data efficiency);
//! * `journal_append_us` — mean journal-append latency solo vs with a
//!   synchronous replica ship, plus the overhead percentage: the price
//!   of `EMOLEAK_REPLICAS=1` on the hot durable path;
//! * `coordinator_tick_us` — mean cost of the chunk coordinator's
//!   offer+advance hot loop on the direct in-process path vs through the
//!   ideal simulated message plane, plus the overhead percentage: the
//!   price of `EMOLEAK_NET=ideal` on the clean path (the served stream
//!   itself is asserted identical — the plane may only cost time, never
//!   bytes);
//! * `durability_level_ticks` — shard-ticks the direct-path coordinator
//!   run spent at each durability-ladder rung, best rung first. The disk
//!   gauge is unarmed here, so a healthy build reports `[all, 0, 0, 0]`
//!   — any nonzero tail is a storage regression;
//! * admission counters — offered/admitted/spilled/refused sessions, so
//!   a regression in the brown-out path shows up next to the latency it
//!   causes.
//!
//! Wall-clock numbers vary by machine; the *shape* (counters, emissions,
//! verdicts) is deterministic for a fixed seed and shard count. Knobs:
//! `EMOLEAK_SHARDS`, `EMOLEAK_FLEET_SEED`, `EMOLEAK_FLEET_BENCH_TICKS`
//! (default 48), `EMOLEAK_FLEET_BENCH_RATE` (mean sessions/tick, default
//! 1.5), `EMOLEAK_FLEET_BENCH_JSON` (default `BENCH_fleet.json`).

use emoleak_bench::write_result;
use emoleak_core::prelude::*;
use emoleak_fleet::{FleetConfig, FleetService, LoadProfile};
use emoleak_stream::durable::{ChunkAdmit, DurableSink};
use emoleak_stream::{ReplaySource, StreamConfig, StreamReport, StreamService};
use std::sync::Arc;
use std::time::Instant;

const TENANTS: [&str; 6] = ["amber", "brook", "coral", "dune", "ember", "fjord"];
const CHUNK: usize = 256;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Mean append latency (µs) over `n` journaled chunk admits, solo or with
/// a synchronous replica ship — the per-record price of replication on
/// the hot durable path.
fn journal_append_us(dir: &std::path::Path, n: u64, replicated: bool) -> f64 {
    let primary = dir.join(if replicated { "bench-repl.log" } else { "bench-solo.log" });
    let replica = dir.join("bench-repl.replica.log");
    let sink = if replicated {
        DurableSink::create_replicated(&primary, &replica)
    } else {
        DurableSink::create(&primary)
    }
    .expect("bench scratch dir is writable");
    let t0 = Instant::now();
    for seq in 0..n {
        sink.record_admit(&ChunkAdmit { tick: seq, tenant: "bench".to_string(), seq, cost: 64 });
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
    assert!(sink.take_error().is_none(), "append bench hit a journal error");
    us
}

/// Mean per-tick cost (µs) of the chunk coordinator's offer+advance hot
/// loop, the chunks it served, and the shard-ticks spent at each
/// durability-ladder rung (best first — `[all, 0, 0, 0]` on a healthy
/// disk): on the direct in-process path, or routed through the ideal
/// simulated message plane. The serve counts of the two runs must match
/// exactly — the transport is byte-invisible on the clean path, so the
/// only thing it may add is time.
fn coordinator_tick_us(dir: &std::path::Path, ticks: u64, net: bool) -> (f64, u64, [u64; 4]) {
    use emoleak_fleet::{FleetCoordinator, NetProfileKind};
    let sub = dir.join(if net { "coord-net" } else { "coord-direct" });
    let mut cfg = FleetConfig {
        shards: 4,
        ledger_every: 10,
        scrub_every: 10,
        ..FleetConfig::default()
    };
    cfg.admission.mem_budget = u64::MAX / 2;
    cfg.admission.tenant_rps = 1_000_000;
    cfg.admission.tenant_burst = 1_000_000;
    if net {
        cfg.net.profile = NetProfileKind::Ideal;
    }
    let mut coord = FleetCoordinator::new(cfg, &sub).expect("bench scratch dir is writable");
    let mut served = 0u64;
    let t0 = Instant::now();
    for now in 0..ticks {
        for t in TENANTS {
            let _ = coord.offer(t, 64, now);
        }
        served += coord.advance(now, usize::MAX, &[]).len() as u64;
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / ticks as f64;
    (us, served, coord.durability_level_ticks())
}

fn main() -> Result<(), EmoleakError> {
    println!("Fleet bench: diurnal/bursty session load over a sharded fleet");

    let ticks: u64 = emoleak_exec::parse_checked(
        "EMOLEAK_FLEET_BENCH_TICKS",
        "a positive tick count",
        |&n: &u64| n > 0,
    )?
    .unwrap_or(48);
    let rate: f64 = emoleak_exec::parse_checked(
        "EMOLEAK_FLEET_BENCH_RATE",
        "a positive mean arrival rate",
        |&r: &f64| r.is_finite() && r > 0.0,
    )?
    .unwrap_or(1.5);
    let cfg = FleetConfig::from_env()?;
    let shards = cfg.shards;
    let service = FleetService::new(&cfg);
    let profile = LoadProfile {
        base_rate: rate,
        period: ticks.max(2) / 2, // two diurnal cycles per run
        ..LoadProfile::default()
    };

    // The workload: one trained bundle + recorded campaign shared by every
    // session. The bench measures the serving fleet, not model training.
    let scenario = AttackScenario::table_top(
        CorpusSpec::tess().with_clips_per_cell(2),
        DeviceProfile::oneplus_7t(),
    );
    let harvest = scenario.harvest()?;
    let bundle = Arc::new(ModelBundle::train(&harvest, 7)?);
    let campaign = scenario.record_windows()?;
    let detector = scenario.setting.region_detector();

    let mut offered = 0u64;
    let mut refused = 0u64;
    let mut reports: Vec<StreamReport> = Vec::new();
    let t0 = Instant::now();
    for now in 0..ticks {
        // This tick's arrivals, shaped by the diurnal/bursty profile and
        // spread round-robin over the tenants.
        let arrivals = profile.offers_at(now);
        let placements: Vec<_> = (0..arrivals)
            .filter_map(|k| {
                offered += 1;
                let tenant = TENANTS[((now * 8 + k) as usize) % TENANTS.len()];
                match service.admit(tenant, now) {
                    Ok(p) => Some(p),
                    Err(_) => {
                        refused += 1;
                        None
                    }
                }
            })
            .collect();
        // Admitted sessions of one tick run concurrently — that is the
        // fleet's actual serving shape.
        let batch = emoleak_exec::par_map_vec_indexed(placements, |_, placement| {
            let svc = StreamService::new(
                Arc::clone(&bundle),
                detector.clone(),
                campaign.fs,
                placement.permit.configure(StreamConfig::default()),
            );
            svc.run(Box::new(ReplaySource::from_campaign(&campaign, CHUNK)))
        });
        for report in batch {
            reports.push(
                report.map_err(|e| EmoleakError::Durable(format!("session failed: {e}")))?,
            );
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let admitted = reports.len() as u64;
    let spilled = service.migrated_sessions();
    let verdicts: u64 = reports.iter().map(|r| r.stats.regions).sum();
    let bytes: u64 = reports
        .iter()
        .map(|r| r.stats.chunks_ingested * (CHUNK as u64) * 8)
        .sum();
    let mut lat: Vec<f64> = reports
        .iter()
        .flat_map(|r| r.emissions.iter().map(|e| e.latency.as_secs_f64() * 1e6))
        .collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);
    let p999 = percentile(&lat, 0.999);
    let max = lat.last().copied().unwrap_or(0.0);
    let sessions_per_sec = if wall_s > 0.0 { admitted as f64 / wall_s } else { 0.0 };
    let bytes_per_verdict = if verdicts > 0 { bytes as f64 / verdicts as f64 } else { 0.0 };

    // The replication overhead column: mean journal-append latency with
    // and without the synchronous replica ship, same record stream.
    let scratch = std::env::temp_dir()
        .join(format!("emoleak-fleet-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch)
        .map_err(|e| EmoleakError::Durable(format!("bench scratch dir: {e}")))?;
    let append_solo = journal_append_us(&scratch, 512, false);
    let append_repl = journal_append_us(&scratch, 512, true);
    // The transport overhead column: the same coordinator hot loop on the
    // direct path and through the ideal plane, with the serve counts
    // pinned equal (time is the only acceptable cost).
    let (tick_direct, served_direct, level_ticks) = coordinator_tick_us(&scratch, 256, false);
    let (tick_net, served_net, _) = coordinator_tick_us(&scratch, 256, true);
    assert!(
        served_direct == served_net,
        "the ideal plane changed what was served: {served_direct} direct vs {served_net} net"
    );
    let _ = std::fs::remove_dir_all(&scratch);
    let repl_overhead_pct =
        if append_solo > 0.0 { (append_repl / append_solo - 1.0) * 100.0 } else { 0.0 };
    let net_overhead_pct =
        if tick_direct > 0.0 { (tick_net / tick_direct - 1.0) * 100.0 } else { 0.0 };

    println!(
        "{ticks} ticks, {shards} shard(s): {offered} offered, {admitted} admitted \
         ({spilled} spilled to a sibling shard), {refused} refused"
    );
    println!(
        "{verdicts} verdicts in {wall_s:.2}s wall — {sessions_per_sec:.2} sessions/s, \
         verdict latency p50 {p50:.0}us p99 {p99:.0}us p99.9 {p999:.0}us max {max:.0}us, \
         {bytes_per_verdict:.0} bytes/verdict"
    );
    println!(
        "journal append: {append_solo:.1}us solo, {append_repl:.1}us replicated \
         ({repl_overhead_pct:+.0}% replication overhead)"
    );
    println!(
        "coordinator tick: {tick_direct:.1}us direct, {tick_net:.1}us through the ideal \
         plane ({net_overhead_pct:+.0}% transport overhead)"
    );

    let json = format!(
        "{{\n  \"ticks\": {ticks},\n  \"shards\": {shards},\n  \"mean_rate\": {rate},\n  \
         \"sessions_offered\": {offered},\n  \"sessions_admitted\": {admitted},\n  \
         \"sessions_spilled\": {spilled},\n  \"sessions_refused\": {refused},\n  \
         \"verdicts\": {verdicts},\n  \"wall_seconds\": {wall_s:.3},\n  \
         \"sessions_per_sec\": {sessions_per_sec:.3},\n  \
         \"verdict_latency_us\": {{\"p50\": {p50:.1}, \"p99\": {p99:.1}, \
         \"p999\": {p999:.1}, \"max\": {max:.1}}},\n  \
         \"journal_append_us\": {{\"solo\": {append_solo:.2}, \
         \"replicated\": {append_repl:.2}, \
         \"overhead_pct\": {repl_overhead_pct:.1}}},\n  \
         \"coordinator_tick_us\": {{\"direct\": {tick_direct:.2}, \
         \"ideal_net\": {tick_net:.2}, \
         \"overhead_pct\": {net_overhead_pct:.1}}},\n  \
         \"durability_level_ticks\": [{}, {}, {}, {}],\n  \
         \"bytes_per_verdict\": {bytes_per_verdict:.1}\n}}\n",
        level_ticks[0], level_ticks[1], level_ticks[2], level_ticks[3]
    );
    let path = std::env::var("EMOLEAK_FLEET_BENCH_JSON")
        .unwrap_or_else(|_| "BENCH_fleet.json".to_string());
    match write_result(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path} ({e}); JSON follows:\n{json}"),
    }
    assert!(verdicts > 0, "the bench produced no verdicts");
    Ok(())
}
