//! Disk-chaos harness for the storage fault domain.
//!
//! Drives `emoleak_fleet::FleetCoordinator` with every shard's durable
//! bytes routed through the seeded [`FaultVfs`](emoleak_durable::FaultVfs)
//! nemesis, over a grid of disk-failure scenarios × severities × seeds,
//! and asserts the *storage contract* on every run:
//!
//! * conservation — at every tick and after a full drain,
//!   `offered == served + rejected + shed + queued + migrated`, with
//!   `queued == 0` at the end. A dying disk may refuse or lose work; it
//!   may never make the books lie;
//! * zero escaped panics — ENOSPC, EIO storms, and dead-disk stalls are
//!   absorbed by the durability ladder, never thrown at this harness;
//! * ladder coherence — each shard's durability transitions form an
//!   unbroken chain from `Durable` (every `from` equals the previous
//!   `to`); under a monotone nemesis (a disk that only fills) the chain
//!   is also monotone: the ladder only descends;
//! * clean-path byte-identity — at severity 0 the nemesis is *armed but
//!   quiet*, and the run must be indistinguishable from the unarmed
//!   `OsVfs` path: identical fleet stats, identical served stream, and
//!   byte-identical shard journals. This is what makes the nemesis
//!   trustworthy: severity-0 faults cost nothing, so any nonzero-severity
//!   difference is the fault's doing alone;
//! * honest loss — when the mixed scenario kills a shard whose gauge had
//!   already degraded past journaling, the unaccounted residual is booked
//!   as `crash_loss` (a subset of `shed`), and anything replayed counts
//!   in `recovered ⊆ migrated` — never both for the same chunk.
//!
//! The simulation runs on the fleet's logical clock and the grid is
//! parallelized with order-preserving `par_map_indexed`, so
//! `results/disk_chaos.json` is **byte-identical under any
//! `EMOLEAK_THREADS`** (for a fixed shard count and replica setting) —
//! there are no wall-clock fields at all. Knobs:
//! `EMOLEAK_DISK_CHAOS_SEVERITIES` (comma list, default `0,1,2`),
//! `EMOLEAK_DISK_CHAOS_SEEDS` (default 2), `EMOLEAK_SHARDS`,
//! `EMOLEAK_REPLICAS`, `EMOLEAK_DISK_CHAOS_JSON` (artifact path). Exits
//! non-zero if any run violates the contract.

use emoleak_bench::write_result;
use emoleak_core::admission::DurabilityLevel;
use emoleak_core::EmoleakError;
use emoleak_durable::FaultPlan;
use emoleak_exec::par_map_indexed;
use emoleak_fleet::{
    shard_journal_path, DiskConfig, FleetConfig, FleetCoordinator, FleetStats,
};
use emoleak_stream::DiskGaugeConfig;
use std::collections::BTreeMap;

const TICKS: u64 = 300;
const TENANTS: [&str; 8] =
    ["amber", "brook", "coral", "dune", "ember", "fjord", "grove", "heath"];

/// Faultable ops that pass clean before the storm starts: enough for
/// every shard's journals (and their headers) to boot, so construction
/// never dies before the scenario begins.
const WARMUP_OPS: u64 = 64;

#[derive(Clone, Copy)]
enum Scenario {
    /// The disk fills as the run writes: free space ramps down through
    /// the gauge watermarks. At severity 2 the disk is born below the
    /// refuse watermark. The ladder must descend monotonically — a disk
    /// that only fills never earns a climb.
    EnospcRamp,
    /// Random EIO on writes, fsyncs, and renames. Error streaks walk the
    /// ladder down; clean streaks (plus the cooldown) earn it back.
    EioStorm,
    /// Stalling fsyncs. At severity 1 only every 4th fsync stalls —
    /// misses never streak, and the hysteresis must hold the ladder
    /// steady. At severity 2 every fsync stalls and the stall budget
    /// exhausts into EIO: the hung disk dies for real.
    FsyncStall,
    /// Everything at once — EIO, stalls, a finite disk — plus a mid-run
    /// shard kill, so degraded-mode exposure turns into real crash loss
    /// that must be booked honestly.
    Mixed,
}

impl Scenario {
    const ALL: [Scenario; 4] = [
        Scenario::EnospcRamp,
        Scenario::EioStorm,
        Scenario::FsyncStall,
        Scenario::Mixed,
    ];

    fn name(self) -> &'static str {
        match self {
            Scenario::EnospcRamp => "enospc_ramp",
            Scenario::EioStorm => "eio_storm",
            Scenario::FsyncStall => "fsync_stall",
            Scenario::Mixed => "mixed",
        }
    }

    /// The per-fleet fault plan (reseeded per shard by
    /// [`DiskConfig::shard_plan`]) and gauge for one grid cell. Severity
    /// 0 is the armed-but-quiet control.
    fn disk(self, severity: f64, seed: u64) -> DiskConfig {
        let quiet = FaultPlan::quiet(seed);
        if severity <= 0.0 {
            return DiskConfig { plan: Some(quiet), gauge: DiskGaugeConfig::default() };
        }
        let mut gauge = DiskGaugeConfig::default();
        let plan = match self {
            Scenario::EnospcRamp => {
                if severity >= 2.0 {
                    // Born beyond the refuse watermark: the first probe
                    // floors the gauge straight to RefuseWrites.
                    gauge.refuse_water = 2048;
                    FaultPlan { byte_budget: 1024, warmup_ops: WARMUP_OPS, ..quiet }
                } else {
                    FaultPlan { byte_budget: 8192, warmup_ops: WARMUP_OPS, ..quiet }
                }
            }
            Scenario::EioStorm => FaultPlan {
                eio_ppm: (severity * 150_000.0) as u32,
                warmup_ops: WARMUP_OPS,
                ..quiet
            },
            Scenario::FsyncStall => FaultPlan {
                stall_every: if severity >= 2.0 { 1 } else { 4 },
                stall_ticks: 8,
                stall_budget: if severity >= 2.0 { 4_000 } else { u64::MAX },
                warmup_ops: WARMUP_OPS,
                ..quiet
            },
            Scenario::Mixed => FaultPlan {
                byte_budget: if severity >= 2.0 { 6 * 1024 } else { 16 * 1024 },
                eio_ppm: (severity * 80_000.0) as u32,
                stall_every: 6,
                stall_ticks: 8,
                stall_budget: 3_000,
                warmup_ops: WARMUP_OPS,
                ..quiet
            },
        };
        DiskConfig { plan: Some(plan), gauge }
    }
}

struct RunSpec {
    scenario: Scenario,
    severity: f64,
    seed: u64,
    shards: u32,
    replicas: u32,
}

struct RunRecord {
    scenario: &'static str,
    severity: f64,
    seed: u64,
    ok: bool,
    violations: Vec<String>,
    offered: u64,
    served: u64,
    rejected: u64,
    shed: u64,
    migrated: u64,
    crash_loss: u64,
    recovered: u64,
    /// Durability transitions the fleet's service log recorded.
    transitions: usize,
    /// The worst level any live shard held at the end.
    worst: DurabilityLevel,
    /// Shard-ticks at each ladder rung, best first.
    level_ticks: [u64; 4],
    /// Records committed in memory but journaled nowhere, fleet-wide.
    unjournaled: u64,
    served_digest: u64,
}

fn fail_record(spec: &RunSpec, why: String) -> RunRecord {
    RunRecord {
        scenario: spec.scenario.name(),
        severity: spec.severity,
        seed: spec.seed,
        ok: false,
        violations: vec![why],
        offered: 0,
        served: 0,
        rejected: 0,
        shed: 0,
        migrated: 0,
        crash_loss: 0,
        recovered: 0,
        transitions: 0,
        worst: DurabilityLevel::Durable,
        level_ticks: [0; 4],
        unjournaled: 0,
        served_digest: 0,
    }
}

/// FNV-1a over the per-tenant served stream `(tenant, seq, cost)` —
/// the identity the severity-0 control compares against the unarmed path.
fn served_digest(served: &BTreeMap<String, Vec<(u64, u64)>>) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (tenant, chunks) in served {
        for b in tenant.bytes() {
            eat(b);
        }
        eat(0xFF);
        for (seq, cost) in chunks {
            for b in seq.to_le_bytes().into_iter().chain(cost.to_le_bytes()) {
                eat(b);
            }
        }
    }
    hash
}

/// One full fleet run under `disk`, with the per-tick conservation check
/// and (for the mixed scenario) the mid-run kill.
struct DriveOutcome {
    stats: FleetStats,
    digest: u64,
    transitions: Vec<(u64, u32, DurabilityLevel, DurabilityLevel)>,
    worst: DurabilityLevel,
    level_ticks: [u64; 4],
    unjournaled: u64,
    live: usize,
    violations: Vec<String>,
}

fn drive(spec: &RunSpec, disk: DiskConfig, dir: &std::path::Path) -> DriveOutcome {
    let mut cfg = FleetConfig {
        shards: spec.shards,
        replicas: spec.replicas,
        ledger_every: 10,
        scrub_every: 10,
        disk,
        ..FleetConfig::default()
    };
    cfg.admission.mem_budget = 1 << 16;
    cfg.admission.tenant_rps = 1_000_000;
    cfg.admission.tenant_burst = 1_000_000;
    let mut violations = Vec::new();
    let mut coord = match FleetCoordinator::new(cfg, dir) {
        Ok(c) => c,
        Err(e) => {
            return DriveOutcome {
                stats: FleetStats::default(),
                digest: 0,
                transitions: Vec::new(),
                worst: DurabilityLevel::Durable,
                level_ticks: [0; 4],
                unjournaled: 0,
                live: 0,
                violations: vec![format!("fleet dir unusable: {e}")],
            }
        }
    };
    let kill_tick = TICKS / 2;
    let mut served: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    let mut now = 0;
    while now < TICKS {
        if matches!(spec.scenario, Scenario::Mixed)
            && spec.severity > 0.0
            && now == kill_tick
            && coord.ring().len() > 1
        {
            let victim = coord.ring().route(TENANTS[0]);
            coord.kill_shard(victim, now);
        }
        for k in 0..2u64 {
            let t = TENANTS[((now * 2 + k) as usize) % TENANTS.len()];
            // Refusals (rate, memory, RefuseWrites) are legitimate under
            // a dying disk; they are counted and conserved, not hidden.
            let _ = coord.offer(t, 64 + (now + k) % 64, now);
        }
        for chunk in coord.advance(now, 4, &[]) {
            served.entry(chunk.tenant).or_default().push((chunk.seq, chunk.cost));
        }
        coord.react(now);
        if !coord.stats().conserves() {
            violations.push(format!("identity broken at tick {now}: {:?}", coord.stats()));
            break;
        }
        now += 1;
    }
    // Full drain: the identity must close with queued == 0.
    let mut drained = 0;
    while coord.stats().queued > 0 && drained < 10_000 {
        for chunk in coord.advance(now, usize::MAX, &[]) {
            served.entry(chunk.tenant).or_default().push((chunk.seq, chunk.cost));
        }
        now += 1;
        drained += 1;
    }
    for chunks in served.values_mut() {
        chunks.sort_unstable();
    }
    let stats = coord.stats();
    let view = coord.view();
    if !stats.conserves() {
        violations.push(format!("final identity broken: {stats:?}"));
    }
    if stats.queued != 0 {
        violations.push(format!("drained fleet still queues {} chunk(s)", stats.queued));
    }
    if view.live == 0 {
        violations.push("the fleet went dark: zero live shards".to_string());
    }
    DriveOutcome {
        stats,
        digest: served_digest(&served),
        transitions: coord.log().durability_transitions(),
        worst: view.durability_worst,
        level_ticks: view.durability_level_ticks,
        unjournaled: view.unjournaled_total,
        live: view.live,
        violations,
    }
}

/// Every shard's durability transitions must chain without gaps: the
/// first `from` is `Durable`, and each later `from` is the previous `to`.
fn check_chain(
    transitions: &[(u64, u32, DurabilityLevel, DurabilityLevel)],
    violations: &mut Vec<String>,
) {
    let mut last: BTreeMap<u32, DurabilityLevel> = BTreeMap::new();
    for &(tick, shard, from, to) in transitions {
        let expect = last.get(&shard).copied().unwrap_or(DurabilityLevel::Durable);
        if from != expect {
            violations.push(format!(
                "shard {shard} teleported at tick {tick}: {expect:?} on the gauge \
                 but the transition claims {from:?} -> {to:?}"
            ));
        }
        if from == to {
            violations.push(format!("shard {shard} logged a no-op transition at tick {tick}"));
        }
        last.insert(shard, to);
    }
}

fn simulate(spec: &RunSpec, dir: &std::path::Path) -> RunRecord {
    let disk = spec.scenario.disk(spec.severity, spec.seed);
    let out = drive(spec, disk, dir.join("armed").as_path());
    let mut violations = out.violations;
    check_chain(&out.transitions, &mut violations);

    if spec.severity == 0.0 {
        // The armed-but-quiet control: re-run the identical schedule on
        // the unarmed OsVfs path and demand indistinguishability, down
        // to the journal bytes.
        let bare = drive(spec, DiskConfig::default(), dir.join("bare").as_path());
        violations.extend(bare.violations.iter().map(|v| format!("unarmed control: {v}")));
        if out.stats != bare.stats {
            violations.push(format!(
                "a quiet nemesis changed the books: {:?} armed vs {:?} unarmed",
                out.stats, bare.stats
            ));
        }
        if out.digest != bare.digest {
            violations.push("a quiet nemesis changed what was served".to_string());
        }
        for id in 0..spec.shards {
            let armed = std::fs::read(shard_journal_path(&dir.join("armed"), id));
            let plain = std::fs::read(shard_journal_path(&dir.join("bare"), id));
            match (armed, plain) {
                (Ok(a), Ok(b)) if a == b => {}
                (Ok(_), Ok(_)) => violations
                    .push(format!("a quiet nemesis moved shard {id}'s journal bytes")),
                (a, b) => violations.push(format!(
                    "shard {id} journal unreadable for the byte compare: {a:?} vs {b:?}"
                )),
            }
        }
        if !out.transitions.is_empty() {
            violations.push(format!(
                "a quiet nemesis moved the ladder: {:?}",
                out.transitions
            ));
        }
        if out.worst != DurabilityLevel::Durable || out.level_ticks[1..] != [0, 0, 0] {
            violations.push(format!(
                "severity 0 must spend every tick at Durable, not {:?} / {:?}",
                out.worst, out.level_ticks
            ));
        }
        if out.unjournaled != 0 {
            violations.push(format!(
                "a quiet nemesis left {} record(s) unjournaled",
                out.unjournaled
            ));
        }
    } else {
        let degraded: u64 = out.level_ticks[1..].iter().sum();
        match spec.scenario {
            Scenario::EnospcRamp => {
                // A disk that only fills never earns a climb.
                for &(tick, shard, from, to) in &out.transitions {
                    if to < from {
                        violations.push(format!(
                            "shard {shard} climbed {from:?} -> {to:?} at tick {tick} \
                             while its disk only filled"
                        ));
                    }
                }
                if degraded == 0 {
                    violations.push("the filling disk never degraded anything".to_string());
                }
                if spec.severity >= 2.0 {
                    if out.level_ticks[3] == 0 {
                        violations.push(
                            "a disk born beyond the refuse watermark never refused".to_string(),
                        );
                    }
                    if out.stats.rejected == 0 {
                        violations.push(
                            "RefuseWrites never surfaced as front-door rejections".to_string(),
                        );
                    }
                }
            }
            Scenario::EioStorm => {
                if out.stats.crash_loss != 0 {
                    violations.push(format!(
                        "an EIO storm without a crash booked {} crash loss",
                        out.stats.crash_loss
                    ));
                }
                if spec.severity >= 2.0 && out.transitions.is_empty() {
                    violations
                        .push("a dense EIO storm never moved the ladder".to_string());
                }
            }
            Scenario::FsyncStall => {
                if spec.severity >= 2.0 {
                    if degraded == 0 {
                        violations.push(
                            "every fsync stalling never degraded the ladder".to_string(),
                        );
                    }
                } else if !out.transitions.is_empty() {
                    // Sporadic stalls (no two consecutive misses) must be
                    // absorbed by the hysteresis, not flap the ladder.
                    violations.push(format!(
                        "sporadic stalls flapped the ladder: {:?}",
                        out.transitions
                    ));
                }
            }
            Scenario::Mixed => {
                if out.stats.crash_loss > out.stats.shed {
                    violations.push(format!(
                        "crash_loss {} exceeds shed {} — loss booked twice",
                        out.stats.crash_loss, out.stats.shed
                    ));
                }
                if out.stats.recovered > out.stats.migrated {
                    violations.push(format!(
                        "recovered {} exceeds migrated {} — replay booked twice",
                        out.stats.recovered, out.stats.migrated
                    ));
                }
            }
        }
        let _ = out.live;
    }

    RunRecord {
        scenario: spec.scenario.name(),
        severity: spec.severity,
        seed: spec.seed,
        ok: violations.is_empty(),
        violations,
        offered: out.stats.offered,
        served: out.stats.served,
        rejected: out.stats.rejected,
        shed: out.stats.shed,
        migrated: out.stats.migrated,
        crash_loss: out.stats.crash_loss,
        recovered: out.stats.recovered,
        transitions: out.transitions.len(),
        worst: out.worst,
        level_ticks: out.level_ticks,
        unjournaled: out.unjournaled,
        served_digest: out.digest,
    }
}

fn run_one(index: usize, spec: &RunSpec) -> RunRecord {
    let dir = std::env::temp_dir().join(format!(
        "emoleak-disk-chaos-{}-{index}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        simulate(spec, &dir)
    }));
    let _ = std::fs::remove_dir_all(&dir);
    match outcome {
        Ok(record) => record,
        Err(_) => fail_record(spec, "escaped panic in the storage layer".to_string()),
    }
}

fn level_name(level: DurabilityLevel) -> &'static str {
    match level {
        DurabilityLevel::Durable => "durable",
        DurabilityLevel::ReplicaOnly => "replica_only",
        DurabilityLevel::MemoryOnly => "memory_only",
        DurabilityLevel::RefuseWrites => "refuse_writes",
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn to_json(records: &[RunRecord], shards: u32, replicas: u32) -> String {
    let mut out =
        format!("{{\n  \"shards\": {shards},\n  \"replicas\": {replicas},\n  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"severity\": {}, \"seed\": {}, \"ok\": {}, \
             \"offered\": {}, \"served\": {}, \"rejected\": {}, \"shed\": {}, \
             \"migrated\": {}, \"crash_loss\": {}, \"recovered\": {}, \
             \"transitions\": {}, \"worst_durability\": \"{}\", \
             \"durability_level_ticks\": [{}, {}, {}, {}], \"unjournaled\": {}, \
             \"served_digest\": \"{:016x}\", \"violations\": [{}]}}{}\n",
            r.scenario,
            json_num(r.severity),
            r.seed,
            r.ok,
            r.offered,
            r.served,
            r.rejected,
            r.shed,
            r.migrated,
            r.crash_loss,
            r.recovered,
            r.transitions,
            level_name(r.worst),
            r.level_ticks[0],
            r.level_ticks[1],
            r.level_ticks[2],
            r.level_ticks[3],
            r.unjournaled,
            r.served_digest,
            r.violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    let mut ticks_total = [0u64; 4];
    for r in records {
        for (t, add) in ticks_total.iter_mut().zip(r.level_ticks) {
            *t += add;
        }
    }
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\n    \"durability_level_ticks\": [{}, {}, {}, {}],\n    \
         \"transitions_total\": {},\n    \"crash_loss_total\": {},\n    \
         \"unjournaled_total\": {}\n  }},\n",
        ticks_total[0],
        ticks_total[1],
        ticks_total[2],
        ticks_total[3],
        records.iter().map(|r| r.transitions).sum::<usize>(),
        records.iter().map(|r| r.crash_loss).sum::<u64>(),
        records.iter().map(|r| r.unjournaled).sum::<u64>(),
    ));
    out.push_str(&format!(
        "  \"total_runs\": {},\n  \"failed_runs\": {failed}\n}}\n",
        records.len()
    ));
    out
}

fn main() -> Result<(), EmoleakError> {
    println!("Disk chaos: ENOSPC ramps, EIO storms, fsync stalls, and the durability ladder");

    let severities: Vec<f64> = emoleak_exec::parse_list_checked(
        "EMOLEAK_DISK_CHAOS_SEVERITIES",
        "comma-separated non-negative numbers",
        |&s: &f64| s.is_finite() && s >= 0.0,
    )?
    .unwrap_or_else(|| vec![0.0, 1.0, 2.0]);
    let seeds: u64 = emoleak_exec::parse_checked(
        "EMOLEAK_DISK_CHAOS_SEEDS",
        "a positive count",
        |&n: &u64| n > 0,
    )?
    .unwrap_or(2);
    // EMOLEAK_SHARDS / EMOLEAK_REPLICAS come through the fleet config;
    // the grid overrides `disk` per cell, so the env's own EMOLEAK_DISK_*
    // arming (if any) does not leak into the runs.
    let env_cfg = FleetConfig::from_env()?;
    let (shards, replicas) = (env_cfg.shards, env_cfg.replicas);

    let mut grid = Vec::new();
    for scenario in Scenario::ALL {
        for &severity in &severities {
            for seed in 0..seeds {
                grid.push(RunSpec {
                    scenario,
                    severity,
                    seed: 0xD15C ^ (seed.wrapping_mul(0x9E37_79B9)) ^ (severity.to_bits() >> 17),
                    shards,
                    replicas,
                });
            }
        }
    }
    // Order-preserving parallel map: the record order — and therefore the
    // JSON bytes — is the grid order under any EMOLEAK_THREADS.
    let records = par_map_indexed(&grid, run_one);

    println!(
        "{:<14} {:>4} {:>6} {:>8} {:>8} {:>8} {:>6} {:>5} {:>6} {:>14} {:>20} {:>6}",
        "scenario", "sev", "ok", "offered", "served", "rejected", "shed", "loss", "moves",
        "worst", "level_ticks", "unjrnl"
    );
    println!("{}", "-".repeat(118));
    for r in &records {
        println!(
            "{:<14} {:>4} {:>6} {:>8} {:>8} {:>8} {:>6} {:>5} {:>6} {:>14} {:>20} {:>6}",
            r.scenario,
            r.severity,
            if r.ok { "ok" } else { "FAIL" },
            r.offered,
            r.served,
            r.rejected,
            r.shed,
            r.crash_loss,
            r.transitions,
            level_name(r.worst),
            format!(
                "{}/{}/{}/{}",
                r.level_ticks[0], r.level_ticks[1], r.level_ticks[2], r.level_ticks[3]
            ),
            r.unjournaled,
        );
        for v in &r.violations {
            println!("    violation: {v}");
        }
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    println!(
        "\n{} runs ({} shards, {} replica(s)), {} violations; transitions: {}, \
         crash loss: {}, unjournaled: {}",
        records.len(),
        shards,
        replicas,
        failed,
        records.iter().map(|r| r.transitions).sum::<usize>(),
        records.iter().map(|r| r.crash_loss).sum::<u64>(),
        records.iter().map(|r| r.unjournaled).sum::<u64>(),
    );

    let json = to_json(&records, shards, replicas);
    let path = std::env::var("EMOLEAK_DISK_CHAOS_JSON")
        .unwrap_or_else(|_| "results/disk_chaos.json".to_string());
    match write_result(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path} ({e}); JSON follows:\n{json}"),
    }
    assert!(failed == 0, "{failed} disk run(s) violated the contract");
    Ok(())
}
