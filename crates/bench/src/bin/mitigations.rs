//! §VI-B — risk-mitigation study: vibration damping / sensor relocation,
//! modeled as scaling the chassis coupling, plus the delivered-data
//! high-pass from Table I.

use emoleak_bench::{clips_per_cell, Report};
use emoleak_core::mitigation::damping_study;
use emoleak_core::prelude::*;
use emoleak_core::ClassifierKind;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?.min(20));
    let mut report = Report::new("mitigations");
    report.banner("Mitigations: vibration damping / sensor relocation (TESS / OnePlus 7T)",
                  corpus.random_guess());
    let scenario = AttackScenario::table_top(corpus, DeviceProfile::oneplus_7t());
    report.line(format!("{:<24} {:>10}", "coupling remaining", "accuracy"));
    // Each damping level is an independent campaign: sweep in parallel.
    let levels = [1.0, 0.5, 0.25, 0.1, 0.05, 0.02];
    let accs = emoleak_exec::par_map_indexed(&levels, |_, &damping| {
        damping_study(&scenario, ClassifierKind::Logistic, damping, 0x317)
    });
    for (&damping, acc) in levels.iter().zip(accs) {
        report.line(format!("{:<24} {:>9.2}%", format!("{:.0}%", damping * 100.0), acc? * 100.0));
    }
    report.line(format!("(random guess {:.2}%)", scenario.corpus.random_guess() * 100.0));
    report.publish()?;
    Ok(())
}
