//! Kill-and-resume chaos harness for the durability layer.
//!
//! Runs a real (small) fault-sweep campaign — TESS through the vibration
//! channel, 2 fault axes × 3 severities — under `emoleak-durable`
//! checkpointing, then attacks it:
//!
//! 1. **Seeded kill points**: the campaign is killed at N randomized
//!    durable operations (including mid-journal-append, with a random
//!    fraction of the record's bytes on disk, and between an atomic
//!    write's fsync and its rename), then resumed. The resumed run's
//!    payloads and rendered JSON must be **byte-identical** to an
//!    uninterrupted run.
//! 2. **Corruption injections**: journal truncation, journal bit flips,
//!    snapshot bit flips, a stale manifest, and a future-version header.
//!    Every one must be detected via checksum/version (typed
//!    `DurableError`/`Defect`, never a panic) and recovered from the
//!    last valid state — again byte-identically.
//!
//! Knobs: `EMOLEAK_CRASH_KILLS` (randomized kill points, default 6),
//! `EMOLEAK_CRASH_SEED` (kill-point RNG, default 0xC4A5),
//! `EMOLEAK_CRASH_JSON` (report path, default `results/crash_recovery.json`).

use emoleak_bench::{campaign_fingerprint, write_result};
use emoleak_core::prelude::*;
use emoleak_core::{evaluate_features, ClassifierKind, Protocol};
use emoleak_durable::{
    journal_path, manifest_path, run_resumable, CampaignError, CampaignSpec, CrashPlan, Dec, Enc,
    Outcome, RunOptions, JOURNAL_MAGIC, JOURNAL_VERSION,
};
use emoleak_phone::FaultProfile;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

const SEED: u64 = 0x0C4A;
const SEVERITIES: [f64; 3] = [0.0, 1.0, 4.0];

/// One fault axis of the chaos campaign (a slice of the robustness sweep).
fn axes() -> Vec<(&'static str, FaultProfile)> {
    vec![
        (
            "delivery",
            FaultProfile {
                drop_rate: 0.10,
                dup_rate: 0.03,
                jitter_std_s: 1.0e-3,
                ..FaultProfile::clean()
            },
        ),
        (
            "motion",
            FaultProfile {
                burst_rate_hz: 1.8,
                burst_amp: 0.12,
                burst_duration_s: 0.12,
                ..FaultProfile::clean()
            },
        ),
    ]
}

fn clips() -> Result<usize, EmoleakError> {
    Ok(emoleak_exec::parse_checked("EMOLEAK_CLIPS", "a positive integer", |&n: &usize| n > 0)?
        .unwrap_or(2)
        .min(4))
}

/// Computes units `range` of the campaign grid: one payload per
/// (axis, severity) cell, holding severity, accuracy, and region count as
/// raw bits.
fn compute_units(
    grid: &[(usize, f64)],
    range: std::ops::Range<usize>,
) -> Result<Vec<Vec<u8>>, EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips()?);
    let random_guess = corpus.random_guess();
    let axes = axes();
    emoleak_exec::par_map_indexed(&grid[range], |_, &(ai, severity)| {
        let scenario =
            AttackScenario::table_top(corpus.clone(), DeviceProfile::oneplus_7t())
                .with_faults(axes[ai].1.clone().with_severity(severity));
        let h = scenario.harvest()?;
        let accuracy = match evaluate_features(
            &h.features,
            ClassifierKind::Logistic,
            Protocol::Holdout8020,
            SEED,
        ) {
            Ok(eval) => eval.accuracy,
            Err(EmoleakError::DegenerateDataset(_)) => random_guess,
            Err(e) => return Err(e),
        };
        let mut enc = Enc::new();
        enc.u64(ai as u64).f64(severity).f64(accuracy).u64(h.features.len() as u64);
        Ok(enc.into_bytes())
    })
    .into_iter()
    .collect()
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Renders the campaign's final artifact from its unit payloads. The chaos
/// contract is on these bytes: clean vs killed-and-resumed must be equal.
fn render_json(payloads: &[Vec<u8>]) -> String {
    let axes = axes();
    let mut out = String::from("{\n  \"cells\": [\n");
    for (i, payload) in payloads.iter().enumerate() {
        let mut dec = Dec::new(payload);
        let ai = dec.u64().expect("own payload") as usize;
        let severity = dec.f64().expect("own payload");
        let accuracy = dec.f64().expect("own payload");
        let regions = dec.u64().expect("own payload");
        out.push_str(&format!(
            "    {{\"axis\": \"{}\", \"severity\": {}, \"accuracy\": {}, \"regions\": {}}}{}\n",
            axes[ai].0,
            json_num(severity),
            json_num(accuracy),
            regions,
            if i + 1 < payloads.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One chaos trial's outcome for the report.
struct Trial {
    name: String,
    detail: String,
    defects: Vec<String>,
    ok: bool,
}

struct Harness {
    spec: CampaignSpec,
    grid: Vec<(usize, f64)>,
    clean_payloads: Vec<Vec<u8>>,
    clean_json: String,
    base: PathBuf,
    trials: Vec<Trial>,
}

impl Harness {
    fn opts(crash: Option<CrashPlan>) -> RunOptions {
        RunOptions { chunk: emoleak_exec::threads().max(1), snapshot_every: 2, crash }
    }

    fn run(&self, dir: Option<&Path>, crash: Option<CrashPlan>) -> Result<Outcome, String> {
        let grid = self.grid.clone();
        run_resumable(dir, &self.spec, &Self::opts(crash), &mut |range| {
            compute_units(&grid, range)
        })
        .map_err(|e| match e {
            CampaignError::App(a) => format!("compute failed: {a}"),
            CampaignError::Durable(d) => format!("durable: {d}"),
        })
    }

    fn scratch(&self, name: &str) -> PathBuf {
        let dir = self.base.join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Kills the campaign at `at_op` (torn fraction `frac`), resumes until
    /// it completes, and checks byte-identity. Returns the trial.
    fn kill_trial(&self, name: &str, dir: &Path, at_op: u64, frac: f64) -> Trial {
        let mut defects = Vec::new();
        let err = match self.run(Some(dir), Some(CrashPlan::kill(at_op, frac))) {
            Err(e) => e,
            Ok(_) => {
                return Trial {
                    name: name.into(),
                    detail: format!("kill at op {at_op} never fired"),
                    defects,
                    ok: false,
                }
            }
        };
        if !err.contains("injected crash") {
            return Trial {
                name: name.into(),
                detail: format!("expected injected crash at op {at_op}, got: {err}"),
                defects,
                ok: false,
            };
        }
        self.resume_and_check(name, dir, format!("killed at op {at_op} (frac {frac:.2})"), &mut defects)
    }

    /// Resumes `dir` (up to 3 attempts) and verifies byte-identity with the
    /// clean run.
    fn resume_and_check(
        &self,
        name: &str,
        dir: &Path,
        detail: String,
        defects: &mut Vec<String>,
    ) -> Trial {
        for _attempt in 0..3 {
            match self.run(Some(dir), None) {
                Ok(outcome) => {
                    defects.extend(outcome.defects.iter().map(|d| d.to_string()));
                    let json = render_json(&outcome.payloads);
                    let ok = outcome.payloads == self.clean_payloads
                        && json == self.clean_json;
                    let detail = if ok {
                        format!("{detail}; resumed {} unit(s), byte-identical", outcome.resumed_units)
                    } else {
                        format!("{detail}; RESUMED RUN DIVERGED")
                    };
                    return Trial { name: name.into(), detail, defects: defects.clone(), ok };
                }
                Err(e) => defects.push(format!("resume attempt failed: {e}")),
            }
        }
        Trial {
            name: name.into(),
            detail: format!("{detail}; never completed after 3 resume attempts"),
            defects: defects.clone(),
            ok: false,
        }
    }
}

fn flip_byte(path: &Path, from_end: usize, mask: u8) {
    let mut bytes = std::fs::read(path).expect("corruption target exists");
    let idx = bytes.len().saturating_sub(from_end.min(bytes.len() - 1) + 1);
    bytes[idx] ^= mask;
    std::fs::write(path, &bytes).expect("write corrupted bytes");
}

fn newest_snapshot(dir: &Path) -> Option<PathBuf> {
    let mut snaps: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let seq: u64 = name.strip_prefix("snap-")?.strip_suffix(".bin")?.parse().ok()?;
            Some((seq, e.path()))
        })
        .collect();
    snaps.sort();
    snaps.pop().map(|(_, p)| p)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() -> Result<(), EmoleakError> {
    let kills: u64 =
        emoleak_exec::parse_checked("EMOLEAK_CRASH_KILLS", "a kill count", |_| true)?.unwrap_or(6);
    let chaos_seed: u64 =
        emoleak_exec::parse_checked("EMOLEAK_CRASH_SEED", "a u64 seed", |_| true)?
            .unwrap_or(0xC4A5);
    println!("crash_recovery: kill-and-resume chaos over a checkpointed campaign");
    println!("(kills = {kills}, chaos seed = {chaos_seed:#x}, clips/cell = {})\n", clips()?);

    let grid: Vec<(usize, f64)> = (0..axes().len())
        .flat_map(|ai| SEVERITIES.iter().map(move |&s| (ai, s)))
        .collect();
    let spec = CampaignSpec {
        id: "crash_recovery".into(),
        fingerprint: campaign_fingerprint(&[
            &format!("seed={SEED:#x}"),
            &format!("clips={}", clips()?),
            &format!("severities={SEVERITIES:?}"),
        ]),
        total: grid.len(),
    };

    let base = std::env::temp_dir().join(format!("emoleak-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut harness = Harness {
        spec,
        grid,
        clean_payloads: Vec::new(),
        clean_json: String::new(),
        base,
        trials: Vec::new(),
    };

    // Baseline 1: the uninterrupted, durability-free run. Its payloads and
    // JSON are the identity target for every chaos trial.
    let clean = harness.run(None, None).map_err(EmoleakError::Durable)?;
    harness.clean_payloads = clean.payloads;
    harness.clean_json = render_json(&harness.clean_payloads);

    // Baseline 2: a durable dry run. Verifies checkpointing itself changes
    // nothing and measures the op count the kill points aim at.
    let dry_dir = harness.scratch("dry");
    let dry = harness.run(Some(&dry_dir), None).map_err(EmoleakError::Durable)?;
    let total_ops = dry.ops;
    {
        let ok = dry.payloads == harness.clean_payloads;
        harness.trials.push(Trial {
            name: "durable-dry-run".into(),
            detail: format!("{total_ops} durable op(s); checkpointed == clean: {ok}"),
            defects: Vec::new(),
            ok,
        });
    }

    // Seeded kill points, including mid-append tears and the snapshot /
    // manifest / journal-reset boundaries (ops 1..=total are uniform, so
    // rename-boundary kills are hit as soon as kills ≳ ops/3).
    let mut rng = rand::rngs::StdRng::seed_from_u64(chaos_seed);
    for k in 0..kills {
        let at_op = rng.gen_range(1..=total_ops);
        let frac: f64 = rng.gen_range(0.05..0.95);
        let name = format!("kill-{k}");
        let dir = harness.scratch(&name);
        let trial = harness.kill_trial(&name, &dir, at_op, frac);
        harness.trials.push(trial);
    }

    // A double kill: the resume itself is killed again before completing.
    if total_ops >= 2 {
        let dir = harness.scratch("double-kill");
        let first = harness.kill_trial("double-kill/first", &dir, total_ops / 2, 0.5);
        harness.trials.push(first);
        // Re-kill an almost-finished directory at its first remaining op.
        let trial = harness.kill_trial("double-kill/second", &dir, 1, 0.3);
        harness.trials.push(trial);
    }

    // An fsync failure the process *survives*: the first append's sync
    // "fails" (EIO from a dying disk), the journal latches and refuses the
    // run rather than silently continuing on an unknowable tail, and a
    // reopen re-verifies the tail and completes byte-identically.
    {
        let dir = harness.scratch("fsync-fail");
        let trial = match harness.run(Some(&dir), Some(CrashPlan::fsync_fail(1))) {
            Ok(_) => Trial {
                name: "fsync-fail".into(),
                detail: "fsync failure at op 1 never fired".into(),
                defects: Vec::new(),
                ok: false,
            },
            Err(err) => {
                let latched = err.contains("injected crash") && err.contains("latched");
                let mut defects = vec![format!("run refused: {err}")];
                let mut trial = harness.resume_and_check(
                    "fsync-fail",
                    &dir,
                    "fsync failed at op 1; journal latched, process survived".into(),
                    &mut defects,
                );
                trial.ok &= latched;
                trial
            }
        };
        harness.trials.push(trial);
    }

    // Corruption injections: each must surface a typed defect AND converge
    // to the clean bytes.
    {
        // Torn + externally truncated journal.
        let dir = harness.scratch("truncate-journal");
        let _ = harness.run(Some(&dir), Some(CrashPlan::kill(2, 0.6)));
        let journal = journal_path(&dir);
        let bytes = std::fs::read(&journal).expect("journal exists");
        std::fs::write(&journal, &bytes[..bytes.len().saturating_sub(3)]).expect("truncate");
        let mut defects = Vec::new();
        let mut trial = harness.resume_and_check(
            "truncate-journal",
            &dir,
            "journal truncated mid-record".into(),
            &mut defects,
        );
        trial.ok &= trial.defects.iter().any(|d| d.contains("torn journal tail"));
        harness.trials.push(trial);
    }
    {
        // Bit flip inside a committed journal record.
        let dir = harness.scratch("bitflip-journal");
        let _ = harness.run(Some(&dir), Some(CrashPlan::kill(2, 0.6)));
        flip_byte(&journal_path(&dir), 40, 0x20);
        let mut defects = Vec::new();
        let mut trial = harness.resume_and_check(
            "bitflip-journal",
            &dir,
            "bit flipped in journal record".into(),
            &mut defects,
        );
        trial.ok &= trial
            .defects
            .iter()
            .any(|d| d.contains("corrupt journal record") || d.contains("torn journal tail"));
        harness.trials.push(trial);
    }
    {
        // Bit flip inside the newest snapshot of a completed campaign.
        let dir = harness.scratch("bitflip-snapshot");
        harness.run(Some(&dir), None).map_err(EmoleakError::Durable)?;
        let snap = newest_snapshot(&dir).expect("completed campaign has snapshots");
        flip_byte(&snap, 10, 0x40);
        let mut defects = Vec::new();
        let mut trial = harness.resume_and_check(
            "bitflip-snapshot",
            &dir,
            "bit flipped in newest snapshot".into(),
            &mut defects,
        );
        trial.ok &= trial.defects.iter().any(|d| d.contains("stale manifest"));
        harness.trials.push(trial);
    }
    {
        // Manifest pointing at a snapshot that does not exist.
        let dir = harness.scratch("stale-manifest");
        harness.run(Some(&dir), None).map_err(EmoleakError::Durable)?;
        let mut payload = Enc::new();
        payload.u64(999);
        emoleak_durable::write_container(
            emoleak_durable::MANIFEST_MAGIC,
            emoleak_durable::MANIFEST_VERSION,
            &manifest_path(&dir),
            &payload.into_bytes(),
        )
        .map_err(|e| EmoleakError::Durable(e.to_string()))?;
        let mut defects = Vec::new();
        let mut trial = harness.resume_and_check(
            "stale-manifest",
            &dir,
            "manifest points at snapshot #999".into(),
            &mut defects,
        );
        trial.ok &= trial.defects.iter().any(|d| d.contains("stale manifest"));
        harness.trials.push(trial);
    }
    {
        // A journal from a future format version: typed fatal error, then a
        // fresh directory completes cleanly.
        let dir = harness.scratch("future-version");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut header = JOURNAL_MAGIC.to_vec();
        header.extend_from_slice(&(JOURNAL_VERSION + 1).to_le_bytes());
        std::fs::write(journal_path(&dir), &header).expect("write vnext header");
        let err = harness.run(Some(&dir), None).expect_err("future version must refuse");
        let typed = err.contains("version error");
        let mut defects = vec![format!("open refused: {err}")];
        std::fs::remove_dir_all(&dir).expect("clear damaged dir");
        let mut trial = harness.resume_and_check(
            "future-version",
            &dir,
            "v-next journal header refused with typed error".into(),
            &mut defects,
        );
        trial.ok &= typed;
        harness.trials.push(trial);
    }

    // Report.
    println!("{:<22} {:<6} detail", "trial", "ok");
    println!("{}", "-".repeat(78));
    let mut failed = 0;
    for t in &harness.trials {
        println!("{:<22} {:<6} {}", t.name, if t.ok { "ok" } else { "FAIL" }, t.detail);
        for d in &t.defects {
            println!("{:<22} {:<6}   defect: {d}", "", "");
        }
        if !t.ok {
            failed += 1;
        }
    }
    println!(
        "\n{} trial(s), {} failed; campaign = {} unit(s), {} durable op(s) per clean run",
        harness.trials.len(),
        failed,
        harness.spec.total,
        total_ops
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"kills\": {kills},\n  \"chaos_seed\": {chaos_seed},\n"));
    json.push_str(&format!("  \"total_ops\": {total_ops},\n  \"trials\": [\n"));
    for (i, t) in harness.trials.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ok\": {}, \"detail\": \"{}\", \"defects\": [{}]}}{}\n",
            json_escape(&t.name),
            t.ok,
            json_escape(&t.detail),
            t.defects
                .iter()
                .map(|d| format!("\"{}\"", json_escape(d)))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < harness.trials.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = std::env::var("EMOLEAK_CRASH_JSON")
        .unwrap_or_else(|_| "results/crash_recovery.json".to_string());
    match write_result(Path::new(&path), json.as_bytes()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path} ({e}); JSON follows:\n{json}"),
    }

    let _ = std::fs::remove_dir_all(&harness.base);
    assert_eq!(failed, 0, "{failed} chaos trial(s) violated the durability contract");
    Ok(())
}
