//! Table III — SAVEE dataset, loudspeaker/table-top, OnePlus 7T and
//! Pixel 5.
//!
//! Paper: Logistic 53.77 % / 44.44 %, MultiClass 51.85 % / 52.97 %,
//! trees.LMT 51.58 % / 53.00 %, CNN 46.98 % / 44.18 %, spectrogram CNN
//! 39.16 % / 35.38 % (random guess 14.28 %).
//!
//! With `EMOLEAK_CHECKPOINT_DIR` set, each completed device column is
//! journaled and a killed run resumes from its cursor, byte-identically.

use emoleak_bench::{
    campaign_fingerprint, clips_per_cell, decode_column, encode_column, loudspeaker_column,
    run_campaign, skip_cnn, Report,
};
use emoleak_core::prelude::*;

const SEED: u64 = 0x7AB3;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::savee().with_clips_per_cell(clips_per_cell()?);
    let mut report = Report::new("table3_savee");
    report.banner("Table III: SAVEE / loudspeaker", corpus.random_guess());
    let devices = [DeviceProfile::oneplus_7t(), DeviceProfile::pixel_5()];
    let mut table = ResultTable::new(
        "SAVEE (time-frequency features + spectrograms)",
        devices.iter().map(|d| d.name().to_string()).collect(),
    );
    let device_names: Vec<&str> = devices.iter().map(|d| d.name()).collect();
    let fingerprint = campaign_fingerprint(&[
        &format!("seed={SEED:#x}"),
        &format!("clips={}", clips_per_cell()?),
        &format!("skip_cnn={}", skip_cnn()),
        &device_names.join(","),
    ]);
    // One campaign unit per device column; within a chunk the columns run
    // in parallel, and completed columns are checkpointed.
    let columns = run_campaign(
        "table3_savee",
        fingerprint,
        devices.len(),
        encode_column,
        decode_column,
        |range| {
            emoleak_exec::par_map_indexed(&devices[range], |_, d| {
                loudspeaker_column(&AttackScenario::table_top(corpus.clone(), d.clone()), SEED)
            })
            .into_iter()
            .collect()
        },
    )?;
    for row in 0..columns[0].len() {
        let label = columns[0][row].0.clone();
        table.push_row(&label, columns.iter().map(|c| c[row].1).collect());
    }
    table.push_note("paper: Logistic 53.77%/44.44%, CNN 46.98%/44.18%, spec-CNN 39.16%/35.38%");
    table.push_note("random guess 14.28%");
    report.block(table.render());
    report.publish()?;
    Ok(())
}
