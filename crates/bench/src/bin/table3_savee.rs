//! Table III — SAVEE dataset, loudspeaker/table-top, OnePlus 7T and
//! Pixel 5.
//!
//! Paper: Logistic 53.77 % / 44.44 %, MultiClass 51.85 % / 52.97 %,
//! trees.LMT 51.58 % / 53.00 %, CNN 46.98 % / 44.18 %, spectrogram CNN
//! 39.16 % / 35.38 % (random guess 14.28 %).

use emoleak_bench::{banner, clips_per_cell, loudspeaker_column};
use emoleak_core::prelude::*;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::savee().with_clips_per_cell(clips_per_cell());
    banner("Table III: SAVEE / loudspeaker", corpus.random_guess());
    let devices = [DeviceProfile::oneplus_7t(), DeviceProfile::pixel_5()];
    let mut table = ResultTable::new(
        "SAVEE (time-frequency features + spectrograms)",
        devices.iter().map(|d| d.name().to_string()).collect(),
    );
    // One campaign per device column, all columns in parallel.
    let columns = emoleak_exec::par_map_indexed(&devices, |_, d| {
        loudspeaker_column(
            &AttackScenario::table_top(corpus.clone(), d.clone()),
            0x7AB3,
        )
    })
    .into_iter()
    .collect::<Result<Vec<Vec<(String, f64)>>, _>>()?;
    for row in 0..columns[0].len() {
        let label = columns[0][row].0.clone();
        table.push_row(&label, columns.iter().map(|c| c[row].1).collect());
    }
    table.push_note("paper: Logistic 53.77%/44.44%, CNN 46.98%/44.18%, spec-CNN 39.16%/35.38%");
    table.push_note("random guess 14.28%");
    print!("{}", table.render());
    Ok(())
}
