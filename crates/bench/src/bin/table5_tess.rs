//! Table V — TESS dataset, loudspeaker/table-top, five devices.
//!
//! Paper (best per device): OnePlus 7T 95.3 % (CNN), Galaxy S10 85.37 %
//! (spec-CNN), Pixel 5 82.62 % (CNN), Galaxy S21 88.49 % (CNN), S21 Ultra
//! 85.74 % (spec-CNN); random guess 14.28 %.

use emoleak_bench::{banner, clips_per_cell, loudspeaker_column};
use emoleak_core::prelude::*;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell());
    banner("Table V: TESS / loudspeaker", corpus.random_guess());
    let devices = [
        DeviceProfile::oneplus_7t(),
        DeviceProfile::galaxy_s10(),
        DeviceProfile::pixel_5(),
        DeviceProfile::galaxy_s21(),
        DeviceProfile::galaxy_s21_ultra(),
    ];
    let mut table = ResultTable::new(
        "TESS (time-frequency features + spectrograms)",
        devices.iter().map(|d| d.name().to_string()).collect(),
    );
    // One campaign per device column, all five columns in parallel.
    let columns = emoleak_exec::par_map_indexed(&devices, |_, d| {
        loudspeaker_column(
            &AttackScenario::table_top(corpus.clone(), d.clone()),
            0x7E55,
        )
    })
    .into_iter()
    .collect::<Result<Vec<Vec<(String, f64)>>, _>>()?;
    for row in 0..columns[0].len() {
        let label = columns[0][row].0.clone();
        table.push_row(&label, columns.iter().map(|c| c[row].1).collect());
    }
    table.push_note("paper best-per-device: 95.3%, 85.37%, 82.62%, 88.49%, 85.74%");
    table.push_note("random guess 14.28%");
    print!("{}", table.render());
    Ok(())
}
