//! Table V — TESS dataset, loudspeaker/table-top, five devices.
//!
//! Paper (best per device): OnePlus 7T 95.3 % (CNN), Galaxy S10 85.37 %
//! (spec-CNN), Pixel 5 82.62 % (CNN), Galaxy S21 88.49 % (CNN), S21 Ultra
//! 85.74 % (spec-CNN); random guess 14.28 %.
//!
//! With `EMOLEAK_CHECKPOINT_DIR` set, each completed device column is
//! journaled and a killed run resumes from its cursor, byte-identically.

use emoleak_bench::{
    campaign_fingerprint, clips_per_cell, decode_column, encode_column, loudspeaker_column,
    run_campaign, skip_cnn, Report,
};
use emoleak_core::prelude::*;

const SEED: u64 = 0x7E55;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?);
    let mut report = Report::new("table5_tess");
    report.banner("Table V: TESS / loudspeaker", corpus.random_guess());
    let devices = [
        DeviceProfile::oneplus_7t(),
        DeviceProfile::galaxy_s10(),
        DeviceProfile::pixel_5(),
        DeviceProfile::galaxy_s21(),
        DeviceProfile::galaxy_s21_ultra(),
    ];
    let mut table = ResultTable::new(
        "TESS (time-frequency features + spectrograms)",
        devices.iter().map(|d| d.name().to_string()).collect(),
    );
    let device_names: Vec<&str> = devices.iter().map(|d| d.name()).collect();
    let fingerprint = campaign_fingerprint(&[
        &format!("seed={SEED:#x}"),
        &format!("clips={}", clips_per_cell()?),
        &format!("skip_cnn={}", skip_cnn()),
        &device_names.join(","),
    ]);
    // One campaign unit per device column; within a chunk the columns run
    // in parallel, and completed columns are checkpointed.
    let columns = run_campaign(
        "table5_tess",
        fingerprint,
        devices.len(),
        encode_column,
        decode_column,
        |range| {
            emoleak_exec::par_map_indexed(&devices[range], |_, d| {
                loudspeaker_column(&AttackScenario::table_top(corpus.clone(), d.clone()), SEED)
            })
            .into_iter()
            .collect()
        },
    )?;
    for row in 0..columns[0].len() {
        let label = columns[0][row].0.clone();
        table.push_row(&label, columns.iter().map(|c| c[row].1).collect());
    }
    table.push_note("paper best-per-device: 95.3%, 85.37%, 82.62%, 88.49%, 85.74%");
    table.push_note("random guess 14.28%");
    report.block(table.render());
    report.publish()?;
    Ok(())
}
