//! Figure 7 — CNN training/validation loss and accuracy curves for the
//! TESS dataset, loudspeaker (a, b) and ear speaker (c, d).

use emoleak_bench::{clips_per_cell, Report};
use emoleak_core::pipeline::{cnn_train_config, cnn_width_divisor};
use emoleak_core::prelude::*;
use emoleak_core::report::render_history;
use emoleak_ml::nn::CnnClassifier;
use emoleak_ml::Classifier;

fn curves(
    report: &mut Report,
    name: &str,
    harvest: &emoleak_core::HarvestResult,
) -> Result<(), EmoleakError> {
    let mut features = harvest.features.clone();
    features.fit_normalization();
    let mut cnn =
        CnnClassifier::new(cnn_train_config()?, 0xF16).with_width_divisor(cnn_width_divisor()?);
    cnn.fit(features.features(), features.labels(), features.num_classes());
    let history = cnn.history().expect("history recorded during fit");
    report.line(format!("\n[{name}]"));
    report.block(render_history(history));
    let first = history.train_loss.first().copied().unwrap_or(f64::NAN);
    let last = history.train_loss.last().copied().unwrap_or(f64::NAN);
    report.line(format!(
        "training loss {first:.3} -> {last:.3} (decreasing: {})",
        last < first
    ));
    Ok(())
}

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?);
    let mut report = Report::new("fig7_training_curves");
    report.banner("Figure 7: CNN training curves (TESS, OnePlus 7T)", corpus.random_guess());
    let loud = AttackScenario::table_top(corpus.clone(), DeviceProfile::oneplus_7t()).harvest()?;
    curves(&mut report, "loudspeaker (a, b)", &loud)?;
    let ear = AttackScenario::handheld(corpus, DeviceProfile::oneplus_7t()).harvest()?;
    curves(&mut report, "ear speaker (c, d)", &ear)?;
    report.publish()?;
    Ok(())
}
