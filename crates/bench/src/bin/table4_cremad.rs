//! Table IV — CREMA-D dataset, loudspeaker/table-top, Samsung Galaxy S10.
//!
//! Paper: Logistic 58.99 %, MultiClass 58.51 %, trees.LMT 58.99 %,
//! CNN 60.32 %, spectrogram CNN 53 % (random guess 16.67 %).

use emoleak_bench::{clips_per_cell, loudspeaker_column, Report};
use emoleak_core::prelude::*;

fn main() -> Result<(), EmoleakError> {
    // CREMA-D has 91 speakers; its per-cell count is intrinsically small
    // (13 in the real corpus), so the scale knob is capped accordingly.
    let corpus = CorpusSpec::crema_d().with_clips_per_cell(clips_per_cell()?.clamp(2, 13));
    let mut report = Report::new("table4_cremad");
    report.banner("Table IV: CREMA-D / loudspeaker", corpus.random_guess());
    let device = DeviceProfile::galaxy_s10();
    let mut table = ResultTable::new(
        "CREMA-D (time-frequency features + spectrograms)",
        vec![device.name().to_string()],
    );
    let column = loudspeaker_column(&AttackScenario::table_top(corpus, device), 0xC4E)?;
    for (label, acc) in column {
        table.push_row(&label, vec![acc]);
    }
    table.push_note("paper: Logistic 58.99%, CNN 60.32%, spec-CNN 53%");
    table.push_note("random guess 16.67%");
    report.block(table.render());
    report.publish()?;
    Ok(())
}
