//! Per-stage microbenchmark of the per-verdict critical path, published to
//! `BENCH_hotpath.json`.
//!
//! Times each hot-loop stage — real FFT, STFT spectrogram, bilinear
//! resize, Table-II feature extraction, the conv2d kernel, and the full
//! CNN forward pass — under both `EMOLEAK_KERNELS` modes (ns/op), plus the
//! end-to-end streaming cost in µs per emitted verdict. Wall-clock numbers
//! vary by machine; the artifact exists so a perf regression in any stage
//! is visible next to the bit-exactness tests that constrain how the fast
//! path may be optimized.
//!
//! Knobs: `EMOLEAK_HOTPATH_ITERS` (inner iterations per stage, default
//! 200; CI smoke runs use a small value), `EMOLEAK_HOTPATH_JSON` (output
//! path, default `BENCH_hotpath.json` under `EMOLEAK_RESULTS_DIR`).

use emoleak_bench::{results_dir, write_result};
use emoleak_core::online::extract_window;
use emoleak_core::prelude::*;
use emoleak_dsp::fft::Fft;
use emoleak_dsp::{Complex, StftConfig};
use emoleak_features::spectrogram::IMAGE_SIZE;
use emoleak_features::{freq_domain, time_domain};
use emoleak_kernels::conv::{conv2d_fast, conv2d_ref};
use emoleak_kernels::{Activation, Conv2dScratch, KernelMode};
use emoleak_ml::nn::{spectrogram_cnn_scaled, QuantizedCnn, Tensor};
use emoleak_stream::{ReplaySource, StreamConfig, StreamService};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Mean ns per call of `f` over `iters` iterations (one untimed warm-up).
fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

/// A deterministic multi-tone test signal (no RNG: reruns are comparable).
fn signal(n: usize, fs: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            (2.0 * std::f64::consts::PI * 55.0 * t).sin()
                + 0.5 * (2.0 * std::f64::consts::PI * 130.0 * t).sin()
                + 0.25 * (2.0 * std::f64::consts::PI * 34.0 * t).sin()
        })
        .collect()
}

struct Stage {
    name: &'static str,
    reference_ns: f64,
    fast_ns: f64,
}

fn main() -> Result<(), EmoleakError> {
    let iters: usize = emoleak_exec::parse_checked(
        "EMOLEAK_HOTPATH_ITERS",
        "a positive iteration count",
        |&n: &usize| n > 0,
    )?
    .unwrap_or(200);
    println!("Hot-path microbench: {iters} iterations per stage");

    let fs = 420.0;
    let sig = signal(4096, fs);
    let mut stages: Vec<Stage> = Vec::new();

    // --- fft: one 512-point real transform --------------------------------
    {
        let fft = Fft::new(512);
        let frame = &sig[..512];
        let reference_ns = time_ns(iters, || {
            black_box(fft.forward_real(black_box(frame)));
        });
        let mut scratch: Vec<Complex> = Vec::new();
        let mut out: Vec<Complex> = Vec::new();
        let fast_ns = time_ns(iters, || {
            fft.forward_real_into(black_box(frame), &mut scratch, &mut out);
            black_box(&out);
        });
        stages.push(Stage { name: "fft", reference_ns, fast_ns });
    }

    // --- stft: full spectrogram of the 4096-sample signal -----------------
    let stft = StftConfig::new(256, 64);
    for_mode_pair(&mut stages, "stft", iters, |mode| {
        black_box(stft.spectrogram_in_mode(black_box(&sig), fs, mode).unwrap());
    });

    // --- resize: spectrogram -> 32x32 dB image (single implementation) ----
    {
        let spec = stft.spectrogram(&sig, fs).unwrap();
        let ns = time_ns(iters, || {
            black_box(black_box(&spec).resize_db(IMAGE_SIZE, IMAGE_SIZE, -80.0));
        });
        stages.push(Stage { name: "resize", reference_ns: ns, fast_ns: ns });
    }

    // --- features: the 24 Table-II statistics on one speech region --------
    let region = &sig[..400];
    for_mode_pair(&mut stages, "features", iters, |mode| {
        black_box(time_domain::extract_in_mode(black_box(region), mode));
        black_box(freq_domain::extract_in_mode(black_box(region), fs, mode));
    });

    // --- conv: one CNN-shaped conv2d (8 ch out, 3x3 over 32x32) -----------
    {
        let (in_ch, h, w, out_ch, kh, kw) = (4usize, IMAGE_SIZE, IMAGE_SIZE, 8usize, 3usize, 3usize);
        let input: Vec<f64> = (0..in_ch * h * w).map(|i| (i as f64 * 0.37).sin()).collect();
        let weights: Vec<f64> =
            (0..out_ch * in_ch * kh * kw).map(|i| (i as f64 * 0.11).cos() * 0.1).collect();
        let bias = vec![0.01; out_ch];
        let mut out = Vec::new();
        let reference_ns = time_ns(iters, || {
            conv2d_ref(
                black_box(&input), in_ch, h, w, out_ch, kh, kw,
                &weights, &bias, Activation::Relu, &mut out,
            );
            black_box(&out);
        });
        let mut scratch = Conv2dScratch::default();
        let fast_ns = time_ns(iters, || {
            conv2d_fast(
                black_box(&input), in_ch, h, w, out_ch, kh, kw,
                &weights, &bias, Activation::Relu, &mut scratch, &mut out,
            );
            black_box(&out);
        });
        stages.push(Stage { name: "conv", reference_ns, fast_ns });
    }

    // --- forward: the full spectrogram CNN, both modes + the int8 rung ----
    let int8_forward_ns;
    {
        let mut net = spectrogram_cnn_scaled(7, 0xBE7C, 8);
        let pixels: Vec<f64> =
            (0..IMAGE_SIZE * IMAGE_SIZE).map(|i| (i as f64 * 0.017).sin()).collect();
        let input = Tensor::from_shape(&[1, IMAGE_SIZE, IMAGE_SIZE], pixels);
        // The Sequential conv layers dispatch on the env knob: this binary
        // owns the process, so flipping it per measurement is safe.
        std::env::set_var(emoleak_kernels::ENV_KERNELS, "reference");
        let reference_ns = time_ns(iters, || {
            black_box(net.predict(black_box(&input)));
        });
        std::env::set_var(emoleak_kernels::ENV_KERNELS, "fast");
        let fast_ns = time_ns(iters, || {
            black_box(net.predict(black_box(&input)));
        });
        std::env::remove_var(emoleak_kernels::ENV_KERNELS);
        let quant = QuantizedCnn::from_sequential(&net)
            .expect("the spectrogram CNN must lower to int8");
        int8_forward_ns = time_ns(iters, || {
            black_box(quant.predict(black_box(&input)));
        });
        stages.push(Stage { name: "forward", reference_ns, fast_ns });
    }

    // --- end to end: µs per verdict through the streaming service --------
    let scenario = AttackScenario::table_top(
        CorpusSpec::tess().with_clips_per_cell(2),
        DeviceProfile::oneplus_7t(),
    );
    let harvest = scenario.harvest()?;
    let bundle = Arc::new(ModelBundle::train(&harvest, 7)?);
    let campaign = scenario.record_windows()?;
    let detector = scenario.setting.region_detector();
    // Sanity anchor: the batch-side extraction agrees with what streams.
    let ex = extract_window(&campaign.windows[0].0, campaign.fs, &detector, None, 0);
    let mut e2e = Vec::new();
    for mode in ["reference", "fast"] {
        std::env::set_var(emoleak_kernels::ENV_KERNELS, mode);
        let svc = StreamService::new(
            Arc::clone(&bundle),
            detector.clone(),
            campaign.fs,
            StreamConfig::default(),
        );
        let t0 = Instant::now();
        let report =
            svc.run(Box::new(ReplaySource::from_campaign(&campaign, 256))).unwrap();
        let us = t0.elapsed().as_micros() as f64 / report.stats.regions.max(1) as f64;
        e2e.push((mode, us, report.stats.regions));
        std::env::remove_var(emoleak_kernels::ENV_KERNELS);
    }
    assert!(!ex.rows.is_empty() && e2e.iter().all(|(_, _, r)| *r > 0));

    for s in &stages {
        let speedup = s.reference_ns / s.fast_ns.max(1.0);
        println!(
            "{:<8} reference {:>10.0} ns/op   fast {:>10.0} ns/op   ({speedup:.2}x)",
            s.name, s.reference_ns, s.fast_ns
        );
    }
    println!("forward-int8 {int8_forward_ns:>10.0} ns/op (lossy rung)");
    for (mode, us, regions) in &e2e {
        println!("end-to-end {mode:<9} {us:>8.1} us/verdict over {regions} region(s)");
    }

    let mut json = String::from("{\n  \"iters\": ");
    json.push_str(&format!("{iters},\n  \"stages_ns_per_op\": {{\n"));
    for (i, s) in stages.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"reference\": {:.1}, \"fast\": {:.1}}}{}\n",
            s.name,
            s.reference_ns,
            s.fast_ns,
            if i + 1 < stages.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  }},\n  \"forward_int8_ns_per_op\": {int8_forward_ns:.1},\n  \
         \"end_to_end_us_per_verdict\": {{\"reference\": {:.2}, \"fast\": {:.2}}},\n  \
         \"regions\": {}\n}}\n",
        e2e[0].1, e2e[1].1, e2e[0].2
    ));
    let path = std::env::var("EMOLEAK_HOTPATH_JSON")
        .map_or_else(|_| results_dir().join("BENCH_hotpath.json"), Into::into);
    match write_result(&path, json.as_bytes()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write {} ({e}); JSON follows:\n{json}", path.display()),
    }
    Ok(())
}

/// Times `f` under both kernel modes and records the pair as one stage.
fn for_mode_pair<F: FnMut(KernelMode)>(
    stages: &mut Vec<Stage>,
    name: &'static str,
    iters: usize,
    mut f: F,
) {
    let reference_ns = time_ns(iters, || f(KernelMode::Reference));
    let fast_ns = time_ns(iters, || f(KernelMode::Fast));
    stages.push(Stage { name, reference_ns, fast_ns });
}
