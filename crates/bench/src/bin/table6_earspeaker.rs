//! Table VI — ear-speaker / handheld setting: SAVEE on OnePlus 7T and
//! OnePlus 9, TESS on OnePlus 7T.
//!
//! Paper: Random Forest 53.12 % / 58.40 % / 59.67 %, RandomSubSpace
//! 56.25 % / 54.83 % / 55.45 %, trees.LMT 49.11 % / 53.76 % / 53.03 %,
//! CNN 51.11 % / 60.52 % / 54.82 % (random guess 14.28 %). The paper uses
//! 10-fold cross-validation for these results.

use emoleak_bench::{clips_per_cell, skip_cnn, Report};
use emoleak_core::prelude::*;
use emoleak_core::{evaluate_features, ClassifierKind, Protocol};

fn main() -> Result<(), EmoleakError> {
    let savee = CorpusSpec::savee().with_clips_per_cell(clips_per_cell()?);
    let tess = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?);
    let mut report = Report::new("table6_earspeaker");
    report.banner("Table VI: ear speaker / handheld (10-fold CV)", savee.random_guess());
    let scenarios = [
        ("SAVEE (OnePlus 7T)", AttackScenario::handheld(savee.clone(), DeviceProfile::oneplus_7t())),
        ("SAVEE (OnePlus 9)", AttackScenario::handheld(savee, DeviceProfile::oneplus_9())),
        ("TESS (OnePlus 7T)", AttackScenario::handheld(tess, DeviceProfile::oneplus_7t())),
    ];
    let mut table = ResultTable::new(
        "Ear speaker (time-frequency features)",
        scenarios.iter().map(|(n, _)| n.to_string()).collect(),
    );
    let kinds = [
        ClassifierKind::RandomForest,
        ClassifierKind::RandomSubspace,
        ClassifierKind::Lmt,
        ClassifierKind::Cnn,
    ];
    // The three campaigns are independent: harvest them in parallel.
    let harvests = emoleak_exec::par_map_indexed(&scenarios, |_, (_, s)| s.harvest())
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    for kind in kinds {
        if kind == ClassifierKind::Cnn && skip_cnn() {
            table.push_row(kind.display_name(), vec![f64::NAN; harvests.len()]);
            continue;
        }
        let accs: Vec<f64> = emoleak_exec::par_map_indexed(&harvests, |_, h| {
            // The paper's ear-speaker protocol: 10-fold CV (§V-D). The
            // CNN uses a holdout split to keep runtimes single-core sane.
            let protocol = if kind == ClassifierKind::Cnn {
                Protocol::Holdout8020
            } else {
                Protocol::KFold(10)
            };
            evaluate_features(&h.features, kind, protocol, 0xEA6)
                .map(|eval| eval.accuracy)
                .unwrap_or(f64::NAN)
        });
        table.push_row(kind.display_name(), accs);
    }
    for (h, (name, _)) in harvests.iter().zip(&scenarios) {
        table.push_note(&format!(
            "{name}: region detection rate {:.0}% (paper: >= 45%)",
            h.detection_rate * 100.0
        ));
    }
    table.push_note("paper: RF 53.12/58.40/59.67, RSS 56.25/54.83/55.45, LMT 49.11/53.76/53.03, CNN 51.11/60.52/54.82");
    report.block(table.render());
    report.publish()?;
    Ok(())
}
