//! Chaos harness for the streaming inference service.
//!
//! Drives `emoleak_stream::StreamService` through a grid of fault-injected
//! recordings (every `FaultProfile` preset × severity) with a flaky,
//! occasionally panicking transport on top, and asserts the *robustness
//! contract* on every run:
//!
//! * liveness — the run terminates (no deadlock; the supervisor's global
//!   timeout is the backstop) and returns `Ok`;
//! * bounded memory — queue depth never exceeds its configured capacity;
//! * zero escaped panics — injected worker panics are absorbed by
//!   supervision, never propagated to the caller;
//! * honest accounting — every ingested chunk is either processed or
//!   counted as dropped, and a clean run reports zero resilience events.
//!
//! Prints a summary table and writes the full per-run results as JSON
//! (default `results/stream_chaos.json`, override with
//! `EMOLEAK_CHAOS_JSON`). `EMOLEAK_CHAOS_SEEDS` (default 3) and
//! `EMOLEAK_CHAOS_SEVERITIES` (comma list, default `0,0.5,1,2,4,8`) shrink
//! the grid for smoke runs. Exits non-zero if any run violates the
//! contract.

use emoleak_bench::{banner, write_result};
use emoleak_core::online::ModelBundle;
use emoleak_core::prelude::*;
use emoleak_phone::FaultProfile;
use emoleak_stream::{
    FlakySource, OverflowPolicy, ReplaySource, StreamConfig, StreamReport, StreamService,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct RunSpec {
    preset: &'static str,
    severity: f64,
    seed: u64,
    inject_panic: bool,
}

struct RunRecord {
    spec: RunSpec,
    ok: bool,
    violations: Vec<String>,
    regions: u64,
    retries: u64,
    dropped: u64,
    deadline_misses: u64,
    transitions: usize,
    worst_level: String,
    panic_restarts: u32,
    max_chunk_depth: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
    wall_ms: f64,
}

fn presets() -> Vec<(&'static str, FaultProfile)> {
    vec![
        ("handheld_walking", FaultProfile::handheld_walking()),
        ("background_doze", FaultProfile::background_doze()),
        ("cheap_imu", FaultProfile::cheap_imu()),
    ]
}

/// Transport flakiness grows with channel-fault severity, capped well
/// below 1 so liveness stays falsifiable.
fn fail_rate(severity: f64) -> f64 {
    (0.08 * severity).min(0.85)
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn check(report: &StreamReport, spec: &RunSpec, capacity: usize) -> Vec<String> {
    let mut violations = Vec::new();
    let s = &report.stats;
    if s.max_chunk_depth > capacity || s.max_region_depth > capacity {
        violations.push(format!(
            "queue bound exceeded: chunk depth {} / region depth {} > capacity {capacity}",
            s.max_chunk_depth, s.max_region_depth
        ));
    }
    if s.chunks_processed + s.dropped_chunks != s.chunks_ingested {
        violations.push(format!(
            "chunk accounting broken: {} processed + {} dropped != {} ingested",
            s.chunks_processed, s.dropped_chunks, s.chunks_ingested
        ));
    }
    let expected_panics = u32::from(spec.inject_panic);
    if s.panic_restarts != expected_panics {
        violations.push(format!(
            "expected {expected_panics} absorbed panic(s), saw {}",
            s.panic_restarts
        ));
    }
    if spec.severity == 0.0 && !spec.inject_panic {
        // Clean path: the resilience machinery must stay silent.
        if s.retries != 0 || s.dropped_chunks != 0 || !report.log.events().is_empty() {
            violations.push(format!(
                "clean run was not silent: {} retries, {} drops, {} events",
                s.retries,
                s.dropped_chunks,
                report.log.events().len()
            ));
        }
        if s.regions == 0 {
            violations.push("clean run classified no regions".to_string());
        }
    }
    violations
}

fn run_one(
    bundle: &Arc<ModelBundle>,
    campaign: &emoleak_core::online::RecordedCampaign,
    detector: &emoleak_features::regions::RegionDetector,
    spec: RunSpec,
) -> RunRecord {
    let config = StreamConfig {
        queue_capacity: 32,
        overflow: OverflowPolicy::Block,
        // High severities get an unmeetable deadline so the degradation
        // ladder is exercised under chaos, not just in unit tests.
        deadline: if spec.severity >= 4.0 {
            Duration::from_micros(2)
        } else {
            Duration::from_millis(50)
        },
        panic_after_chunks: spec.inject_panic.then_some(5),
        ..StreamConfig::default()
    };
    let capacity = config.queue_capacity;
    let service =
        StreamService::new(Arc::clone(bundle), detector.clone(), campaign.fs, config);
    let source = FlakySource::new(
        ReplaySource::from_campaign(campaign, service.config().chunk_len),
        fail_rate(spec.severity),
        spec.seed,
    );
    let t0 = Instant::now();
    let outcome = service.run(Box::new(source));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    match outcome {
        Ok(report) => {
            let violations = check(&report, &spec, capacity);
            let mut lat: Vec<f64> = report
                .emissions
                .iter()
                .map(|e| e.latency.as_secs_f64() * 1e6)
                .collect();
            lat.sort_by(f64::total_cmp);
            RunRecord {
                ok: violations.is_empty(),
                violations,
                regions: report.stats.regions,
                retries: report.stats.retries,
                dropped: report.stats.dropped_chunks,
                deadline_misses: report.stats.deadline_misses,
                transitions: report.log.transitions().len(),
                worst_level: report
                    .log
                    .worst_level()
                    .map_or_else(|| "-".to_string(), |l| l.to_string()),
                panic_restarts: report.stats.panic_restarts,
                max_chunk_depth: report.stats.max_chunk_depth,
                p50_us: percentile(&lat, 0.50),
                p95_us: percentile(&lat, 0.95),
                p99_us: percentile(&lat, 0.99),
                p999_us: percentile(&lat, 0.999),
                max_us: lat.last().copied().unwrap_or(0.0),
                wall_ms,
                spec,
            }
        }
        Err(e) => RunRecord {
            ok: false,
            violations: vec![format!("run failed: {e}")],
            regions: 0,
            retries: 0,
            dropped: 0,
            deadline_misses: 0,
            transitions: 0,
            worst_level: "-".to_string(),
            panic_restarts: 0,
            max_chunk_depth: 0,
            p50_us: 0.0,
            p95_us: 0.0,
            p99_us: 0.0,
            p999_us: 0.0,
            max_us: 0.0,
            wall_ms,
            spec,
        },
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn to_json(records: &[RunRecord]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"severity\": {}, \"seed\": {}, \
             \"inject_panic\": {}, \"ok\": {}, \"regions\": {}, \"retries\": {}, \
             \"dropped\": {}, \"deadline_misses\": {}, \"transitions\": {}, \
             \"worst_level\": \"{}\", \"panic_restarts\": {}, \
             \"max_chunk_depth\": {}, \"latency_us\": {{\"p50\": {}, \"p95\": {}, \
             \"p99\": {}, \"p999\": {}, \"max\": {}}}, \"wall_ms\": {}, \
             \"violations\": [{}]}}{}\n",
            r.spec.preset,
            json_num(r.spec.severity),
            r.spec.seed,
            r.spec.inject_panic,
            r.ok,
            r.regions,
            r.retries,
            r.dropped,
            r.deadline_misses,
            r.transitions,
            r.worst_level,
            r.panic_restarts,
            r.max_chunk_depth,
            json_num(r.p50_us),
            json_num(r.p95_us),
            json_num(r.p99_us),
            json_num(r.p999_us),
            json_num(r.max_us),
            json_num(r.wall_ms),
            r.violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    out.push_str(&format!(
        "  ],\n  \"total_runs\": {},\n  \"failed_runs\": {failed}\n}}\n",
        records.len()
    ));
    out
}

fn main() -> Result<(), EmoleakError> {
    // The injected worker panics are absorbed by supervision; keep their
    // default-hook backtraces out of the report. Real panics still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected chaos panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let corpus = CorpusSpec::tess().with_clips_per_cell(2);
    banner("Stream chaos: liveness under faults, flaky transport, and panics", corpus.random_guess());
    let device = DeviceProfile::oneplus_7t();

    let severities: Vec<f64> = emoleak_exec::parse_list_checked(
        "EMOLEAK_CHAOS_SEVERITIES",
        "comma-separated non-negative numbers",
        |&s: &f64| s.is_finite() && s >= 0.0,
    )?
    .unwrap_or_else(|| vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0]);
    let seeds: u64 =
        emoleak_exec::parse_checked("EMOLEAK_CHAOS_SEEDS", "a positive count", |&n: &u64| n > 0)?
            .unwrap_or(3);

    // One classical bundle, trained once on the clean campaign, backs every
    // run: chaos is about the service, not the model.
    let clean = AttackScenario::table_top(corpus.clone(), device.clone());
    let bundle = Arc::new(
        ModelBundle::train(&clean.harvest()?, 0xC4A05).expect("clean campaign must train"),
    );
    let detector = clean.setting.region_detector();

    let mut records = Vec::new();
    for (name, base) in presets() {
        for &severity in &severities {
            // The faulted recording is shared across this cell's seeds;
            // the seeds vary the transport failure pattern.
            let scenario = AttackScenario::table_top(corpus.clone(), device.clone())
                .with_faults(base.clone().with_severity(severity));
            let campaign = scenario.record_windows()?;
            for seed in 0..seeds {
                let spec = RunSpec {
                    preset: name,
                    severity,
                    seed: 0xC4A0 ^ (seed * 0x9E37_79B9) ^ (severity.to_bits() >> 17),
                    // Last seed of each cell also exercises supervision.
                    inject_panic: seed + 1 == seeds,
                };
                records.push(run_one(&bundle, &campaign, &detector, spec));
            }
        }
    }

    println!(
        "{:<18} {:>4} {:>6} {:>8} {:>8} {:>7} {:>6} {:>11} {:>9}",
        "preset", "sev", "ok", "regions", "retries", "dropped", "trans", "p95_us", "wall_ms"
    );
    println!("{}", "-".repeat(84));
    for r in &records {
        println!(
            "{:<18} {:>4} {:>6} {:>8} {:>8} {:>7} {:>6} {:>11.1} {:>9.1}",
            r.spec.preset,
            r.spec.severity,
            if r.ok { "ok" } else { "FAIL" },
            r.regions,
            r.retries,
            r.dropped,
            r.transitions,
            r.p95_us,
            r.wall_ms,
        );
        for v in &r.violations {
            println!("    violation: {v}");
        }
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    println!(
        "\n{} runs, {} violations; retries absorbed: {}, panics absorbed: {}",
        records.len(),
        failed,
        records.iter().map(|r| r.retries).sum::<u64>(),
        records.iter().map(|r| u64::from(r.panic_restarts)).sum::<u64>(),
    );

    let json = to_json(&records);
    let path = std::env::var("EMOLEAK_CHAOS_JSON")
        .unwrap_or_else(|_| "results/stream_chaos.json".to_string());
    // Atomic write: a kill mid-write can no longer leave a torn JSON file.
    match write_result(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path} ({e}); JSON follows:\n{json}"),
    }
    assert!(failed == 0, "{failed} chaos run(s) violated the robustness contract");
    Ok(())
}
