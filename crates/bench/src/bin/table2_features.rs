//! Table II — the 24 time/frequency-domain features, with an information
//! gain per feature on a live campaign (the paper reports that all features
//! have non-zero gain in both settings; §III-B.4).

use emoleak_bench::{clips_per_cell, Report};
use emoleak_core::prelude::*;
use emoleak_features::info_gain::information_gain_per_feature;

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?.min(20));
    let mut report = Report::new("table2_features");
    report.banner("Table II: feature inventory + information gain (TESS)", corpus.random_guess());
    let settings = [
        ("table-top", AttackScenario::table_top(corpus.clone(), DeviceProfile::oneplus_7t())),
        ("handheld", AttackScenario::handheld(corpus.clone(), DeviceProfile::oneplus_7t())),
    ];
    // Both campaigns harvest in parallel; the report prints in order.
    let harvests = emoleak_exec::par_map_indexed(&settings, |_, (_, s)| s.harvest());
    for ((setting, _), harvest) in settings.iter().zip(harvests) {
        let harvest = harvest?;
        let gains = information_gain_per_feature(
            harvest.features.features(),
            harvest.features.labels(),
            10,
        );
        report.line(format!("\n[{setting}] {} regions", harvest.features.len()));
        report.line(format!("{:<20} {:>8}", "feature", "gain"));
        let mut nonzero = 0;
        for (name, g) in harvest.features.feature_names().iter().zip(&gains) {
            report.line(format!("{name:<20} {g:>8.3}"));
            if *g > 0.0 {
                nonzero += 1;
            }
        }
        report.line(format!("non-zero gains: {nonzero}/24"));
    }
    report.publish()?;
    Ok(())
}
