//! Fleet-chaos harness for the sharded coordinator.
//!
//! Drives `emoleak_fleet::FleetCoordinator` through a grid of fleet-level
//! failure scenarios × severities × seeds and asserts the *fleet contract*
//! on every run:
//!
//! * conservation — at the end of every run (after a full drain),
//!   `offered == served + rejected + shed + queued + migrated` fleet-wide,
//!   with `queued == 0`;
//! * no lost tenants — after any single-shard kill, every tenant is still
//!   served (its chunks flow through its new home shard);
//! * contained panics — hostile chunks panic inside their shard only; a
//!   sibling shard never burns restart budget, and no panic escapes to
//!   this harness;
//! * graceful failover is lossless — a brown-out fence books zero
//!   `crash_loss` and a positive `migrated` count;
//! * the last shard is never fenced — cascades stop at one live shard;
//! * clean-path silence — at severity 0 there are no failovers, no
//!   rejections, no sheds, and everything offered is served;
//! * clean-path placement invariance — the per-tenant served stream
//!   (tenant, seq, cost) digests to the same value for ANY shard count,
//!   because coordinator-assigned seqs survive routing. The digests land
//!   in their own artifact so CI can byte-compare it across
//!   `EMOLEAK_SHARDS` values (and across `EMOLEAK_REPLICAS` — replication
//!   must not change what is served);
//! * replicated failover is exact — with replication on, a kill (disk
//!   intact) or a disk loss (replica reconciles) replays the queue with
//!   `crash_loss == 0` and `recovered > 0`; a scrub-repaired replica
//!   reconciles a later disk loss exactly; only a double failure (disk
//!   gone *and* replica corrupted) books loss — and it must book it
//!   honestly, never replay a damaged copy;
//! * partitions cannot split the brain — a shard cut off the message
//!   plane (fully or one-way) self-fences when its lease runs out
//!   *before* the coordinator fails it over, its journal replays the
//!   queue exactly, and a resurrected stale incarnation's appends are
//!   refused with a typed fencing error, bytes untouched. These three
//!   scenarios force the simulated transport on (`NetProfile::ideal`)
//!   even when `EMOLEAK_NET` leaves the rest of the grid on the direct
//!   path; setting `EMOLEAK_NET=lossy|chaotic` runs the whole grid —
//!   and the partition arc — through a faulty plane.
//!
//! The simulation runs on the fleet's logical clock, and the scenario grid
//! is parallelized with order-preserving `par_map_indexed`, so
//! `results/fleet_chaos.json` is **byte-identical under any
//! `EMOLEAK_THREADS`** (for a fixed shard count and replica setting) —
//! except the `failover_wall_us` summary lines, which report wall time and
//! are stripped before comparison (`grep -v failover_wall_us`). Knobs:
//! `EMOLEAK_FLEET_SEVERITIES` (comma list, default `0,1,2`),
//! `EMOLEAK_FLEET_SEEDS` (default 2), `EMOLEAK_SHARDS` (fleet width,
//! default 4), `EMOLEAK_REPLICAS` (0 disables replication),
//! `EMOLEAK_FLEET_JSON` and `EMOLEAK_FLEET_DIGEST` (artifact paths).
//! Exits non-zero if any run violates the contract.

use emoleak_bench::write_result;
use emoleak_core::EmoleakError;
use emoleak_durable::Defect;
use emoleak_exec::{derive_seed, par_map_indexed, splitmix64};
use emoleak_fleet::config::NetConfig;
use emoleak_fleet::{
    shard_journal_path, FailoverKind, FleetConfig, FleetCoordinator, NetProfileKind,
};
use std::collections::BTreeMap;

const TICKS: u64 = 400;
const TENANTS: [&str; 8] =
    ["amber", "brook", "coral", "dune", "ember", "fjord", "grove", "heath"];

#[derive(Clone, Copy)]
enum Scenario {
    /// A healthy fleet under steady load — the placement-invariance and
    /// clean-path baseline.
    SteadyState,
    /// One shard is hard-killed mid-run (`SIGKILL`); its tenants must
    /// re-home and keep being served.
    ShardKill,
    /// One shard's tenants flood it into a sustained BrownOut; the
    /// coordinator must fence it gracefully, with zero loss.
    BrownOutFailover,
    /// Brown-outs cascade shard by shard; the fleet must stop fencing at
    /// one live shard.
    Cascade,
    /// The coordinator itself is killed mid-run and restarted from its
    /// checkpoint journal.
    CoordinatorRestart,
    /// Hostile chunks panic one shard's workers while a flood squeezes
    /// another: two containment domains failing differently at once.
    SplitTenantFlood,
    /// One shard's machine dies mid-run — process *and* disk. With
    /// replication on, the replica on the follower's node must replay the
    /// queue with zero loss.
    DiskLoss,
    /// The replica suffers bit rot and a torn ship mid-run; the
    /// anti-entropy scrub must detect and repair it in time for a later
    /// disk loss to still recover exactly.
    ReplicaCorrupt,
    /// Primary disk loss *and* a corrupted replica at once: no clean copy
    /// survives, and the residual must be booked as honest crash loss.
    DoubleFailure,
    /// One shard is fully partitioned off the message plane mid-run: its
    /// lease must run out, the shard must self-fence *before* the
    /// coordinator fails it over, and its journal must replay exactly.
    /// Forces the simulated transport on (`NetProfile::ideal` unless
    /// `EMOLEAK_NET` already enables a faultier plane).
    Partition,
    /// One-way partition: the shard still hears the coordinator (offers
    /// and probes land) but its acks vanish. The lease is the only thing
    /// that can save the fleet, and self-fence must still come first.
    AsymmetricPartition,
    /// After a partition-driven failover, the deposed shard "wakes up"
    /// and tries to append to its journal. The fencing token must refuse
    /// it with a typed error and leave the journal bytes untouched.
    StaleWriter,
}

impl Scenario {
    const ALL: [Scenario; 12] = [
        Scenario::SteadyState,
        Scenario::ShardKill,
        Scenario::BrownOutFailover,
        Scenario::Cascade,
        Scenario::CoordinatorRestart,
        Scenario::SplitTenantFlood,
        Scenario::DiskLoss,
        Scenario::ReplicaCorrupt,
        Scenario::DoubleFailure,
        Scenario::Partition,
        Scenario::AsymmetricPartition,
        Scenario::StaleWriter,
    ];

    fn name(self) -> &'static str {
        match self {
            Scenario::SteadyState => "steady_state",
            Scenario::ShardKill => "shard_kill",
            Scenario::BrownOutFailover => "brown_out_failover",
            Scenario::Cascade => "cascade",
            Scenario::CoordinatorRestart => "coordinator_restart",
            Scenario::SplitTenantFlood => "split_tenant_flood",
            Scenario::DiskLoss => "disk_loss",
            Scenario::ReplicaCorrupt => "replica_corrupt",
            Scenario::DoubleFailure => "double_failure",
            Scenario::Partition => "partition",
            Scenario::AsymmetricPartition => "asymmetric_partition",
            Scenario::StaleWriter => "stale_writer",
        }
    }

    /// The partition arc runs on the simulated message plane even when
    /// `EMOLEAK_NET` leaves it off for the rest of the grid.
    fn needs_transport(self) -> bool {
        matches!(
            self,
            Scenario::Partition | Scenario::AsymmetricPartition | Scenario::StaleWriter
        )
    }
}

/// The fleet tuning every run uses: generous rate limits (floods are
/// shaped by the byte budget and the breaker), a short ledger cadence so
/// crash reconciliation stays tight, and the shard count from the
/// environment so CI can sweep it.
fn fleet_config(shards: u32, replicas: u32, net: NetConfig) -> FleetConfig {
    let mut cfg = FleetConfig {
        shards,
        replicas,
        net,
        ledger_every: 10,
        // A short scrub cadence so every shard's replica is verified a
        // few times within the run (round-robin over the fleet).
        scrub_every: 10,
        ..FleetConfig::default()
    };
    cfg.admission.mem_budget = 1 << 16;
    cfg.admission.tenant_rps = 1_000_000;
    cfg.admission.tenant_burst = 1_000_000;
    cfg
}

/// Offers issued for tick `now`, as `(tenant index, cost)` pairs — a pure
/// function of `(scenario, severity, seed, now, flood targets)`.
fn offers(
    scenario: Scenario,
    severity: f64,
    seed: u64,
    now: u64,
    flooded: &[usize],
) -> Vec<(usize, u64)> {
    let mut stream = derive_seed(seed, now);
    let mut draw = || splitmix64(&mut stream);
    // Baseline: two polite offers per tick, round-robin over all tenants.
    let mut out = vec![
        ((now as usize * 2) % TENANTS.len(), 64 + draw() % 64),
        ((now as usize * 2 + 1) % TENANTS.len(), 64 + draw() % 64),
    ];
    if severity > 0.0 {
        match scenario {
            Scenario::SteadyState
            | Scenario::ShardKill
            | Scenario::CoordinatorRestart
            | Scenario::DiskLoss
            | Scenario::ReplicaCorrupt
            | Scenario::DoubleFailure
            | Scenario::Partition
            | Scenario::AsymmetricPartition
            | Scenario::StaleWriter => {}
            Scenario::BrownOutFailover | Scenario::Cascade | Scenario::SplitTenantFlood => {
                // The flood tenants hammer their home shards hard enough
                // to overrun the byte budget and trip the breaker.
                for &t in flooded {
                    for _ in 0..(12.0 * severity) as u64 {
                        out.push((t, 256));
                    }
                }
            }
        }
    }
    out
}

struct RunSpec {
    scenario: Scenario,
    severity: f64,
    seed: u64,
    shards: u32,
    replicas: u32,
    net: NetConfig,
}

struct RunRecord {
    scenario: &'static str,
    severity: f64,
    seed: u64,
    ok: bool,
    violations: Vec<String>,
    offered: u64,
    served: u64,
    rejected: u64,
    shed: u64,
    migrated: u64,
    crash_loss: u64,
    recovered: u64,
    /// Logical ticks from a kill until every victim tenant was served
    /// again (0 when nothing was killed) — the deterministic failover
    /// latency.
    recovery_ticks: u64,
    scrub_found: usize,
    scrub_repaired: usize,
    failovers_graceful: usize,
    failovers_crash: usize,
    live_shards: usize,
    restart_burn: u32,
    /// Wall time spent inside the failover/recovery machinery itself
    /// (kill reconciliation, coordinator recovery). Nondeterministic —
    /// reported in the JSON summary only, on filterable lines.
    failover_wall_us: u128,
    /// FNV-1a over the per-tenant served stream `(tenant, seq, cost)`,
    /// tenant-sorted — invariant across shard counts on the clean path.
    served_digest: u64,
}

fn fail_record(spec: &RunSpec, why: String) -> RunRecord {
    RunRecord {
        scenario: spec.scenario.name(),
        severity: spec.severity,
        seed: spec.seed,
        ok: false,
        violations: vec![why],
        offered: 0,
        served: 0,
        rejected: 0,
        shed: 0,
        migrated: 0,
        crash_loss: 0,
        recovered: 0,
        recovery_ticks: 0,
        scrub_found: 0,
        scrub_repaired: 0,
        failovers_graceful: 0,
        failovers_crash: 0,
        live_shards: 0,
        restart_burn: 0,
        failover_wall_us: 0,
        served_digest: 0,
    }
}

fn run_one(index: usize, spec: &RunSpec) -> RunRecord {
    let dir = std::env::temp_dir().join(format!(
        "emoleak-fleet-chaos-{}-{index}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        simulate(spec, &dir)
    }));
    let _ = std::fs::remove_dir_all(&dir);
    match outcome {
        Ok(record) => record,
        Err(_) => fail_record(spec, "escaped panic in the fleet layer".to_string()),
    }
}

/// FNV-1a over the served stream, per tenant in seq order. Served chunks
/// are grouped by tenant (sorted) and sorted by seq within a tenant, so
/// the digest only depends on *what* each tenant had served — not on
/// which shard served it or in what global interleaving.
fn served_digest(served: &BTreeMap<String, Vec<(u64, u64)>>) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (tenant, chunks) in served {
        for b in tenant.bytes() {
            eat(b);
        }
        eat(0xFF);
        for (seq, cost) in chunks {
            for b in seq.to_le_bytes().into_iter().chain(cost.to_le_bytes()) {
                eat(b);
            }
        }
    }
    hash
}

/// Flips one byte mid-file — bit rot on a replica segment.
fn corrupt_file(path: &std::path::Path) -> bool {
    let Ok(mut bytes) = std::fs::read(path) else { return false };
    if bytes.is_empty() {
        return false;
    }
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(path, &bytes).is_ok()
}

/// The burst issued one tick before a kill: deep enough that the victim
/// still holds queue at the moment of death even after one drain tick.
/// It goes out a tick early so that — transport on or off — the chunks
/// are *admitted and journaled* when the shard dies, not in flight on
/// the plane (in-flight frames are rerouted at failover, which is
/// lossless but is not the journal-replay path these scenarios pin).
fn burst_victim_queue(coord: &mut FleetCoordinator, now: u64) {
    if coord.ring().len() < 2 {
        return;
    }
    let victim = coord.ring().route(TENANTS[0]);
    let victims: Vec<&str> =
        TENANTS.iter().copied().filter(|t| coord.ring().route(t) == victim).collect();
    for t in victims {
        for _ in 0..8 {
            let _ = coord.offer(t, 64, now);
        }
    }
}

/// Kills the shard homing `TENANTS[0]` — optionally destroying its disk
/// and/or corrupting its replica first. The queue was loaded by
/// [`burst_victim_queue`] on the previous tick, so replication must
/// either replay it or book its loss honestly. Returns the victim shard
/// and its homed tenants, or `None` on a one-shard fleet (nothing to
/// fail over to). `wall` accumulates time spent inside the
/// kill/reconcile machinery.
fn kill_with_queue(
    coord: &mut FleetCoordinator,
    now: u64,
    lose_disk: bool,
    corrupt_replica: bool,
    violations: &mut Vec<String>,
    wall: &mut std::time::Duration,
) -> Option<(u32, Vec<String>)> {
    if coord.ring().len() < 2 {
        return None;
    }
    let victim = coord.ring().route(TENANTS[0]);
    let victims: Vec<String> = TENANTS
        .iter()
        .filter(|t| coord.ring().route(t) == victim)
        .map(|t| t.to_string())
        .collect();
    if corrupt_replica {
        if let Some(replica) = coord.replica_path_of(victim) {
            if !corrupt_file(&replica) {
                violations.push("the nemesis could not corrupt the replica".to_string());
            }
        }
    }
    let t0 = std::time::Instant::now();
    let event = if lose_disk {
        coord.kill_shard_with_disk_loss(victim, now)
    } else {
        coord.kill_shard(victim, now)
    };
    *wall += t0.elapsed();
    if event.kind != FailoverKind::Crash {
        violations.push("a kill must reconcile as a crash".to_string());
    }
    Some((victim, victims))
}

fn simulate(spec: &RunSpec, dir: &std::path::Path) -> RunRecord {
    let mut cfg = fleet_config(spec.shards, spec.replicas, spec.net);
    if spec.scenario.needs_transport() && !cfg.net.enabled() {
        cfg.net.profile = NetProfileKind::Ideal;
    }
    let replicated = cfg.replicated();
    // A deliberately faulty plane (`EMOLEAK_NET=lossy|chaotic`) weakens
    // the exact-replay expectations: part of a pre-kill burst can still
    // be in flight when the shard dies, and in-flight chunks are
    // *rerouted* at failover rather than replayed from the journal.
    // Conservation and zero-loss still hold and are still checked.
    let faulty_plane =
        matches!(cfg.net.profile, NetProfileKind::Lossy | NetProfileKind::Chaotic);
    let mut coord = match FleetCoordinator::new(cfg.clone(), dir) {
        Ok(c) => c,
        Err(e) => return fail_record(spec, format!("fleet dir unusable: {e}")),
    };
    let mut violations = Vec::new();

    // Flood targets: for the brown-out scenarios, one tenant homed on
    // shard 0 (and, for the split flood, the panic victim is a *different*
    // shard). For the cascade, one tenant per shard so the floods roll
    // across the whole fleet.
    let home_of =
        |c: &FleetCoordinator, t: &str| -> u32 { c.ring().route(t) };
    let tenant_on = |c: &FleetCoordinator, shard: u32| -> Option<usize> {
        (0..TENANTS.len()).find(|&t| home_of(c, TENANTS[t]) == shard)
    };
    let flooded: Vec<usize> = match spec.scenario {
        Scenario::BrownOutFailover | Scenario::SplitTenantFlood => {
            tenant_on(&coord, 0).into_iter().collect()
        }
        Scenario::Cascade => coord
            .ring()
            .shard_ids()
            .iter()
            .filter_map(|&s| tenant_on(&coord, s))
            .collect(),
        _ => Vec::new(),
    };
    // The split flood panics the shard housing the round-robin tenant
    // furthest from the flooded one, so the two failure domains differ.
    let panic_shard: Option<u32> = match spec.scenario {
        Scenario::SplitTenantFlood if spec.severity > 0.0 => coord
            .ring()
            .shard_ids()
            .into_iter()
            .find(|&s| s != 0),
        _ => None,
    };

    let kill_tick = TICKS / 2;
    let restart_tick = TICKS / 2;
    // The replica-corrupt arc: damage early, let the scrub repair on its
    // cadence, lose the disk late — recovery must still be exact.
    let corrupt_tick = TICKS / 4;
    let late_kill_tick = 3 * TICKS / 4;
    let mut killed: Option<u32> = None;
    let mut kill_at = 0u64;
    let mut partitioned: Option<u32> = None;
    let mut self_fenced_before_failover = false;
    let mut failover_wall = std::time::Duration::ZERO;
    let mut victim_tenants: Vec<String> = Vec::new();
    let mut served: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    let mut served_after_kill: BTreeMap<String, u64> = BTreeMap::new();
    let mut first_served_after_kill: BTreeMap<String, u64> = BTreeMap::new();

    let mut now = 0;
    while now < TICKS {
        let kill_now = match spec.scenario {
            Scenario::ShardKill if now == kill_tick => Some((false, false)),
            Scenario::DiskLoss if now == kill_tick => Some((true, false)),
            Scenario::DoubleFailure if now == kill_tick => Some((true, replicated)),
            Scenario::ReplicaCorrupt if now == late_kill_tick => Some((true, false)),
            _ => None,
        };
        let burst_now = match spec.scenario {
            Scenario::ShardKill | Scenario::DiskLoss | Scenario::DoubleFailure => {
                now + 1 == kill_tick
            }
            Scenario::ReplicaCorrupt => now + 1 == late_kill_tick,
            _ => false,
        };
        if burst_now && spec.severity > 0.0 {
            burst_victim_queue(&mut coord, now);
        }
        if let Some((lose_disk, corrupt_replica)) = kill_now.filter(|_| spec.severity > 0.0) {
            if let Some((victim, victims)) = kill_with_queue(
                &mut coord,
                now,
                lose_disk,
                corrupt_replica,
                &mut violations,
                &mut failover_wall,
            ) {
                victim_tenants = victims;
                killed = Some(victim);
                kill_at = now;
            }
        }
        // The partition arc: cut one shard off the plane with a queue in
        // flight. No kill — the lease machinery must notice on its own.
        let partition_now = match spec.scenario {
            Scenario::Partition | Scenario::StaleWriter if now == kill_tick => Some(false),
            Scenario::AsymmetricPartition if now == kill_tick => Some(true),
            _ => None,
        };
        if let Some(one_way) = partition_now.filter(|_| spec.severity > 0.0) {
            if coord.ring().len() > 1 {
                let victim = coord.ring().route(TENANTS[0]);
                let victims: Vec<String> = TENANTS
                    .iter()
                    .filter(|t| coord.ring().route(t) == victim)
                    .map(|t| t.to_string())
                    .collect();
                // A deep burst so the victim still holds queue when its
                // lease finally runs out, forcing a real journal replay.
                for t in &victims {
                    for _ in 0..80 {
                        let _ = coord.offer(t, 64, now);
                    }
                }
                if one_way {
                    // Shard → coordinator blocked: offers and probes
                    // still land, acks vanish.
                    coord.partition_shard_one_way(victim, true);
                } else {
                    coord.partition_shard(victim);
                }
                partitioned = Some(victim);
                victim_tenants = victims;
                killed = Some(victim);
                kill_at = now;
            }
        }
        // The resurrection attempt: well after the failover, the deposed
        // incarnation tries to append. Typed refusal, bytes untouched.
        if matches!(spec.scenario, Scenario::StaleWriter)
            && spec.severity > 0.0
            && now == late_kill_tick
        {
            if let Some(victim) = partitioned {
                let journal = shard_journal_path(dir, victim);
                let before = std::fs::read(&journal).unwrap_or_default();
                match coord.stale_writer_probe(victim, now) {
                    Some(e) if e.is_fenced() => {}
                    other => violations
                        .push(format!("stale writer was not refused typed: {other:?}")),
                }
                let after = std::fs::read(&journal).unwrap_or_default();
                if before != after {
                    violations.push("a fenced append moved journal bytes".to_string());
                }
                if coord.fence_token_of(victim) != Some(1) {
                    violations.push(format!(
                        "the deposed incarnation should still hold token 1, not {:?}",
                        coord.fence_token_of(victim)
                    ));
                }
            }
        }
        if matches!(spec.scenario, Scenario::ReplicaCorrupt)
            && spec.severity > 0.0
            && now == corrupt_tick
            && replicated
            && coord.ring().len() > 1
        {
            // Bit rot on the victim's replica plus a torn ship: the scrub
            // has until `late_kill_tick` to find and repair both.
            let victim = coord.ring().route(TENANTS[0]);
            if let Some(replica) = coord.replica_path_of(victim) {
                if !corrupt_file(&replica) {
                    violations.push("the nemesis could not corrupt the replica".to_string());
                }
                coord.tear_replica_next(victim, 0.5);
            }
        }
        if matches!(spec.scenario, Scenario::CoordinatorRestart)
            && spec.severity > 0.0
            && now == restart_tick
        {
            // Checkpoint, drop the coordinator (its shards' memory dies
            // with it), and recover from the journal.
            if let Err(e) = coord.checkpoint(now) {
                violations.push(format!("checkpoint failed: {e}"));
            }
            drop(coord);
            let t0 = std::time::Instant::now();
            coord = match FleetCoordinator::recover(cfg.clone(), dir) {
                Ok(c) => c,
                Err(e) => {
                    violations.push(format!("recovery failed: {e}"));
                    return fail_record(spec, violations.remove(0));
                }
            };
            failover_wall += t0.elapsed();
            if !coord.stats().conserves() {
                violations.push(format!(
                    "identity broken right after recovery: {:?}",
                    coord.stats()
                ));
            }
        }

        for (t, cost) in offers(spec.scenario, spec.severity, spec.seed, now, &flooded) {
            // Refusals (brown-out, memory) are legitimate under attack;
            // they are counted and conserved, not hidden.
            let _ = coord.offer(TENANTS[t], cost, now);
        }
        let panics: Vec<u32> = match panic_shard {
            // One hostile chunk per tick until the restart budget dies.
            Some(s) if now < kill_tick && coord.ring().contains(s) => vec![s],
            _ => Vec::new(),
        };
        for chunk in coord.advance(now, 4, &panics) {
            served.entry(chunk.tenant.clone()).or_default().push((chunk.seq, chunk.cost));
            if killed.is_some() {
                first_served_after_kill.entry(chunk.tenant.clone()).or_insert(now);
                *served_after_kill.entry(chunk.tenant).or_insert(0) += 1;
            }
        }
        coord.react(now);
        if let Some(victim) = partitioned {
            // Split-brain ordering: the victim must be observably
            // self-fenced (alive, lease expired, serving nothing) while
            // the coordinator has not yet failed anything over.
            if !self_fenced_before_failover
                && coord.shard_self_fenced(victim, now)
                && coord.failovers().is_empty()
            {
                self_fenced_before_failover = true;
            }
        }
        if !coord.stats().conserves() {
            violations.push(format!("identity broken at tick {now}: {:?}", coord.stats()));
            break;
        }
        now += 1;
    }
    // Full drain: the identity must close with queued == 0.
    let mut drained = 0;
    while coord.stats().queued > 0 && drained < 10_000 {
        for chunk in coord.advance(now, usize::MAX, &[]) {
            served.entry(chunk.tenant.clone()).or_default().push((chunk.seq, chunk.cost));
            if killed.is_some() {
                first_served_after_kill.entry(chunk.tenant.clone()).or_insert(now);
                *served_after_kill.entry(chunk.tenant).or_insert(0) += 1;
            }
        }
        now += 1;
        drained += 1;
    }
    for chunks in served.values_mut() {
        chunks.sort_unstable();
    }

    let stats = coord.stats();
    let view = coord.view();
    if !stats.conserves() {
        violations.push(format!("final identity broken: {stats:?}"));
    }
    if stats.queued != 0 {
        violations.push(format!("drained fleet still queues {} chunk(s)", stats.queued));
    }
    if view.live == 0 {
        violations.push("the fleet went dark: zero live shards".to_string());
    }
    let graceful =
        coord.failovers().iter().filter(|f| f.kind == FailoverKind::Graceful).count();
    let crashes =
        coord.failovers().iter().filter(|f| f.kind == FailoverKind::Crash).count();
    let scrub_found = view
        .scrub_events
        .iter()
        .filter(|d| matches!(d, Defect::ReplicaLag { .. } | Defect::ReplicaDiverged { .. }))
        .count();
    let scrub_repaired = view
        .scrub_events
        .iter()
        .filter(|d| matches!(d, Defect::ScrubRepaired { .. }))
        .count();
    // Failover latency on the logical clock: ticks from the kill until the
    // slowest victim tenant was served again through its new home.
    let recovery_ticks = victim_tenants
        .iter()
        .filter_map(|t| first_served_after_kill.get(t))
        .map(|&first| first.saturating_sub(kill_at))
        .max()
        .unwrap_or(0);

    if spec.severity == 0.0 {
        // Clean path: no failure machinery may have moved.
        if !coord.failovers().is_empty()
            || stats.rejected != 0
            || stats.shed != 0
            || stats.migrated != 0
            || stats.crash_loss != 0
        {
            violations.push(format!("clean run was not silent: {stats:?}"));
        }
        if stats.served != stats.offered {
            violations.push(format!("clean run dropped chunks: {stats:?}"));
        }
    } else {
        match spec.scenario {
            Scenario::SteadyState => {}
            Scenario::ShardKill => {
                // A single-shard fleet has nothing to fail over to; the
                // kill is skipped rather than blacking out the fleet.
                if spec.shards > 1 && crashes == 0 {
                    violations.push("the kill never registered as a crash".to_string());
                }
                // No lost tenants: every tenant of the killed shard keeps
                // being served through its new home.
                for t in &victim_tenants {
                    if served_after_kill.get(t).copied().unwrap_or(0) == 0 {
                        violations.push(format!(
                            "tenant {t} was lost with its shard (never served again)"
                        ));
                    }
                }
                // The disk survived the kill, so with replication on (or
                // off! the primary journal alone suffices here) the
                // pre-kill burst replays exactly.
                if spec.shards > 1 && replicated {
                    if stats.crash_loss != 0 {
                        violations.push(format!(
                            "a kill with an intact disk must replay losslessly: {} lost",
                            stats.crash_loss
                        ));
                    }
                    if stats.recovered == 0 && !faulty_plane {
                        violations
                            .push("the pre-kill burst never replayed".to_string());
                    }
                }
            }
            Scenario::DiskLoss => {
                if spec.shards > 1 {
                    if crashes == 0 {
                        violations.push("the kill never registered as a crash".to_string());
                    }
                    for t in &victim_tenants {
                        if served_after_kill.get(t).copied().unwrap_or(0) == 0 {
                            violations.push(format!(
                                "tenant {t} was lost with its shard (never served again)"
                            ));
                        }
                    }
                    if replicated {
                        // The failure replication exists for: primary disk
                        // gone, the replica replays the queue exactly.
                        if stats.crash_loss != 0 {
                            violations.push(format!(
                                "the replica must reconcile a disk loss exactly: {} lost",
                                stats.crash_loss
                            ));
                        }
                        if stats.recovered == 0 && !faulty_plane {
                            violations.push(
                                "nothing replayed from the replica".to_string(),
                            );
                        }
                    } else if stats.crash_loss == 0 {
                        violations.push(
                            "disk loss without a replica must book honest loss"
                                .to_string(),
                        );
                    }
                }
            }
            Scenario::ReplicaCorrupt => {
                if spec.shards > 1 && replicated {
                    // The scrub must have found the bit rot / torn ship
                    // and repaired the replica before the late disk loss.
                    if scrub_found == 0 {
                        violations
                            .push("the scrub never detected the corruption".to_string());
                    }
                    if scrub_repaired == 0 {
                        violations
                            .push("the scrub never repaired the replica".to_string());
                    }
                    if stats.crash_loss != 0 {
                        violations.push(format!(
                            "a scrub-repaired replica must reconcile exactly: {} lost",
                            stats.crash_loss
                        ));
                    }
                    if stats.recovered == 0 && !faulty_plane {
                        violations.push(
                            "nothing replayed from the repaired replica".to_string(),
                        );
                    }
                }
            }
            Scenario::DoubleFailure => {
                if spec.shards > 1 {
                    // No clean copy survives (disk gone; replica corrupt
                    // or absent): the residual must be booked, not hidden.
                    if stats.crash_loss == 0 {
                        violations.push(
                            "a double failure must book honest residual loss".to_string(),
                        );
                    }
                    if stats.recovered != 0 {
                        violations.push(format!(
                            "a damaged copy was trusted for replay: {} recovered",
                            stats.recovered
                        ));
                    }
                    // The tenants survive even when their queue does not.
                    for t in &victim_tenants {
                        if served_after_kill.get(t).copied().unwrap_or(0) == 0 {
                            violations.push(format!(
                                "tenant {t} was lost with its shard (never served again)"
                            ));
                        }
                    }
                }
            }
            Scenario::BrownOutFailover => {
                // The last shard is never fenced — a one-shard fleet
                // rides the brown-out out behind its own breaker.
                if spec.severity >= 2.0 && spec.shards > 1 {
                    if graceful == 0 {
                        violations
                            .push("a sustained brown-out must fence the shard".to_string());
                    }
                    if stats.crash_loss != 0 {
                        violations.push(format!(
                            "graceful failover must be lossless: {} crash loss",
                            stats.crash_loss
                        ));
                    }
                    if stats.migrated == 0 {
                        violations.push("a fence must migrate the queue".to_string());
                    }
                }
            }
            Scenario::Cascade => {
                if view.live < 1 {
                    violations.push("the cascade fenced the last shard".to_string());
                }
                if spec.severity >= 2.0 && spec.shards > 1 && graceful == 0 {
                    violations.push("a fleet-wide flood must fence something".to_string());
                }
            }
            Scenario::CoordinatorRestart => {
                if view.live != spec.shards as usize {
                    violations.push(format!(
                        "restart lost shards: {} live of {}",
                        view.live, spec.shards
                    ));
                }
            }
            Scenario::Partition | Scenario::AsymmetricPartition | Scenario::StaleWriter => {
                if spec.shards > 1 {
                    if crashes == 0 {
                        violations
                            .push("the lease never expired into a failover".to_string());
                    }
                    if !self_fenced_before_failover {
                        violations.push(
                            "the victim never self-fenced ahead of the failover"
                                .to_string(),
                        );
                    }
                    // The partition killed the process, not the disk: the
                    // journal replays the queue exactly.
                    if replicated {
                        if stats.crash_loss != 0 {
                            violations.push(format!(
                                "a partition must lose nothing (the journal survives): \
                                 {} lost",
                                stats.crash_loss
                            ));
                        }
                        if stats.recovered == 0 && !faulty_plane {
                            violations
                                .push("the partitioned queue never replayed".to_string());
                        }
                    }
                    for t in &victim_tenants {
                        if served_after_kill.get(t).copied().unwrap_or(0) == 0 {
                            violations.push(format!(
                                "tenant {t} was lost with its shard (never served again)"
                            ));
                        }
                    }
                    match coord.net_stats() {
                        Some(ns) if ns.partitioned == 0 => violations
                            .push("the partition never blocked a frame".to_string()),
                        Some(_) => {}
                        None => violations
                            .push("the partition arc ran without a transport".to_string()),
                    }
                }
            }
            Scenario::SplitTenantFlood => {
                if let Some(s) = panic_shard {
                    // The panic storm stayed inside its shard: every
                    // *other* shard's restart budget is untouched.
                    for h in &view.shards {
                        if h.id != s && h.restarts_used != 0 {
                            violations.push(format!(
                                "panic leaked across the bulkhead into shard {}",
                                h.id
                            ));
                        }
                    }
                }
            }
        }
    }

    RunRecord {
        scenario: spec.scenario.name(),
        severity: spec.severity,
        seed: spec.seed,
        ok: violations.is_empty(),
        violations,
        offered: stats.offered,
        served: stats.served,
        rejected: stats.rejected,
        shed: stats.shed,
        migrated: stats.migrated,
        crash_loss: stats.crash_loss,
        recovered: stats.recovered,
        recovery_ticks,
        scrub_found,
        scrub_repaired,
        failovers_graceful: graceful,
        failovers_crash: crashes,
        live_shards: view.live,
        restart_burn: view.restart_burn,
        failover_wall_us: failover_wall.as_micros(),
        served_digest: served_digest(&served),
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn to_json(records: &[RunRecord], shards: u32, replicas: u32) -> String {
    let mut out =
        format!("{{\n  \"shards\": {shards},\n  \"replicas\": {replicas},\n  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"severity\": {}, \"seed\": {}, \"ok\": {}, \
             \"offered\": {}, \"served\": {}, \"rejected\": {}, \"shed\": {}, \
             \"migrated\": {}, \"crash_loss\": {}, \"recovered\": {}, \
             \"recovery_ticks\": {}, \"scrub_found\": {}, \"scrub_repaired\": {}, \
             \"failovers_graceful\": {}, \"failovers_crash\": {}, \"live_shards\": {}, \
             \"restart_burn\": {}, \"served_digest\": \"{:016x}\", \"violations\": [{}]}}{}\n",
            r.scenario,
            json_num(r.severity),
            r.seed,
            r.ok,
            r.offered,
            r.served,
            r.rejected,
            r.shed,
            r.migrated,
            r.crash_loss,
            r.recovered,
            r.recovery_ticks,
            r.scrub_found,
            r.scrub_repaired,
            r.failovers_graceful,
            r.failovers_crash,
            r.live_shards,
            r.restart_burn,
            r.served_digest,
            r.violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    // The summary keeps nondeterministic wall-clock aggregates on their own
    // `failover_wall_us`-prefixed lines, so CI can strip them
    // (`grep -v failover_wall_us`) and byte-compare the rest across
    // EMOLEAK_THREADS. Everything else in the file is deterministic.
    let wall_total: u128 = records.iter().map(|r| r.failover_wall_us).sum();
    let wall_max = records.iter().map(|r| r.failover_wall_us).max().unwrap_or(0);
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\n    \"crash_loss_total\": {},\n    \
         \"recovered_total\": {},\n    \"recovery_ticks_max\": {},\n    \
         \"failover_wall_us_total\": {wall_total},\n    \
         \"failover_wall_us_max\": {wall_max}\n  }},\n",
        records.iter().map(|r| r.crash_loss).sum::<u64>(),
        records.iter().map(|r| r.recovered).sum::<u64>(),
        records.iter().map(|r| r.recovery_ticks).max().unwrap_or(0),
    ));
    out.push_str(&format!(
        "  \"total_runs\": {},\n  \"failed_runs\": {failed}\n}}\n",
        records.len()
    ));
    out
}

/// The shard-count-invariant artifact: only the clean-path (severity 0)
/// served digests, which a correct fleet reproduces for ANY shard count.
/// CI byte-compares this file across `EMOLEAK_SHARDS` values.
fn digest_artifact(records: &[RunRecord]) -> String {
    let mut out =
        String::from("# clean-path served digests: invariant across EMOLEAK_SHARDS\n");
    for r in records.iter().filter(|r| r.severity == 0.0) {
        out.push_str(&format!(
            "{} seed={} digest={:016x}\n",
            r.scenario, r.seed, r.served_digest
        ));
    }
    out
}

fn main() -> Result<(), EmoleakError> {
    println!(
        "Fleet chaos: kills, disk losses, replica corruption, brown-outs, coordinator restarts"
    );

    let severities: Vec<f64> = emoleak_exec::parse_list_checked(
        "EMOLEAK_FLEET_SEVERITIES",
        "comma-separated non-negative numbers",
        |&s: &f64| s.is_finite() && s >= 0.0,
    )?
    .unwrap_or_else(|| vec![0.0, 1.0, 2.0]);
    let seeds: u64 = emoleak_exec::parse_checked(
        "EMOLEAK_FLEET_SEEDS",
        "a positive count",
        |&n: &u64| n > 0,
    )?
    .unwrap_or(2);
    let env_cfg = FleetConfig::from_env()?;
    let (shards, replicas) = (env_cfg.shards, env_cfg.replicas);

    let mut grid = Vec::new();
    for scenario in Scenario::ALL {
        for &severity in &severities {
            for seed in 0..seeds {
                grid.push(RunSpec {
                    scenario,
                    severity,
                    seed: 0xF1EE ^ (seed.wrapping_mul(0x9E37_79B9)) ^ (severity.to_bits() >> 17),
                    shards,
                    replicas,
                    net: env_cfg.net,
                });
            }
        }
    }
    // Order-preserving parallel map: the record order — and therefore the
    // JSON bytes — is the grid order under any EMOLEAK_THREADS.
    let records = par_map_indexed(&grid, run_one);

    println!(
        "{:<20} {:>4} {:>6} {:>8} {:>8} {:>8} {:>6} {:>8} {:>5} {:>6} {:>6} {:>5} {:>5}",
        "scenario", "sev", "ok", "offered", "served", "rejected", "shed", "migrated", "loss",
        "recov", "fails", "live", "burn"
    );
    println!("{}", "-".repeat(108));
    for r in &records {
        println!(
            "{:<20} {:>4} {:>6} {:>8} {:>8} {:>8} {:>6} {:>8} {:>5} {:>6} {:>4}g{:>1}c {:>4} {:>5}",
            r.scenario,
            r.severity,
            if r.ok { "ok" } else { "FAIL" },
            r.offered,
            r.served,
            r.rejected,
            r.shed,
            r.migrated,
            r.crash_loss,
            r.recovered,
            r.failovers_graceful,
            r.failovers_crash,
            r.live_shards,
            r.restart_burn,
        );
        for v in &r.violations {
            println!("    violation: {v}");
        }
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    println!(
        "\n{} runs ({} shards, {} replica(s)), {} violations; migrated: {}, recovered: {}, crash loss: {}",
        records.len(),
        shards,
        replicas,
        failed,
        records.iter().map(|r| r.migrated).sum::<u64>(),
        records.iter().map(|r| r.recovered).sum::<u64>(),
        records.iter().map(|r| r.crash_loss).sum::<u64>(),
    );

    let json = to_json(&records, shards, replicas);
    let path = std::env::var("EMOLEAK_FLEET_JSON")
        .unwrap_or_else(|_| "results/fleet_chaos.json".to_string());
    match write_result(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path} ({e}); JSON follows:\n{json}"),
    }
    let digest = digest_artifact(&records);
    let digest_path = std::env::var("EMOLEAK_FLEET_DIGEST")
        .unwrap_or_else(|_| "results/fleet_clean_digest.txt".to_string());
    match write_result(std::path::Path::new(&digest_path), digest.as_bytes()) {
        Ok(()) => println!("wrote {digest_path}"),
        Err(e) => println!("could not write {digest_path} ({e}); digests follow:\n{digest}"),
    }
    assert!(failed == 0, "{failed} fleet run(s) violated the contract");
    Ok(())
}
