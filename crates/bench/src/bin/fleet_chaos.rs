//! Fleet-chaos harness for the sharded coordinator.
//!
//! Drives `emoleak_fleet::FleetCoordinator` through a grid of fleet-level
//! failure scenarios × severities × seeds and asserts the *fleet contract*
//! on every run:
//!
//! * conservation — at the end of every run (after a full drain),
//!   `offered == served + rejected + shed + queued + migrated` fleet-wide,
//!   with `queued == 0`;
//! * no lost tenants — after any single-shard kill, every tenant is still
//!   served (its chunks flow through its new home shard);
//! * contained panics — hostile chunks panic inside their shard only; a
//!   sibling shard never burns restart budget, and no panic escapes to
//!   this harness;
//! * graceful failover is lossless — a brown-out fence books zero
//!   `crash_loss` and a positive `migrated` count;
//! * the last shard is never fenced — cascades stop at one live shard;
//! * clean-path silence — at severity 0 there are no failovers, no
//!   rejections, no sheds, and everything offered is served;
//! * clean-path placement invariance — the per-tenant served stream
//!   (tenant, seq, cost) digests to the same value for ANY shard count,
//!   because coordinator-assigned seqs survive routing. The digests land
//!   in their own artifact so CI can byte-compare it across
//!   `EMOLEAK_SHARDS` values.
//!
//! The simulation runs on the fleet's logical clock, and the scenario grid
//! is parallelized with order-preserving `par_map_indexed`, so
//! `results/fleet_chaos.json` is **byte-identical under any
//! `EMOLEAK_THREADS`** (for a fixed shard count). Knobs:
//! `EMOLEAK_FLEET_SEVERITIES` (comma list, default `0,1,2`),
//! `EMOLEAK_FLEET_SEEDS` (default 2), `EMOLEAK_SHARDS` (fleet width,
//! default 4), `EMOLEAK_FLEET_JSON` and `EMOLEAK_FLEET_DIGEST` (artifact
//! paths). Exits non-zero if any run violates the contract.

use emoleak_bench::write_result;
use emoleak_core::EmoleakError;
use emoleak_exec::{derive_seed, par_map_indexed, splitmix64};
use emoleak_fleet::{FailoverKind, FleetConfig, FleetCoordinator};
use std::collections::BTreeMap;

const TICKS: u64 = 400;
const TENANTS: [&str; 8] =
    ["amber", "brook", "coral", "dune", "ember", "fjord", "grove", "heath"];

#[derive(Clone, Copy)]
enum Scenario {
    /// A healthy fleet under steady load — the placement-invariance and
    /// clean-path baseline.
    SteadyState,
    /// One shard is hard-killed mid-run (`SIGKILL`); its tenants must
    /// re-home and keep being served.
    ShardKill,
    /// One shard's tenants flood it into a sustained BrownOut; the
    /// coordinator must fence it gracefully, with zero loss.
    BrownOutFailover,
    /// Brown-outs cascade shard by shard; the fleet must stop fencing at
    /// one live shard.
    Cascade,
    /// The coordinator itself is killed mid-run and restarted from its
    /// checkpoint journal.
    CoordinatorRestart,
    /// Hostile chunks panic one shard's workers while a flood squeezes
    /// another: two containment domains failing differently at once.
    SplitTenantFlood,
}

impl Scenario {
    const ALL: [Scenario; 6] = [
        Scenario::SteadyState,
        Scenario::ShardKill,
        Scenario::BrownOutFailover,
        Scenario::Cascade,
        Scenario::CoordinatorRestart,
        Scenario::SplitTenantFlood,
    ];

    fn name(self) -> &'static str {
        match self {
            Scenario::SteadyState => "steady_state",
            Scenario::ShardKill => "shard_kill",
            Scenario::BrownOutFailover => "brown_out_failover",
            Scenario::Cascade => "cascade",
            Scenario::CoordinatorRestart => "coordinator_restart",
            Scenario::SplitTenantFlood => "split_tenant_flood",
        }
    }
}

/// The fleet tuning every run uses: generous rate limits (floods are
/// shaped by the byte budget and the breaker), a short ledger cadence so
/// crash reconciliation stays tight, and the shard count from the
/// environment so CI can sweep it.
fn fleet_config(shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig {
        shards,
        ledger_every: 10,
        ..FleetConfig::default()
    };
    cfg.admission.mem_budget = 1 << 16;
    cfg.admission.tenant_rps = 1_000_000;
    cfg.admission.tenant_burst = 1_000_000;
    cfg
}

/// Offers issued for tick `now`, as `(tenant index, cost)` pairs — a pure
/// function of `(scenario, severity, seed, now, flood targets)`.
fn offers(
    scenario: Scenario,
    severity: f64,
    seed: u64,
    now: u64,
    flooded: &[usize],
) -> Vec<(usize, u64)> {
    let mut stream = derive_seed(seed, now);
    let mut draw = || splitmix64(&mut stream);
    // Baseline: two polite offers per tick, round-robin over all tenants.
    let mut out = vec![
        ((now as usize * 2) % TENANTS.len(), 64 + draw() % 64),
        ((now as usize * 2 + 1) % TENANTS.len(), 64 + draw() % 64),
    ];
    if severity > 0.0 {
        match scenario {
            Scenario::SteadyState | Scenario::ShardKill | Scenario::CoordinatorRestart => {}
            Scenario::BrownOutFailover | Scenario::Cascade | Scenario::SplitTenantFlood => {
                // The flood tenants hammer their home shards hard enough
                // to overrun the byte budget and trip the breaker.
                for &t in flooded {
                    for _ in 0..(12.0 * severity) as u64 {
                        out.push((t, 256));
                    }
                }
            }
        }
    }
    out
}

struct RunSpec {
    scenario: Scenario,
    severity: f64,
    seed: u64,
    shards: u32,
}

struct RunRecord {
    scenario: &'static str,
    severity: f64,
    seed: u64,
    ok: bool,
    violations: Vec<String>,
    offered: u64,
    served: u64,
    rejected: u64,
    shed: u64,
    migrated: u64,
    crash_loss: u64,
    failovers_graceful: usize,
    failovers_crash: usize,
    live_shards: usize,
    restart_burn: u32,
    /// FNV-1a over the per-tenant served stream `(tenant, seq, cost)`,
    /// tenant-sorted — invariant across shard counts on the clean path.
    served_digest: u64,
}

fn fail_record(spec: &RunSpec, why: String) -> RunRecord {
    RunRecord {
        scenario: spec.scenario.name(),
        severity: spec.severity,
        seed: spec.seed,
        ok: false,
        violations: vec![why],
        offered: 0,
        served: 0,
        rejected: 0,
        shed: 0,
        migrated: 0,
        crash_loss: 0,
        failovers_graceful: 0,
        failovers_crash: 0,
        live_shards: 0,
        restart_burn: 0,
        served_digest: 0,
    }
}

fn run_one(index: usize, spec: &RunSpec) -> RunRecord {
    let dir = std::env::temp_dir().join(format!(
        "emoleak-fleet-chaos-{}-{index}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        simulate(spec, &dir)
    }));
    let _ = std::fs::remove_dir_all(&dir);
    match outcome {
        Ok(record) => record,
        Err(_) => fail_record(spec, "escaped panic in the fleet layer".to_string()),
    }
}

/// FNV-1a over the served stream, per tenant in seq order. Served chunks
/// are grouped by tenant (sorted) and sorted by seq within a tenant, so
/// the digest only depends on *what* each tenant had served — not on
/// which shard served it or in what global interleaving.
fn served_digest(served: &BTreeMap<String, Vec<(u64, u64)>>) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (tenant, chunks) in served {
        for b in tenant.bytes() {
            eat(b);
        }
        eat(0xFF);
        for (seq, cost) in chunks {
            for b in seq.to_le_bytes().into_iter().chain(cost.to_le_bytes()) {
                eat(b);
            }
        }
    }
    hash
}

fn simulate(spec: &RunSpec, dir: &std::path::Path) -> RunRecord {
    let cfg = fleet_config(spec.shards);
    let mut coord = match FleetCoordinator::new(cfg.clone(), dir) {
        Ok(c) => c,
        Err(e) => return fail_record(spec, format!("fleet dir unusable: {e}")),
    };
    let mut violations = Vec::new();

    // Flood targets: for the brown-out scenarios, one tenant homed on
    // shard 0 (and, for the split flood, the panic victim is a *different*
    // shard). For the cascade, one tenant per shard so the floods roll
    // across the whole fleet.
    let home_of =
        |c: &FleetCoordinator, t: &str| -> u32 { c.ring().route(t) };
    let tenant_on = |c: &FleetCoordinator, shard: u32| -> Option<usize> {
        (0..TENANTS.len()).find(|&t| home_of(c, TENANTS[t]) == shard)
    };
    let flooded: Vec<usize> = match spec.scenario {
        Scenario::BrownOutFailover | Scenario::SplitTenantFlood => {
            tenant_on(&coord, 0).into_iter().collect()
        }
        Scenario::Cascade => coord
            .ring()
            .shard_ids()
            .iter()
            .filter_map(|&s| tenant_on(&coord, s))
            .collect(),
        _ => Vec::new(),
    };
    // The split flood panics the shard housing the round-robin tenant
    // furthest from the flooded one, so the two failure domains differ.
    let panic_shard: Option<u32> = match spec.scenario {
        Scenario::SplitTenantFlood if spec.severity > 0.0 => coord
            .ring()
            .shard_ids()
            .into_iter()
            .find(|&s| s != 0),
        _ => None,
    };

    let kill_tick = TICKS / 2;
    let restart_tick = TICKS / 2;
    let mut killed: Option<u32> = None;
    let mut victim_tenants: Vec<String> = Vec::new();
    let mut served: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    let mut served_after_kill: BTreeMap<String, u64> = BTreeMap::new();

    let mut now = 0;
    while now < TICKS {
        if matches!(spec.scenario, Scenario::ShardKill)
            && spec.severity > 0.0
            && now == kill_tick
            && coord.ring().len() > 1
        {
            let victim = coord.ring().shard_ids()[0];
            victim_tenants = TENANTS
                .iter()
                .filter(|t| home_of(&coord, t) == victim)
                .map(|t| t.to_string())
                .collect();
            let event = coord.kill_shard(victim, now);
            if event.kind != FailoverKind::Crash {
                violations.push("a kill must reconcile as a crash".to_string());
            }
            killed = Some(victim);
        }
        if matches!(spec.scenario, Scenario::CoordinatorRestart)
            && spec.severity > 0.0
            && now == restart_tick
        {
            // Checkpoint, drop the coordinator (its shards' memory dies
            // with it), and recover from the journal.
            if let Err(e) = coord.checkpoint(now) {
                violations.push(format!("checkpoint failed: {e}"));
            }
            drop(coord);
            coord = match FleetCoordinator::recover(cfg.clone(), dir) {
                Ok(c) => c,
                Err(e) => {
                    violations.push(format!("recovery failed: {e}"));
                    return fail_record(spec, violations.remove(0));
                }
            };
            if !coord.stats().conserves() {
                violations.push(format!(
                    "identity broken right after recovery: {:?}",
                    coord.stats()
                ));
            }
        }

        for (t, cost) in offers(spec.scenario, spec.severity, spec.seed, now, &flooded) {
            // Refusals (brown-out, memory) are legitimate under attack;
            // they are counted and conserved, not hidden.
            let _ = coord.offer(TENANTS[t], cost, now);
        }
        let panics: Vec<u32> = match panic_shard {
            // One hostile chunk per tick until the restart budget dies.
            Some(s) if now < kill_tick && coord.ring().contains(s) => vec![s],
            _ => Vec::new(),
        };
        for chunk in coord.advance(now, 4, &panics) {
            served.entry(chunk.tenant.clone()).or_default().push((chunk.seq, chunk.cost));
            if killed.is_some() {
                *served_after_kill.entry(chunk.tenant).or_insert(0) += 1;
            }
        }
        coord.react(now);
        if !coord.stats().conserves() {
            violations.push(format!("identity broken at tick {now}: {:?}", coord.stats()));
            break;
        }
        now += 1;
    }
    // Full drain: the identity must close with queued == 0.
    let mut drained = 0;
    while coord.stats().queued > 0 && drained < 10_000 {
        for chunk in coord.advance(now, usize::MAX, &[]) {
            served.entry(chunk.tenant.clone()).or_default().push((chunk.seq, chunk.cost));
            if killed.is_some() {
                *served_after_kill.entry(chunk.tenant).or_insert(0) += 1;
            }
        }
        now += 1;
        drained += 1;
    }
    for chunks in served.values_mut() {
        chunks.sort_unstable();
    }

    let stats = coord.stats();
    let view = coord.view();
    if !stats.conserves() {
        violations.push(format!("final identity broken: {stats:?}"));
    }
    if stats.queued != 0 {
        violations.push(format!("drained fleet still queues {} chunk(s)", stats.queued));
    }
    if view.live == 0 {
        violations.push("the fleet went dark: zero live shards".to_string());
    }
    let graceful =
        coord.failovers().iter().filter(|f| f.kind == FailoverKind::Graceful).count();
    let crashes =
        coord.failovers().iter().filter(|f| f.kind == FailoverKind::Crash).count();

    if spec.severity == 0.0 {
        // Clean path: no failure machinery may have moved.
        if !coord.failovers().is_empty()
            || stats.rejected != 0
            || stats.shed != 0
            || stats.migrated != 0
            || stats.crash_loss != 0
        {
            violations.push(format!("clean run was not silent: {stats:?}"));
        }
        if stats.served != stats.offered {
            violations.push(format!("clean run dropped chunks: {stats:?}"));
        }
    } else {
        match spec.scenario {
            Scenario::SteadyState => {}
            Scenario::ShardKill => {
                // A single-shard fleet has nothing to fail over to; the
                // kill is skipped rather than blacking out the fleet.
                if spec.shards > 1 && crashes == 0 {
                    violations.push("the kill never registered as a crash".to_string());
                }
                // No lost tenants: every tenant of the killed shard keeps
                // being served through its new home.
                for t in &victim_tenants {
                    if served_after_kill.get(t).copied().unwrap_or(0) == 0 {
                        violations.push(format!(
                            "tenant {t} was lost with its shard (never served again)"
                        ));
                    }
                }
            }
            Scenario::BrownOutFailover => {
                // The last shard is never fenced — a one-shard fleet
                // rides the brown-out out behind its own breaker.
                if spec.severity >= 2.0 && spec.shards > 1 {
                    if graceful == 0 {
                        violations
                            .push("a sustained brown-out must fence the shard".to_string());
                    }
                    if stats.crash_loss != 0 {
                        violations.push(format!(
                            "graceful failover must be lossless: {} crash loss",
                            stats.crash_loss
                        ));
                    }
                    if stats.migrated == 0 {
                        violations.push("a fence must migrate the queue".to_string());
                    }
                }
            }
            Scenario::Cascade => {
                if view.live < 1 {
                    violations.push("the cascade fenced the last shard".to_string());
                }
                if spec.severity >= 2.0 && spec.shards > 1 && graceful == 0 {
                    violations.push("a fleet-wide flood must fence something".to_string());
                }
            }
            Scenario::CoordinatorRestart => {
                if view.live != spec.shards as usize {
                    violations.push(format!(
                        "restart lost shards: {} live of {}",
                        view.live, spec.shards
                    ));
                }
            }
            Scenario::SplitTenantFlood => {
                if let Some(s) = panic_shard {
                    // The panic storm stayed inside its shard: every
                    // *other* shard's restart budget is untouched.
                    for h in &view.shards {
                        if h.id != s && h.restarts_used != 0 {
                            violations.push(format!(
                                "panic leaked across the bulkhead into shard {}",
                                h.id
                            ));
                        }
                    }
                }
            }
        }
    }

    RunRecord {
        scenario: spec.scenario.name(),
        severity: spec.severity,
        seed: spec.seed,
        ok: violations.is_empty(),
        violations,
        offered: stats.offered,
        served: stats.served,
        rejected: stats.rejected,
        shed: stats.shed,
        migrated: stats.migrated,
        crash_loss: stats.crash_loss,
        failovers_graceful: graceful,
        failovers_crash: crashes,
        live_shards: view.live,
        restart_burn: view.restart_burn,
        served_digest: served_digest(&served),
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn to_json(records: &[RunRecord], shards: u32) -> String {
    let mut out = format!("{{\n  \"shards\": {shards},\n  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"severity\": {}, \"seed\": {}, \"ok\": {}, \
             \"offered\": {}, \"served\": {}, \"rejected\": {}, \"shed\": {}, \
             \"migrated\": {}, \"crash_loss\": {}, \"failovers_graceful\": {}, \
             \"failovers_crash\": {}, \"live_shards\": {}, \"restart_burn\": {}, \
             \"served_digest\": \"{:016x}\", \"violations\": [{}]}}{}\n",
            r.scenario,
            json_num(r.severity),
            r.seed,
            r.ok,
            r.offered,
            r.served,
            r.rejected,
            r.shed,
            r.migrated,
            r.crash_loss,
            r.failovers_graceful,
            r.failovers_crash,
            r.live_shards,
            r.restart_burn,
            r.served_digest,
            r.violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    out.push_str(&format!(
        "  ],\n  \"total_runs\": {},\n  \"failed_runs\": {failed}\n}}\n",
        records.len()
    ));
    out
}

/// The shard-count-invariant artifact: only the clean-path (severity 0)
/// served digests, which a correct fleet reproduces for ANY shard count.
/// CI byte-compares this file across `EMOLEAK_SHARDS` values.
fn digest_artifact(records: &[RunRecord]) -> String {
    let mut out =
        String::from("# clean-path served digests: invariant across EMOLEAK_SHARDS\n");
    for r in records.iter().filter(|r| r.severity == 0.0) {
        out.push_str(&format!(
            "{} seed={} digest={:016x}\n",
            r.scenario, r.seed, r.served_digest
        ));
    }
    out
}

fn main() -> Result<(), EmoleakError> {
    println!("Fleet chaos: shard kills, brown-out failover, cascades, coordinator restarts");

    let severities: Vec<f64> = emoleak_exec::parse_list_checked(
        "EMOLEAK_FLEET_SEVERITIES",
        "comma-separated non-negative numbers",
        |&s: &f64| s.is_finite() && s >= 0.0,
    )?
    .unwrap_or_else(|| vec![0.0, 1.0, 2.0]);
    let seeds: u64 = emoleak_exec::parse_checked(
        "EMOLEAK_FLEET_SEEDS",
        "a positive count",
        |&n: &u64| n > 0,
    )?
    .unwrap_or(2);
    let shards = FleetConfig::from_env()?.shards;

    let mut grid = Vec::new();
    for scenario in Scenario::ALL {
        for &severity in &severities {
            for seed in 0..seeds {
                grid.push(RunSpec {
                    scenario,
                    severity,
                    seed: 0xF1EE ^ (seed.wrapping_mul(0x9E37_79B9)) ^ (severity.to_bits() >> 17),
                    shards,
                });
            }
        }
    }
    // Order-preserving parallel map: the record order — and therefore the
    // JSON bytes — is the grid order under any EMOLEAK_THREADS.
    let records = par_map_indexed(&grid, run_one);

    println!(
        "{:<20} {:>4} {:>6} {:>8} {:>8} {:>8} {:>6} {:>8} {:>5} {:>6} {:>5} {:>5}",
        "scenario", "sev", "ok", "offered", "served", "rejected", "shed", "migrated", "loss",
        "fails", "live", "burn"
    );
    println!("{}", "-".repeat(100));
    for r in &records {
        println!(
            "{:<20} {:>4} {:>6} {:>8} {:>8} {:>8} {:>6} {:>8} {:>5} {:>4}g{:>1}c {:>4} {:>5}",
            r.scenario,
            r.severity,
            if r.ok { "ok" } else { "FAIL" },
            r.offered,
            r.served,
            r.rejected,
            r.shed,
            r.migrated,
            r.crash_loss,
            r.failovers_graceful,
            r.failovers_crash,
            r.live_shards,
            r.restart_burn,
        );
        for v in &r.violations {
            println!("    violation: {v}");
        }
    }
    let failed = records.iter().filter(|r| !r.ok).count();
    println!(
        "\n{} runs ({} shards), {} violations; migrated: {}, crash loss: {}",
        records.len(),
        shards,
        failed,
        records.iter().map(|r| r.migrated).sum::<u64>(),
        records.iter().map(|r| r.crash_loss).sum::<u64>(),
    );

    let json = to_json(&records, shards);
    let path = std::env::var("EMOLEAK_FLEET_JSON")
        .unwrap_or_else(|_| "results/fleet_chaos.json".to_string());
    match write_result(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path} ({e}); JSON follows:\n{json}"),
    }
    let digest = digest_artifact(&records);
    let digest_path = std::env::var("EMOLEAK_FLEET_DIGEST")
        .unwrap_or_else(|_| "results/fleet_clean_digest.txt".to_string());
    match write_result(std::path::Path::new(&digest_path), digest.as_bytes()) {
        Ok(()) => println!("wrote {digest_path}"),
        Err(e) => println!("could not write {digest_path} ({e}); digests follow:\n{digest}"),
    }
    assert!(failed == 0, "{failed} fleet run(s) violated the contract");
    Ok(())
}
