//! Robustness sweep: attack accuracy vs sensor-fault severity, one curve
//! per fault axis.
//!
//! Each axis isolates one family of channel imperfections from
//! `emoleak_phone::FaultProfile` (delivery loss, saturation, user motion,
//! power management) and sweeps its severity over the same campaign.
//! Severity 0 is the clean baseline; the attack should decay toward random
//! guessing as each axis intensifies, without a single panic along the way.
//!
//! Prints a text degradation table and writes the full results as JSON
//! (default `robustness_sweep.json`, override with `EMOLEAK_SWEEP_JSON`).
//! The 24 (axis, severity) campaigns run in parallel on `EMOLEAK_THREADS`
//! workers with bit-identical output at any worker count.

use emoleak_bench::{banner, campaign_fingerprint, clips_per_cell, run_campaign, write_result};
use emoleak_core::prelude::*;
use emoleak_core::{evaluate_features, ClassifierKind, Protocol};
use emoleak_durable::{Dec, Enc};
use emoleak_phone::{BatchingSpec, FaultProfile, ThermalThrottle};

/// One fault axis: a named base profile whose severity gets swept.
struct Axis {
    name: &'static str,
    base: FaultProfile,
}

fn axes() -> Vec<Axis> {
    vec![
        Axis {
            name: "delivery",
            base: FaultProfile {
                drop_rate: 0.10,
                dup_rate: 0.03,
                jitter_std_s: 1.0e-3,
                ..FaultProfile::clean()
            },
        },
        Axis {
            name: "saturation",
            // Full scale chosen near the speech-band vibration amplitude so
            // clipping starts to bite at severity 1 and dominates beyond.
            base: FaultProfile { full_scale: Some(0.02), ..FaultProfile::clean() },
        },
        Axis {
            name: "motion",
            base: FaultProfile {
                burst_rate_hz: 1.8,
                burst_amp: 0.12,
                burst_duration_s: 0.12,
                ..FaultProfile::clean()
            },
        },
        Axis {
            name: "power",
            base: FaultProfile {
                batching: Some(BatchingSpec::doze_default()),
                throttle: ThermalThrottle { onset_s: 30.0, rate_factor: 0.8 },
                ..FaultProfile::clean()
            },
        },
    ]
}

struct Cell {
    severity: f64,
    accuracy: f64,
    regions: usize,
    faults: emoleak_phone::FaultLog,
}

/// Checkpoint payload for one sweep cell; accuracies are raw `f64` bits so
/// a resumed sweep's JSON is byte-identical to an uninterrupted one.
fn encode_cell(c: &Cell) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.f64(c.severity).f64(c.accuracy).u64(c.regions as u64);
    for n in [
        c.faults.dropped,
        c.faults.duplicated,
        c.faults.clipped,
        c.faults.bursts,
        c.faults.suspensions,
        c.faults.throttled,
    ] {
        enc.u64(n as u64);
    }
    enc.into_bytes()
}

fn decode_cell(bytes: &[u8]) -> Option<Cell> {
    let mut dec = Dec::new(bytes);
    let severity = dec.f64().ok()?;
    let accuracy = dec.f64().ok()?;
    let regions = dec.u64().ok()? as usize;
    let mut counts = [0usize; 6];
    for slot in &mut counts {
        *slot = dec.u64().ok()? as usize;
    }
    dec.finish().ok()?;
    Some(Cell {
        severity,
        accuracy,
        regions,
        faults: emoleak_phone::FaultLog {
            dropped: counts[0],
            duplicated: counts[1],
            clipped: counts[2],
            bursts: counts[3],
            suspensions: counts[4],
            throttled: counts[5],
        },
    })
}

/// Renders an `f64` as a JSON number, mapping non-finite values to `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn to_json(random_guess: f64, severities: &[f64], results: &[(String, Vec<Cell>)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"random_guess\": {},\n", json_num(random_guess)));
    out.push_str(&format!(
        "  \"severities\": [{}],\n",
        severities.iter().map(|&s| json_num(s)).collect::<Vec<_>>().join(", ")
    ));
    out.push_str("  \"axes\": [\n");
    for (i, (name, cells)) in results.iter().enumerate() {
        out.push_str(&format!("    {{\"name\": \"{name}\", \"cells\": [\n"));
        for (j, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"severity\": {}, \"accuracy\": {}, \"regions\": {}, \
                 \"dropped\": {}, \"duplicated\": {}, \"clipped\": {}, \
                 \"bursts\": {}, \"suspensions\": {}, \"throttled\": {}}}{}\n",
                json_num(c.severity),
                json_num(c.accuracy),
                c.regions,
                c.faults.dropped,
                c.faults.duplicated,
                c.faults.clipped,
                c.faults.bursts,
                c.faults.suspensions,
                c.faults.throttled,
                if j + 1 < cells.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!("    ]}}{}\n", if i + 1 < results.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?.min(12));
    let random_guess = corpus.random_guess();
    banner("Robustness sweep: accuracy vs fault severity (TESS / OnePlus 7T)", random_guess);
    let severities = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    let device = DeviceProfile::oneplus_7t();

    // Every (axis, severity) cell is an independent campaign: flatten the
    // grid and run all cells in parallel. Each campaign is fully seeded, so
    // the sweep is bit-identical at any EMOLEAK_THREADS.
    let axes = axes();
    let grid: Vec<(usize, f64)> = (0..axes.len())
        .flat_map(|ai| severities.iter().map(move |&s| (ai, s)))
        .collect();
    let fingerprint = campaign_fingerprint(&[
        &format!("clips={}", corpus.clips_per_cell()),
        &format!("severities={severities:?}"),
        &axes.iter().map(|a| a.name).collect::<Vec<_>>().join(","),
    ]);
    let cells = run_campaign(
        "robustness_sweep",
        fingerprint,
        grid.len(),
        encode_cell,
        decode_cell,
        |range| {
            emoleak_exec::par_map_indexed(&grid[range], |_, &(ai, severity)| {
                let scenario = AttackScenario::table_top(corpus.clone(), device.clone())
                    .with_faults(axes[ai].base.clone().with_severity(severity));
                let h = scenario.harvest()?;
                // 5-fold CV: a single 80/20 split on a small faulted campaign
                // is noisy enough to hide the decay trend. A campaign degraded
                // below trainability is the fault winning, not an error: it
                // scores as random guessing.
                let accuracy = match evaluate_features(
                    &h.features,
                    ClassifierKind::Logistic,
                    Protocol::KFold(5),
                    0x5EED,
                ) {
                    Ok(eval) => eval.accuracy,
                    Err(EmoleakError::DegenerateDataset(_)) => random_guess,
                    Err(e) => return Err(e),
                };
                Ok(Cell { severity, accuracy, regions: h.features.len(), faults: h.faults })
            })
            .into_iter()
            .collect()
        },
    )?;
    let mut results: Vec<(String, Vec<Cell>)> = Vec::new();
    let mut cells = cells.into_iter();
    for axis in &axes {
        let row: Vec<Cell> = cells.by_ref().take(severities.len()).collect();
        results.push((axis.name.to_string(), row));
    }

    // Text degradation table: one row per axis, one column per severity.
    print!("{:<12}", "axis");
    for s in severities {
        print!(" {:>8}", format!("s={s}"));
    }
    println!();
    println!("{}", "-".repeat(12 + severities.len() * 9));
    for (name, cells) in &results {
        print!("{name:<12}");
        for c in cells {
            print!(" {:>7.1}%", c.accuracy * 100.0);
        }
        println!();
        // Coverage row: power-management faults (doze, throttling) mostly
        // cost *regions*, not per-region accuracy.
        print!("{:<12}", "  regions");
        for c in cells {
            print!(" {:>8}", c.regions);
        }
        println!();
    }
    println!("(random guess {:.1}%; accuracy at high severity should fall toward it)", random_guess * 100.0);
    for (name, cells) in &results {
        let f = &cells.last().expect("severities is non-empty").faults;
        println!("  {name:<12} faults at s=4: {f}");
    }

    let json = to_json(random_guess, &severities, &results);
    let path = std::env::var("EMOLEAK_SWEEP_JSON")
        .unwrap_or_else(|_| "robustness_sweep.json".to_string());
    // Atomic write: an interrupt leaves either the previous sweep's JSON or
    // this one, never a torn file.
    match write_result(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path} ({e}); JSON follows:\n{json}"),
    }
    Ok(())
}
