//! §III-B.1 — the sensor-choice justification: the accelerometer captures
//! speech vibrations far better than the gyroscope, so the attack uses the
//! accelerometer. This binary reproduces that comparison end to end:
//! identical playback campaigns through both sensor channels, then emotion
//! classification on each.

use emoleak_bench::{clips_per_cell, Report};
use emoleak_core::prelude::*;
use emoleak_core::{evaluate_features, ClassifierKind, Protocol};
use emoleak_features::regions::RegionDetector;
use emoleak_features::{all_feature_names, extract_all};
use emoleak_phone::gyro::GyroChannel;
use emoleak_phone::SpeakerKind;
use rand::SeedableRng;

/// One clip's labeled feature rows plus its detected-region count.
type ClipRows = (Vec<(Vec<f64>, usize)>, usize);

fn main() -> Result<(), EmoleakError> {
    let n = clips_per_cell()?.min(20);
    let corpus = CorpusSpec::tess().with_clips_per_cell(n);
    let mut report = Report::new("accel_vs_gyro");
    report.banner("Sensor choice: accelerometer vs gyroscope (TESS / OnePlus 7T)",
                  corpus.random_guess());
    let device = DeviceProfile::oneplus_7t();

    // Accelerometer arm: the standard pipeline.
    let accel = AttackScenario::table_top(corpus.clone(), device.clone()).harvest()?;
    let accel_acc =
        evaluate_features(&accel.features, ClassifierKind::Logistic, Protocol::Holdout8020, 1)?
            .accuracy;

    // Gyroscope arm: identical playback through the rotational channel.
    let gyro_channel = GyroChannel::new(&device, SpeakerKind::Loudspeaker);
    let emotions = corpus.emotions().to_vec();
    let class_names: Vec<String> = emotions.iter().map(|e| e.to_string()).collect();
    let mut gyro_features = FeatureDataset::new(all_feature_names(), class_names);
    let detector = RegionDetector::table_top();
    // Per-clip RNG streams (not one shared sequential RNG) so the clips can
    // simulate in parallel with worker-count-independent output.
    let clip_indices: Vec<usize> = (0..corpus.total_clips()).collect();
    let per_clip: Vec<ClipRows> =
        emoleak_exec::par_map_indexed(&clip_indices, |_, &i| {
            let clip = corpus.clip_at(i);
            let label = emotions.iter().position(|e| *e == clip.emotion).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                emoleak_exec::derive_seed(0xE40, i as u64),
            );
            let trace = gyro_channel.simulate(&clip.samples, clip.fs, &mut rng);
            let regions = detector.detect(&trace.samples, trace.fs);
            let rows = regions
                .iter()
                .map(|&(s, e)| {
                    let region = &trace.samples[s..e.min(trace.samples.len())];
                    (extract_all(region, trace.fs), label)
                })
                .collect();
            (rows, regions.len())
        });
    let mut detected = 0usize;
    let clips = clip_indices.len();
    for (rows, n_regions) in per_clip {
        detected += n_regions;
        for (row, label) in rows {
            gyro_features.push(row, label);
        }
    }
    gyro_features.clean_invalid();
    let gyro_acc = if gyro_features.len() > 40
        && gyro_features.class_counts().iter().all(|&c| c >= 5)
    {
        evaluate_features(&gyro_features, ClassifierKind::Logistic, Protocol::Holdout8020, 1)?
            .accuracy
    } else {
        corpus.random_guess() // too little signal to even train
    };

    report.line(format!(
        "accelerometer : accuracy {:.1}% ({} regions)",
        accel_acc * 100.0,
        accel.features.len()
    ));
    report.line(format!(
        "gyroscope     : accuracy {:.1}% ({} regions from {} clips)",
        gyro_acc * 100.0,
        gyro_features.len(),
        clips
    ));
    let _ = detected;
    report.line("paper (§III-B.1): gyroscope exhibits a much weaker audio response — attack uses the accelerometer");
    report.publish()?;
    Ok(())
}
