//! Figure 4 — why the 8 Hz high-pass is needed for the ear-speaker setting:
//! (a) raw handheld trace shows no visible speech, (b) after the 8 Hz HPF
//! the regions emerge, (c) the loudspeaker trace needs no filter.

use emoleak_bench::Report;
use emoleak_core::prelude::*;
use emoleak_core::scenario::Setting;
use emoleak_dsp::filter::earpiece_region_highpass;
use emoleak_features::regions::{detection_rate, RegionDetector};
use emoleak_phone::session::RecordingSession;
use rand::SeedableRng;

/// Renders a 0–9 amplitude strip, auto-scaled to the strip's own peak so
/// every panel uses its full dynamic range (the paper's panels are
/// individually scaled too).
fn amp_strip(samples: &[f64], cols: usize) -> String {
    let n = samples.len();
    let global_peak = samples.iter().fold(0.0f64, |a, &b| a.max(b.abs())).max(1e-12);
    (0..cols)
        .map(|c| {
            let lo = c * n / cols;
            let hi = ((c + 1) * n / cols).max(lo + 1).min(n);
            let peak = samples[lo..hi].iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            char::from_digit(((peak / global_peak * 9.0).min(9.0)) as u32, 10).unwrap()
        })
        .collect()
}

fn main() -> Result<(), EmoleakError> {
    let mut report = Report::new("fig4_earpiece_filter");
    report.line("Figure 4: earpiece vs loudspeaker region visibility (TESS, OnePlus 7T)");
    let corpus = CorpusSpec::tess().with_clips_per_cell(4);
    let device = DeviceProfile::oneplus_7t();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let clips = |_| -> Vec<(Vec<f64>, f64, usize)> {
        (0..4)
            .map(|r| (corpus.clip(0, Emotion::Anger, r).samples, 8000.0, r))
            .collect()
    };

    // (a)+(b): handheld, ear speaker.
    let handheld = RecordingSession::new(
        &device,
        Setting::HandheldEarSpeaker.speaker_kind(),
        Setting::HandheldEarSpeaker.placement(),
    );
    let st = handheld.record_session(clips(()), &mut rng);
    let raw = &st.trace.samples;
    report.line("\n(a) raw earpiece trace (motion noise dominates):");
    report.line(amp_strip(raw, 100));
    let hp = earpiece_region_highpass(st.trace.fs).expect("accel rate above 16 Hz");
    let filtered = hp.filtfilt(raw);
    report.line("(b) after 8 Hz high-pass (speech regions emerge):");
    report.line(amp_strip(&filtered, 100));
    let regions_hp = RegionDetector::handheld().detect(raw, st.trace.fs);
    report.line(format!("    detected regions: {regions_hp:?}"));

    // Ground truth for the ear-speaker detection rate.
    let mut truths = Vec::new();
    for span in &st.labels {
        let clip = corpus.clip(0, Emotion::Anger, span.label);
        let scale = st.trace.fs / clip.fs;
        for &(s, e) in &clip.voiced_spans {
            truths.push((
                span.start + (s as f64 * scale) as usize,
                span.start + (e as f64 * scale) as usize,
            ));
        }
    }
    report.line(format!(
        "    ear-speaker detection rate: {:.0}% (paper: >= 45%)",
        detection_rate(&regions_hp, &truths) * 100.0
    ));

    // (c): loudspeaker, table-top — no filter needed.
    let tabletop = RecordingSession::new(
        &device,
        Setting::TableTopLoudspeaker.speaker_kind(),
        Setting::TableTopLoudspeaker.placement(),
    );
    let st2 = tabletop.record_session(clips(()), &mut rng);
    report.line("\n(c) loudspeaker trace (no filter needed):");
    report.line(amp_strip(&st2.trace.samples, 100));
    let regions_ls = RegionDetector::table_top().detect(&st2.trace.samples, st2.trace.fs);
    report.line(format!("    detected regions: {regions_ls:?}"));
    report.publish()?;
    Ok(())
}
