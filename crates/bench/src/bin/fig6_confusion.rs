//! Figure 6 — confusion matrices for TESS on the OnePlus 7T:
//! (a) loudspeaker/table-top (80/20 holdout), (b) ear speaker/handheld
//! (10-fold cross-validation), both on time–frequency features.
//!
//! Paper shape: (a) near-diagonal (95 %+); (b) diffuse with
//! disgust/fear/neutral/sad confusions.

use emoleak_bench::{clips_per_cell, Report};
use emoleak_core::prelude::*;
use emoleak_core::{evaluate_features, ClassifierKind, Protocol};

fn main() -> Result<(), EmoleakError> {
    let corpus = CorpusSpec::tess().with_clips_per_cell(clips_per_cell()?);
    let mut report = Report::new("fig6_confusion");
    report.banner("Figure 6: TESS confusion matrices (OnePlus 7T)", corpus.random_guess());

    let loud = AttackScenario::table_top(corpus.clone(), DeviceProfile::oneplus_7t()).harvest()?;
    let eval_a =
        evaluate_features(&loud.features, ClassifierKind::Logistic, Protocol::Holdout8020, 6)?;
    report.line(format!(
        "\n(a) loudspeaker / table-top, Logistic, 80/20 split — accuracy {:.2}%",
        eval_a.accuracy * 100.0
    ));
    report.block(eval_a.confusion.render());

    let ear = AttackScenario::handheld(corpus, DeviceProfile::oneplus_7t()).harvest()?;
    let eval_b =
        evaluate_features(&ear.features, ClassifierKind::RandomForest, Protocol::KFold(10), 6)?;
    report.line(format!(
        "\n(b) ear speaker / handheld, Random Forest, 10-fold CV — accuracy {:.2}%",
        eval_b.accuracy * 100.0
    ));
    report.block(eval_b.confusion.render());
    report.publish()?;
    Ok(())
}
