//! # emoleak-exec
//!
//! The deterministic parallel execution engine for the EmoLeak pipeline.
//!
//! Every paper artifact (Tables I–VII, Figures 2–7, the robustness sweep)
//! harvests accelerometer clips and trains classifier grids over them. Those
//! units of work are embarrassingly parallel — but the seed numbers in
//! EXPERIMENTS.md are the repo's regression baseline, so parallelism is only
//! shippable if it is **bit-for-bit deterministic**: the same scenario must
//! produce byte-identical feature matrices and confusion tables whether it
//! runs on 1 worker or 64.
//!
//! Three ingredients make that hold, and this crate provides all of them:
//!
//! 1. **Index-keyed RNG streams** ([`derive_seed`]): instead of one
//!    sequential RNG whose consumption order would depend on scheduling,
//!    every work item derives its own stream from `(campaign_seed, index)`
//!    via SplitMix64. Which worker runs the item is then irrelevant.
//! 2. **Index-ordered collection** ([`par_map_indexed`]): results are placed
//!    into their input slot, never appended in completion order.
//! 3. **Index-ordered reduction** ([`reduce::sum_ordered`]): floating-point
//!    addition is not associative, so parallel results are *combined* by a
//!    single sequential left fold over the index order — never by a
//!    scheduling-dependent reduction tree.
//!
//! The worker count comes from `EMOLEAK_THREADS` (default:
//! `std::thread::available_parallelism()`), and the determinism tests pin it
//! per call with [`with_threads`] to prove the count cannot affect results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod env;
pub mod pool;
pub mod reduce;
pub mod rng;

pub use cancel::{CancellationToken, Deadline};
pub use env::{parse_checked, parse_list_checked, EnvError};
pub use pool::{par_map_indexed, par_map_vec_indexed, threads, with_threads};
pub use reduce::sum_ordered;
pub use rng::{derive_seed, splitmix64};
