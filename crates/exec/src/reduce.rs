//! Index-ordered combination of parallel floating-point results.
//!
//! IEEE-754 addition is commutative but **not associative**: `(a + b) + c`
//! and `a + (b + c)` round differently whenever intermediate magnitudes
//! differ. A reduction whose tree shape follows completion order would
//! therefore make campaign statistics — and through z-score normalization,
//! every logistic-regression gradient trained on them — depend on thread
//! scheduling. The pipeline's rule, enforced by convention and documented by
//! [`tests`]: parallel stages *produce* per-index values; floats are only
//! ever *combined* by one sequential left fold over the index order.

/// Sums `values` by a strict left fold in iteration order.
///
/// This is deliberately the plain `fold(0.0, +)` — the point is not a
/// clever compensated sum but a *fixed association order*, so a parallel
/// map followed by `sum_ordered` is bit-identical to the serial loop it
/// replaced.
pub fn sum_ordered(values: impl IntoIterator<Item = f64>) -> f64 {
    values.into_iter().fold(0.0, |acc, v| acc + v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hazard itself: reordering a float sum changes its bits. These
    /// magnitudes are unremarkable — feature energies routinely span this
    /// range — so any scheduling-ordered reduction would be nondeterministic.
    #[test]
    fn float_sum_order_changes_bits() {
        let values = [1.0e16, 3.25, -1.0e16, 2.5];
        let forward = sum_ordered(values);
        let reverse = sum_ordered(values.iter().rev().copied());
        assert_ne!(
            forward.to_bits(),
            reverse.to_bits(),
            "these values were chosen so association order matters"
        );
    }

    #[test]
    fn ordered_sum_matches_the_serial_loop_bit_for_bit() {
        // Pseudo-random magnitudes spanning 12 orders of magnitude.
        let values: Vec<f64> = (0..4096)
            .map(|i| {
                let mut s = i as u64;
                let r = crate::splitmix64(&mut s);
                let mag = 10f64.powi((r % 12) as i32 - 6);
                mag * ((r >> 12) as f64 / (1u64 << 52) as f64 - 0.5)
            })
            .collect();
        let mut serial = 0.0;
        for &v in &values {
            serial += v;
        }
        assert_eq!(serial.to_bits(), sum_ordered(values).to_bits());
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(sum_ordered(std::iter::empty()), 0.0);
    }
}
