//! Deterministic RNG stream derivation.
//!
//! The pipeline's determinism model forbids sharing one sequential RNG
//! across parallel work items: the interleaving of draws would then depend
//! on scheduling. Instead, each item derives an independent stream seed from
//! `(campaign_seed, stream_index)` with SplitMix64 — the same construction
//! the `rand` stub already uses to expand seeds for xoshiro256++, chosen
//! because its output function is a bijective avalanche mix (every input
//! bit affects every output bit), so consecutive stream indices yield
//! statistically independent seeds.

/// Advances `state` by the SplitMix64 increment and returns the next output.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); this is the exact `splitmix64` finalizer used
/// to seed xoshiro-family generators.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of stream `stream` of campaign `seed`.
///
/// Two SplitMix64 steps: the first absorbs the campaign seed, the second
/// absorbs the stream index, so `derive_seed(a, i) == derive_seed(b, j)`
/// requires both a seed and an index collision. Per-clip RNGs are built as
/// `StdRng::seed_from_u64(derive_seed(campaign_seed, clip_index))` — which
/// worker executes the clip can then never change what it records.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut state = seed;
    let a = splitmix64(&mut state);
    let mut state = a ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference sequence for state 0 from the canonical C implementation.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn derived_seeds_are_stable() {
        assert_eq!(derive_seed(0xE40, 0), derive_seed(0xE40, 0));
        assert_eq!(derive_seed(7, 42), derive_seed(7, 42));
    }

    #[test]
    fn derived_streams_differ_per_index_and_seed() {
        let s: Vec<u64> = (0..64).map(|i| derive_seed(0xE40, i)).collect();
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                assert_ne!(s[i], s[j], "stream collision at ({i}, {j})");
            }
        }
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn derived_seeds_avalanche() {
        // Flipping one bit of the stream index flips roughly half the
        // output bits — consecutive clip indices get unrelated streams.
        let base = derive_seed(0xE40, 8);
        let flipped = derive_seed(0xE40, 9);
        let hamming = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&hamming), "weak avalanche: {hamming} bits");
    }
}
