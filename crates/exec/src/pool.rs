//! A work-stealing scoped thread pool built on `std::thread` + channels.
//!
//! The vendored offline dependency set rules out rayon/crossbeam, so this is
//! the minimal pool the pipeline needs: [`par_map_indexed`] fans a slice of
//! independent work items out over `threads()` scoped workers and returns
//! the results **in input order**, making the worker count provably
//! irrelevant to the output.
//!
//! ## Scheduling
//!
//! Indices are dealt round-robin into one deque per worker. Each worker
//! drains its own deque from the front and, when empty, steals from the
//! *back* of a sibling's deque (classic work stealing: owner and thief touch
//! opposite ends, keeping contention low even with `Mutex`-guarded deques).
//! Because the task set is fixed up front — `par_map_indexed` never spawns
//! new work — "every deque empty" is a correct termination condition.
//!
//! ## Determinism
//!
//! Scheduling affects only *when* an item runs, never *what it computes*
//! (items must not share mutable state — the compiler enforces this via the
//! `Fn(usize, &T) -> R + Sync` bound) and never *where its result lands*
//! (each result is sent back tagged with its index and stored in its input
//! slot). Work stealing therefore cannot perturb results; the determinism
//! suite in `tests/determinism.rs` locks this in across 1/2/8 workers.
//!
//! ## Nesting
//!
//! A parallel region entered from inside a worker runs serially on that
//! worker (a thread-local guard detects nesting). This bounds the total
//! thread count at `threads()` no matter how deeply the pipeline nests
//! parallel maps — e.g. a bench bin parallelizing over scenarios whose
//! harvests are themselves parallel — and keeps the serial fast path (and
//! thus the output) identical at every nesting depth.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

thread_local! {
    /// Per-call worker-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while the current thread is a pool worker: nested parallel
    /// regions then run serially instead of spawning a second pool.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The worker count parallel regions use, resolved in priority order:
/// a [`with_threads`] override on this thread, then `EMOLEAK_THREADS`,
/// then [`std::thread::available_parallelism`]. Always at least 1.
///
/// `EMOLEAK_THREADS` is parsed strictly (see [`crate::env`]): a malformed
/// value (`abc`, `0`, `-2`) is not silently ignored — it is reported once
/// on stderr, then the parallelism fallback applies. `threads()` stays
/// infallible because it is called from contexts (Drop impls, worker
/// loops) that cannot propagate an error; fallible callers should use
/// [`crate::env::parse_checked`] directly and surface the typed error.
pub fn threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    match crate::env::parse_checked::<usize>("EMOLEAK_THREADS", "a positive integer", |&n| n > 0)
    {
        Ok(Some(n)) => return n,
        Ok(None) => {}
        Err(e) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("emoleak-exec: {e}; falling back to all cores"));
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `f` with the worker count pinned to `n` on this thread.
///
/// This is how the determinism tests prove the thread count is irrelevant:
/// the same campaign is executed under `with_threads(1)`, `with_threads(2)`
/// and `with_threads(8)` and the outputs compared byte for byte. The
/// override is scoped to the current thread and restored on exit (also on
/// unwind), so parallel test binaries don't interfere with each other.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// The contract that makes parallel harvesting safe to ship:
///
/// - `f(i, &items[i])` is called exactly once per index;
/// - the output `Vec` satisfies `out[i] == f(i, &items[i])` regardless of
///   the worker count or which worker ran which index;
/// - panics in `f` propagate to the caller (after all workers stop).
///
/// Work items should be coarse (a whole clip recording, a classifier fold):
/// the per-item overhead is one deque pop plus one channel send, which is
/// noise for millisecond-scale items but not for nanosecond-scale ones.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads().min(items.len().max(1));
    if workers <= 1 || IN_POOL.with(Cell::get) {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Deal indices round-robin into one deque per worker. Round-robin (vs
    // contiguous blocks) spreads systematically-expensive regions — e.g.
    // the high-severity tail of a sweep — across workers up front, so
    // stealing is the exception rather than the steady state.
    let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
    for i in 0..items.len() {
        queues[i % workers].push_back(i);
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = queues.into_iter().map(Mutex::new).collect();

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let f = &f;
            scope.spawn(move || {
                IN_POOL.with(|c| c.set(true));
                loop {
                    // Own queue first (front), then steal (back).
                    let job = pop_own(&queues[w]).or_else(|| {
                        (1..workers).find_map(|d| steal(&queues[(w + d) % workers]))
                    });
                    let Some(i) = job else { break };
                    // A send can only fail if the collector stopped early,
                    // which only happens when another worker panicked; the
                    // scope is about to propagate that panic anyway.
                    if tx.send((i, f(i, &items[i]))).is_err() {
                        break;
                    }
                }
                IN_POOL.with(|c| c.set(false));
            });
        }
        drop(tx);
        // Collect by index. The loop ends when every worker has dropped its
        // sender — either all work is done or a worker panicked (and the
        // scope will re-raise that panic when it joins).
        while let Ok((i, r)) = rx.recv() {
            out[i] = Some(r);
        }
    });

    out.into_iter()
        .map(|slot| slot.expect("every index produces exactly one result"))
        .collect()
}

/// Maps `f` over an **owned** `Vec` in parallel, returning results in input
/// order. The by-value sibling of [`par_map_indexed`], for work items that
/// must be *mutated or consumed* rather than shared — e.g. advancing a
/// fleet of independent shard runners, each owning its admission state and
/// journal handle, one tick in parallel.
///
/// Same contract as [`par_map_indexed`]: each index runs exactly once, the
/// output order is the input order, and the worker count cannot affect the
/// results (items are independent by construction — each worker takes full
/// ownership of the items it runs).
pub fn par_map_vec_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    // Each slot is taken exactly once (par_map_indexed calls each index
    // exactly once), so the Mutex is uncontended handoff, not sharing.
    let slots: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    par_map_indexed(&slots, |i, slot| {
        let item = slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("each index is visited exactly once");
        f(i, item)
    })
}

fn pop_own(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
}

fn steal(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    queue.lock().unwrap_or_else(|e| e.into_inner()).pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = with_threads(8, || par_map_indexed(&items, |i, &x| x * 2 + i as u64));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, items[i] * 2 + i as u64);
        }
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let items: Vec<u64> = (0..257).collect();
        let run = |n| {
            with_threads(n, || {
                par_map_indexed(&items, |i, &x| crate::derive_seed(x, i as u64))
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(3));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items = vec![(); 513];
        with_threads(4, || {
            par_map_indexed(&items, |_, ()| {
                calls.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(calls.load(Ordering::Relaxed), 513);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_indexed(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map_indexed(&[7u8], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn nested_parallel_regions_run_serially_and_agree() {
        let items: Vec<u64> = (0..24).collect();
        let nested = |n| {
            with_threads(n, || {
                par_map_indexed(&items, |i, &x| {
                    let inner: Vec<u64> = (0..8).map(|k| x + k).collect();
                    // Inner region: serial inside a worker, parallel at n=1
                    // caller level — either way the same numbers.
                    par_map_indexed(&inner, |j, &y| crate::derive_seed(y, (i + j) as u64))
                        .into_iter()
                        .fold(0u64, u64::wrapping_add)
                })
            })
        };
        assert_eq!(nested(1), nested(6));
    }

    #[test]
    fn owned_map_consumes_items_in_input_order() {
        // Items that are not Clone and not Sync-shareable by reference use.
        struct Runner(u64);
        let items: Vec<Runner> = (0..97).map(Runner).collect();
        let out = with_threads(4, || {
            par_map_vec_indexed(items, |i, r| r.0 * 2 + i as u64)
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
        // Identical across worker counts.
        let again = with_threads(1, || {
            par_map_vec_indexed((0..97).map(Runner).collect(), |i, r| r.0 * 2 + i as u64)
        });
        assert_eq!(out, again);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_indexed(&items, |i, _| {
                    assert!(i != 13, "intentional test panic");
                    i
                })
            })
        });
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let before = threads();
        with_threads(3, || assert_eq!(threads(), 3));
        assert_eq!(threads(), before);
    }

    #[test]
    fn stealing_drains_imbalanced_queues() {
        // One item is 1000x slower than the rest; the other workers must
        // steal the slow worker's remaining round-robin share.
        let items: Vec<u64> = (0..64).collect();
        let out = with_threads(4, || {
            par_map_indexed(&items, |i, &x| {
                let spins = if i == 0 { 200_000 } else { 200 };
                (0..spins).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
            })
        });
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let spins = if i == 0 { 200_000u64 } else { 200 };
                (0..spins).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
            })
            .collect();
        assert_eq!(out, serial);
    }
}
