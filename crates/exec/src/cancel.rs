//! Cooperative cancellation and deadlines for pooled and supervised tasks.
//!
//! The pool runs plain `std` threads, which cannot be killed from outside —
//! the only sound way to stop a wedged or superseded worker is for the
//! worker itself to notice and bail out. [`CancellationToken`] is that
//! signal: cheap to clone, checked between work items (or between chunks of
//! a long item), flipped once by a supervisor and never unflipped.
//! [`Deadline`] is the time-budget counterpart used by deadline-aware
//! stages: it answers "how much budget is left" without any callback or
//! timer thread.
//!
//! Both are hooks, not enforcement: a task that never checks its token runs
//! to completion. The streaming service (`emoleak-stream`) pairs them with
//! a watchdog that abandons non-cooperating workers and spawns
//! replacements.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag: one writer (the supervisor), many readers
/// (the workers). Cloning shares the underlying flag.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    cancelled: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Signals every holder of this token (and its clones) to stop at the
    /// next check. Idempotent; cancellation is never revoked.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// A wall-clock time budget that starts counting at construction.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline { start: Instant::now(), budget }
    }

    /// Time spent since the deadline was armed.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.budget
    }

    /// Remaining budget (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_live_and_latches() {
        let token = CancellationToken::new();
        assert!(!token.is_cancelled());
        let clone = token.clone();
        token.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancellationToken::new();
        let worker_view = token.clone();
        let handle = std::thread::spawn(move || {
            while !worker_view.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }

    #[test]
    fn deadline_expires_and_clamps() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);

        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3599));
        assert!(d.elapsed() < Duration::from_secs(1));
    }
}
