//! Strict environment-knob parsing.
//!
//! Every `EMOLEAK_*` knob used to be read with `parse().ok()`, which
//! silently fell back to the default on garbage — `EMOLEAK_THREADS=abc`
//! quietly ran on all cores, and a typo'd `EMOLEAK_EPOCHS` trained the
//! default 40 epochs with no hint that the override was ignored. This
//! module is the one shared parser: a set variable either parses and
//! passes its validity check, or produces a typed [`EnvError`] that the
//! caller can surface (`emoleak-core` wraps it in `EmoleakError::Config`)
//! or log (`threads()` warns once on stderr and falls back, because it is
//! called from infallible contexts).

use std::str::FromStr;

/// A malformed or out-of-range environment knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The variable name, e.g. `EMOLEAK_THREADS`.
    pub name: String,
    /// The offending value as found in the environment.
    pub value: String,
    /// What was expected, e.g. `a positive integer`.
    pub expected: &'static str,
}

impl core::fmt::Display for EnvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.name, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

/// Reads and strictly parses environment variable `name`.
///
/// Returns `Ok(None)` when the variable is unset (callers apply their
/// default), `Ok(Some(v))` when it parses **and** satisfies `valid`, and
/// [`EnvError`] otherwise — a set-but-malformed knob is never silently
/// ignored.
///
/// # Errors
///
/// Returns [`EnvError`] (carrying the variable name, the offending value
/// and `expected`) when the value does not parse as `T` or fails `valid`.
pub fn parse_checked<T: FromStr>(
    name: &str,
    expected: &'static str,
    valid: impl Fn(&T) -> bool,
) -> Result<Option<T>, EnvError> {
    let Ok(raw) = std::env::var(name) else {
        return Ok(None);
    };
    match raw.parse::<T>() {
        Ok(v) if valid(&v) => Ok(Some(v)),
        _ => Err(EnvError { name: name.to_string(), value: raw, expected }),
    }
}


/// Reads and strictly parses a comma-separated list from environment
/// variable `name`.
///
/// Returns `Ok(None)` when the variable is unset. When set, *every*
/// comma-separated element (whitespace-trimmed) must parse as `T` and
/// satisfy `valid`, and the list must be non-empty — a partially-garbage
/// list is never silently truncated.
///
/// # Errors
///
/// Returns [`EnvError`] (carrying the whole raw value) when the list is
/// empty or any element fails to parse or validate.
pub fn parse_list_checked<T: FromStr>(
    name: &str,
    expected: &'static str,
    valid: impl Fn(&T) -> bool,
) -> Result<Option<Vec<T>>, EnvError> {
    let Ok(raw) = std::env::var(name) else {
        return Ok(None);
    };
    let err = || EnvError { name: name.to_string(), value: raw.clone(), expected };
    let mut out = Vec::new();
    for part in raw.split(',') {
        match part.trim().parse::<T>() {
            Ok(v) if valid(&v) => out.push(v),
            _ => return Err(err()),
        }
    }
    if out.is_empty() {
        return Err(err());
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; each test uses its own variable name
    // so parallel test threads cannot race.

    #[test]
    fn unset_is_none() {
        assert_eq!(
            parse_checked::<usize>("EMOLEAK_TEST_UNSET", "an integer", |_| true),
            Ok(None)
        );
    }

    #[test]
    fn valid_value_parses() {
        std::env::set_var("EMOLEAK_TEST_VALID", "12");
        assert_eq!(
            parse_checked::<usize>("EMOLEAK_TEST_VALID", "an integer", |_| true),
            Ok(Some(12))
        );
    }

    #[test]
    fn garbage_is_a_typed_error() {
        std::env::set_var("EMOLEAK_TEST_GARBAGE", "abc");
        let err = parse_checked::<usize>("EMOLEAK_TEST_GARBAGE", "a positive integer", |_| true)
            .unwrap_err();
        assert_eq!(err.name, "EMOLEAK_TEST_GARBAGE");
        assert_eq!(err.value, "abc");
        assert!(err.to_string().contains("EMOLEAK_TEST_GARBAGE"));
        assert!(err.to_string().contains("abc"));
    }

    #[test]
    fn out_of_range_is_a_typed_error() {
        std::env::set_var("EMOLEAK_TEST_RANGE", "0");
        let err =
            parse_checked::<usize>("EMOLEAK_TEST_RANGE", "a positive integer", |&n| n > 0)
                .unwrap_err();
        assert_eq!(err.value, "0");
    }

    #[test]
    fn list_parses_trimmed_elements() {
        std::env::set_var("EMOLEAK_TEST_LIST", "1, 2 ,3");
        assert_eq!(
            parse_list_checked::<u64>("EMOLEAK_TEST_LIST", "integers", |_| true),
            Ok(Some(vec![1, 2, 3]))
        );
    }

    #[test]
    fn list_rejects_any_bad_element() {
        std::env::set_var("EMOLEAK_TEST_LIST_BAD", "1,x,3");
        let err = parse_list_checked::<u64>("EMOLEAK_TEST_LIST_BAD", "integers", |_| true)
            .unwrap_err();
        assert_eq!(err.value, "1,x,3", "the whole raw value is reported");
        std::env::set_var("EMOLEAK_TEST_LIST_EMPTY", "");
        assert!(
            parse_list_checked::<u64>("EMOLEAK_TEST_LIST_EMPTY", "integers", |_| true)
                .is_err(),
            "an empty list is an error, not a silent no-op"
        );
    }

    #[test]
    fn list_unset_is_none() {
        assert_eq!(
            parse_list_checked::<u64>("EMOLEAK_TEST_LIST_UNSET", "integers", |_| true),
            Ok(None)
        );
    }
}
