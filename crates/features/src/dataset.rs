//! Labeled feature datasets and the paper's preprocessing (§IV-D).
//!
//! - invalid-entry removal (NaN / infinite feature rows),
//! - z-score normalization (for the CNN path),
//! - stratified 80/20 train/test split,
//! - stratified 10-fold cross-validation splits,
//! - CSV export (the paper writes `.csv` / `.arff` for Weka).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labeled feature matrix: `rows × dim` features with one class label per
/// row.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureDataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    feature_names: Vec<String>,
    class_names: Vec<String>,
}

impl FeatureDataset {
    /// Creates an empty dataset with the given schema.
    pub fn new(feature_names: Vec<String>, class_names: Vec<String>) -> Self {
        FeatureDataset { features: Vec::new(), labels: Vec::new(), feature_names, class_names }
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the schema or the label is
    /// out of range.
    pub fn push(&mut self, row: Vec<f64>, label: usize) {
        assert_eq!(row.len(), self.feature_names.len(), "feature dimension mismatch");
        assert!(label < self.class_names.len(), "label out of range");
        self.features.push(row);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes in the schema.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// The feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The labels, parallel to [`FeatureDataset::features`].
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Removes rows containing NaN or infinite entries (the paper's
    /// invalid-entry cleaning), returning how many were dropped.
    pub fn clean_invalid(&mut self) -> usize {
        let before = self.features.len();
        let keep: Vec<bool> = self
            .features
            .iter()
            .map(|row| row.iter().all(|v| v.is_finite()))
            .collect();
        let mut features = Vec::with_capacity(before);
        let mut labels = Vec::with_capacity(before);
        for (i, k) in keep.iter().enumerate() {
            if *k {
                features.push(std::mem::take(&mut self.features[i]));
                labels.push(self.labels[i]);
            }
        }
        self.features = features;
        self.labels = labels;
        before - self.features.len()
    }

    /// Z-score normalizes each feature in place using the dataset's own
    /// statistics, returning the per-feature `(mean, std)` so a test set can
    /// be normalized with training statistics via
    /// [`FeatureDataset::apply_normalization`].
    pub fn fit_normalization(&mut self) -> Vec<(f64, f64)> {
        let dim = self.dim();
        let n = self.features.len().max(1) as f64;
        let mut params = Vec::with_capacity(dim);
        for j in 0..dim {
            let mean = self.features.iter().map(|r| r[j]).sum::<f64>() / n;
            let var = self.features.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
            let std = var.sqrt().max(1e-12);
            params.push((mean, std));
        }
        self.apply_normalization(&params);
        params
    }

    /// Applies externally fitted normalization parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.dim()`.
    pub fn apply_normalization(&mut self, params: &[(f64, f64)]) {
        assert_eq!(params.len(), self.dim(), "normalization dimension mismatch");
        for row in &mut self.features {
            for (v, (m, s)) in row.iter_mut().zip(params) {
                *v = (*v - m) / s;
            }
        }
    }

    /// Stratified split: `train_fraction` of each class goes to the first
    /// dataset, the rest to the second. Deterministic per `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    pub fn stratified_split(&self, train_fraction: f64, seed: u64) -> (FeatureDataset, FeatureDataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut train = FeatureDataset::new(self.feature_names.clone(), self.class_names.clone());
        let mut test = FeatureDataset::new(self.feature_names.clone(), self.class_names.clone());
        for class in 0..self.num_classes() {
            let mut idx: Vec<usize> =
                (0..self.len()).filter(|&i| self.labels[i] == class).collect();
            idx.shuffle(&mut rng);
            let n_train = ((idx.len() as f64) * train_fraction).round() as usize;
            for (k, &i) in idx.iter().enumerate() {
                let target = if k < n_train { &mut train } else { &mut test };
                target.push(self.features[i].clone(), self.labels[i]);
            }
        }
        (train, test)
    }

    /// Stratified k-fold cross-validation indices: returns `k` folds, each a
    /// list of row indices forming that fold's test set.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn stratified_folds(&self, k: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(k >= 2, "need at least 2 folds");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut folds = vec![Vec::new(); k];
        for class in 0..self.num_classes() {
            let mut idx: Vec<usize> =
                (0..self.len()).filter(|&i| self.labels[i] == class).collect();
            idx.shuffle(&mut rng);
            for (pos, i) in idx.into_iter().enumerate() {
                folds[pos % k].push(i);
            }
        }
        folds
    }

    /// Builds the sub-dataset selected by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> FeatureDataset {
        let mut out = FeatureDataset::new(self.feature_names.clone(), self.class_names.clone());
        for &i in indices {
            out.push(self.features[i].clone(), self.labels[i]);
        }
        out
    }

    /// The complement of `indices` as a sub-dataset (k-fold train split).
    pub fn subset_complement(&self, indices: &[usize]) -> FeatureDataset {
        let exclude: std::collections::HashSet<usize> = indices.iter().copied().collect();
        let keep: Vec<usize> = (0..self.len()).filter(|i| !exclude.contains(i)).collect();
        self.subset(&keep)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Serializes to CSV with a header row (feature names + `label`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.feature_names.join(","));
        out.push_str(",label\n");
        for (row, &label) in self.features.iter().zip(&self.labels) {
            for v in row {
                out.push_str(&format!("{v},"));
            }
            out.push_str(&self.class_names[label]);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_per_class: usize, classes: usize) -> FeatureDataset {
        let mut d = FeatureDataset::new(
            vec!["a".into(), "b".into()],
            (0..classes).map(|c| format!("c{c}")).collect(),
        );
        for c in 0..classes {
            for i in 0..n_per_class {
                d.push(vec![c as f64, i as f64], c);
            }
        }
        d
    }

    #[test]
    fn push_and_counts() {
        let d = toy(5, 3);
        assert_eq!(d.len(), 15);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.class_counts(), vec![5, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn push_rejects_wrong_dim() {
        let mut d = toy(1, 2);
        d.push(vec![1.0], 0);
    }

    #[test]
    fn clean_invalid_removes_nan_rows() {
        let mut d = toy(3, 2);
        d.push(vec![f64::NAN, 1.0], 0);
        d.push(vec![1.0, f64::INFINITY], 1);
        let dropped = d.clean_invalid();
        assert_eq!(dropped, 2);
        assert_eq!(d.len(), 6);
        assert!(d.features().iter().all(|r| r.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn normalization_zeroes_mean_and_units_std() {
        let mut d = toy(50, 2);
        d.fit_normalization();
        for j in 0..d.dim() {
            let col: Vec<f64> = d.features().iter().map(|r| r[j]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn train_statistics_transfer_to_test() {
        let mut train = toy(50, 2);
        let mut test = toy(10, 2);
        let params = train.fit_normalization();
        test.apply_normalization(&params);
        // Test set normalized with train params is finite and scaled.
        assert!(test.features().iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let d = toy(100, 4);
        let (train, test) = d.stratified_split(0.8, 7);
        assert_eq!(train.len(), 320);
        assert_eq!(test.len(), 80);
        assert_eq!(train.class_counts(), vec![80; 4]);
        assert_eq!(test.class_counts(), vec![20; 4]);
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let d = toy(50, 2);
        let (a1, _) = d.stratified_split(0.8, 1);
        let (a2, _) = d.stratified_split(0.8, 1);
        let (b, _) = d.stratified_split(0.8, 2);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn folds_partition_all_samples() {
        let d = toy(25, 3);
        let folds = d.stratified_folds(10, 3);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..d.len()).collect();
        assert_eq!(all, expected);
        // Each fold's complement plus the fold re-covers the dataset.
        let test = d.subset(&folds[0]);
        let train = d.subset_complement(&folds[0]);
        assert_eq!(test.len() + train.len(), d.len());
    }

    #[test]
    fn csv_round_trips_header_and_rows() {
        let d = toy(1, 2);
        let csv = d.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("a,b,label"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains(",c1"));
    }
}
