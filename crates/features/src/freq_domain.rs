//! The twelve frequency-domain features of Table II.
//!
//! Energy, Entropy, Frequency Ratio, Irregularity K, Irregularity J,
//! Sharpness, Smoothness, SpecCentroid, SpecStdDev, SpecCrest,
//! SpecSkewness, SpecKurt — computed on the magnitude spectrum of one
//! detected speech region (unfiltered, per §IV-B).

use emoleak_dsp::{fft::next_pow2, stats, Complex, Fft, Window};
use emoleak_kernels::KernelMode;
use std::cell::RefCell;
use std::collections::HashMap;

/// Feature names in extraction order.
pub const FEATURE_NAMES: [&str; 12] = [
    "Energy",
    "Entropy",
    "FrequencyRatio",
    "IrregularityK",
    "IrregularityJ",
    "Sharpness",
    "Smoothness",
    "SpecCentroid",
    "SpecStdDev",
    "SpecCrest",
    "SpecSkewness",
    "SpecKurt",
];

// Kernel-mode fast path: FFT plans are pure functions of their size (the
// twiddle/permutation tables are recomputed identically every time), so one
// plan per size can be cached per thread and reused across regions —
// `Fft::new` is O(n log n) trig plus two allocations that `extract` used
// to pay per region. Sizes are powers of two capped at 2^15, so the map
// holds at most 16 entries and needs no eviction. Thread-local (not
// shared) so the cache needs no locks and cannot couple worker threads.
thread_local! {
    static FFT_PLANS: RefCell<HashMap<usize, Fft>> = RefCell::new(HashMap::new());
    static FFT_SCRATCH: RefCell<(Vec<Complex>, Vec<Complex>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Extracts the 12 frequency-domain features from one region at sample rate
/// `fs`, dispatching on the `EMOLEAK_KERNELS` knob. Regions shorter than 8
/// samples yield all-NaN vectors (cleaned later, like the paper's
/// invalid-entry removal).
pub fn extract(region: &[f64], fs: f64) -> [f64; 12] {
    extract_in_mode(region, fs, KernelMode::current())
}

/// [`extract`] with an explicit kernel mode — the dispatch seam driven
/// directly by the differential tests and benches.
///
/// The fast path reuses a per-thread FFT plan cache and transform scratch,
/// and fuses the magnitude/power/energy loops over the spectrum into one
/// pass; every arithmetic expression and accumulation order matches the
/// reference, so the two modes are bit-identical.
pub fn extract_in_mode(region: &[f64], fs: f64, mode: KernelMode) -> [f64; 12] {
    if region.len() < 8 {
        return [f64::NAN; 12];
    }
    let n_fft = next_pow2(region.len()).min(1 << 15);
    let mut frame = region[..region.len().min(n_fft)].to_vec();
    Window::Hamming.apply(&mut frame);
    // Skip the DC bin for shape statistics; keep it for energy.
    let (mags, power, energy) = match mode {
        KernelMode::Reference => {
            let fft = Fft::new(n_fft);
            let spectrum = fft.forward_real(&frame);
            let mags: Vec<f64> = spectrum.iter().map(|z| z.abs()).collect();
            let power: Vec<f64> = spectrum.iter().map(|z| z.norm_sqr()).collect();
            let energy: f64 = power.iter().sum();
            (mags, power, energy)
        }
        KernelMode::Fast => FFT_PLANS.with(|plans| {
            FFT_SCRATCH.with(|bufs| {
                let mut plans = plans.borrow_mut();
                let fft = plans.entry(n_fft).or_insert_with(|| Fft::new(n_fft));
                let (scratch, spectrum) = &mut *bufs.borrow_mut();
                fft.forward_real_into(&frame, scratch, spectrum);
                let mut mags = Vec::with_capacity(spectrum.len());
                let mut power = Vec::with_capacity(spectrum.len());
                let mut energy = 0.0;
                for z in spectrum.iter() {
                    mags.push(z.abs());
                    let p = z.norm_sqr();
                    power.push(p);
                    energy += p;
                }
                (mags, power, energy)
            })
        }),
    };
    let freqs: Vec<f64> = (0..mags.len()).map(|k| k as f64 * fs / n_fft as f64).collect();
    let entropy = stats::shannon_entropy(&power[1..]);
    let frequency_ratio = frequency_ratio(&power, &freqs, fs);
    let irregularity_k = irregularity_k(&mags[1..]);
    let irregularity_j = irregularity_j(&mags[1..]);
    let sharpness = sharpness(&mags[1..], &freqs[1..], fs);
    let smoothness = smoothness(&mags[1..]);
    let (centroid, spread, skew, kurt) = spectral_moments(&mags[1..], &freqs[1..]);
    let crest = spectral_crest(&mags[1..]);

    [
        energy,
        entropy,
        frequency_ratio,
        irregularity_k,
        irregularity_j,
        sharpness,
        smoothness,
        centroid,
        spread,
        crest,
        skew,
        kurt,
    ]
}

/// Energy above the band split (fs/8) divided by energy below it — a
/// coarse high/low balance sensitive to spectral tilt.
fn frequency_ratio(power: &[f64], freqs: &[f64], fs: f64) -> f64 {
    let split = fs / 8.0;
    let mut low = 0.0;
    let mut high = 0.0;
    for (p, f) in power.iter().zip(freqs) {
        if *f <= split {
            low += p;
        } else {
            high += p;
        }
    }
    if low <= 0.0 {
        f64::NAN
    } else {
        high / low
    }
}

/// Krimphoff irregularity: cumulative deviation of each partial from the
/// local three-point mean.
fn irregularity_k(mags: &[f64]) -> f64 {
    if mags.len() < 3 {
        return f64::NAN;
    }
    mags.windows(3)
        .map(|w| (w[1] - (w[0] + w[1] + w[2]) / 3.0).abs())
        .sum()
}

/// Jensen irregularity: squared successive differences normalized by total
/// squared magnitude.
fn irregularity_j(mags: &[f64]) -> f64 {
    let denom: f64 = mags.iter().map(|a| a * a).sum();
    if denom <= 0.0 || mags.len() < 2 {
        return f64::NAN;
    }
    let num: f64 = mags.windows(2).map(|w| (w[0] - w[1]) * (w[0] - w[1])).sum();
    num / denom
}

/// Acoustic sharpness: loudness-weighted centroid with a high-frequency
/// emphasis weight (Zwicker-style, simplified to a quadratic weight above
/// a fifth of Nyquist).
fn sharpness(mags: &[f64], freqs: &[f64], fs: f64) -> f64 {
    let total: f64 = mags.iter().sum();
    if total <= 0.0 {
        return f64::NAN;
    }
    let knee = fs / 10.0;
    let weighted: f64 = mags
        .iter()
        .zip(freqs)
        .map(|(m, f)| {
            let w = if *f > knee { 1.0 + ((f - knee) / knee).powi(2) * 0.1 } else { 1.0 };
            m * f * w
        })
        .sum();
    weighted / total
}

/// Spectral smoothness (McAdams): cumulative dB deviation of each partial
/// from its three-point neighbourhood mean. Lower = smoother spectrum.
fn smoothness(mags: &[f64]) -> f64 {
    if mags.len() < 3 {
        return f64::NAN;
    }
    let db: Vec<f64> = mags.iter().map(|m| 20.0 * m.max(1e-12).log10()).collect();
    db.windows(3)
        .map(|w| (w[1] - (w[0] + w[1] + w[2]) / 3.0).abs())
        .sum()
}

/// Magnitude-weighted spectral centroid, spread, skewness and kurtosis.
fn spectral_moments(mags: &[f64], freqs: &[f64]) -> (f64, f64, f64, f64) {
    let total: f64 = mags.iter().sum();
    if total <= 0.0 {
        return (f64::NAN, f64::NAN, f64::NAN, f64::NAN);
    }
    let centroid: f64 = mags.iter().zip(freqs).map(|(m, f)| m * f).sum::<f64>() / total;
    let var: f64 = mags
        .iter()
        .zip(freqs)
        .map(|(m, f)| m * (f - centroid) * (f - centroid))
        .sum::<f64>()
        / total;
    let spread = var.sqrt();
    if spread <= 0.0 {
        return (centroid, 0.0, f64::NAN, f64::NAN);
    }
    let skew: f64 = mags
        .iter()
        .zip(freqs)
        .map(|(m, f)| m * ((f - centroid) / spread).powi(3))
        .sum::<f64>()
        / total;
    let kurt: f64 = mags
        .iter()
        .zip(freqs)
        .map(|(m, f)| m * ((f - centroid) / spread).powi(4))
        .sum::<f64>()
        / total;
    (centroid, spread, skew, kurt)
}

/// Spectral crest factor: peak magnitude over mean magnitude (tonality).
fn spectral_crest(mags: &[f64]) -> f64 {
    let mean = stats::mean(mags);
    if mean.is_nan() || mean <= 0.0 {
        return f64::NAN;
    }
    stats::max(mags) / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn noise(n: usize) -> Vec<f64> {
        let mut state: u64 = 0x853C49E6748FEA9B;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 30) as f64 - 1.0
            })
            .collect()
    }

    #[test]
    fn names_match_feature_count() {
        assert_eq!(FEATURE_NAMES.len(), extract(&[0.0; 64], 420.0).len());
    }

    #[test]
    fn short_region_is_nan() {
        assert!(extract(&[1.0; 4], 420.0).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn centroid_tracks_tone_frequency() {
        let fs = 420.0;
        let low = extract(&tone(40.0, fs, 512), fs);
        let high = extract(&tone(150.0, fs, 512), fs);
        let centroid = 7;
        assert!(
            high[centroid] > low[centroid] + 50.0,
            "centroid {} vs {}",
            high[centroid],
            low[centroid]
        );
    }

    #[test]
    fn tone_has_higher_crest_and_lower_entropy_than_noise() {
        let fs = 420.0;
        let t = extract(&tone(100.0, fs, 1024), fs);
        let n = extract(&noise(1024), fs);
        let entropy = 1;
        let crest = 9;
        assert!(t[crest] > 3.0 * n[crest]);
        assert!(t[entropy] < n[entropy]);
    }

    #[test]
    fn energy_scales_quadratically() {
        let fs = 420.0;
        let x = tone(100.0, fs, 512);
        let x2: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let e1 = extract(&x, fs)[0];
        let e2 = extract(&x2, fs)[0];
        assert!((e2 / e1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_ratio_reflects_tilt() {
        let fs = 420.0;
        // Energy concentrated low vs high.
        let low = extract(&tone(20.0, fs, 1024), fs);
        let high = extract(&tone(180.0, fs, 1024), fs);
        assert!(high[2] > 10.0 * low[2], "ratio {} vs {}", high[2], low[2]);
    }

    #[test]
    fn noise_spectrum_is_less_smooth_than_tone() {
        // Smoothness (index 6) is a dB-domain roughness sum: the windowed
        // tone's spectrum is a smooth mainlobe + smooth leakage skirt, while
        // noise fluctuates several dB bin-to-bin.
        let fs = 420.0;
        let t = extract(&tone(100.0, fs, 1024), fs);
        let n = extract(&noise(1024), fs);
        let smoothness = 6;
        assert!(
            n[smoothness] > 1.5 * t[smoothness],
            "noise {} vs tone {}",
            n[smoothness],
            t[smoothness]
        );
    }

    #[test]
    fn fast_path_is_bit_identical_to_reference() {
        let fs = 420.0;
        // Cover short-circuit lengths, power-of-two and ragged lengths
        // (exercising the plan cache across several FFT sizes), tones,
        // noise, silence, and a constant-DC region.
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![1.0; 7],
            vec![0.0; 64],
            vec![0.25; 100],
            tone(100.0, fs, 512),
            tone(37.5, fs, 300),
            noise(1024),
            noise(999),
        ];
        for x in &cases {
            let r = extract_in_mode(x, fs, KernelMode::Reference);
            let f = extract_in_mode(x, fs, KernelMode::Fast);
            for (i, (a, b)) in r.iter().zip(&f).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "feature {} ({}) differs on len {}: {a} vs {b}",
                    i,
                    FEATURE_NAMES[i],
                    x.len()
                );
            }
        }
    }

    #[test]
    fn all_features_finite_on_realistic_region() {
        // A noisy tone burst, like an accel speech region.
        let fs = 420.0;
        let x: Vec<f64> = tone(110.0, fs, 700)
            .iter()
            .zip(noise(700))
            .map(|(t, n)| t * 0.02 + n * 0.002 + 0.005)
            .collect();
        let f = extract(&x, fs);
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
    }
}
