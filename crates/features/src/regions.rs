//! Automatic speech-region detection (§III-B.2 and §IV-A.2).
//!
//! A played utterance shows up as an energy spike in the accelerometer
//! trace. In the table-top/loudspeaker setting the spike is far above the
//! noise floor and no filtering is needed (Figure 4c). In the handheld
//! ear-speaker setting, low-frequency hand/body motion swamps the trace;
//! the paper applies an 8 Hz high-pass **only to detect regions** (Figure
//! 4b) and extracts features from the unfiltered data.

use emoleak_dsp::envelope::rms_envelope;
use emoleak_dsp::filter::{ButterworthDesign, FilterKind};
use emoleak_dsp::stats;
use serde::{Deserialize, Serialize};

/// A detected speech region in samples: `[start, end)`.
pub type Region = (usize, usize);

/// The energy-spike region detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionDetector {
    /// Optional detection-only high-pass corner in Hz (the paper's 8 Hz for
    /// handheld recordings).
    pub highpass_hz: Option<f64>,
    /// Region opens when the envelope exceeds `floor + enter_fraction ×
    /// (p90 − floor)`, where `floor` is the envelope's lower quartile.
    pub enter_fraction: f64,
    /// Region closes when the envelope falls below `floor + exit_fraction ×
    /// (p90 − floor)` (hysteresis; must be ≤ `enter_fraction`).
    pub exit_fraction: f64,
    /// Envelope window length in seconds.
    pub envelope_win_s: f64,
    /// Regions closer than this gap (seconds) are merged.
    pub merge_gap_s: f64,
    /// Regions shorter than this (seconds) are dropped.
    pub min_region_s: f64,
}

impl RegionDetector {
    /// Preset for the table-top / loudspeaker setting: no filter.
    pub fn table_top() -> Self {
        RegionDetector {
            highpass_hz: None,
            enter_fraction: 0.35,
            exit_fraction: 0.15,
            envelope_win_s: 0.05,
            merge_gap_s: 0.12,
            min_region_s: 0.08,
        }
    }

    /// Preset for the handheld / ear-speaker setting: the paper's 8 Hz
    /// high-pass is applied for detection only.
    pub fn handheld() -> Self {
        RegionDetector {
            highpass_hz: Some(8.0),
            enter_fraction: 0.45,
            exit_fraction: 0.20,
            envelope_win_s: 0.06,
            merge_gap_s: 0.15,
            min_region_s: 0.08,
        }
    }

    /// Detects speech regions in `trace` sampled at `fs`.
    ///
    /// Returns `[start, end)` sample ranges into the *unfiltered* trace
    /// (indices are valid regardless of the detection filter).
    pub fn detect(&self, trace: &[f64], fs: f64) -> Vec<Region> {
        if trace.is_empty() {
            return Vec::new();
        }
        // Detection signal: optionally high-passed; otherwise the raw
        // gravity-compensated trace. No mean subtraction — speech regions
        // carry a positive DC shift from envelope down-conversion, and
        // removing the global mean would lift the quiet gaps to the same
        // envelope level as the speech.
        let filtered = match self.highpass_hz {
            Some(fc) if fc < fs / 2.0 => {
                ButterworthDesign::new(FilterKind::HighPass, 4, fc, fs)
                    .expect("corner below Nyquist")
                    .build()
                    .filtfilt(trace)
            }
            _ => trace.to_vec(),
        };
        let win = ((self.envelope_win_s * fs) as usize).max(3);
        let env = rms_envelope(&filtered, win);
        // Robust floor and dynamic range of the envelope. The spread-based
        // threshold adapts to mostly-speech clips (where a fixed multiple of
        // the lower quartile overshoots the speech level) while the 1.5×
        // floor guard keeps pure-noise traces from triggering.
        let floor = stats::quantile(&env, 0.25).max(1e-12);
        let p90 = stats::quantile(&env, 0.90);
        let spread = (p90 - floor).max(0.0);
        let enter = (floor + self.enter_fraction * spread).max(1.5 * floor);
        let exit = (floor + self.exit_fraction * spread).max(1.2 * floor);

        // Hysteresis thresholding.
        let mut regions: Vec<Region> = Vec::new();
        let mut open: Option<usize> = None;
        for (i, &e) in env.iter().enumerate() {
            match open {
                None if e > enter => open = Some(i),
                Some(start) if e < exit => {
                    regions.push((start, i));
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            regions.push((start, trace.len()));
        }

        // Merge close regions, then drop short ones.
        let merge_gap = (self.merge_gap_s * fs) as usize;
        let merged = merge_regions(&regions, merge_gap);
        let min_len = (self.min_region_s * fs) as usize;
        merged.into_iter().filter(|(s, e)| e - s >= min_len).collect()
    }
}

/// Merges regions separated by gaps smaller than `max_gap` samples.
pub fn merge_regions(regions: &[Region], max_gap: usize) -> Vec<Region> {
    let mut out: Vec<Region> = Vec::with_capacity(regions.len());
    for &(s, e) in regions {
        match out.last_mut() {
            Some((_, last_end)) if s.saturating_sub(*last_end) <= max_gap => {
                *last_end = (*last_end).max(e);
            }
            _ => out.push((s, e)),
        }
    }
    out
}

/// Fraction of ground-truth spans that a detection run recovered: a truth
/// span counts as detected if at least half of it is covered by detected
/// regions. This is the paper's "extraction rate" (≥90 % table-top, ≥45 %
/// ear speaker).
pub fn detection_rate(detected: &[Region], truth: &[Region]) -> f64 {
    if truth.is_empty() {
        return f64::NAN;
    }
    let hits = truth
        .iter()
        .filter(|&&(ts, te)| {
            let span = te.saturating_sub(ts);
            if span == 0 {
                return false;
            }
            let covered: usize = detected
                .iter()
                .map(|&(ds, de)| de.min(te).saturating_sub(ds.max(ts)))
                .sum();
            covered * 2 >= span
        })
        .count();
    hits as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a trace with bursts at the given spans over a noise floor.
    fn trace_with_bursts(n: usize, spans: &[(usize, usize)], burst: f64, noise: f64) -> Vec<f64> {
        let mut x: Vec<f64> = (0..n)
            .map(|i| noise * ((i * 2654435761) % 1000) as f64 / 1000.0 - noise / 2.0)
            .collect();
        for &(s, e) in spans {
            for (i, v) in x.iter_mut().enumerate().take(e.min(n)).skip(s) {
                *v += burst * if i.is_multiple_of(2) { 1.0 } else { -1.0 };
            }
        }
        x
    }

    #[test]
    fn detects_single_burst() {
        let x = trace_with_bursts(4000, &[(1000, 1500)], 0.2, 0.004);
        let det = RegionDetector::table_top();
        let regions = det.detect(&x, 420.0);
        assert_eq!(regions.len(), 1);
        let (s, e) = regions[0];
        assert!(s.abs_diff(1000) < 60, "start {s}");
        assert!(e.abs_diff(1500) < 60, "end {e}");
    }

    #[test]
    fn detects_multiple_separated_bursts() {
        let spans = [(500, 900), (1500, 1900), (2600, 3100)];
        let x = trace_with_bursts(4000, &spans, 0.15, 0.004);
        let det = RegionDetector::table_top();
        let regions = det.detect(&x, 420.0);
        assert_eq!(regions.len(), 3);
        assert!((detection_rate(&regions, &spans) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merges_close_fragments() {
        // Two fragments 20 samples apart at 420 Hz (~48 ms gap < 120 ms).
        let x = trace_with_bursts(3000, &[(1000, 1200), (1220, 1400)], 0.2, 0.004);
        let det = RegionDetector::table_top();
        let regions = det.detect(&x, 420.0);
        assert_eq!(regions.len(), 1);
    }

    #[test]
    fn drops_too_short_blips() {
        // 10-sample blip at 420 Hz = 24 ms < 80 ms minimum.
        let x = trace_with_bursts(3000, &[(1000, 1010)], 0.5, 0.004);
        let det = RegionDetector::table_top();
        assert!(det.detect(&x, 420.0).is_empty());
    }

    #[test]
    fn empty_and_flat_traces_yield_nothing() {
        let det = RegionDetector::table_top();
        assert!(det.detect(&[], 420.0).is_empty());
        assert!(det.detect(&vec![0.0; 1000], 420.0).is_empty());
    }

    #[test]
    fn handheld_filter_removes_drift_masking() {
        // Slow large drift + small burst: unfiltered table-top detection
        // fails (envelope dominated by drift) but the 8 Hz HPF preset finds
        // the burst.
        let fs = 420.0;
        let n = 8400;
        let mut x: Vec<f64> = (0..n)
            .map(|i| 0.5 * (2.0 * std::f64::consts::PI * 0.4 * i as f64 / fs).sin())
            .collect();
        for (i, v) in x.iter_mut().enumerate().take(4500).skip(4000) {
            *v += 0.06 * if i.is_multiple_of(2) { 1.0 } else { -1.0 };
        }
        let handheld = RegionDetector::handheld().detect(&x, fs);
        let truth = [(4000usize, 4500usize)];
        assert!(
            detection_rate(&handheld, &truth) > 0.99,
            "handheld preset should find the burst: {handheld:?}"
        );
    }

    #[test]
    fn merge_regions_respects_gap() {
        let r = [(0usize, 10usize), (15, 20), (100, 110)];
        let merged = merge_regions(&r, 5);
        assert_eq!(merged, vec![(0, 20), (100, 110)]);
        let unmerged = merge_regions(&r, 2);
        assert_eq!(unmerged.len(), 3);
    }

    #[test]
    fn detection_rate_requires_half_coverage() {
        let truth = [(0usize, 100usize)];
        assert_eq!(detection_rate(&[(0, 49)], &truth), 0.0);
        assert_eq!(detection_rate(&[(0, 51)], &truth), 1.0);
        // Two partial detections can jointly cover.
        assert_eq!(detection_rate(&[(0, 30), (40, 70)], &truth), 1.0);
        assert!(detection_rate(&[], &[]).is_nan());
    }
}
