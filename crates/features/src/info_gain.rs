//! Information-gain analysis (Table I and §III-B.4).
//!
//! The paper scores each feature's usefulness by its information gain with
//! respect to the emotion label, and shows that a 1 Hz high-pass collapses
//! the gain of the time-domain statistics to ~0. We use the standard
//! discretized estimator: equal-width binning of the feature, then
//! `IG = H(class) − Σ_b p(b)·H(class | b)`.

use emoleak_dsp::stats;

/// Information gain (nats) of a scalar feature with respect to integer class
/// labels, using `bins` equal-width bins. NaN feature values are ignored.
///
/// Returns 0.0 when the feature is constant or there are fewer than two
/// usable samples.
///
/// # Panics
///
/// Panics if `values.len() != labels.len()` or `bins == 0`.
pub fn information_gain(values: &[f64], labels: &[usize], bins: usize) -> f64 {
    assert_eq!(values.len(), labels.len(), "values/labels length mismatch");
    assert!(bins > 0, "bins must be positive");
    let pairs: Vec<(f64, usize)> = values
        .iter()
        .zip(labels)
        .filter(|(v, _)| v.is_finite())
        .map(|(&v, &l)| (v, l))
        .collect();
    if pairs.len() < 2 {
        return 0.0;
    }
    let vmin = pairs.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let vmax = pairs.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    if vmax <= vmin {
        return 0.0;
    }
    let num_classes = pairs.iter().map(|p| p.1).max().unwrap() + 1;
    let width = (vmax - vmin) / bins as f64;

    // Joint histogram bin × class.
    let mut joint = vec![vec![0usize; num_classes]; bins];
    for &(v, l) in &pairs {
        let b = (((v - vmin) / width) as usize).min(bins - 1);
        joint[b][l] += 1;
    }
    let n = pairs.len() as f64;

    // H(class).
    let mut class_counts = vec![0usize; num_classes];
    for &(_, l) in &pairs {
        class_counts[l] += 1;
    }
    let h_class = entropy_of_counts(&class_counts);

    // Σ_b p(b)·H(class|b).
    let mut h_cond = 0.0;
    for row in &joint {
        let nb: usize = row.iter().sum();
        if nb == 0 {
            continue;
        }
        h_cond += (nb as f64 / n) * entropy_of_counts(row);
    }
    (h_class - h_cond).max(0.0)
}

fn entropy_of_counts(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let p: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    stats::shannon_entropy(&p)
}

/// Information gain of each column of a feature matrix (rows = samples).
///
/// # Panics
///
/// Panics if rows have inconsistent lengths.
pub fn information_gain_per_feature(
    rows: &[Vec<f64>],
    labels: &[usize],
    bins: usize,
) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let dim = rows[0].len();
    (0..dim)
        .map(|j| {
            let col: Vec<f64> = rows
                .iter()
                .map(|r| {
                    assert_eq!(r.len(), dim, "inconsistent row length");
                    r[j]
                })
                .collect();
            information_gain(&col, labels, bins)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separating_feature_has_full_gain() {
        // Two classes fully separated by value: IG = H(class) = ln 2.
        let values = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let labels = [0, 0, 0, 1, 1, 1];
        let ig = information_gain(&values, &labels, 10);
        assert!((ig - 2.0f64.ln()).abs() < 1e-9, "ig {ig}");
    }

    #[test]
    fn useless_feature_has_zero_gain() {
        // Same value distribution in both classes.
        let values = [1.0, 2.0, 1.0, 2.0];
        let labels = [0, 0, 1, 1];
        let ig = information_gain(&values, &labels, 2);
        assert!(ig.abs() < 1e-9);
    }

    #[test]
    fn constant_feature_has_zero_gain() {
        let ig = information_gain(&[5.0; 10], &[0, 1, 0, 1, 0, 1, 0, 1, 0, 1], 10);
        assert_eq!(ig, 0.0);
    }

    #[test]
    fn nans_are_ignored() {
        let values = [0.0, f64::NAN, 0.1, 10.0, 10.1, f64::NAN];
        let labels = [0, 0, 0, 1, 1, 1];
        let ig = information_gain(&values, &labels, 10);
        assert!((ig - 2.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_gives_intermediate_gain() {
        let values: Vec<f64> = (0..100)
            .map(|i| if i < 50 { i as f64 * 0.1 } else { (i - 30) as f64 * 0.1 })
            .collect();
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
        let ig = information_gain(&values, &labels, 10);
        assert!(ig > 0.1 && ig < 2.0f64.ln(), "ig {ig}");
    }

    #[test]
    fn per_feature_matrix_works() {
        let rows = vec![
            vec![0.0, 1.0],
            vec![0.1, 2.0],
            vec![10.0, 1.0],
            vec![10.1, 2.0],
        ];
        let labels = vec![0, 0, 1, 1];
        let igs = information_gain_per_feature(&rows, &labels, 5);
        assert_eq!(igs.len(), 2);
        assert!(igs[0] > 0.5); // separating column
        assert!(igs[1] < 1e-9); // useless column
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        information_gain(&[1.0], &[0, 1], 5);
    }
}
