//! ARFF export — the Weka input format the paper's analysis uses
//! (§IV-D.1: *"prepare the input file with a (.arff) extension for Weka"*).
//!
//! A [`crate::FeatureDataset`] serializes to an ARFF document with one
//! numeric attribute per feature and a nominal class attribute, so the
//! harvested vibration features can be fed to an actual Weka installation
//! for cross-validation against our from-scratch classifiers.

use crate::dataset::FeatureDataset;

/// Serializes a dataset as an ARFF document.
///
/// NaN/infinite entries are written as `?` (ARFF missing values) — Weka's
/// preprocessing then drops or imputes them, mirroring the paper's
/// invalid-entry cleaning.
pub fn to_arff(dataset: &FeatureDataset, relation: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("@RELATION {}\n\n", sanitize(relation)));
    for name in dataset.feature_names() {
        out.push_str(&format!("@ATTRIBUTE {} NUMERIC\n", sanitize(name)));
    }
    let classes: Vec<String> = dataset
        .class_names()
        .iter()
        .map(|c| sanitize(c))
        .collect();
    out.push_str(&format!("@ATTRIBUTE class {{{}}}\n\n@DATA\n", classes.join(",")));
    for (row, &label) in dataset.features().iter().zip(dataset.labels()) {
        for v in row {
            if v.is_finite() {
                out.push_str(&format!("{v},"));
            } else {
                out.push_str("?,");
            }
        }
        out.push_str(&classes[label]);
        out.push('\n');
    }
    out
}

/// Replaces ARFF-hostile characters (spaces, quotes, commas) in identifiers.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> FeatureDataset {
        let mut d = FeatureDataset::new(
            vec!["Mean".into(), "Spec Centroid".into()],
            vec!["anger".into(), "sad".into()],
        );
        d.push(vec![1.5, 200.0], 0);
        d.push(vec![f64::NAN, 80.0], 1);
        d
    }

    #[test]
    fn header_declares_schema() {
        let arff = to_arff(&toy(), "emoleak features");
        assert!(arff.starts_with("@RELATION emoleak_features\n"));
        assert!(arff.contains("@ATTRIBUTE Mean NUMERIC"));
        assert!(arff.contains("@ATTRIBUTE Spec_Centroid NUMERIC"));
        assert!(arff.contains("@ATTRIBUTE class {anger,sad}"));
    }

    #[test]
    fn data_rows_follow_schema() {
        let arff = to_arff(&toy(), "r");
        let data: Vec<&str> = arff.lines().skip_while(|l| *l != "@DATA").skip(1).collect();
        assert_eq!(data.len(), 2);
        assert_eq!(data[0], "1.5,200,anger");
        assert_eq!(data[1], "?,80,sad");
    }

    #[test]
    fn sanitize_keeps_safe_characters() {
        assert_eq!(sanitize("Quantile25"), "Quantile25");
        assert_eq!(sanitize("a b,c\"d"), "a_b_c_d");
    }
}
