//! Labeled spectrogram images for the CNN image classifier (§IV-C).
//!
//! Each detected speech region becomes one spectrogram, dB-scaled, resized
//! to 32 × 32 and min–max normalized to `[0, 1]` — the exact preprocessing
//! of §IV-C.1. Labels come from the recorded playback schedule.

use emoleak_dsp::{StftConfig, Window};
use serde::{Deserialize, Serialize};

/// Image side length used by the paper's classifier.
pub const IMAGE_SIZE: usize = 32;

/// A spectrogram image with its class label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSpectrogram {
    /// Row-major `IMAGE_SIZE × IMAGE_SIZE` pixels in `[0, 1]`.
    pub pixels: Vec<f64>,
    /// Class index (emotion).
    pub label: usize,
}

/// Generator turning speech regions into labeled spectrogram images.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectrogramGenerator {
    stft: StftConfig,
    db_floor: f64,
}

impl SpectrogramGenerator {
    /// Creates a generator tuned for accelerometer-rate traces
    /// (frame 64 / hop 16, Hamming window).
    pub fn for_accel() -> Self {
        SpectrogramGenerator {
            stft: StftConfig::new(64, 16).with_window(Window::Hamming),
            db_floor: 1e-14,
        }
    }

    /// Creates a generator with an explicit STFT configuration.
    pub fn with_config(stft: StftConfig) -> Self {
        SpectrogramGenerator { stft, db_floor: 1e-14 }
    }

    /// Generates the labeled 32×32 image for one region, or `None` if the
    /// region is shorter than one STFT frame.
    pub fn generate(&self, region: &[f64], fs: f64, label: usize) -> Option<LabeledSpectrogram> {
        let spec = self.stft.spectrogram(region, fs).ok()?;
        let img = spec.resize_db(IMAGE_SIZE, IMAGE_SIZE, self.db_floor);
        Some(LabeledSpectrogram { pixels: normalize_01(&img), label })
    }
}

/// Min–max normalizes to `[0, 1]`; a constant image maps to all zeros.
fn normalize_01(img: &[f64]) -> Vec<f64> {
    let lo = img.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = img.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi <= lo {
        return vec![0.0; img.len()];
    }
    img.iter().map(|v| (v - lo) / (hi - lo)).collect()
}

/// Renders a spectrogram image as coarse ASCII art (for the Figure 2
/// reproduction binary). Rows are time frames (top = start), columns are
/// frequency bins.
pub fn ascii_render(pixels: &[f64], cols: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let rows = pixels.len() / cols;
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            let v = pixels[r * cols + c].clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn image_has_expected_shape_and_range() {
        let gen = SpectrogramGenerator::for_accel();
        let img = gen.generate(&tone(100.0, 420.0, 600), 420.0, 3).unwrap();
        assert_eq!(img.pixels.len(), IMAGE_SIZE * IMAGE_SIZE);
        assert_eq!(img.label, 3);
        assert!(img.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let max = img.pixels.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_short_region_yields_none() {
        let gen = SpectrogramGenerator::for_accel();
        assert!(gen.generate(&[0.0; 10], 420.0, 0).is_none());
    }

    #[test]
    fn different_tones_give_different_images() {
        let gen = SpectrogramGenerator::for_accel();
        let a = gen.generate(&tone(60.0, 420.0, 600), 420.0, 0).unwrap();
        let b = gen.generate(&tone(160.0, 420.0, 600), 420.0, 0).unwrap();
        let dist: f64 = a
            .pixels
            .iter()
            .zip(&b.pixels)
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        assert!(dist > 1.0, "images should differ: {dist}");
    }

    #[test]
    fn constant_region_concentrates_at_dc() {
        let gen = SpectrogramGenerator::for_accel();
        let img = gen.generate(&vec![0.5; 600], 420.0, 0).unwrap();
        // All of the DC region's energy sits in the lowest-frequency column.
        for r in 0..IMAGE_SIZE {
            let row = &img.pixels[r * IMAGE_SIZE..(r + 1) * IMAGE_SIZE];
            let brightest = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(brightest, 0, "row {r} brightest at {brightest}");
        }
    }

    #[test]
    fn ascii_render_shape() {
        let art = ascii_render(&[0.0; 64], 8);
        assert_eq!(art.lines().count(), 8);
        assert!(art.lines().all(|l| l.len() == 8));
        let bright = ascii_render(&[1.0; 4], 2);
        assert!(bright.contains('@'));
    }
}
