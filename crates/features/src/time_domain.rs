//! The twelve time-domain features of Table II.
//!
//! Min, Max, Mean, Standard Deviation, Variance, Range, CV, Skewness,
//! Kurtosis, Quantile25, Quantile50, MeanCrossingRate — computed on the raw
//! (unfiltered) samples of one detected speech region, exactly as §IV-B
//! prescribes (the 8 Hz filter is *not* applied here).

use emoleak_dsp::stats;

/// Feature names in extraction order.
pub const FEATURE_NAMES: [&str; 12] = [
    "Min",
    "Max",
    "Mean",
    "StdDev",
    "Variance",
    "Range",
    "CV",
    "Skewness",
    "Kurtosis",
    "Quantile25",
    "Quantile50",
    "MeanCrossingRate",
];

/// Extracts the 12 time-domain features from one speech region.
///
/// Degenerate regions produce NaN entries, which the dataset layer removes
/// (mirroring the paper's NaN cleaning step).
pub fn extract(region: &[f64]) -> [f64; 12] {
    [
        stats::min(region),
        stats::max(region),
        stats::mean(region),
        stats::std_dev(region),
        stats::variance(region),
        stats::range(region),
        stats::coefficient_of_variation(region),
        stats::skewness(region),
        stats::kurtosis(region),
        stats::quantile(region, 0.25),
        stats::quantile(region, 0.50),
        stats::mean_crossing_rate(region),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_feature_count() {
        assert_eq!(FEATURE_NAMES.len(), extract(&[1.0, 2.0]).len());
    }

    #[test]
    fn known_values() {
        let f = extract(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f[0], 1.0); // min
        assert_eq!(f[1], 4.0); // max
        assert!((f[2] - 2.5).abs() < 1e-12); // mean
        assert!((f[4] - 1.25).abs() < 1e-12); // variance
        assert!((f[5] - 3.0).abs() < 1e-12); // range
        assert!((f[10] - 2.5).abs() < 1e-12); // median
    }

    #[test]
    fn empty_region_is_all_nan_or_invalid() {
        let f = extract(&[]);
        assert!(f.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn louder_region_has_larger_range() {
        let quiet: Vec<f64> = (0..200).map(|i| 0.01 * (i as f64 * 0.3).sin()).collect();
        let loud: Vec<f64> = (0..200).map(|i| 0.5 * (i as f64 * 0.3).sin()).collect();
        let fq = extract(&quiet);
        let fl = extract(&loud);
        assert!(fl[5] > 10.0 * fq[5]); // range
        assert!(fl[3] > 10.0 * fq[3]); // std-dev
    }

    #[test]
    fn dc_offset_moves_mean_not_stddev() {
        let base: Vec<f64> = (0..500).map(|i| (i as f64 * 0.2).sin()).collect();
        let shifted: Vec<f64> = base.iter().map(|v| v + 5.0).collect();
        let fb = extract(&base);
        let fs_ = extract(&shifted);
        assert!((fs_[2] - fb[2] - 5.0).abs() < 1e-9);
        assert!((fs_[3] - fb[3]).abs() < 1e-9);
    }
}
