//! The twelve time-domain features of Table II.
//!
//! Min, Max, Mean, Standard Deviation, Variance, Range, CV, Skewness,
//! Kurtosis, Quantile25, Quantile50, MeanCrossingRate — computed on the raw
//! (unfiltered) samples of one detected speech region, exactly as §IV-B
//! prescribes (the 8 Hz filter is *not* applied here).

use emoleak_dsp::stats;
use emoleak_kernels::KernelMode;

/// Feature names in extraction order.
pub const FEATURE_NAMES: [&str; 12] = [
    "Min",
    "Max",
    "Mean",
    "StdDev",
    "Variance",
    "Range",
    "CV",
    "Skewness",
    "Kurtosis",
    "Quantile25",
    "Quantile50",
    "MeanCrossingRate",
];

/// Extracts the 12 time-domain features from one speech region,
/// dispatching on the `EMOLEAK_KERNELS` knob.
///
/// Degenerate regions produce NaN entries, which the dataset layer removes
/// (mirroring the paper's NaN cleaning step).
pub fn extract(region: &[f64]) -> [f64; 12] {
    extract_in_mode(region, KernelMode::current())
}

/// [`extract`] with an explicit kernel mode — the dispatch seam driven
/// directly by the differential tests and benches.
pub fn extract_in_mode(region: &[f64], mode: KernelMode) -> [f64; 12] {
    match mode {
        KernelMode::Reference => extract_reference(region),
        KernelMode::Fast => extract_fused(region),
    }
}

/// Reference path: one `emoleak_dsp::stats` call per feature — 12 passes
/// over the region plus two independent sorts.
fn extract_reference(region: &[f64]) -> [f64; 12] {
    [
        stats::min(region),
        stats::max(region),
        stats::mean(region),
        stats::std_dev(region),
        stats::variance(region),
        stats::range(region),
        stats::coefficient_of_variation(region),
        stats::skewness(region),
        stats::kurtosis(region),
        stats::quantile(region, 0.25),
        stats::quantile(region, 0.50),
        stats::mean_crossing_rate(region),
    ]
}

/// Fused fast path: three passes plus one shared sort, bit-identical to
/// [`extract_reference`].
///
/// Bit-identity holds because fusing only merges *independent*
/// accumulators that traverse the region in the same element order with
/// the same per-element expressions: pass 1 runs the min/max folds and the
/// mean's sum together; pass 2 accumulates `Σ(v−m)²` alongside the
/// mean-crossing count; pass 3 shares `z = (v−m)/σ` between the skewness
/// and kurtosis sums (same inputs, same `powi`); and both quantiles index
/// one `total_cmp`-sorted copy instead of each sorting their own. No
/// single accumulation chain is reassociated. Inputs shorter than two
/// samples delegate to the reference path so degenerate NaN propagation
/// stays byte-for-byte whatever the platform does with NaN payloads.
fn extract_fused(x: &[f64]) -> [f64; 12] {
    if x.len() < 2 {
        return extract_reference(x);
    }
    let n = x.len() as f64;

    // Pass 1: min/max (exact replicas of the stats folds) + the mean's sum.
    let (mut mn, mut mx, mut sum) = (f64::NAN, f64::NAN, 0.0);
    for &v in x {
        if mn.is_nan() || v < mn {
            mn = v;
        }
        if mx.is_nan() || v > mx {
            mx = v;
        }
        sum += v;
    }
    let m = sum / n;

    // Pass 2: Σ(v−m)² plus the mean-crossing count over adjacent pairs.
    let (mut ss, mut crossings) = (0.0, 0usize);
    let mut prev_d = 0.0;
    for (i, &v) in x.iter().enumerate() {
        let d = v - m;
        ss += d * d;
        if i > 0 && prev_d * d < 0.0 {
            crossings += 1;
        }
        prev_d = d;
    }
    let variance = ss / n;
    let std = variance.sqrt();

    // Pass 3: skewness and kurtosis share the standardized deviation.
    let (skew, kurt) = if std == 0.0 {
        (f64::NAN, f64::NAN)
    } else {
        let (mut s3, mut s4) = (0.0, 0.0);
        for &v in x {
            let z = (v - m) / std;
            s3 += z.powi(3);
            s4 += z.powi(4);
        }
        (s3 / n, s4 / n)
    };

    // One sorted copy serves both quantiles.
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let interp = |q: f64| {
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    };

    [
        mn,
        mx,
        m,
        std,
        variance,
        mx - mn,
        std / m.abs(),
        skew,
        kurt,
        interp(0.25),
        interp(0.50),
        crossings as f64 / (x.len() - 1) as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_feature_count() {
        assert_eq!(FEATURE_NAMES.len(), extract(&[1.0, 2.0]).len());
    }

    #[test]
    fn known_values() {
        let f = extract(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f[0], 1.0); // min
        assert_eq!(f[1], 4.0); // max
        assert!((f[2] - 2.5).abs() < 1e-12); // mean
        assert!((f[4] - 1.25).abs() < 1e-12); // variance
        assert!((f[5] - 3.0).abs() < 1e-12); // range
        assert!((f[10] - 2.5).abs() < 1e-12); // median
    }

    #[test]
    fn empty_region_is_all_nan_or_invalid() {
        let f = extract(&[]);
        assert!(f.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn louder_region_has_larger_range() {
        let quiet: Vec<f64> = (0..200).map(|i| 0.01 * (i as f64 * 0.3).sin()).collect();
        let loud: Vec<f64> = (0..200).map(|i| 0.5 * (i as f64 * 0.3).sin()).collect();
        let fq = extract(&quiet);
        let fl = extract(&loud);
        assert!(fl[5] > 10.0 * fq[5]); // range
        assert!(fl[3] > 10.0 * fq[3]); // std-dev
    }

    #[test]
    fn fused_path_is_bit_identical_to_reference() {
        // Deterministic LCG inputs spanning the awkward cases: NaN
        // elements, constant regions, negatives, tiny and empty inputs.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 30) as f64 - 1.0
        };
        let mut cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![0.25],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![-0.0, 0.0, -0.0],
            vec![f64::NAN, 1.0, -2.0, f64::NAN],
        ];
        for len in [2usize, 3, 17, 256, 999] {
            cases.push((0..len).map(|_| next()).collect());
        }
        for x in &cases {
            let r = extract_in_mode(x, KernelMode::Reference);
            let f = extract_in_mode(x, KernelMode::Fast);
            for (i, (a, b)) in r.iter().zip(&f).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "feature {} ({}) differs on len {}: {a} vs {b}",
                    i,
                    FEATURE_NAMES[i],
                    x.len()
                );
            }
        }
    }

    #[test]
    fn dc_offset_moves_mean_not_stddev() {
        let base: Vec<f64> = (0..500).map(|i| (i as f64 * 0.2).sin()).collect();
        let shifted: Vec<f64> = base.iter().map(|v| v + 5.0).collect();
        let fb = extract(&base);
        let fs_ = extract(&shifted);
        assert!((fs_[2] - fb[2] - 5.0).abs() < 1e-9);
        assert!((fs_[3] - fb[3]).abs() < 1e-9);
    }
}
