//! # emoleak-features
//!
//! The analysis front half of the EmoLeak attack: everything between a raw
//! accelerometer trace and a classifier input.
//!
//! - [`regions`] — automatic speech-region detection (§III-B.2): energy
//!   spikes in the trace mark played speech; the handheld preset applies the
//!   paper's 8 Hz high-pass *for detection only*.
//! - [`time_domain`] / [`freq_domain`] — the 24 features of Table II.
//! - [`spectrogram`] — labeled 32×32 spectrogram images for the CNN image
//!   classifier (§IV-C).
//! - [`info_gain`] — information-gain analysis (Table I ablation).
//! - [`dataset`] — labeled feature datasets: NaN cleaning, z-score
//!   normalization, stratified 80/20 splits and 10-fold CV (§IV-D).
//!
//! # Example
//!
//! ```
//! use emoleak_features::regions::RegionDetector;
//!
//! // A trace with a burst in the middle.
//! let mut trace = vec![0.001; 2000];
//! for i in 800..1200 {
//!     trace[i] = if i % 2 == 0 { 0.2 } else { -0.2 };
//! }
//! let detector = RegionDetector::table_top();
//! let regions = detector.detect(&trace, 420.0);
//! assert_eq!(regions.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arff;
pub mod dataset;
pub mod freq_domain;
pub mod info_gain;
pub mod regions;
pub mod spectrogram;
pub mod time_domain;

pub use dataset::FeatureDataset;
pub use regions::RegionDetector;
pub use spectrogram::LabeledSpectrogram;

/// Names of all 24 Table II features, time-domain first.
pub fn all_feature_names() -> Vec<String> {
    time_domain::FEATURE_NAMES
        .iter()
        .chain(freq_domain::FEATURE_NAMES.iter())
        .map(|s| s.to_string())
        .collect()
}

/// Extracts the full 24-dimensional Table II feature vector from one speech
/// region sampled at `fs`.
///
/// Degenerate regions degrade to NaN entries rather than panicking: empty
/// or too-short regions, and regions carrying any non-finite sample (a
/// corrupted sensor log), all yield all-NaN vectors that
/// [`FeatureDataset::clean_invalid`](dataset::FeatureDataset::clean_invalid)
/// removes — mirroring the paper's invalid-entry cleaning step.
pub fn extract_all(region: &[f64], fs: f64) -> Vec<f64> {
    if region.iter().any(|v| !v.is_finite()) {
        return vec![f64::NAN; 24];
    }
    let mut v = Vec::with_capacity(24);
    v.extend_from_slice(&time_domain::extract(region));
    v.extend_from_slice(&freq_domain::extract(region, fs));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_regions_yield_nan_not_panic() {
        assert!(extract_all(&[], 420.0).iter().all(|v| v.is_nan()));
        assert!(extract_all(&[1.0, f64::NAN, 2.0], 420.0).iter().all(|v| v.is_nan()));
        assert!(extract_all(&[1.0, f64::INFINITY], 420.0).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn nan_rows_are_cleaned_from_datasets() {
        let mut d = FeatureDataset::new(all_feature_names(), vec!["a".into(), "b".into()]);
        d.push(extract_all(&[], 420.0), 0); // all-NaN row
        let good: Vec<f64> = (0..700).map(|i| 0.05 * (i as f64 * 0.3).sin()).collect();
        d.push(extract_all(&good, 420.0), 1);
        let dropped = d.clean_invalid();
        assert_eq!(dropped, 1);
        assert_eq!(d.len(), 1);
    }
}
