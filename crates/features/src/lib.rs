//! # emoleak-features
//!
//! The analysis front half of the EmoLeak attack: everything between a raw
//! accelerometer trace and a classifier input.
//!
//! - [`regions`] — automatic speech-region detection (§III-B.2): energy
//!   spikes in the trace mark played speech; the handheld preset applies the
//!   paper's 8 Hz high-pass *for detection only*.
//! - [`time_domain`] / [`freq_domain`] — the 24 features of Table II.
//! - [`spectrogram`] — labeled 32×32 spectrogram images for the CNN image
//!   classifier (§IV-C).
//! - [`info_gain`] — information-gain analysis (Table I ablation).
//! - [`dataset`] — labeled feature datasets: NaN cleaning, z-score
//!   normalization, stratified 80/20 splits and 10-fold CV (§IV-D).
//!
//! # Example
//!
//! ```
//! use emoleak_features::regions::RegionDetector;
//!
//! // A trace with a burst in the middle.
//! let mut trace = vec![0.001; 2000];
//! for i in 800..1200 {
//!     trace[i] = if i % 2 == 0 { 0.2 } else { -0.2 };
//! }
//! let detector = RegionDetector::table_top();
//! let regions = detector.detect(&trace, 420.0);
//! assert_eq!(regions.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arff;
pub mod dataset;
pub mod freq_domain;
pub mod info_gain;
pub mod regions;
pub mod spectrogram;
pub mod time_domain;

pub use dataset::FeatureDataset;
pub use regions::RegionDetector;
pub use spectrogram::LabeledSpectrogram;

/// Names of all 24 Table II features, time-domain first.
pub fn all_feature_names() -> Vec<String> {
    time_domain::FEATURE_NAMES
        .iter()
        .chain(freq_domain::FEATURE_NAMES.iter())
        .map(|s| s.to_string())
        .collect()
}

/// Extracts the full 24-dimensional Table II feature vector from one speech
/// region sampled at `fs`.
pub fn extract_all(region: &[f64], fs: f64) -> Vec<f64> {
    let mut v = Vec::with_capacity(24);
    v.extend_from_slice(&time_domain::extract(region));
    v.extend_from_slice(&freq_domain::extract(region, fs));
    v
}
