//! Device profiles for the six evaluation phones.
//!
//! The numbers below are *behavioural* parameters chosen so that each device
//! reproduces its relative standing in the paper's tables (e.g. the OnePlus
//! 7T's strong stereo speakers make it the best eavesdropping platform in
//! Table V; the Pixel 5 couples most weakly). Absolute values are in
//! plausible physical units: drive gain maps digital full scale to m/s² of
//! chassis acceleration; SPL figures follow §I (ear speakers 36–46 dB).

use crate::accel::Accelerometer;
use crate::chassis::{ChassisModel, ResonantMode};
use serde::{Deserialize, Serialize};

/// Which of the phone's two speakers plays the audio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeakerKind {
    /// Bottom loudspeaker at maximum media volume (table-top scenario).
    Loudspeaker,
    /// Top earpiece speaker at call volume (handheld scenario).
    EarSpeaker,
}

/// Electro-mechanical description of one speaker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeakerSpec {
    /// Peak chassis force the speaker can inject, as m/s² of acceleration at
    /// digital full scale.
    pub drive_gain: f64,
    /// Sound pressure level at typical use, dB (documentation/reporting).
    pub spl_db: f64,
    /// Low-frequency rolloff corner in Hz (small drivers reproduce little
    /// energy below a few hundred Hz; the chassis still receives the
    /// envelope).
    pub rolloff_hz: f64,
}

impl SpeakerSpec {
    /// Applies the speaker's drive gain and low-frequency rolloff to the
    /// playback signal.
    pub fn drive(&self, audio: &[f64], fs_audio: f64) -> Vec<f64> {
        use emoleak_dsp::filter::{ButterworthDesign, FilterKind};
        // First-order high-pass models the driver's LF rolloff; the corner
        // is well below Nyquist for all realistic audio rates.
        let hp = ButterworthDesign::new(FilterKind::HighPass, 1, self.rolloff_hz, fs_audio)
            .expect("rolloff corner below Nyquist")
            .build();
        hp.process(audio)
            .into_iter()
            .map(|v| v * self.drive_gain)
            .collect()
    }
}

/// A complete phone description: speakers, chassis, accelerometer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    name: String,
    loudspeaker: SpeakerSpec,
    ear_speaker: SpeakerSpec,
    modes: Vec<ResonantMode>,
    /// Fraction of speech-band energy that down-converts into the
    /// accelerometer band via envelope coupling.
    envelope_coupling: f64,
    /// Direct (linear) conduction gain for components already inside the
    /// accelerometer band.
    direct_coupling: f64,
    accel_rate_hz: f64,
    accel_noise_std: f64,
    accel_lsb: f64,
    motion_noise_std: f64,
}

impl DeviceProfile {
    /// OnePlus 7T — the paper's best eavesdropping platform: powerful stereo
    /// speakers (§I) and strong chassis coupling. 95.3 % TESS/loudspeaker.
    pub fn oneplus_7t() -> DeviceProfile {
        DeviceProfile {
            name: "OnePlus 7T".into(),
            loudspeaker: SpeakerSpec { drive_gain: 0.055, spl_db: 78.0, rolloff_hz: 350.0 },
            ear_speaker: SpeakerSpec { drive_gain: 0.060, spl_db: 45.0, rolloff_hz: 420.0 },
            modes: vec![
                ResonantMode { freq_hz: 145.0, bandwidth_hz: 45.0, gain: 1.00 },
                ResonantMode { freq_hz: 205.0, bandwidth_hz: 60.0, gain: 0.70 },
            ],
            envelope_coupling: 0.85,
            direct_coupling: 0.9,
            accel_rate_hz: 420.0,
            accel_noise_std: 0.0018,
            accel_lsb: 0.0012,
            motion_noise_std: 0.007,
        }
    }

    /// OnePlus 9 — stereo speakers comparable to the 7T; used in the
    /// ear-speaker experiments (Table VI).
    pub fn oneplus_9() -> DeviceProfile {
        DeviceProfile {
            name: "OnePlus 9".into(),
            loudspeaker: SpeakerSpec { drive_gain: 0.052, spl_db: 78.0, rolloff_hz: 360.0 },
            ear_speaker: SpeakerSpec { drive_gain: 0.063, spl_db: 46.0, rolloff_hz: 410.0 },
            modes: vec![
                ResonantMode { freq_hz: 155.0, bandwidth_hz: 50.0, gain: 0.95 },
                ResonantMode { freq_hz: 215.0, bandwidth_hz: 65.0, gain: 0.66 },
            ],
            envelope_coupling: 0.82,
            direct_coupling: 0.88,
            accel_rate_hz: 440.0,
            accel_noise_std: 0.0018,
            accel_lsb: 0.0012,
            motion_noise_std: 0.007,
        }
    }

    /// Google Pixel 5 — the weakest coupling of the evaluated phones
    /// (lowest loudspeaker accuracies in Tables III and V).
    pub fn pixel_5() -> DeviceProfile {
        DeviceProfile {
            name: "Pixel 5".into(),
            loudspeaker: SpeakerSpec { drive_gain: 0.048, spl_db: 74.0, rolloff_hz: 420.0 },
            ear_speaker: SpeakerSpec { drive_gain: 0.0038, spl_db: 40.0, rolloff_hz: 480.0 },
            modes: vec![
                ResonantMode { freq_hz: 130.0, bandwidth_hz: 55.0, gain: 0.75 },
                ResonantMode { freq_hz: 190.0, bandwidth_hz: 70.0, gain: 0.45 },
            ],
            envelope_coupling: 0.62,
            direct_coupling: 0.72,
            accel_rate_hz: 400.0,
            accel_noise_std: 0.0026,
            accel_lsb: 0.0015,
            motion_noise_std: 0.013,
        }
    }

    /// Samsung Galaxy S10 — mid-field coupling; the CREMA-D device
    /// (Table IV).
    pub fn galaxy_s10() -> DeviceProfile {
        DeviceProfile {
            name: "Galaxy S10".into(),
            loudspeaker: SpeakerSpec { drive_gain: 0.038, spl_db: 76.0, rolloff_hz: 390.0 },
            ear_speaker: SpeakerSpec { drive_gain: 0.0042, spl_db: 41.0, rolloff_hz: 460.0 },
            modes: vec![
                ResonantMode { freq_hz: 150.0, bandwidth_hz: 50.0, gain: 0.85 },
                ResonantMode { freq_hz: 225.0, bandwidth_hz: 70.0, gain: 0.55 },
            ],
            envelope_coupling: 0.68,
            direct_coupling: 0.78,
            accel_rate_hz: 500.0,
            accel_noise_std: 0.0022,
            accel_lsb: 0.0014,
            motion_noise_std: 0.013,
        }
    }

    /// Samsung Galaxy S21 — strong stereo coupling, second-best TESS device
    /// (Table V).
    pub fn galaxy_s21() -> DeviceProfile {
        DeviceProfile {
            name: "Galaxy S21".into(),
            loudspeaker: SpeakerSpec { drive_gain: 0.044, spl_db: 77.0, rolloff_hz: 370.0 },
            ear_speaker: SpeakerSpec { drive_gain: 0.0046, spl_db: 42.0, rolloff_hz: 450.0 },
            modes: vec![
                ResonantMode { freq_hz: 148.0, bandwidth_hz: 48.0, gain: 0.92 },
                ResonantMode { freq_hz: 210.0, bandwidth_hz: 62.0, gain: 0.62 },
            ],
            envelope_coupling: 0.78,
            direct_coupling: 0.85,
            accel_rate_hz: 480.0,
            accel_noise_std: 0.0020,
            accel_lsb: 0.0013,
            motion_noise_std: 0.013,
        }
    }

    /// Samsung Galaxy S21 Ultra — similar to the S21, slightly heavier
    /// chassis (marginally lower coupling).
    pub fn galaxy_s21_ultra() -> DeviceProfile {
        DeviceProfile {
            name: "Galaxy S21 Ultra".into(),
            loudspeaker: SpeakerSpec { drive_gain: 0.040, spl_db: 77.0, rolloff_hz: 380.0 },
            ear_speaker: SpeakerSpec { drive_gain: 0.0044, spl_db: 42.0, rolloff_hz: 455.0 },
            modes: vec![
                ResonantMode { freq_hz: 138.0, bandwidth_hz: 46.0, gain: 0.88 },
                ResonantMode { freq_hz: 200.0, bandwidth_hz: 60.0, gain: 0.58 },
            ],
            envelope_coupling: 0.72,
            direct_coupling: 0.80,
            accel_rate_hz: 480.0,
            accel_noise_std: 0.0021,
            accel_lsb: 0.0013,
            motion_noise_std: 0.013,
        }
    }

    /// All six evaluation devices in the paper's order.
    pub fn all() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::oneplus_7t(),
            DeviceProfile::oneplus_9(),
            DeviceProfile::pixel_5(),
            DeviceProfile::galaxy_s10(),
            DeviceProfile::galaxy_s21(),
            DeviceProfile::galaxy_s21_ultra(),
        ]
    }

    /// The marketing name of the device.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The spec of the selected speaker.
    pub fn speaker(&self, kind: SpeakerKind) -> &SpeakerSpec {
        match kind {
            SpeakerKind::Loudspeaker => &self.loudspeaker,
            SpeakerKind::EarSpeaker => &self.ear_speaker,
        }
    }

    /// Builds the chassis conduction model for this device.
    pub fn chassis_model(&self) -> ChassisModel {
        ChassisModel::new(
            self.modes.clone(),
            self.direct_coupling,
            self.envelope_coupling,
        )
    }

    /// Builds the accelerometer model for this device.
    pub fn accelerometer(&self) -> Accelerometer {
        Accelerometer::new(self.accel_rate_hz, self.accel_noise_std, self.accel_lsb)
    }

    /// The accelerometer sampling rate in Hz.
    pub fn accel_rate_hz(&self) -> f64 {
        self.accel_rate_hz
    }

    /// Handheld motion-noise standard deviation (m/s²).
    pub fn motion_noise_std(&self) -> f64 {
        self.motion_noise_std
    }

    /// Returns a copy with all chassis coupling coefficients scaled by
    /// `scale` — the vibration-damping / sensor-relocation mitigation of
    /// §VI-B (0 = perfectly isolated sensor, 1 = unmodified).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative.
    #[must_use]
    pub fn with_coupling_scale(mut self, scale: f64) -> DeviceProfile {
        assert!(scale >= 0.0, "coupling scale must be non-negative");
        self.envelope_coupling *= scale;
        self.direct_coupling *= scale;
        for m in &mut self.modes {
            m.gain *= scale;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_devices_with_unique_names() {
        let all = DeviceProfile::all();
        assert_eq!(all.len(), 6);
        let mut names: Vec<&str> = all.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn ear_speakers_are_quieter_but_couple_to_the_chassis() {
        for d in DeviceProfile::all() {
            let ls = d.speaker(SpeakerKind::Loudspeaker);
            let es = d.speaker(SpeakerKind::EarSpeaker);
            // Acoustically the earpiece is 30+ dB quieter (§I)...
            assert!((36.0..=46.0).contains(&es.spl_db), "{} ear SPL", d.name());
            assert!(ls.spl_db >= es.spl_db + 28.0, "{} SPL gap", d.name());
            // ...but its chassis force is bounded by the loudspeaker's (it
            // sits right next to the IMU, so the gap is far smaller than
            // the SPL gap suggests).
            assert!(es.drive_gain <= ls.drive_gain * 1.3, "{} drive", d.name());
        }
    }

    #[test]
    fn oneplus_7t_has_strongest_coupling() {
        let best = DeviceProfile::oneplus_7t();
        for d in [
            DeviceProfile::pixel_5(),
            DeviceProfile::galaxy_s10(),
            DeviceProfile::galaxy_s21(),
            DeviceProfile::galaxy_s21_ultra(),
        ] {
            assert!(
                best.envelope_coupling > d.envelope_coupling,
                "7T should beat {}",
                d.name()
            );
        }
    }

    #[test]
    fn pixel_5_is_the_weakest() {
        let pixel = DeviceProfile::pixel_5();
        for d in DeviceProfile::all() {
            if d.name() != pixel.name() {
                assert!(pixel.envelope_coupling < d.envelope_coupling);
            }
        }
    }

    #[test]
    fn accel_rates_in_plausible_range() {
        for d in DeviceProfile::all() {
            assert!((400.0..=500.0).contains(&d.accel_rate_hz()), "{}", d.name());
        }
    }

    #[test]
    fn speaker_drive_scales_and_filters() {
        let d = DeviceProfile::oneplus_7t();
        let ls = d.speaker(SpeakerKind::Loudspeaker);
        let fs = 8000.0;
        // A 600 Hz tone passes (above rolloff), scaled by drive gain.
        let tone: Vec<f64> =
            (0..8000).map(|i| (2.0 * std::f64::consts::PI * 600.0 * i as f64 / fs).sin()).collect();
        let out = ls.drive(&tone, fs);
        let rms = |x: &[f64]| (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
        let expected = ls.drive_gain / 2f64.sqrt();
        assert!((rms(&out[4000..]) - expected).abs() / expected < 0.15);
    }
}
