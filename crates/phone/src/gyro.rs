//! Gyroscope model — the sensor the paper considered and rejected.
//!
//! §III-B.1: prior work (Ba et al., AccelEve) found the gyroscope's audio
//! response much weaker than the accelerometer's: gyroscopes measure
//! *rotation*, and speaker-induced chassis vibration is almost purely
//! translational; only the small torque component (speaker offset from the
//! center of mass) rotates the phone. Gyroscope-based attacks such as
//! Gyrophone need a shared surface excited by an *external* speaker.
//!
//! This module exists to reproduce that justification as an experiment
//! (`accel_vs_gyro` bench binary): the same playback through the gyroscope
//! channel yields a far lower SNR and near-chance emotion recognition.

use crate::accel::AccelTrace;
use crate::device::{DeviceProfile, SpeakerKind};
use emoleak_dsp::noise::Gaussian;
use emoleak_dsp::resample::resample_linear;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A gyroscope channel for a device: converts playback into a z-axis
/// angular-rate trace (rad/s), reusing the device's chassis model but with
/// the rotational coupling fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GyroChannel {
    /// Fraction of the translational vibration that appears as rotation
    /// (torque arm ÷ moment of inertia, normalized). Prior measurements put
    /// the gyroscope response 15–25 dB below the accelerometer's.
    pub rotational_coupling: f64,
    /// Gyroscope output rate in Hz.
    pub rate_hz: f64,
    /// Angular random walk noise floor (rad/s).
    pub noise_std: f64,
    device: DeviceProfile,
    kind: SpeakerKind,
}

impl GyroChannel {
    /// Builds the gyroscope channel for a device and speaker, with the
    /// literature's ~20 dB rotational attenuation.
    pub fn new(device: &DeviceProfile, kind: SpeakerKind) -> Self {
        GyroChannel {
            rotational_coupling: 0.10,
            rate_hz: device.accel_rate_hz(),
            noise_std: 0.0025,
            device: device.clone(),
            kind,
        }
    }

    /// Simulates the playback → gyroscope chain (table-top placement).
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        audio: &[f64],
        fs_audio: f64,
        rng: &mut R,
    ) -> AccelTrace {
        // Same conduction physics as the accelerometer path...
        let driven = self.device.speaker(self.kind).drive(audio, fs_audio);
        let vibration = self.device.chassis_model().conduct(&driven, fs_audio);
        // ...but only the rotational fraction reaches the gyroscope.
        let mut samples = if vibration.is_empty() {
            Vec::new()
        } else {
            resample_linear(&vibration, fs_audio, self.rate_hz)
                .expect("valid rates and non-empty input")
        };
        let mut gauss = Gaussian::new();
        for v in samples.iter_mut() {
            *v = *v * self.rotational_coupling + gauss.sample(rng, 0.0, self.noise_std);
        }
        AccelTrace { samples, fs: self.rate_hz }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn tone(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.4 * (i as f64 * 0.25).sin()).collect()
    }

    #[test]
    fn gyro_response_is_much_weaker_than_accelerometer() {
        let device = DeviceProfile::oneplus_7t();
        let audio = tone(16000);
        // Noise-free comparison of the deterministic signal paths.
        let mut gyro = GyroChannel::new(&device, SpeakerKind::Loudspeaker);
        gyro.noise_std = 0.0;
        let g = gyro.simulate(&audio, 8000.0, &mut rng(1));
        let accel = crate::VibrationChannel::new(
            &device,
            SpeakerKind::Loudspeaker,
            crate::Placement::TableTop,
        );
        let a = accel.simulate(&audio, 8000.0, &mut rng(1));
        let rms = |x: &[f64]| (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
        let ratio = rms(&a.samples) / rms(&g.samples);
        assert!(
            ratio > 5.0,
            "accelerometer should dominate the gyroscope by >14 dB, got {ratio:.1}x"
        );
    }

    #[test]
    fn gyro_noise_floor_is_applied() {
        let device = DeviceProfile::pixel_5();
        let gyro = GyroChannel::new(&device, SpeakerKind::Loudspeaker);
        let t = gyro.simulate(&vec![0.0; 8000], 8000.0, &mut rng(2));
        let sd = emoleak_dsp::stats::std_dev(&t.samples);
        assert!((sd - gyro.noise_std).abs() < 6e-4, "noise floor sd {sd}");
    }

    #[test]
    fn gyro_trace_rate_matches_device() {
        let device = DeviceProfile::galaxy_s21();
        let gyro = GyroChannel::new(&device, SpeakerKind::Loudspeaker);
        let t = gyro.simulate(&tone(8000), 8000.0, &mut rng(3));
        assert_eq!(t.fs, device.accel_rate_hz());
    }
}
