//! Handheld motion noise.
//!
//! In the handheld (ear-speaker) setting the accelerometer also sees hand
//! and body movement: a `1/f`-like drift with occasional larger sway. The
//! paper notes (§III-B.2) that this low-frequency noise is what forces the
//! 8 Hz high-pass before region detection — and that filtering it away also
//! destroys speech features, which is why feature extraction runs unfiltered.

use emoleak_dsp::filter::{ButterworthDesign, FilterKind};
use emoleak_dsp::noise::PinkNoise;
use rand::Rng;

/// Corner above which hand/body motion has essentially no energy. Voluntary
/// movement lives below ~2 Hz and physiological tremor below ~12 Hz, so the
/// pink tremor component is band-limited here — this is what leaves the
/// > 8 Hz detection band usable for the ear-speaker attack (§III-B.2).
const TREMOR_CORNER_HZ: f64 = 12.0;

/// Adds handheld hand/body motion noise to a vibration signal at rate `fs`.
///
/// The noise has two components:
/// - pink (`1/f`) tremor with standard deviation `std`, band-limited below
///   [`TREMOR_CORNER_HZ`],
/// - a slow sinusoidal sway (0.2–1.2 Hz) with amplitude `2·std` and random
///   phase, modeling arm movement during a call.
pub fn add_handheld_noise<R: Rng + ?Sized>(
    mut vibration: Vec<f64>,
    fs: f64,
    std: f64,
    rng: &mut R,
) -> Vec<f64> {
    if vibration.is_empty() || std <= 0.0 {
        return vibration;
    }
    let mut pink = PinkNoise::new(16);
    let tremor_raw: Vec<f64> = (0..vibration.len())
        .map(|_| pink.next_sample(rng))
        .collect();
    let tremor = if TREMOR_CORNER_HZ < 0.45 * fs {
        ButterworthDesign::new(FilterKind::LowPass, 4, TREMOR_CORNER_HZ, fs)
            .expect("tremor corner below Nyquist")
            .build()
            .process(&tremor_raw)
    } else {
        tremor_raw
    };
    let sway_freq = 0.2 + rng.gen::<f64>() * 1.0;
    let sway_phase = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
    let sway_amp = 0.7 * std;
    for ((i, v), tr) in vibration.iter_mut().enumerate().zip(&tremor) {
        let t = i as f64 / fs;
        let sway = sway_amp * (2.0 * std::f64::consts::PI * sway_freq * t + sway_phase).sin();
        *v += std * tr + sway;
    }
    vibration
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_dsp::{stats, Fft};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zero_std_is_identity() {
        let x = vec![0.5; 100];
        assert_eq!(add_handheld_noise(x.clone(), 400.0, 0.0, &mut rng(1)), x);
    }

    #[test]
    fn noise_energy_scales_with_std() {
        let quiet = add_handheld_noise(vec![0.0; 40_000], 400.0, 0.01, &mut rng(2));
        let loud = add_handheld_noise(vec![0.0; 40_000], 400.0, 0.05, &mut rng(2));
        assert!(stats::std_dev(&loud) > 3.0 * stats::std_dev(&quiet));
    }

    #[test]
    fn noise_is_low_frequency_dominated() {
        let fs = 400.0;
        let x = add_handheld_noise(vec![0.0; 1 << 15], fs, 0.02, &mut rng(3));
        let fft = Fft::new(1 << 15);
        let p = fft.power_spectrum(&x[..1 << 15]);
        // Below 8 Hz vs above 8 Hz (the paper's region-detection HPF corner).
        let corner = (8.0 / fs * (1 << 15) as f64) as usize;
        let low: f64 = p[1..corner].iter().sum();
        let high: f64 = p[corner..].iter().sum();
        assert!(low > 3.0 * high, "low {low:.3e} vs high {high:.3e}");
    }

    #[test]
    fn empty_input_stays_empty() {
        assert!(add_handheld_noise(Vec::new(), 400.0, 0.05, &mut rng(4)).is_empty());
    }
}
