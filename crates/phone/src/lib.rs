//! # emoleak-phone
//!
//! Smartphone vibration-channel simulator: the hardware substitute for the
//! six physical phones of the EmoLeak paper (OnePlus 7T, OnePlus 9, Google
//! Pixel 5, Samsung Galaxy S10, S21, S21 Ultra).
//!
//! The simulated signal chain mirrors the physical one:
//!
//! ```text
//! audio playback ──► speaker (SPL drive, HP rolloff)
//!                 ──► chassis conduction (resonant modes + envelope
//!                      down-conversion into the accelerometer band)
//!                 ──► accelerometer (device sample rate, aliasing,
//!                      noise floor, quantization)
//!                 (+ handheld motion noise in the ear-speaker setting)
//! ```
//!
//! What matters for the attack is *which speech information survives* into
//! the ≤ 250 Hz accelerometer band: the energy envelope (speaking rate,
//! vocal effort, attack shape), the fundamental frequency for typical voices,
//! and the spectral spread induced by jitter. Loudspeaker playback at max
//! volume gives a strong coupling; the ear speaker's 36–46 dB SPL yields a
//! signal near the sensor noise floor, which — together with hand/body
//! motion — reproduces the paper's loudspeaker ≫ ear-speaker accuracy gap.
//!
//! # Example
//!
//! ```
//! use emoleak_phone::{DeviceProfile, Placement, SpeakerKind, VibrationChannel};
//! use rand::SeedableRng;
//!
//! let device = DeviceProfile::oneplus_7t();
//! let channel = VibrationChannel::new(&device, SpeakerKind::Loudspeaker, Placement::TableTop);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let audio: Vec<f64> = (0..8000).map(|i| (i as f64 * 0.1).sin() * 0.3).collect();
//! let trace = channel.simulate(&audio, 8000.0, &mut rng);
//! assert_eq!(trace.fs, device.accel_rate_hz());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod android;
pub mod chassis;
pub mod device;
pub mod faults;
pub mod gyro;
pub mod motion;
pub mod replay;
pub mod session;

pub use accel::{AccelTrace, Accelerometer};
pub use android::{BatchingSpec, SamplingPolicy, ThermalThrottle};
pub use chassis::{ChassisModel, ResonantMode};
pub use device::{DeviceProfile, SpeakerKind, SpeakerSpec};
pub use faults::{FaultLog, FaultProfile, TimedTrace};
pub use replay::{
    ChunkValidator, ChunkedReplay, FlakyReplay, InputDefect, ReplayChunk, SourceDropout,
};
pub use session::{LabeledSpan, RecordingSession, SessionTrace};

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where the phone is during recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// On a wooden table (loudspeaker experiments): no body-motion noise.
    TableTop,
    /// Held at the ear (ear-speaker experiments): pink hand/body motion
    /// noise is added.
    Handheld,
}

/// A complete playback→accelerometer channel for one (device, speaker,
/// placement) combination.
#[derive(Debug, Clone)]
pub struct VibrationChannel {
    speaker: SpeakerSpec,
    chassis: ChassisModel,
    accel: Accelerometer,
    placement: Placement,
    motion_noise_std: f64,
}

impl VibrationChannel {
    /// Builds the channel for `device` playing through `kind` in `placement`.
    pub fn new(device: &DeviceProfile, kind: SpeakerKind, placement: Placement) -> Self {
        VibrationChannel {
            speaker: device.speaker(kind).clone(),
            chassis: device.chassis_model(),
            accel: device.accelerometer(),
            placement,
            motion_noise_std: device.motion_noise_std(),
        }
    }

    /// The accelerometer sampling rate of this channel's device.
    pub fn accel_rate_hz(&self) -> f64 {
        self.accel.rate_hz()
    }

    /// The placement this channel was built for.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The handheld motion-noise scale of this channel's device.
    pub fn motion_noise_std(&self) -> f64 {
        self.motion_noise_std
    }

    /// Simulates the full chain for one audio clip sampled at `fs_audio`,
    /// returning the z-axis accelerometer trace.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        audio: &[f64],
        fs_audio: f64,
        rng: &mut R,
    ) -> AccelTrace {
        // 1. Speaker: drive scaling + low-frequency rolloff.
        let driven = self.speaker.drive(audio, fs_audio);
        // 2. Chassis: conduction into the accelerometer band.
        let vibration = self.chassis.conduct(&driven, fs_audio);
        // 3. Motion noise (handheld only), added at audio rate pre-sampling.
        let vibration = match self.placement {
            Placement::TableTop => vibration,
            Placement::Handheld => {
                motion::add_handheld_noise(vibration, fs_audio, self.motion_noise_std, rng)
            }
        };
        // 4. Accelerometer: sampling, noise floor, quantization.
        self.accel.sample(&vibration, fs_audio, rng)
    }
}
